//! # battery-aware-scheduling
//!
//! A complete Rust reproduction of **"Battery Aware Dynamic Scheduling for
//! Periodic Task Graphs"** (V. Rao, N. Navet, G. Singhal, A. Kumar,
//! G.S. Visweswaran — WPDRTS 2006): battery-aware dynamic scheduling of
//! periodic task graphs on a DVS processor, together with every substrate
//! the paper's evaluation depends on — task-graph generation (TGFF-like),
//! the DVS processor and power-delivery model, four battery models, a
//! discrete-event scheduling simulator, the ccEDF/laEDF governors, and the
//! pUBS/BAS-1/BAS-2 methodology itself.
//!
//! This facade crate re-exports the workspace libraries under one roof:
//!
//! * [`taskgraph`] — DAG workload model and random generator;
//! * [`cpu`] — operating points, power/current model, frequency
//!   realization, and the multi-PE [`Platform`](cpu::Platform);
//! * [`battery`] — KiBaM, diffusion, stochastic and Peukert models;
//! * [`sim`] — the stepped discrete-event engine ([`sim::Simulation`]), its
//!   observer/event stream and scheduler traits;
//! * [`dvs`] — ccEDF / laEDF / no-DVS / battery-aware SoC-floor governors;
//! * [`core`] — priority functions, feasibility check, BAS policies, the
//!   single-DAG optimal search and the `Experiment`/`Sweep` API.
//!
//! ## Quick start
//!
//! Every experiment is expressed through the builder API: an
//! [`Experiment`](prelude::Experiment) is one run, a
//! [`Sweep`](prelude::Sweep) is a batch over seeds × schedulers with
//! deterministic parallel fan-out.
//!
//! ```
//! use battery_aware_scheduling::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A random periodic task set at 70 % utilization (the paper's setup).
//! let mut rng = StdRng::seed_from_u64(1);
//! let set = TaskSetConfig::default().generate(&mut rng).unwrap();
//!
//! // Battery-aware scheduling (BAS-2) vs plain EDF, same workload and seed.
//! let proc = unit_processor();
//! let run = |spec| {
//!     Experiment::new(&set)
//!         .spec(spec)
//!         .processor(&proc)
//!         .seed(7)
//!         .horizon(300.0)
//!         .run()
//!         .unwrap()
//! };
//! let bas = run(SchedulerSpec::bas2());
//! let edf = run(SchedulerSpec::edf());
//! assert_eq!(bas.metrics.deadline_misses, 0);
//! assert!(bas.metrics.energy < edf.metrics.energy);
//! ```
//!
//! The paper's many-random-sets protocol is one [`Sweep`](prelude::Sweep):
//!
//! ```
//! use battery_aware_scheduling::prelude::*;
//!
//! let proc = unit_processor();
//! let report = Sweep::over_seeds(1, 4)
//!     .specs(SchedulerSpec::table2_lineup())
//!     .workload(TaskSetConfig::default())
//!     .processor(&proc)
//!     .horizon(200.0)
//!     .run()
//!     .unwrap();
//! assert!(report.spec("BAS-2").unwrap().energy.mean
//!     < report.spec("EDF").unwrap().energy.mean);
//! ```
//!
//! ## Running the paper's experiments
//!
//! Every table and figure is a preset scenario of the unified `bas` CLI
//! (`crates/cli`); scenario files under `scenarios/` describe the same runs
//! declaratively ([`Scenario`](prelude::Scenario)):
//!
//! | artifact | preset | shape |
//! |---|---|---|
//! | Table 1 | `bas table1` | offline single-DAG scenarios (`core::single_dag`) |
//! | Table 2 | `bas table2` | `Sweep` × battery co-simulation, paper processor |
//! | Fig. 4 / 5 | `bas fig4`, `bas fig5` | worked traces |
//! | Fig. 6 | `bas fig6` | per-trial `Experiment`s vs precedence-relaxed twin |
//! | §5 curve | `bas capacity-curve` | battery layer only |
//! | §3 guidelines | `bas guidelines` | battery layer only |
//! | utilization sweep | `bas crossover` | one `Sweep` per load point |
//! | ablations | `bas ablation` | `Sweep`s with one knob varied |
//! | anything else | `bas run <scenario.toml>` | generic lineup × workload sweep |
//!
//! Each run renders the historical text tables or, with `--format
//! json|csv`, a structured [`Report`](prelude::Report) with spec labels,
//! per-seed metrics and summary statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bas_battery as battery;
pub use bas_core as core;
pub use bas_cpu as cpu;
pub use bas_dvs as dvs;
pub use bas_sim as sim;
pub use bas_taskgraph as taskgraph;

/// The most commonly used items in one import.
pub mod prelude {
    pub use bas_battery::{
        run_profile, BatteryModel, DiffusionModel, Kibam, LoadProfile, RunOptions, StochasticKibam,
    };
    pub use bas_core::{
        parallel_map, Experiment, Report, SamplerKind, Scenario, ScenarioKind, SchedulerSpec,
        SpecReport, Summary, Sweep, SweepReport, TrialRecord,
    };
    pub use bas_core::{BasPolicy, EmaEstimator, Ltf, Pubs, RandomPriority, Stf};
    pub use bas_cpu::presets::{dense_dvs_processor, paper_processor, unit_processor};
    pub use bas_cpu::{FreqPolicy, Platform, Processor};
    pub use bas_dvs::{CcEdf, GovernorBank, LaEdf, NoDvs};
    pub use bas_sim::{
        BatteryView, DeadlineMode, JsonlWriter, MetricsCollector, SimConfig, SimEvent, SimObserver,
        Simulation, Step, TaskRef, TraceRecorder, UniformFraction, WorstCase,
    };
    pub use bas_taskgraph::{
        GeneratorConfig, GraphShape, Mapping, PeriodicTaskGraph, TaskGraph, TaskGraphBuilder,
        TaskSet, TaskSetConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let mut b = TaskGraphBuilder::new("t");
        b.add_node("only", 5);
        let g = b.build().unwrap();
        assert_eq!(g.total_wcet(), 5);
        let p = unit_processor();
        assert_eq!(p.fmax(), 1.0);
        let cell = Kibam::paper_cell();
        assert!(!cell.is_exhausted());
    }

    #[test]
    fn prelude_exposes_the_builder_api() {
        let mut b = TaskGraphBuilder::new("t");
        b.add_node("only", 5);
        let mut set = TaskSet::new();
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap());
        let proc = unit_processor();
        let out = Experiment::new(&set)
            .spec(SchedulerSpec::edf())
            .processor(&proc)
            .horizon(50.0)
            .run()
            .unwrap();
        assert_eq!(out.metrics.deadline_misses, 0);
    }
}
