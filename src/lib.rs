//! # battery-aware-scheduling
//!
//! A complete Rust reproduction of **"Battery Aware Dynamic Scheduling for
//! Periodic Task Graphs"** (V. Rao, N. Navet, G. Singhal, A. Kumar,
//! G.S. Visweswaran — WPDRTS 2006): battery-aware dynamic scheduling of
//! periodic task graphs on a DVS processor, together with every substrate
//! the paper's evaluation depends on — task-graph generation (TGFF-like),
//! the DVS processor and power-delivery model, four battery models, a
//! discrete-event scheduling simulator, the ccEDF/laEDF governors, and the
//! pUBS/BAS-1/BAS-2 methodology itself.
//!
//! This facade crate re-exports the workspace libraries under one roof:
//!
//! * [`taskgraph`] — DAG workload model and random generator;
//! * [`cpu`] — operating points, power/current model, frequency realization;
//! * [`battery`] — KiBaM, diffusion, stochastic and Peukert models;
//! * [`sim`] — the discrete-event executor and its traits;
//! * [`dvs`] — ccEDF / laEDF / no-DVS frequency governors;
//! * [`core`] — priority functions, feasibility check, BAS policies, the
//!   single-DAG optimal search and the experiment runner.
//!
//! ## Quick start
//!
//! ```
//! use battery_aware_scheduling::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A random periodic task set at 70 % utilization (the paper's setup).
//! let mut rng = StdRng::seed_from_u64(1);
//! let set = TaskSetConfig::default().generate(&mut rng).unwrap();
//!
//! // Battery-aware scheduling (BAS-2) vs plain EDF, same workload and seed.
//! let proc = unit_processor();
//! let bas = simulate(&set, &SchedulerSpec::bas2(), &proc, 7, 300.0).unwrap();
//! let edf = simulate(&set, &SchedulerSpec::edf(), &proc, 7, 300.0).unwrap();
//! assert_eq!(bas.metrics.deadline_misses, 0);
//! assert!(bas.metrics.energy < edf.metrics.energy);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bas_battery as battery;
pub use bas_core as core;
pub use bas_cpu as cpu;
pub use bas_dvs as dvs;
pub use bas_sim as sim;
pub use bas_taskgraph as taskgraph;

/// The most commonly used items in one import.
pub mod prelude {
    pub use bas_battery::{
        run_profile, BatteryModel, DiffusionModel, Kibam, LoadProfile, RunOptions,
        StochasticKibam,
    };
    pub use bas_core::runner::{
        simulate, simulate_lean, simulate_with_battery, SchedulerSpec,
    };
    pub use bas_core::{BasPolicy, EmaEstimator, Ltf, Pubs, RandomPriority, Stf};
    pub use bas_cpu::presets::{dense_dvs_processor, paper_processor, unit_processor};
    pub use bas_cpu::{FreqPolicy, Processor};
    pub use bas_dvs::{CcEdf, LaEdf, NoDvs};
    pub use bas_sim::{
        DeadlineMode, Executor, SimConfig, TaskRef, UniformFraction, WorstCase,
    };
    pub use bas_taskgraph::{
        GeneratorConfig, GraphShape, PeriodicTaskGraph, TaskGraph, TaskGraphBuilder, TaskSet,
        TaskSetConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let mut b = TaskGraphBuilder::new("t");
        b.add_node("only", 5);
        let g = b.build().unwrap();
        assert_eq!(g.total_wcet(), 5);
        let p = unit_processor();
        assert_eq!(p.fmax(), 1.0);
        let cell = Kibam::paper_cell();
        assert!(!cell.is_exhausted());
    }
}
