//! Black-box tests of the `bas` binary: exit codes, usage reporting, and
//! the format switch. The historical binaries panicked with a backtrace on
//! malformed flags; `bas` must exit with code 2 and a usage message.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn bas(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bas"))
        .args(args)
        .current_dir(workspace_root())
        .output()
        .expect("bas binary runs")
}

#[test]
fn malformed_flags_exit_2_with_usage_not_a_panic() {
    for args in [
        &["table2", "--trials"][..],        // flag without a value
        &["table2", "--trials", "many"],    // non-numeric value
        &["table2", "--points", "9"],       // knob of a different kind
        &["table2", "--battery", "fusion"], // unknown preset name
        &["frobnicate"],                    // unknown subcommand
        &["run"],                           // missing file operand
        &[],                                // no command at all
        &["fig4", "--format", "yaml"],      // unknown format
        &["fig4", "extra"],                 // stray positional
    ] {
        let out = bas(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error:"), "{args:?}: {stderr}");
        assert!(stderr.contains("USAGE"), "{args:?}: {stderr}");
        assert!(out.stdout.is_empty(), "{args:?} wrote to stdout");
    }
}

#[test]
fn help_exits_0_with_usage_on_stdout() {
    for args in [&["--help"][..], &["-h"], &["help"]] {
        let out = bas(args);
        assert_eq!(out.status.code(), Some(0), "{args:?}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"), "{args:?}");
    }
}

#[test]
fn missing_scenario_file_exits_1() {
    let out = bas(&["run", "no/such/file.toml"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn malformed_scenario_file_exits_2_with_usage() {
    // A file that *reads* but does not parse/validate is malformed input —
    // same contract as a malformed flag: exit 2 + usage.
    let dir = std::env::temp_dir().join("bas-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, body) in [
        ("unknown-key.toml", "kind = \"table2\"\ntrails = 5\n"),
        ("bad-value.toml", "kind = \"sweep\"\nbattery = \"fusion\"\n"),
        ("not-toml.toml", "kind = \"sweep\"\ntrials = = 5\n"),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        let out = bas(&["run", path.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(2), "{name}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("USAGE"), "{name}: {stderr}");
        assert!(stderr.contains(name), "{name} (path named in error): {stderr}");
    }
}

#[test]
fn list_names_every_preset_and_the_checked_in_files() {
    let out = bas(&["list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in [
        "table1",
        "table2",
        "fig4",
        "fig5",
        "fig6",
        "guidelines",
        "crossover",
        "ablation",
        "capacity-curve",
        "sweep",
    ] {
        assert!(stdout.contains(name), "missing preset {name}:\n{stdout}");
    }
    assert!(stdout.contains("scenarios/smoke.toml"), "{stdout}");
}

#[test]
fn run_smoke_emits_the_three_formats() {
    let text = bas(&["run", "scenarios/smoke.toml"]);
    assert_eq!(text.status.code(), Some(0), "{text:?}");
    assert!(String::from_utf8_lossy(&text.stdout).contains("sweep 'smoke'"));

    let json = bas(&["run", "scenarios/smoke.toml", "--format", "json"]);
    assert_eq!(json.status.code(), Some(0), "{json:?}");
    let body = String::from_utf8_lossy(&json.stdout);
    assert!(body.starts_with('{') && body.trim_end().ends_with('}'), "{body}");
    assert!(body.contains("\"schema\": \"bas-report/v1\""), "{body}");

    let csv = bas(&["run", "scenarios/smoke.toml", "--format", "csv"]);
    assert_eq!(csv.status.code(), Some(0), "{csv:?}");
    assert!(
        String::from_utf8_lossy(&csv.stdout)
            .starts_with("record,label,metric,seed,value,n,mean,std,min,max,p50,p95"),
        "{csv:?}"
    );
}

#[test]
fn events_flag_streams_parseable_jsonl_without_touching_stdout() {
    let dir = std::env::temp_dir().join("bas-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let events = dir.join("smoke-events.jsonl");
    let plain = bas(&["run", "scenarios/smoke.toml"]);
    let with_events = bas(&["run", "scenarios/smoke.toml", "--events", events.to_str().unwrap()]);
    assert_eq!(with_events.status.code(), Some(0), "{with_events:?}");
    assert_eq!(with_events.stdout, plain.stdout, "--events must not change the report output");

    let stream = std::fs::read_to_string(&events).unwrap();
    let lines: Vec<&str> = stream.lines().collect();
    assert!(!lines.is_empty());
    assert!(
        lines[0].contains("\"schema\":\"bas-events/v2\""),
        "stream must open with the schema header: {}",
        lines[0]
    );
    // One header per spec in the smoke lineup (EDF, BAS-2), each line a
    // single flat JSON object with a type discriminator.
    let headers = lines.iter().filter(|l| l.contains("\"type\":\"header\"")).count();
    assert_eq!(headers, 2, "{stream}");
    for line in &lines {
        assert!(
            line.starts_with("{\"type\":\"") && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
    }
}

#[test]
fn events_flag_on_a_non_sweep_preset_is_a_usage_error() {
    let out = bas(&["fig4", "--events", "/tmp/should-not-exist.jsonl"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--events"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn overrides_and_legacy_flag_aliases_apply() {
    // `--actuals` and `--max-time` are the retired table2 binary's spellings
    // of `sampler` and `horizon`.
    let out =
        bas(&["scenario", "table2", "--trials", "7", "--actuals", "iid", "--max-time", "1000"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trials = 7"), "{stdout}");
    assert!(stdout.contains("sampler = \"iid\""), "{stdout}");
    assert!(stdout.contains("horizon = 1000.0"), "{stdout}");
}

#[test]
fn scenario_subcommand_round_trips_through_run() {
    // `bas scenario sweep` emits a file that `bas run` accepts.
    let emitted = bas(&[
        "scenario",
        "sweep",
        "--trials",
        "1",
        "--battery",
        "none",
        "--workload",
        "unit",
        "--processor",
        "unit",
        "--horizon",
        "100",
        "--specs",
        "EDF",
    ]);
    assert_eq!(emitted.status.code(), Some(0), "{emitted:?}");
    let dir = std::env::temp_dir().join("bas-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("emitted.toml");
    std::fs::write(&path, &emitted.stdout).unwrap();
    let run = bas(&["run", path.to_str().unwrap()]);
    assert_eq!(run.status.code(), Some(0), "{run:?}");
    assert!(String::from_utf8_lossy(&run.stdout).contains("EDF"));
}

#[test]
fn list_format_json_emits_the_preset_catalog() {
    let out = bas(&["list", "--format", "json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(body.starts_with('{') && body.trim_end().ends_with('}'), "{body}");
    // Flat enough to probe without a JSON parser: every preset appears with
    // its name, a description and its checked-in scenario path.
    for name in ["table1", "table2", "sweep", "capacity-curve"] {
        assert!(body.contains(&format!("\"name\": \"{name}\"")), "{body}");
        assert!(body.contains(&format!("\"scenario\": \"scenarios/{name}.toml\"")), "{body}");
    }
    assert!(body.contains("\"description\": "), "{body}");
    assert!(body.contains("\"knobs\": ["), "{body}");
    assert!(body.contains("\"path\": \"scenarios/mpsoc.toml\""), "{body}");
    // Text mode is unchanged and remains the default.
    let text = bas(&["list"]);
    assert!(String::from_utf8_lossy(&text.stdout).starts_with("presets"), "{text:?}");
    // Unknown formats and stray flags are usage errors.
    assert_eq!(bas(&["list", "--format", "yaml"]).status.code(), Some(2));
    assert_eq!(bas(&["list", "--out", "x"]).status.code(), Some(2));
}

#[test]
fn mpsoc_scenario_runs_the_lineup_on_two_and_four_pes() {
    // The multi-PE showcase must drive the whole lineup end to end —
    // including the per-event `pe` field in the JSONL stream — at 2 and
    // (via override) 4 PEs, miss-free.
    let dir = std::env::temp_dir().join("bas-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let events = dir.join("mpsoc-events.jsonl");
    for pes in ["2", "4"] {
        let out = bas(&[
            "run",
            "scenarios/mpsoc.toml",
            "--pes",
            pes,
            "--trials",
            "2",
            "--events",
            events.to_str().unwrap(),
        ]);
        assert_eq!(out.status.code(), Some(0), "pes {pes}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("platform: {pes} processing elements")),
            "pes {pes}: {stdout}"
        );
        assert!(stdout.contains("deadline misses across all runs: 0"), "pes {pes}: {stdout}");
        let stream = std::fs::read_to_string(&events).unwrap();
        assert!(stream.lines().next().unwrap().contains("\"schema\":\"bas-events/v2\""));
        let max_pe = pes.parse::<usize>().unwrap() - 1;
        assert!(
            stream.lines().any(|l| l.contains(&format!("\"pe\":{max_pe},"))),
            "pes {pes}: no event on the last PE"
        );
    }
    // The JSON report carries the platform width.
    let json = bas(&["run", "scenarios/mpsoc.toml", "--trials", "1", "--format", "json"]);
    assert_eq!(json.status.code(), Some(0), "{json:?}");
    assert!(String::from_utf8_lossy(&json.stdout).contains("\"pes\": 2"), "{json:?}");
}

#[test]
fn bench_rejects_bad_flags_with_usage() {
    for args in [
        &["bench", "--format", "yaml"][..], // unknown format
        &["bench", "--frobnicate", "x"],    // unknown flag
        &["bench", "extra"],                // stray positional
    ] {
        let out = bas(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
        assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"), "{args:?}");
    }
}

#[test]
fn bench_quick_emits_valid_bas_bench_v1_json() {
    // Hermetic suite: point --scenarios at a directory whose six pinned
    // names all hold a tiny seconds-scale sweep, so the test measures the
    // harness (schema, flags, file output), not the real suite's runtime.
    // Pid-suffixed so concurrent checkouts sharing /tmp cannot interfere.
    let dir = std::env::temp_dir().join(format!("bas-cli-bench-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tiny = "kind = \"sweep\"\ntrials = 1\nseed = 1\nhorizon = 50.0\n\
                specs = [\"EDF\", \"BAS-2\"]\nworkload = \"unit\"\n\
                processor = \"unit\"\nbattery = \"none\"\n";
    for name in ["smoke", "sweep", "mpsoc", "battery-aware", "biglittle", "big-dag"] {
        std::fs::write(dir.join(format!("{name}.toml")), format!("name = \"{name}\"\n{tiny}"))
            .unwrap();
    }
    // The portfolio entry loads its own pinned scenario; race a 2-spec
    // lineup so the hermetic suite stays fast.
    let tiny_portfolio = "name = \"portfolio\"\nkind = \"portfolio\"\ntrials = 1\nseed = 1\n\
                          horizon = 50.0\nspecs = [\"EDF\", \"BAS-2\"]\nworkload = \"unit\"\n\
                          processor = \"unit\"\nbattery = \"none\"\n";
    std::fs::write(dir.join("portfolio.toml"), tiny_portfolio).unwrap();
    let out_file = dir.join("bench.json");
    let out = bas(&[
        "bench",
        "--quick",
        "--scenarios",
        dir.to_str().unwrap(),
        "--format",
        "json",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(out.stdout.is_empty(), "--out must silence stdout: {out:?}");
    let json = std::fs::read_to_string(&out_file).unwrap();
    assert!(json.contains("\"schema\": \"bas-bench/v1\""), "{json}");
    assert!(json.contains("\"mode\": \"quick\""), "{json}");
    // 6 scenarios x {1, 4} PEs, plus the portfolio and serve entries.
    assert_eq!(json.matches("\"scenario\":").count(), 14, "{json}");
    assert!(json.contains("\"scenario\": \"portfolio\""), "{json}");
    assert_eq!(json.matches("\"pes\": 4").count(), 6, "{json}");
    assert!(!json.contains("\"steps\": 0,"), "every entry took decisions: {json}");
    // The serve entry measures the daemon: 5x its cold submissions as
    // requests (cold + 3 warm passes + 1 post-restart pass), 3/4 of the
    // pre-restart ones answered by the result cache and the whole restart
    // pass answered from the on-disk store.
    assert!(json.contains("\"scenario\": \"serve\""), "{json}");
    assert!(json.contains("\"cache_hit_rate\": 0.750"), "{json}");
    assert!(json.contains("\"restart_hit_rate\": 1.000"), "{json}");
    // The text rendering works against the same directory.
    let text = bas(&["bench", "--quick", "--scenarios", dir.to_str().unwrap()]);
    assert_eq!(text.status.code(), Some(0), "{text:?}");
    let rendered = String::from_utf8_lossy(&text.stdout);
    assert!(rendered.contains("Steps/s"), "{rendered}");
    assert!(rendered.contains("Hit rate"), "{rendered}");
    assert!(rendered.contains("quick mode"), "{rendered}");
}

#[test]
fn serve_rejects_bad_flags_with_usage() {
    for args in [
        &["serve", "--workers"][..],                 // flag without a value
        &["serve", "--workers", "lots"],             // non-numeric value
        &["serve", "--queue-depth", "-1"],           // negative count
        &["serve", "--max-horizon", "0"],            // non-positive budget
        &["serve", "--state-dir", ""],               // empty path
        &["serve", "--state-max-bytes", "0"],        // non-positive budget
        &["serve", "--follow-buffer-bytes", "none"], // non-numeric value
        &["serve", "--frobnicate", "x"],             // unknown flag
        &["serve", "extra"],                         // stray positional
    ] {
        let out = bas(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error:"), "{args:?}: {stderr}");
        assert!(stderr.contains("USAGE"), "{args:?}: {stderr}");
    }
    // The usage text documents the subcommand.
    let help = bas(&["--help"]);
    assert!(String::from_utf8_lossy(&help.stdout).contains("bas serve"), "{help:?}");
}

/// End-to-end daemon contract, driven exactly like CI's serve-e2e job:
/// spawn `bas serve` as a child process on an ephemeral port, submit the
/// checked-in smoke scenario over TCP, and require the served report and
/// event stream to be byte-identical to local `bas run` output — then
/// SIGTERM must drain and exit 0.
#[cfg(unix)]
#[test]
fn serve_child_process_serves_smoke_and_drains_on_sigterm() {
    use std::io::{BufRead as _, BufReader, Read as _, Write as _};
    use std::net::TcpStream;

    let mut child = Command::new(env!("CARGO_BIN_EXE_bas"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1", "--quiet"])
        .current_dir(workspace_root())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn bas serve");
    let mut first_line = String::new();
    BufReader::new(child.stdout.take().expect("piped stdout"))
        .read_line(&mut first_line)
        .expect("read listening line");
    let addr = first_line
        .trim()
        .strip_prefix("bas serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected listening line {first_line:?}"))
        .to_string();

    let exchange = |request: String| -> (String, Vec<u8>) {
        let mut stream = TcpStream::connect(&addr).expect("connect to daemon");
        stream.write_all(request.as_bytes()).expect("send");
        let mut response = Vec::new();
        stream.read_to_end(&mut response).expect("read");
        let split = response.windows(4).position(|w| w == b"\r\n\r\n").expect("head/body split");
        (String::from_utf8_lossy(&response[..split]).to_string(), response[split + 4..].to_vec())
    };
    let get = |path: &str| exchange(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"));

    let (head, _) = get("/v1/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");

    // Submit the checked-in smoke scenario verbatim.
    let body = std::fs::read_to_string(workspace_root().join("scenarios/smoke.toml")).unwrap();
    let (head, response) = exchange(format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    ));
    assert!(head.starts_with("HTTP/1.1 202"), "{head}");
    let response = String::from_utf8(response).unwrap();
    let id: u64 = response
        .split("\"job\": ")
        .nth(1)
        .and_then(|r| r.split([',', '}']).next())
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or_else(|| panic!("no job id in {response}"));

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let (_, status_body) = get(&format!("/v1/jobs/{id}"));
        let status_body = String::from_utf8_lossy(&status_body).to_string();
        if status_body.contains("\"status\": \"done\"") {
            break;
        }
        assert!(!status_body.contains("\"status\": \"failed\""), "{status_body}");
        assert!(std::time::Instant::now() < deadline, "job never finished: {status_body}");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // Byte-for-byte: the served report is exactly `bas run --format json`.
    let (head, served_report) = get(&format!("/v1/jobs/{id}/report"));
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let local = bas(&["run", "scenarios/smoke.toml", "--format", "json"]);
    assert_eq!(local.status.code(), Some(0), "{local:?}");
    assert_eq!(served_report, local.stdout, "served report != local `bas run` report");

    // Byte-for-byte: the streamed events equal `bas run --events`.
    let (head, chunked) = get(&format!("/v1/jobs/{id}/events"));
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    let streamed = bas_serve::http::decode_chunked(&chunked).expect("well-formed chunking");
    let dir = std::env::temp_dir().join(format!("bas-cli-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let events_file = dir.join("events.jsonl");
    let local = bas(&["run", "scenarios/smoke.toml", "--events", events_file.to_str().unwrap()]);
    assert_eq!(local.status.code(), Some(0), "{local:?}");
    assert_eq!(streamed, std::fs::read(&events_file).unwrap(), "served events != local capture");

    // Same digest again: answered from the cache, same job, no new run.
    let (head, response) = exchange(format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    ));
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let response = String::from_utf8(response).unwrap();
    assert!(response.contains("\"cached\": true"), "{response}");
    let (_, health) = get("/v1/healthz");
    let health = String::from_utf8_lossy(&health).to_string();
    assert!(health.contains("\"executed\": 1"), "{health}");

    // SIGTERM drains gracefully: the process exits 0 on its own.
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let status = child.wait().expect("child exits");
    assert_eq!(status.code(), Some(0), "drain must exit 0, got {status:?}");
}
