//! Golden-file and scenario-consistency tests for the `bas` CLI library:
//!
//! * the tiny checked-in smoke scenario produces a byte-identical JSON
//!   report (schema stability + end-to-end determinism in one assertion);
//! * every checked-in `scenarios/<preset>.toml` parses to exactly the
//!   built-in preset of the same kind — the files and the constructors are
//!   the same objects, as the scenario layer promises.

use bas_core::{Scenario, ScenarioKind};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/cli -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

#[test]
fn smoke_scenario_json_report_is_byte_stable() {
    let root = workspace_root();
    let scenario = Scenario::load(&root.join("scenarios/smoke.toml")).unwrap();
    let (_text, report) = bas_cli::run_scenario(&scenario).unwrap();
    let golden_path = root.join("crates/cli/tests/golden/smoke.json");
    let golden = std::fs::read_to_string(&golden_path).unwrap();
    assert_eq!(
        report.to_json(),
        golden,
        "the smoke report drifted from {golden_path:?}; if the change is \
         intentional, regenerate with \
         `bas run scenarios/smoke.toml --format json --out crates/cli/tests/golden/smoke.json`"
    );
}

#[test]
fn smoke_scenario_csv_report_is_rectangular() {
    let root = workspace_root();
    let scenario = Scenario::load(&root.join("scenarios/smoke.toml")).unwrap();
    let (_text, report) = bas_cli::run_scenario(&scenario).unwrap();
    let csv = report.to_csv();
    let header = "record,label,metric,seed,value,n,mean,std,min,max,p50,p95";
    assert_eq!(csv.lines().next().unwrap(), header);
    let width = header.split(',').count();
    assert!(csv.lines().count() > 4, "{csv}");
    for line in csv.lines() {
        assert_eq!(line.split(',').count(), width, "ragged CSV row: {line}");
    }
    assert!(csv.lines().any(|l| l.starts_with("summary,BAS-2,")), "{csv}");
    assert!(csv.lines().any(|l| l.starts_with("trial,EDF,")), "{csv}");
}

#[test]
fn checked_in_preset_files_match_the_builtin_presets() {
    let root = workspace_root();
    for kind in ScenarioKind::ALL {
        let path = root.join("scenarios").join(format!("{}.toml", kind.name()));
        let loaded = Scenario::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            loaded,
            Scenario::preset(kind),
            "{} drifted from Scenario::preset({kind}); regenerate with \
             `bas scenario {kind} > scenarios/{kind}.toml`",
            path.display()
        );
    }
}

#[test]
fn every_checked_in_scenario_file_is_valid() {
    let root = workspace_root();
    let mut count = 0;
    for entry in std::fs::read_dir(root.join("scenarios")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|x| x == "toml") {
            Scenario::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            count += 1;
        }
    }
    assert!(count >= 15, "expected the preset + example + smoke files, found {count}");
}
