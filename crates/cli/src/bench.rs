//! The `bas bench` performance harness — the repo's recorded perf
//! trajectory.
//!
//! Runs a **pinned suite** of end-to-end scenarios (smoke, sweep, mpsoc,
//! battery-aware, biglittle, big-dag — each on 1 and 4 processing
//! elements) through exactly the
//! sweep replay path (`Scenario::trial_set` / `trial_experiment` /
//! `build_battery`), measures wall time per entry and reports throughput as
//! **steps per second**, where a *step* is one scheduling decision (a
//! policy invocation at a scheduling point — the unit the paper bounds
//! per-hyperperiod recomputation cost in, and the unit related work reports
//! runtime overhead in).
//!
//! Trials run **sequentially on one thread** so the numbers measure engine
//! throughput, not the machine's core count.
//!
//! After the cross-product comes one `portfolio` entry: the checked-in
//! `portfolio` scenario's whole 40-spec grammar expansion raced through the
//! same replay path (misses counted, not fatal) — the throughput of what
//! `bas portfolio` executes per trial × spec.
//!
//! The suite ends with one `serve` entry that measures the `bas serve`
//! daemon end to end (in-process server, real TCP, a temp `--state-dir`
//! store): for it a *step* is one HTTP request, `steps_per_sec` reads as
//! requests per second, the additive `cache_hit_rate` field records the
//! fraction of submissions the result cache answered, and the additive
//! `restart_hit_rate` field records the fraction of submissions a
//! restarted daemon answered from the on-disk store (1.0 = warm restart
//! recomputed nothing).
//!
//! ## The `bas-bench/v1` JSON schema
//!
//! ```json
//! {
//!   "schema": "bas-bench/v1",
//!   "created_utc": "2026-07-27",
//!   "created_unix": 1785168000,
//!   "git_rev": "53a6a03",
//!   "mode": "quick",
//!   "suite": [
//!     {"scenario": "smoke", "pes": 1, "specs": 2, "trials": 1,
//!      "horizon": 200.0, "steps": 12345, "wall_ns": 6789000,
//!      "steps_per_sec": 1818000.0}
//!   ]
//! }
//! ```
//!
//! `steps_per_sec` is `steps / (wall_ns / 1e9)`. The date is derived from
//! the system clock (UTC); `git_rev` comes from `$GITHUB_SHA` or
//! `git rev-parse --short HEAD`, falling back to `"unknown"`.
//!
//! CI's `perf-gate` job runs `bas bench --quick --format json` and compares
//! each entry's `steps_per_sec` against the checked-in
//! `BENCH_baseline.json`; full-mode snapshots accumulate as
//! `BENCH_<date>.json` files — the perf trajectory.

use crate::args::Args;
use crate::CliError;
use bas_core::report::json_string;
use bas_core::{expand_spec_patterns, Scenario, Sweep, TextTable};
use std::path::Path;
use std::time::Instant;

/// Identifier of the bench report schema emitted by this version.
pub const SCHEMA: &str = "bas-bench/v1";

/// A `(trials, horizon-seconds)` measurement budget.
type Budget = (usize, f64);

/// One pinned suite scenario: the file stem under the scenarios directory
/// and its quick/full budgets. Budgets are pinned **per scenario** because
/// the files' own horizons measure wildly different amounts of work (the
/// unit-scale scenarios release instances every few thousand time units;
/// the paper-scale ones every few seconds); each entry is sized to do
/// enough work that its steps-per-second is a measurement, not noise.
/// Every entry must stay miss-free — a bench that drops deadlines is
/// measuring a broken configuration.
pub struct SuiteScenario {
    /// Scenario file stem under the scenarios directory.
    pub name: &'static str,
    /// `--quick` budget (CI's perf gate).
    pub quick: Budget,
    /// Full budget (the recorded `BENCH_<date>.json` trajectory).
    pub full: Budget,
}

/// The pinned suite, crossed with [`SUITE_PES`].
pub const SUITE_SCENARIOS: [SuiteScenario; 6] = [
    // Unit-scale, no battery, seconds-long instances: many short trials, so
    // this entry also measures the Sweep layer's per-trial setup.
    // Quick budgets are sized so every entry takes ≥ ~100 ms of wall time
    // even on a fast machine: the perf gate's per-entry threshold is only
    // meaningful when timer jitter is small against the measurement.
    SuiteScenario { name: "smoke", quick: (3200, 200.0), full: (3200, 200.0) },
    // Paper-scale lineup over the stochastic battery — the core workload.
    SuiteScenario { name: "sweep", quick: (2, 2000.0), full: (8, 10_000.0) },
    // Unit-scale lineup (incl. BAS-soc) over the KiBaM battery; each run is
    // battery-lifetime-bound, so the trial count carries the work.
    SuiteScenario { name: "mpsoc", quick: (96, 50_000.0), full: (128, 200_000.0) },
    // BAS-2 vs BAS-soc, paper scale, stochastic battery.
    SuiteScenario { name: "battery-aware", quick: (4, 2000.0), full: (8, 20_000.0) },
    // Paper-scale big.LITTLE lineup (incl. BAS-soc/BAS-kv) over the shared
    // KiBaM cell: the heterogeneity-aware mapper plus interconnect charging
    // on cross-PE DAG edges. The 1-PE width measures the same lineup on a
    // single `big` element (per-PE presets are width-bound, so the shared
    // preset substitutes).
    SuiteScenario { name: "biglittle", quick: (2, 2000.0), full: (6, 20_000.0) },
    // The 10,000-node generated layered DAG, rebuilt per trial seed: one
    // periodic instance per ~785k-second period, so the horizon carries
    // the work. Measures the engine's O(n) scheduling paths and the
    // mapper's load balancing at graph scale.
    SuiteScenario { name: "big-dag", quick: (1, 1_000_000.0), full: (2, 2_000_000.0) },
];

/// Platform widths every suite scenario is benchmarked on.
pub const SUITE_PES: [usize; 2] = [1, 4];

/// One measured suite entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Scenario name (file stem under `scenarios/`).
    pub scenario: String,
    /// Processing elements the run was pinned to.
    pub pes: usize,
    /// Specs in the scenario's lineup.
    pub specs: usize,
    /// Trials per spec actually run (the mode's pinned count).
    pub trials: usize,
    /// Simulated-time bound per trial, seconds (after the mode's cap).
    pub horizon: f64,
    /// Scheduling decisions summed over every trial × spec of the entry.
    pub steps: u64,
    /// Wall-clock time of the whole entry, nanoseconds.
    pub wall_ns: u64,
    /// `steps / (wall_ns / 1e9)`.
    pub steps_per_sec: f64,
    /// Fraction of requests served from the result cache — only the
    /// `serve` entry measures this (`None` elsewhere, omitted from JSON).
    /// An additive `bas-bench/v1` field: absent keys read as "not
    /// measured", so older reports stay valid.
    pub cache_hit_rate: Option<f64>,
    /// Fraction of the post-restart submissions answered from the on-disk
    /// result store (so 1.0 means a warm restart recomputed nothing) —
    /// only the `serve` entry measures this. Additive like
    /// `cache_hit_rate`.
    pub restart_hit_rate: Option<f64>,
    /// Repeat statistics when the entry was measured more than once
    /// (`bas bench --repeat N`): additive fields, omitted from JSON for
    /// single-shot runs so older reports stay byte-stable.
    pub repeat: Option<RepeatStats>,
}

/// Wall-time statistics over `--repeat N` measurements of one entry.
/// `steps` is asserted identical across repeats (the engine is
/// deterministic), so only the wall time varies.
#[derive(Debug, Clone, PartialEq)]
pub struct RepeatStats {
    /// Times the entry was measured.
    pub repeats: usize,
    /// Fastest measurement, nanoseconds (also what the entry's `wall_ns`
    /// and `steps_per_sec` report: min is the standard low-noise estimator
    /// for a deterministic workload).
    pub wall_ns_min: u64,
    /// Median measurement, nanoseconds (lower element for even `N`).
    pub wall_ns_median: u64,
}

/// A full bench report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// UTC date the report was taken (`YYYY-MM-DD`).
    pub created_utc: String,
    /// Seconds since the Unix epoch at report time.
    pub created_unix: u64,
    /// Git revision of the working tree, best effort.
    pub git_rev: String,
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// Measured entries, in suite order.
    pub suite: Vec<BenchEntry>,
}

impl BenchReport {
    /// Serialize as `bas-bench/v1` JSON.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
        let _ = writeln!(out, "  \"created_utc\": {},", json_string(&self.created_utc));
        let _ = writeln!(out, "  \"created_unix\": {},", self.created_unix);
        let _ = writeln!(out, "  \"git_rev\": {},", json_string(&self.git_rev));
        let _ = writeln!(out, "  \"mode\": {},", json_string(&self.mode));
        out.push_str("  \"suite\": [");
        for (i, e) in self.suite.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"scenario\": {}, \"pes\": {}, \"specs\": {}, \"trials\": {}, \
                 \"horizon\": {}, \"steps\": {}, \"wall_ns\": {}, \"steps_per_sec\": {:.1}",
                json_string(&e.scenario),
                e.pes,
                e.specs,
                e.trials,
                e.horizon,
                e.steps,
                e.wall_ns,
                e.steps_per_sec
            );
            if let Some(rate) = e.cache_hit_rate {
                let _ = write!(out, ", \"cache_hit_rate\": {rate:.3}");
            }
            if let Some(rate) = e.restart_hit_rate {
                let _ = write!(out, ", \"restart_hit_rate\": {rate:.3}");
            }
            if let Some(r) = &e.repeat {
                let _ = write!(
                    out,
                    ", \"repeats\": {}, \"wall_ns_min\": {}, \"wall_ns_median\": {}",
                    r.repeats, r.wall_ns_min, r.wall_ns_median
                );
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Render the human-readable table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "bas bench — {} mode, {} entries, rev {} ({})",
            self.mode,
            self.suite.len(),
            self.git_rev,
            self.created_utc
        );
        let _ = writeln!(out, "steps = scheduling decisions; trials run sequentially\n");
        let mut table = TextTable::new(&[
            "Scenario",
            "PEs",
            "Specs",
            "Trials",
            "Steps",
            "Wall (ms)",
            "Steps/s",
            "Hit rate",
        ]);
        for e in &self.suite {
            table.row(&[
                e.scenario.clone(),
                e.pes.to_string(),
                e.specs.to_string(),
                e.trials.to_string(),
                e.steps.to_string(),
                format!("{:.1}", e.wall_ns as f64 / 1e6),
                format!("{:.0}", e.steps_per_sec),
                e.cache_hit_rate.map_or_else(|| "-".to_string(), |r| format!("{r:.2}")),
            ]);
        }
        let _ = write!(out, "{}", table.render());
        out
    }
}

/// Run `bas bench` with parsed flags. Recognized: `--quick` (pin the quick
/// budget), `--format text|json`, `--out FILE`, `--scenarios DIR` (where
/// the suite's scenario files live, default `scenarios`), `--repeat N`
/// (measure each entry N times; `wall_ns` reports the min and the entry
/// grows additive `repeats`/`wall_ns_min`/`wall_ns_median` fields), and
/// `--only LIST` (comma-separated entry names to run — suite scenario
/// stems plus `portfolio` and `serve`).
pub fn run(args: &Args) -> Result<(), CliError> {
    let mut quick = false;
    let mut json = false;
    let mut out_path: Option<&str> = None;
    let mut dir = "scenarios";
    let mut repeat = 1usize;
    let mut only: Option<Vec<String>> = None;
    for (key, value) in &args.flags {
        match (key.as_str(), value.as_str()) {
            ("quick", _) => quick = true,
            ("format", "text") => json = false,
            ("format", "json") => json = true,
            ("format", other) => {
                return Err(CliError::Usage(format!(
                    "`bas bench --format` must be text|json, got {other:?}"
                )));
            }
            ("out", _) => out_path = Some(value),
            ("scenarios", _) => dir = value,
            ("repeat", n) => {
                repeat = n.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    CliError::Usage(format!("`bas bench --repeat` needs a count >= 1, got {n:?}"))
                })?;
            }
            ("only", list) => {
                let names: Vec<String> = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                if names.is_empty() {
                    return Err(CliError::Usage(
                        "`bas bench --only` needs a comma-separated entry list".to_string(),
                    ));
                }
                for name in &names {
                    let known = SUITE_SCENARIOS.iter().any(|s| s.name == name)
                        || name == "portfolio"
                        || name == "serve";
                    if !known {
                        return Err(CliError::Usage(format!(
                            "`bas bench --only`: unknown entry {name:?}"
                        )));
                    }
                }
                only = Some(names);
            }
            (key, _) => {
                return Err(CliError::Usage(format!("`bas bench` takes no --{key} flag")));
            }
        }
    }
    let report = run_suite_filtered(Path::new(dir), quick, repeat, only.as_deref())
        .map_err(CliError::Runtime)?;
    let payload = if json { report.to_json() } else { report.render_text() };
    match out_path {
        Some(path) => std::fs::write(path, &payload)
            .map_err(|e| CliError::Runtime(format!("writing {path}: {e}")))?,
        None => print!("{payload}"),
    }
    Ok(())
}

/// Measure the whole pinned suite.
pub fn run_suite(dir: &Path, quick: bool) -> Result<BenchReport, String> {
    run_suite_filtered(dir, quick, 1, None)
}

/// Measure the suite, repeating each entry `repeat` times (reporting the
/// min wall time) and — when `only` is given — running just the named
/// entries. `run_suite` is the unfiltered single-shot wrapper.
pub fn run_suite_filtered(
    dir: &Path,
    quick: bool,
    repeat: usize,
    only: Option<&[String]>,
) -> Result<BenchReport, String> {
    assert!(repeat >= 1, "repeat count must be at least 1");
    let wanted = |name: &str| only.is_none_or(|names| names.iter().any(|n| n == name));
    let mut suite = Vec::new();
    for entry in &SUITE_SCENARIOS {
        if !wanted(entry.name) {
            continue;
        }
        let path = dir.join(format!("{}.toml", entry.name));
        let scenario = Scenario::load(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let (trials, horizon) = if quick { entry.quick } else { entry.full };
        for pes in SUITE_PES {
            suite.push(repeated(repeat, || bench_entry(&scenario, pes, trials, horizon))?);
        }
    }
    if wanted("portfolio") {
        suite.push(repeated(repeat, || portfolio_entry(dir, quick))?);
    }
    if wanted("serve") {
        suite.push(repeated(repeat, || serve_entry(dir, quick))?);
    }
    let created_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    Ok(BenchReport {
        created_utc: utc_date(created_unix),
        created_unix,
        git_rev: git_rev(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        suite,
    })
}

/// Measure one entry `repeat` times. Steps must come out identical on
/// every run (the engine is deterministic — a divergence is a bug worth
/// failing loudly on); wall times are folded to min / median, and the
/// entry's headline `wall_ns` / `steps_per_sec` switch to the min.
fn repeated(
    repeat: usize,
    mut measure: impl FnMut() -> Result<BenchEntry, String>,
) -> Result<BenchEntry, String> {
    let mut entry = measure()?;
    if repeat == 1 {
        return Ok(entry);
    }
    let mut walls = vec![entry.wall_ns];
    for _ in 1..repeat {
        let again = measure()?;
        if again.steps != entry.steps {
            return Err(format!(
                "{}[{}pe]: non-deterministic steps across repeats ({} vs {})",
                entry.scenario, entry.pes, entry.steps, again.steps
            ));
        }
        walls.push(again.wall_ns);
    }
    walls.sort_unstable();
    let min = walls[0];
    let median = walls[(walls.len() - 1) / 2];
    entry.wall_ns = min;
    entry.steps_per_sec = entry.steps as f64 / (min as f64 / 1e9);
    entry.repeat = Some(RepeatStats { repeats: repeat, wall_ns_min: min, wall_ns_median: median });
    Ok(entry)
}

/// Measure one scenario × platform-width entry: every trial × spec runs
/// sequentially through the sweep's exact replay path, and the entry's
/// steps are the summed scheduling decisions.
fn bench_entry(
    scenario: &Scenario,
    pes: usize,
    trials: usize,
    horizon: f64,
) -> Result<BenchEntry, String> {
    let mut sc = scenario.clone();
    sc.pes = pes;
    // Per-PE preset lists are tied to the file's own width; benching other
    // widths replicates the shared preset instead.
    if sc.processors.len() != pes {
        sc.processors = Vec::new();
    }
    sc.trials = trials;
    sc.horizon = horizon;
    sc.validate().map_err(|e| format!("{}[{}pe]: {e}", sc.name, pes))?;
    let fail =
        |stage: &str, e: &dyn std::fmt::Display| format!("{}[{pes}pe] {stage}: {e}", sc.name);
    let platform = sc.build_platform().map_err(|e| fail("platform", &e))?;
    let specs = sc.parsed_specs().map_err(|e| fail("specs", &e))?;
    let mut steps = 0u64;
    let start = Instant::now();
    for trial in 0..sc.trials {
        let seed = Sweep::seed_for(sc.seed, trial);
        let set = sc.trial_set(seed).map_err(|e| fail("workload", &e))?;
        for (label, spec) in &specs {
            let mut cell = sc.build_battery(seed);
            let mut experiment = sc.trial_experiment(&set, *spec, seed, &platform);
            if let Some(cell) = cell.as_mut() {
                experiment = experiment.battery(cell.as_mut());
            }
            let out = experiment.run().map_err(|e| fail(&format!("{label} (seed {seed})"), &e))?;
            steps += out.metrics.decisions;
        }
    }
    let wall_ns = start.elapsed().as_nanos().max(1) as u64;
    Ok(BenchEntry {
        scenario: sc.name.clone(),
        pes,
        specs: specs.len(),
        trials: sc.trials,
        horizon: sc.horizon,
        steps,
        wall_ns,
        steps_per_sec: steps as f64 / (wall_ns as f64 / 1e9),
        cache_hit_rate: None,
        restart_hit_rate: None,
        repeat: None,
    })
}

/// `(trials, horizon-seconds)` budgets of the portfolio entry. The
/// portfolio scenario is unit-scale (instances release every few thousand
/// time units), so like `mpsoc` it needs a long horizon to measure real
/// work — sized, like every entry, to take ≥ ~100 ms of wall time.
const PORTFOLIO_QUICK: Budget = (16, 30_000.0);
const PORTFOLIO_FULL: Budget = (32, 100_000.0);

/// Measure the portfolio path: the checked-in `portfolio` scenario's whole
/// spec expansion (the full 40-spec grammar) raced sequentially through the
/// same replay path as the sweep entries, with misses counted rather than
/// fatal — exactly what `bas portfolio` executes per trial × spec. Steps
/// are scheduling decisions, like every simulation entry.
fn portfolio_entry(dir: &Path, quick: bool) -> Result<BenchEntry, String> {
    use bas_sim::DeadlineMode;
    let path = dir.join("portfolio.toml");
    let mut sc = Scenario::load(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let (trials, horizon) = if quick { PORTFOLIO_QUICK } else { PORTFOLIO_FULL };
    sc.trials = trials;
    sc.horizon = horizon;
    sc.validate().map_err(|e| format!("{}: {e}", sc.name))?;
    let fail = |stage: &str, e: &dyn std::fmt::Display| format!("{} {stage}: {e}", sc.name);
    let platform = sc.build_platform().map_err(|e| fail("platform", &e))?;
    let specs = expand_spec_patterns(&sc.specs).map_err(|e| fail("specs", &e))?;
    let mut steps = 0u64;
    let start = Instant::now();
    for trial in 0..sc.trials {
        let seed = Sweep::seed_for(sc.seed, trial);
        let set = sc.trial_set(seed).map_err(|e| fail("workload", &e))?;
        for (label, spec) in &specs {
            let mut cell = sc.build_battery(seed);
            let mut experiment = sc
                .trial_experiment(&set, *spec, seed, &platform)
                .deadline_mode(DeadlineMode::DropAndCount);
            if let Some(cell) = cell.as_mut() {
                experiment = experiment.battery(cell.as_mut());
            }
            let out = experiment.run().map_err(|e| fail(&format!("{label} (seed {seed})"), &e))?;
            steps += out.metrics.decisions;
        }
    }
    let wall_ns = start.elapsed().as_nanos().max(1) as u64;
    Ok(BenchEntry {
        scenario: sc.name.clone(),
        pes: sc.pes,
        specs: specs.len(),
        trials: sc.trials,
        horizon: sc.horizon,
        steps,
        wall_ns,
        steps_per_sec: steps as f64 / (wall_ns as f64 / 1e9),
        cache_hit_rate: None,
        restart_hit_rate: None,
        repeat: None,
    })
}

/// Submissions the serve entry's cold phase makes (each a distinct seed,
/// so each is a distinct digest and a real run).
const SERVE_COLD: (usize, usize) = (200, 500); // (quick, full)
/// Warm passes over the same submissions: every request a cache hit.
const SERVE_WARM_FACTOR: usize = 3;
/// Concurrent client threads driving the daemon.
const SERVE_CLIENTS: usize = 4;

/// Measure the `bas serve` daemon end to end: an in-process server (2
/// workers, [`crate::serve::CliService`] backend, a temp `--state-dir`
/// store) takes `cold` distinct smoke-scenario submissions over real TCP
/// from [`SERVE_CLIENTS`] client threads, drains, takes
/// [`SERVE_WARM_FACTOR`] warm passes of the same submissions — pure
/// memory-cache hits — then **restarts**: the daemon shuts down, a second
/// daemon opens the same state directory, and one more pass of the same
/// submissions must be answered entirely from the on-disk store with zero
/// recompute (`restart_hit_rate` 1.0). For this entry a *step* is one
/// HTTP request, so `steps_per_sec` reads as requests per second, and
/// `steps`, `cache_hit_rate` and `restart_hit_rate` are all deterministic
/// (the perf gate pins them like any other entry).
fn serve_entry(dir: &Path, quick: bool) -> Result<BenchEntry, String> {
    use bas_serve::{ServeConfig, Server};
    use std::io::{Read as _, Write as _};
    use std::net::SocketAddr;
    use std::sync::atomic::{AtomicUsize, Ordering};

    let path = dir.join("smoke.toml");
    let base = Scenario::load(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let cold = if quick { SERVE_COLD.0 } else { SERVE_COLD.1 };
    let specs = base.specs.len();
    let horizon = base.horizon;
    let bodies: Vec<String> = (0..cold)
        .map(|i| {
            let mut sc = base.clone();
            sc.seed = 1_000 + i as u64;
            sc.to_toml()
        })
        .collect();

    // A fresh per-process store: stale blobs from an earlier bench would
    // turn cold submissions into disk hits and void the measurement.
    let state_dir = std::env::temp_dir().join(format!("bas-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: cold + 8,
        cache_capacity: cold + 8,
        state_dir: Some(state_dir.clone()),
        quiet: true,
        ..ServeConfig::default()
    };

    // Round-robin the bodies across SERVE_CLIENTS threads; every response
    // must be 2xx or the measurement is void.
    let submit_pass = |addr: SocketAddr, bodies: &[String]| -> Result<(), String> {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let threads: Vec<_> = (0..SERVE_CLIENTS)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || -> Result<(), String> {
                        loop {
                            let ix = next.fetch_add(1, Ordering::Relaxed);
                            let Some(body) = bodies.get(ix) else { return Ok(()) };
                            let mut stream = std::net::TcpStream::connect(addr)
                                .map_err(|e| format!("serve bench: connect: {e}"))?;
                            let request = format!(
                                "POST /v1/jobs HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                                body.len()
                            );
                            stream
                                .write_all(request.as_bytes())
                                .map_err(|e| format!("serve bench: send: {e}"))?;
                            let mut response = Vec::new();
                            stream
                                .read_to_end(&mut response)
                                .map_err(|e| format!("serve bench: read: {e}"))?;
                            if !response.starts_with(b"HTTP/1.1 2") {
                                let head = String::from_utf8_lossy(&response);
                                let head = head.lines().next().unwrap_or("<empty>").to_string();
                                return Err(format!("serve bench: submission rejected: {head}"));
                            }
                        }
                    })
                })
                .collect();
            threads.into_iter().try_for_each(|t| {
                t.join().map_err(|_| "serve bench: client panicked".to_string())?
            })
        })
    };

    let server = Server::bind(config.clone(), std::sync::Arc::new(crate::serve::CliService))
        .map_err(|e| format!("serve bench: bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| format!("serve bench: {e}"))?;
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    let start = Instant::now();
    submit_pass(addr, &bodies)?;
    while !handle.is_idle() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    for _ in 0..SERVE_WARM_FACTOR {
        submit_pass(addr, &bodies)?;
    }

    // Restart: drain the daemon, reopen the same store in a fresh one, and
    // resubmit everything once. The journal replay and the `cold` disk
    // hits land inside the measured wall time — they are the cost the
    // durability buys, so the entry prices them.
    handle.shutdown();
    server_thread
        .join()
        .map_err(|_| "serve bench: server panicked".to_string())?
        .map_err(|e| format!("serve bench: {e}"))?;
    let warm_stats = handle.stats();

    let server = Server::bind(config, std::sync::Arc::new(crate::serve::CliService))
        .map_err(|e| format!("serve bench: rebind: {e}"))?;
    let addr = server.local_addr().map_err(|e| format!("serve bench: {e}"))?;
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());
    submit_pass(addr, &bodies)?;
    let wall_ns = start.elapsed().as_nanos().max(1) as u64;

    handle.shutdown();
    server_thread
        .join()
        .map_err(|_| "serve bench: restarted server panicked".to_string())?
        .map_err(|e| format!("serve bench: {e}"))?;
    let restart_stats = handle.stats();
    let _ = std::fs::remove_dir_all(&state_dir);

    let requests = (cold * (2 + SERVE_WARM_FACTOR)) as u64;
    let warm_requests = (cold * (1 + SERVE_WARM_FACTOR)) as u64;
    if warm_stats.executed != cold as u64 || warm_stats.submitted != warm_requests {
        return Err(format!(
            "serve bench: expected {cold} runs / {warm_requests} submissions, \
             measured {warm_stats:?}"
        ));
    }
    if restart_stats.executed != 0 || restart_stats.cache_hits != cold as u64 {
        return Err(format!(
            "serve bench: restart pass must be pure store hits, measured {restart_stats:?}"
        ));
    }
    Ok(BenchEntry {
        scenario: "serve".to_string(),
        pes: 1,
        specs,
        trials: cold,
        horizon,
        steps: requests,
        wall_ns,
        steps_per_sec: requests as f64 / (wall_ns as f64 / 1e9),
        cache_hit_rate: Some(warm_stats.cache_hits as f64 / warm_stats.submitted as f64),
        restart_hit_rate: Some(restart_stats.cache_hits as f64 / restart_stats.submitted as f64),
        repeat: None,
    })
}

/// Best-effort revision stamp: `$GITHUB_SHA` (CI), else
/// `git rev-parse --short HEAD`, else `"unknown"`.
fn git_rev() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha.chars().take(12).collect();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `YYYY-MM-DD` (UTC) from Unix seconds — Howard Hinnant's civil-from-days
/// algorithm, so the CLI stays dependency-free.
fn utc_date(unix: u64) -> String {
    let days = (unix / 86400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utc_date_matches_known_fixtures() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(86_400), "1970-01-02");
        // 2000-02-29 00:00:00 UTC (leap day).
        assert_eq!(utc_date(951_782_400), "2000-02-29");
        // 2026-07-27 12:00:00 UTC.
        assert_eq!(utc_date(1_785_153_600), "2026-07-27");
    }

    #[test]
    fn json_schema_shape_is_stable() {
        let report = BenchReport {
            created_utc: "2026-07-27".to_string(),
            created_unix: 1_785_153_600,
            git_rev: "abc1234".to_string(),
            mode: "quick".to_string(),
            suite: vec![
                BenchEntry {
                    scenario: "smoke".to_string(),
                    pes: 1,
                    specs: 2,
                    trials: 1,
                    horizon: 200.0,
                    steps: 1000,
                    wall_ns: 500_000_000,
                    steps_per_sec: 2000.0,
                    cache_hit_rate: None,
                    restart_hit_rate: None,
                    repeat: None,
                },
                BenchEntry {
                    scenario: "serve".to_string(),
                    pes: 1,
                    specs: 2,
                    trials: 200,
                    horizon: 200.0,
                    steps: 800,
                    wall_ns: 100_000_000,
                    steps_per_sec: 8000.0,
                    cache_hit_rate: Some(0.75),
                    restart_hit_rate: Some(1.0),
                    repeat: Some(RepeatStats {
                        repeats: 3,
                        wall_ns_min: 100_000_000,
                        wall_ns_median: 120_000_000,
                    }),
                },
            ],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bas-bench/v1\""), "{json}");
        for key in
            ["scenario", "pes", "specs", "trials", "horizon", "steps", "wall_ns", "steps_per_sec"]
        {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}: {json}");
        }
        assert!(json.contains("\"steps_per_sec\": 2000.0"), "{json}");
        // `cache_hit_rate` / `restart_hit_rate` are additive: present on
        // the serve entry only.
        assert_eq!(json.matches("\"cache_hit_rate\":").count(), 1, "{json}");
        assert!(json.contains("\"cache_hit_rate\": 0.750"), "{json}");
        assert_eq!(json.matches("\"restart_hit_rate\":").count(), 1, "{json}");
        assert!(json.contains("\"restart_hit_rate\": 1.000"), "{json}");
    }

    #[test]
    fn suite_is_the_pinned_cross_product() {
        // 6 scenarios × 2 widths, plus the portfolio and serve entries.
        assert_eq!(SUITE_SCENARIOS.len() * SUITE_PES.len(), 12);
        assert_eq!(SUITE_SCENARIOS.len() * SUITE_PES.len() + 2, 14, "portfolio + serve ride along");
    }
}
