//! The `bas bench` performance harness — the repo's recorded perf
//! trajectory.
//!
//! Runs a **pinned suite** of end-to-end scenarios (smoke, sweep, mpsoc,
//! battery-aware — each on 1 and 4 processing elements) through exactly the
//! sweep replay path (`Scenario::trial_set` / `trial_experiment` /
//! `build_battery`), measures wall time per entry and reports throughput as
//! **steps per second**, where a *step* is one scheduling decision (a
//! policy invocation at a scheduling point — the unit the paper bounds
//! per-hyperperiod recomputation cost in, and the unit related work reports
//! runtime overhead in).
//!
//! Trials run **sequentially on one thread** so the numbers measure engine
//! throughput, not the machine's core count.
//!
//! ## The `bas-bench/v1` JSON schema
//!
//! ```json
//! {
//!   "schema": "bas-bench/v1",
//!   "created_utc": "2026-07-27",
//!   "created_unix": 1785168000,
//!   "git_rev": "53a6a03",
//!   "mode": "quick",
//!   "suite": [
//!     {"scenario": "smoke", "pes": 1, "specs": 2, "trials": 1,
//!      "horizon": 200.0, "steps": 12345, "wall_ns": 6789000,
//!      "steps_per_sec": 1818000.0}
//!   ]
//! }
//! ```
//!
//! `steps_per_sec` is `steps / (wall_ns / 1e9)`. The date is derived from
//! the system clock (UTC); `git_rev` comes from `$GITHUB_SHA` or
//! `git rev-parse --short HEAD`, falling back to `"unknown"`.
//!
//! CI's `perf-gate` job runs `bas bench --quick --format json` and compares
//! each entry's `steps_per_sec` against the checked-in
//! `BENCH_baseline.json`; full-mode snapshots accumulate as
//! `BENCH_<date>.json` files — the perf trajectory.

use crate::args::Args;
use crate::CliError;
use bas_core::report::json_string;
use bas_core::{Scenario, Sweep, TextTable};
use std::path::Path;
use std::time::Instant;

/// Identifier of the bench report schema emitted by this version.
pub const SCHEMA: &str = "bas-bench/v1";

/// A `(trials, horizon-seconds)` measurement budget.
type Budget = (usize, f64);

/// One pinned suite scenario: the file stem under the scenarios directory
/// and its quick/full budgets. Budgets are pinned **per scenario** because
/// the files' own horizons measure wildly different amounts of work (the
/// unit-scale scenarios release instances every few thousand time units;
/// the paper-scale ones every few seconds); each entry is sized to do
/// enough work that its steps-per-second is a measurement, not noise.
/// Every entry must stay miss-free — a bench that drops deadlines is
/// measuring a broken configuration.
pub struct SuiteScenario {
    /// Scenario file stem under the scenarios directory.
    pub name: &'static str,
    /// `--quick` budget (CI's perf gate).
    pub quick: Budget,
    /// Full budget (the recorded `BENCH_<date>.json` trajectory).
    pub full: Budget,
}

/// The pinned suite, crossed with [`SUITE_PES`].
pub const SUITE_SCENARIOS: [SuiteScenario; 4] = [
    // Unit-scale, no battery, seconds-long instances: many short trials, so
    // this entry also measures the Sweep layer's per-trial setup.
    // Quick budgets are sized so every entry takes ≥ ~100 ms of wall time
    // even on a fast machine: the perf gate's per-entry threshold is only
    // meaningful when timer jitter is small against the measurement.
    SuiteScenario { name: "smoke", quick: (3200, 200.0), full: (3200, 200.0) },
    // Paper-scale lineup over the stochastic battery — the core workload.
    SuiteScenario { name: "sweep", quick: (2, 2000.0), full: (8, 10_000.0) },
    // Unit-scale lineup (incl. BAS-soc) over the KiBaM battery; each run is
    // battery-lifetime-bound, so the trial count carries the work.
    SuiteScenario { name: "mpsoc", quick: (96, 50_000.0), full: (128, 200_000.0) },
    // BAS-2 vs BAS-soc, paper scale, stochastic battery.
    SuiteScenario { name: "battery-aware", quick: (4, 2000.0), full: (8, 20_000.0) },
];

/// Platform widths every suite scenario is benchmarked on.
pub const SUITE_PES: [usize; 2] = [1, 4];

/// One measured suite entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Scenario name (file stem under `scenarios/`).
    pub scenario: String,
    /// Processing elements the run was pinned to.
    pub pes: usize,
    /// Specs in the scenario's lineup.
    pub specs: usize,
    /// Trials per spec actually run (the mode's pinned count).
    pub trials: usize,
    /// Simulated-time bound per trial, seconds (after the mode's cap).
    pub horizon: f64,
    /// Scheduling decisions summed over every trial × spec of the entry.
    pub steps: u64,
    /// Wall-clock time of the whole entry, nanoseconds.
    pub wall_ns: u64,
    /// `steps / (wall_ns / 1e9)`.
    pub steps_per_sec: f64,
}

/// A full bench report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// UTC date the report was taken (`YYYY-MM-DD`).
    pub created_utc: String,
    /// Seconds since the Unix epoch at report time.
    pub created_unix: u64,
    /// Git revision of the working tree, best effort.
    pub git_rev: String,
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// Measured entries, in suite order.
    pub suite: Vec<BenchEntry>,
}

impl BenchReport {
    /// Serialize as `bas-bench/v1` JSON.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
        let _ = writeln!(out, "  \"created_utc\": {},", json_string(&self.created_utc));
        let _ = writeln!(out, "  \"created_unix\": {},", self.created_unix);
        let _ = writeln!(out, "  \"git_rev\": {},", json_string(&self.git_rev));
        let _ = writeln!(out, "  \"mode\": {},", json_string(&self.mode));
        out.push_str("  \"suite\": [");
        for (i, e) in self.suite.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"scenario\": {}, \"pes\": {}, \"specs\": {}, \"trials\": {}, \
                 \"horizon\": {}, \"steps\": {}, \"wall_ns\": {}, \"steps_per_sec\": {:.1}}}",
                json_string(&e.scenario),
                e.pes,
                e.specs,
                e.trials,
                e.horizon,
                e.steps,
                e.wall_ns,
                e.steps_per_sec
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Render the human-readable table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "bas bench — {} mode, {} entries, rev {} ({})",
            self.mode,
            self.suite.len(),
            self.git_rev,
            self.created_utc
        );
        let _ = writeln!(out, "steps = scheduling decisions; trials run sequentially\n");
        let mut table = TextTable::new(&[
            "Scenario",
            "PEs",
            "Specs",
            "Trials",
            "Steps",
            "Wall (ms)",
            "Steps/s",
        ]);
        for e in &self.suite {
            table.row(&[
                e.scenario.clone(),
                e.pes.to_string(),
                e.specs.to_string(),
                e.trials.to_string(),
                e.steps.to_string(),
                format!("{:.1}", e.wall_ns as f64 / 1e6),
                format!("{:.0}", e.steps_per_sec),
            ]);
        }
        let _ = write!(out, "{}", table.render());
        out
    }
}

/// Run `bas bench` with parsed flags. Recognized: `--quick` (pin the quick
/// budget), `--format text|json`, `--out FILE`, `--scenarios DIR` (where
/// the suite's scenario files live, default `scenarios`).
pub fn run(args: &Args) -> Result<(), CliError> {
    let mut quick = false;
    let mut json = false;
    let mut out_path: Option<&str> = None;
    let mut dir = "scenarios";
    for (key, value) in &args.flags {
        match (key.as_str(), value.as_str()) {
            ("quick", _) => quick = true,
            ("format", "text") => json = false,
            ("format", "json") => json = true,
            ("format", other) => {
                return Err(CliError::Usage(format!(
                    "`bas bench --format` must be text|json, got {other:?}"
                )));
            }
            ("out", _) => out_path = Some(value),
            ("scenarios", _) => dir = value,
            (key, _) => {
                return Err(CliError::Usage(format!("`bas bench` takes no --{key} flag")));
            }
        }
    }
    let report = run_suite(Path::new(dir), quick).map_err(CliError::Runtime)?;
    let payload = if json { report.to_json() } else { report.render_text() };
    match out_path {
        Some(path) => std::fs::write(path, &payload)
            .map_err(|e| CliError::Runtime(format!("writing {path}: {e}")))?,
        None => print!("{payload}"),
    }
    Ok(())
}

/// Measure the whole pinned suite.
pub fn run_suite(dir: &Path, quick: bool) -> Result<BenchReport, String> {
    let mut suite = Vec::new();
    for entry in &SUITE_SCENARIOS {
        let path = dir.join(format!("{}.toml", entry.name));
        let scenario = Scenario::load(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let (trials, horizon) = if quick { entry.quick } else { entry.full };
        for pes in SUITE_PES {
            suite.push(bench_entry(&scenario, pes, trials, horizon)?);
        }
    }
    let created_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    Ok(BenchReport {
        created_utc: utc_date(created_unix),
        created_unix,
        git_rev: git_rev(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        suite,
    })
}

/// Measure one scenario × platform-width entry: every trial × spec runs
/// sequentially through the sweep's exact replay path, and the entry's
/// steps are the summed scheduling decisions.
fn bench_entry(
    scenario: &Scenario,
    pes: usize,
    trials: usize,
    horizon: f64,
) -> Result<BenchEntry, String> {
    let mut sc = scenario.clone();
    sc.pes = pes;
    // Per-PE preset lists are tied to the file's own width; benching other
    // widths replicates the shared preset instead.
    if sc.processors.len() != pes {
        sc.processors = Vec::new();
    }
    sc.trials = trials;
    sc.horizon = horizon;
    sc.validate().map_err(|e| format!("{}[{}pe]: {e}", sc.name, pes))?;
    let fail =
        |stage: &str, e: &dyn std::fmt::Display| format!("{}[{pes}pe] {stage}: {e}", sc.name);
    let platform = sc.build_platform().map_err(|e| fail("platform", &e))?;
    let specs = sc.parsed_specs().map_err(|e| fail("specs", &e))?;
    let mut steps = 0u64;
    let start = Instant::now();
    for trial in 0..sc.trials {
        let seed = Sweep::seed_for(sc.seed, trial);
        let set = sc.trial_set(seed).map_err(|e| fail("workload", &e))?;
        for (label, spec) in &specs {
            let mut cell = sc.build_battery(seed);
            let mut experiment = sc.trial_experiment(&set, *spec, seed, &platform);
            if let Some(cell) = cell.as_mut() {
                experiment = experiment.battery(cell.as_mut());
            }
            let out = experiment.run().map_err(|e| fail(&format!("{label} (seed {seed})"), &e))?;
            steps += out.metrics.decisions;
        }
    }
    let wall_ns = start.elapsed().as_nanos().max(1) as u64;
    Ok(BenchEntry {
        scenario: sc.name.clone(),
        pes,
        specs: specs.len(),
        trials: sc.trials,
        horizon: sc.horizon,
        steps,
        wall_ns,
        steps_per_sec: steps as f64 / (wall_ns as f64 / 1e9),
    })
}

/// Best-effort revision stamp: `$GITHUB_SHA` (CI), else
/// `git rev-parse --short HEAD`, else `"unknown"`.
fn git_rev() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha.chars().take(12).collect();
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `YYYY-MM-DD` (UTC) from Unix seconds — Howard Hinnant's civil-from-days
/// algorithm, so the CLI stays dependency-free.
fn utc_date(unix: u64) -> String {
    let days = (unix / 86400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utc_date_matches_known_fixtures() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(86_400), "1970-01-02");
        // 2000-02-29 00:00:00 UTC (leap day).
        assert_eq!(utc_date(951_782_400), "2000-02-29");
        // 2026-07-27 12:00:00 UTC.
        assert_eq!(utc_date(1_785_153_600), "2026-07-27");
    }

    #[test]
    fn json_schema_shape_is_stable() {
        let report = BenchReport {
            created_utc: "2026-07-27".to_string(),
            created_unix: 1_785_153_600,
            git_rev: "abc1234".to_string(),
            mode: "quick".to_string(),
            suite: vec![BenchEntry {
                scenario: "smoke".to_string(),
                pes: 1,
                specs: 2,
                trials: 1,
                horizon: 200.0,
                steps: 1000,
                wall_ns: 500_000_000,
                steps_per_sec: 2000.0,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bas-bench/v1\""), "{json}");
        for key in
            ["scenario", "pes", "specs", "trials", "horizon", "steps", "wall_ns", "steps_per_sec"]
        {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}: {json}");
        }
        assert!(json.contains("\"steps_per_sec\": 2000.0"), "{json}");
    }

    #[test]
    fn suite_is_the_pinned_cross_product() {
        assert_eq!(SUITE_SCENARIOS.len() * SUITE_PES.len(), 8);
    }
}
