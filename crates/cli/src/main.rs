//! The `bas` binary — see [`bas_cli`] for the CLI surface.

fn main() {
    std::process::exit(bas_cli::run(std::env::args().skip(1).collect()));
}
