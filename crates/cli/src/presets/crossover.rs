//! Utilization sweep — *where the battery-aware gains appear*.
//!
//! The reproduction's most consequential finding (EXPERIMENTS.md): on the
//! paper's 3-OPP grid, how much pUBS ordering helps depends on whether the
//! governor has frequency headroom above the lowest operating point. This
//! preset sweeps utilization and prints the lifetime of each scheme, showing
//!
//! * the no-DVS baseline degrading with load,
//! * laEDF pinned at the frequency floor until high utilization (so
//!   BAS-1/BAS-2 ≈ laEDF there),
//! * the BAS-over-governor gap opening as the operating point lifts off the
//!   floor (ccEDF pairs: visible across the sweep; laEDF pairs: at U ≳ 0.85).
//!
//! Knobs: `trials`, `seed`, `threads`.

use crate::outln;
use bas_battery::StochasticKibam;
use bas_core::workloads::paper_scale_config;
use bas_core::TextTable;
use bas_core::{Report, SamplerKind, Scenario, SchedulerSpec, Sweep};
use bas_cpu::presets::paper_processor;
use bas_cpu::FreqPolicy;

/// Run the crossover scenario.
pub fn run(sc: &Scenario) -> Result<(String, Report), String> {
    let mut out = String::new();
    let trials = sc.trials;
    let base_seed = sc.seed;
    let threads = sc.threads;

    let schemes: Vec<(&str, SchedulerSpec)> = vec![
        ("EDF", SchedulerSpec::edf()),
        ("ccEDF", SchedulerSpec::cc_edf()),
        ("BAS-2cc", SchedulerSpec::bas2cc()),
        ("laEDF", SchedulerSpec::la_edf()),
        ("BAS-2", SchedulerSpec::bas2()),
    ];

    outln!(out, "Utilization sweep — battery lifetime (min), {trials} trials per cell\n");
    let mut table = TextTable::new(&[
        "U",
        "EDF",
        "ccEDF",
        "BAS-2cc",
        "laEDF",
        "BAS-2 (laEDF)",
        "BAS-2cc vs ccEDF",
        "BAS-2 vs laEDF",
    ]);
    let mut report = Report::new(&sc.name, sc.kind.name(), base_seed, trials);
    let processor = paper_processor();
    for util in [0.5, 0.6, 0.7, 0.8, 0.9] {
        // One sweep per utilization point; shift the base seed so points use
        // unrelated trial streams.
        let sweep = Sweep::over_seeds(base_seed.wrapping_add((util * 1000.0) as u64), trials)
            .specs(schemes.iter().map(|(n, s)| (*n, *s)))
            .workload(paper_scale_config(4, util))
            .processor(&processor)
            .horizon(86_400.0)
            .threads(threads)
            .freq_policy(FreqPolicy::RoundUp)
            .sampler(SamplerKind::Persistent)
            .battery(|seed| Box::new(StochasticKibam::paper_cell(seed ^ 5)))
            .run()
            .map_err(|e| format!("U={util}: {e}"))?;
        let mean =
            |label: &str| sweep.spec(label).unwrap().lifetime_min.expect("battery sweep").mean;
        table.row(&[
            format!("{util:.1}"),
            format!("{:.0}", mean("EDF")),
            format!("{:.0}", mean("ccEDF")),
            format!("{:.0}", mean("BAS-2cc")),
            format!("{:.0}", mean("laEDF")),
            format!("{:.0}", mean("BAS-2")),
            format!("{:+.1}%", (mean("BAS-2cc") / mean("ccEDF") - 1.0) * 100.0),
            format!("{:+.1}%", (mean("BAS-2") / mean("laEDF") - 1.0) * 100.0),
        ]);
        let row = report.row(format!("U={util:.1}"));
        for spec in &sweep.specs {
            row.summary(
                format!("lifetime_min/{}", spec.label),
                spec.lifetime_min.expect("battery sweep"),
            );
        }
    }
    outln!(out, "{}", table.render());
    outln!(out, "reading: the last two columns isolate the pUBS-ordering gain at constant");
    outln!(out, "governor. The gain needs BOTH frequency headroom above the lowest OPP");
    outln!(out, "(absent at low load, where the governor is floor-pinned) AND slack left");
    outln!(out, "to recover (absent near full load) — so it peaks at mid-high utilization,");
    outln!(out, "~0.7 for ccEDF pairs. laEDF defers so aggressively that it stays floor-");
    outln!(out, "pinned until U ≳ 0.8.");
    Ok((out, report))
}
