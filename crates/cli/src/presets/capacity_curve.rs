//! §5's load-vs-delivered-capacity curve.
//!
//! "The maximum capacity of the battery is defined as the charge delivered by
//! it under infinitesimal load. Similarly the charge in the available well is
//! defined as the charge that would be delivered if we were to draw infinite
//! current. We can evaluate these values by plotting a load vs delivered
//! capacity curve for the battery and extrapolating the ends."
//!
//! Sweeps constant discharge currents over three decades for every battery
//! model and prints the curve plus the two end-point extrapolations; for the
//! paper's AAA NiMH cell the low end extrapolates to the 2000 mAh maximum
//! capacity and the high end to the available well (= c · capacity for the
//! KiBaM family).
//!
//! Knobs: `points`, `lo`, `hi`.

use crate::outln;
use bas_battery::curve::{capacity_curve, extrapolate_ends, log_spaced_currents};
use bas_battery::units::coulombs_to_mah;
use bas_battery::{BatteryModel, DiffusionModel, IdealModel, Kibam, PeukertModel, StochasticKibam};
use bas_core::TextTable;
use bas_core::{Report, Scenario};

/// Run the capacity-curve scenario.
pub fn run(sc: &Scenario) -> Result<(String, Report), String> {
    let mut out = String::new();
    let points = sc.points;
    let lo = sc.lo;
    let hi = sc.hi;

    outln!(out, "Load vs delivered capacity — paper cell (1.2 V AAA NiMH, 2000 mAh max)\n");
    let currents = log_spaced_currents(lo, hi, points);

    let mut models: Vec<Box<dyn BatteryModel>> = vec![
        Box::new(Kibam::paper_cell()),
        Box::new(DiffusionModel::paper_cell()),
        Box::new(StochasticKibam::paper_cell(7)),
        Box::new(PeukertModel::paper_cell()),
        Box::new(IdealModel::paper_cell()),
    ];

    let mut table = TextTable::new(&[
        "load (A)",
        "KiBaM (mAh)",
        "diffusion (mAh)",
        "stochastic (mAh)",
        "Peukert (mAh)",
        "ideal (mAh)",
    ]);
    let mut curves = Vec::new();
    for model in models.iter_mut() {
        curves.push(capacity_curve(model.as_mut(), &currents));
    }
    for (i, &current) in currents.iter().enumerate() {
        let mut cells = vec![format!("{current:.3}")];
        for curve in &curves {
            cells.push(format!("{:.0}", coulombs_to_mah(curve[i].delivered)));
        }
        table.row(&cells);
    }
    outln!(out, "{}", table.render());

    let mut report = Report::new(&sc.name, sc.kind.name(), 0, 0);
    outln!(out, "end-point extrapolations (paper: max capacity 2000 mAh; nominal ≈ 1600 mAh):");
    let names = ["KiBaM", "diffusion", "stochastic", "Peukert", "ideal"];
    for (name, curve) in names.iter().zip(&curves) {
        let (max_cap, available) = extrapolate_ends(curve).expect("curve has >= 2 points");
        outln!(
            out,
            "  {name:10}: low-load end -> {:6.0} mAh (max capacity), high-load end -> {:6.0} mAh",
            coulombs_to_mah(max_cap),
            coulombs_to_mah(available)
        );
        let row = report.row(*name);
        for (point, &current) in curve.iter().zip(&currents) {
            row.value(format!("delivered_mah@{current:.3}A"), coulombs_to_mah(point.delivered));
        }
        row.value("max_capacity_mah", coulombs_to_mah(max_cap))
            .value("available_well_mah", coulombs_to_mah(available));
    }
    outln!(out, "\nKiBaM's high-load end approaches the available well (c = 0.625 -> 1250 mAh);");
    outln!(out, "the ideal bucket is flat by construction; Peukert has no flat high end");
    outln!(out, "(pure power law) — exactly why physical models replaced it (§3).");
    Ok((out, report))
}
