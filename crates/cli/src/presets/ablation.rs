//! Design-choice ablations for the choices DESIGN.md §5 calls out.
//!
//! 1. **Frequency realization** — optimal two-point interpolation (\[4\])
//!    vs round-up quantization, measured as battery lifetime under ccEDF
//!    and BAS-2cc.
//! 2. **Xk estimator** — EMA history vs static mean fraction vs worst-case,
//!    and i.i.d. vs persistent actuals: the estimator only earns its keep
//!    when actuals are predictable.
//! 3. **Feasibility-check variant** — the cumulative prefix sum vs the
//!    paper's literal pseudocode (`sumWC` reset each iteration): the literal
//!    reading admits an out-of-order run that misses a deadline.
//! 4. **Processor current calibration (`Ceff`)** — the paper does not state
//!    its current scale; this sweep shows the *relative* Table-2 results are
//!    stable across a 4× band of `Ceff`.
//!
//! Ablations 1 and 4 are plain `Sweep`s with one knob varied; ablations 2
//! and 3 need scheduler pieces the [`bas_core::SchedulerSpec`] vocabulary
//! deliberately does not name (custom estimators, a broken feasibility
//! variant, a fixed-frequency governor), so they assemble the [`Simulation`]
//! directly — the escape hatch below the builder API.
//!
//! Knobs: `trials`, `seed`.

use crate::outln;
use bas_battery::StochasticKibam;
use bas_core::estimator::{EmaEstimator, MeanFraction, WorstCaseEstimate};
use bas_core::feasibility::FeasibilityVariant;
use bas_core::policy::BasPolicy;
use bas_core::priority::{Priority, Pubs};
use bas_core::workloads::paper_scale_config;
use bas_core::TextTable;
use bas_core::{parallel_map, Report, SamplerKind, Scenario, SchedulerSpec, Summary, Sweep};
use bas_cpu::presets::paper_processor;
use bas_cpu::{FreqPolicy, Processor};
use bas_dvs::CcEdf;
use bas_sim::{DeadlineMode, FrequencyGovernor, SimConfig, SimState, Simulation, WorstCase};
use bas_taskgraph::{PeriodicTaskGraph, TaskGraphBuilder, TaskSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn lifetime_minutes(
    trials: usize,
    processor: &Processor,
    spec: SchedulerSpec,
    freq: FreqPolicy,
    sampler: SamplerKind,
    base_seed: u64,
    max_time: f64,
) -> Summary {
    let report = Sweep::over_seeds(base_seed, trials)
        .spec(spec)
        .workload(paper_scale_config(4, 0.7))
        .processor(processor)
        .horizon(max_time)
        .freq_policy(freq)
        .sampler(sampler)
        .battery(|seed| Box::new(StochasticKibam::paper_cell(seed ^ 0xb)))
        .run()
        .unwrap_or_else(|e| panic!("{e}"));
    report.specs[0].lifetime_min.expect("battery sweep")
}

/// Run the ablation scenario.
pub fn run(sc: &Scenario) -> Result<(String, Report), String> {
    let mut out = String::new();
    let trials = sc.trials;
    let seed = sc.seed;
    let mut report = Report::new(&sc.name, sc.kind.name(), seed, trials);

    // ------------------------------------------------------------------
    outln!(out, "Ablation 1 — frequency realization (battery lifetime, minutes)\n");
    let paper_proc = paper_processor();
    let mut t = TextTable::new(&["scheduler", "interpolated (opt., [4])", "round-up"]);
    for (name, spec) in [("ccEDF", SchedulerSpec::cc_edf()), ("BAS-2cc", SchedulerSpec::bas2cc())] {
        let interp = lifetime_minutes(
            trials,
            &paper_proc,
            spec,
            FreqPolicy::Interpolate,
            SamplerKind::Persistent,
            seed,
            86_400.0,
        );
        let round = lifetime_minutes(
            trials,
            &paper_proc,
            spec,
            FreqPolicy::RoundUp,
            SamplerKind::Persistent,
            seed,
            86_400.0,
        );
        t.row(&[
            name.to_string(),
            format!("{:.0} ± {:.0}", interp.mean, interp.std),
            format!("{:.0} ± {:.0}", round.mean, round.std),
        ]);
        report
            .row(format!("freq/{name}"))
            .summary("lifetime_min/interp", interp)
            .summary("lifetime_min/roundup", round);
    }
    outln!(out, "{}", t.render());
    outln!(out, "interpolation dominates round-up (it realizes fref exactly instead of");
    outln!(out, "overshooting to the next OPP) — the claim of [4] the paper builds on.\n");

    // ------------------------------------------------------------------
    outln!(
        out,
        "Ablation 2 — Xk estimator × actual-computation model (BAS-2cc lifetime, minutes)\n"
    );
    let mut t = TextTable::new(&["estimator", "persistent actuals", "i.i.d. actuals"]);
    // The spec vocabulary wires an EMA pUBS; for the other estimators, run
    // the executor directly.
    for (label, which) in [("EMA history", 0usize), ("mean fraction (0.6)", 1), ("worst case", 2)] {
        let mut cells = vec![label.to_string()];
        let row_label = format!("estimator/{label}");
        let mut summaries: Vec<(String, Summary)> = Vec::new();
        for sampler_kind in [SamplerKind::Persistent, SamplerKind::IidUniform] {
            let results = parallel_map(trials, 0, |trial| {
                let s = seed.wrapping_add(trial as u64).wrapping_mul(0x517c_c1b7);
                let mut rng = StdRng::seed_from_u64(s);
                let set = paper_scale_config(4, 0.7).generate(&mut rng).expect("valid");
                let mut governor = CcEdf;
                let mut sampler = sampler_kind.build(s);
                let mut battery = StochasticKibam::paper_cell(s ^ 0xb);
                let mut cfg = SimConfig::new(paper_processor());
                cfg.record_trace = false;
                cfg.freq_policy = FreqPolicy::RoundUp;
                let run = |policy: &mut dyn bas_sim::TaskPolicy,
                           governor: &mut dyn FrequencyGovernor,
                           sampler: &mut dyn bas_sim::ActualSampler,
                           battery: &mut StochasticKibam| {
                    let mut sim =
                        Simulation::new(set.clone(), cfg.clone(), governor, policy, sampler)
                            .expect("feasible");
                    sim.mount_battery(battery);
                    sim.run_until(86_400.0).expect("no misses");
                    sim.finish().battery.expect("report").lifetime_minutes()
                };
                match which {
                    0 => {
                        let mut p = BasPolicy::all_released(Pubs::new(EmaEstimator::paper()));
                        run(&mut p, &mut governor, sampler.as_mut(), &mut battery)
                    }
                    1 => {
                        let mut p = BasPolicy::all_released(Pubs::new(MeanFraction::paper()));
                        run(&mut p, &mut governor, sampler.as_mut(), &mut battery)
                    }
                    _ => {
                        let mut p = BasPolicy::all_released(Pubs::new(WorstCaseEstimate));
                        run(&mut p, &mut governor, sampler.as_mut(), &mut battery)
                    }
                }
            });
            let s = Summary::of(&results);
            cells.push(format!("{:.0} ± {:.0}", s.mean, s.std));
            summaries.push((format!("lifetime_min/{sampler_kind}"), s));
        }
        t.row(&cells);
        report.rows.push(bas_core::ReportRow { label: row_label, summaries, trials: Vec::new() });
    }
    outln!(out, "{}", t.render());
    outln!(out, "the EMA estimator only beats the static mean when actuals are predictable");
    outln!(out, "across instances — the premise of the paper's history technique (§4.2).\n");

    // ------------------------------------------------------------------
    outln!(out, "Ablation 3 — feasibility-check variant (crafted tight set)\n");
    // Three single-node graphs: 4/D10, 4/D11, 4/D100 at a fixed fref = 0.8:
    // the cumulative check refuses to run T2 out of order; the literal
    // pseudocode admits it and a deadline is missed.
    struct FixedF(f64);
    impl FrequencyGovernor for FixedF {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn frequency(&mut self, _: &SimState) -> f64 {
            self.0
        }
    }
    /// Rank T2's node first to force the out-of-order attempt.
    struct T2First;
    impl Priority for T2First {
        fn name(&self) -> &'static str {
            "T2-first"
        }
        fn rank(
            &mut self,
            _: &SimState,
            candidates: &[bas_sim::TaskRef],
            _: f64,
            out: &mut Vec<bas_sim::TaskRef>,
        ) {
            out.clear();
            out.extend_from_slice(candidates);
            out.sort_by(|a, b| b.graph.cmp(&a.graph).then(a.node.cmp(&b.node)));
        }
    }
    let mut set = TaskSet::new();
    for (wc, d) in [(4u64, 10.0), (4, 11.0), (4, 100.0)] {
        let mut b = TaskGraphBuilder::new(format!("T{d}"));
        b.add_node("t", wc);
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), d).unwrap());
    }
    let mut t = TextTable::new(&["variant", "deadline misses (one hyperperiod-ish window)"]);
    for (label, variant) in [
        ("cumulative (intended)", FeasibilityVariant::Cumulative),
        ("paper literal (sumWC reset)", FeasibilityVariant::PaperLiteral),
    ] {
        let mut governor = FixedF(0.8);
        let mut policy = BasPolicy::all_released(T2First).with_feasibility_variant(variant);
        let mut sampler = WorstCase;
        let mut cfg = SimConfig::new(bas_cpu::presets::unit_processor());
        cfg.deadline_mode = DeadlineMode::DropAndCount;
        let mut sim = Simulation::new(set.clone(), cfg, &mut governor, &mut policy, &mut sampler)
            .expect("feasible at fmax");
        sim.run_until(100.0).expect("lenient mode");
        let result = sim.finish();
        t.row(&[label.to_string(), result.metrics.deadline_misses.to_string()]);
        report
            .row(format!("feasibility/{label}"))
            .value("deadline_misses", result.metrics.deadline_misses as f64);
        match variant {
            FeasibilityVariant::Cumulative => assert_eq!(
                result.metrics.deadline_misses, 0,
                "cumulative check must protect every deadline"
            ),
            FeasibilityVariant::PaperLiteral => assert!(
                result.metrics.deadline_misses > 0,
                "the literal pseudocode should admit an unsafe pick here"
            ),
        }
    }
    outln!(out, "{}", t.render());
    outln!(out, "the literal pseudocode (sumWC <- 0 inside the loop) under-counts earlier-");
    outln!(out, "deadline work and admits an unsafe out-of-order execution; the cumulative");
    outln!(out, "reading (our default) preserves the paper's no-deadline-violation claim.");

    // ------------------------------------------------------------------
    outln!(out, "\nAblation 4 — Ceff calibration sensitivity (lifetime ratios vs EDF)\n");
    // Scale the effective capacitance (hence every current) by 0.5x..2x and
    // show the scheme-vs-EDF lifetime ratios barely move: the paper's
    // unstated current calibration does not drive the comparisons.
    use bas_cpu::{OperatingPoint, OppTable, SupplyConfig};
    let mut t = TextTable::new(&["Ceff scale", "ccEDF/EDF", "BAS-2cc/EDF"]);
    for scale in [0.5, 1.0, 2.0] {
        let proc = Processor::new(
            OppTable::new(vec![
                OperatingPoint::new(0.5e9, 3.0),
                OperatingPoint::new(0.75e9, 4.0),
                OperatingPoint::new(1.0e9, 5.0),
            ])
            .expect("valid"),
            SupplyConfig {
                ceff: bas_cpu::presets::PAPER_CEFF * scale,
                efficiency: bas_cpu::presets::PAPER_EFFICIENCY,
                vbat: bas_cpu::presets::PAPER_VBAT,
                idle_current: bas_cpu::presets::PAPER_IDLE_CURRENT * scale,
            },
        )
        .expect("valid");
        let sweep = Sweep::over_seeds(seed.wrapping_mul(0x2ca5_9bbd), trials)
            .specs([
                ("EDF", SchedulerSpec::edf()),
                ("ccEDF", SchedulerSpec::cc_edf()),
                ("BAS-2cc", SchedulerSpec::bas2cc()),
            ])
            .workload(paper_scale_config(4, 0.7))
            .processor(&proc)
            .horizon(4.0 * 86_400.0)
            .freq_policy(FreqPolicy::RoundUp)
            .sampler(SamplerKind::Persistent)
            .battery(|s| Box::new(StochasticKibam::paper_cell(s ^ 0xc)))
            .run()
            .unwrap_or_else(|e| panic!("Ceff {scale}: {e}"));
        let life =
            |label: &str| sweep.spec(label).unwrap().lifetime_min.expect("battery sweep").mean;
        t.row(&[
            format!("{scale:.1}x"),
            format!("{:.2}", life("ccEDF") / life("EDF")),
            format!("{:.2}", life("BAS-2cc") / life("EDF")),
        ]);
        report
            .row(format!("ceff/{scale:.1}x"))
            .value("ccedf_vs_edf", life("ccEDF") / life("EDF"))
            .value("bas2cc_vs_edf", life("BAS-2cc") / life("EDF"));
    }
    outln!(out, "{}", t.render());
    outln!(out, "halving or doubling every current rescales absolute lifetimes but leaves");
    outln!(out, "the scheme-vs-EDF ratios within a narrow band: the reproduction's relative");
    outln!(out, "claims do not hinge on the unstated calibration (DESIGN.md §3).");
    Ok((out, report))
}
