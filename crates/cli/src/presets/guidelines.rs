//! §3's two scheduling guidelines, demonstrated on the battery models.
//!
//! * **G1** — "A non-increasing discharge current profile is optimal for
//!   maximizing battery lifetime": the same total charge drawn as a
//!   decreasing staircase, an increasing staircase, and a constant load.
//!   The battery delivers the most running charge before exhaustion under
//!   the non-increasing shape (the constant profile is the infinitesimal
//!   ideal's limit).
//! * **G2** — "it is better to lower the frequency and execute the task than
//!   to leave an idle slot and execute at a higher frequency": a task of C
//!   cycles due by deadline D, run (a) at the stretched frequency `C/D`,
//!   (b) at fmax after idling, (c) at fmax immediately, then idle. Battery
//!   charge consumed orders (a) < (c) < (b)-equal... — (a) wins on *energy*
//!   (the dominant effect the guideline names) and (c) beats (b) on battery
//!   *shape* (work-then-idle is non-increasing).
//!
//! No knobs.

use crate::outln;
use bas_battery::{
    run_profile, BatteryModel, DiffusionModel, Kibam, LoadProfile, RunOptions, StochasticKibam,
};
use bas_core::TextTable;
use bas_core::{Report, Scenario};
use bas_cpu::presets::unit_processor;
use bas_cpu::FreqPolicy;

fn fresh_models() -> Vec<Box<dyn BatteryModel>> {
    vec![
        Box::new(Kibam::paper_cell()),
        Box::new(DiffusionModel::paper_cell()),
        Box::new(StochasticKibam::paper_cell(11)),
    ]
}

/// Run the guidelines scenario.
pub fn run(sc: &Scenario) -> Result<(String, Report), String> {
    let mut out = String::new();
    let mut report = Report::new(&sc.name, sc.kind.name(), 0, 0);
    outln!(out, "Guideline experiments (§3)\n");

    // ---------------- G1: profile shape --------------------------------
    // The operational meaning of "a non-increasing profile is optimal": after
    // delivering the SAME charge over the SAME span, the battery that saw the
    // non-increasing shape has the most charge still extractable. We deliver
    // 1200 mAh as three shapes (well within capacity), then probe with a
    // constant 1.5 A load until exhaustion and compare the extra extraction.
    let steps = [1.8, 1.2, 0.6];
    let step_time = 1200.0;
    let decreasing = LoadProfile::from_pairs(steps.iter().map(|&i| (i, step_time)));
    let increasing = decreasing.reversed();
    let flat = decreasing.flattened();
    let probe = 1.5;

    outln!(
        out,
        "G1 — {:.0} mAh drawn as decreasing / constant / increasing stairs, then a",
        decreasing.total_charge() / 3.6
    );
    outln!(
        out,
        "constant {probe} A probe until exhaustion (extra mAh extracted):
"
    );
    let mut table = TextTable::new(&[
        "model",
        "after decreasing",
        "after constant",
        "after increasing",
        "dec vs inc",
    ]);
    for model in fresh_models().iter_mut() {
        let mut extra = |p: &LoadProfile| {
            model.reset();
            let shaped = run_profile(
                model.as_mut(),
                p,
                RunOptions { repeat: false, ..RunOptions::default() },
            );
            assert!(!shaped.died, "{}: shaping profile must fit capacity", model.name());
            let probe_profile = LoadProfile::from_pairs([(probe, 1.0)]);
            let cont = run_profile(model.as_mut(), &probe_profile, RunOptions::default());
            cont.delivered_mah()
        };
        let dec = extra(&decreasing);
        let flat_d = extra(&flat);
        let inc = extra(&increasing);
        table.row(&[
            model.name().to_string(),
            format!("{dec:.0}"),
            format!("{flat_d:.0}"),
            format!("{inc:.0}"),
            format!("{:+.1}%", (dec / inc - 1.0) * 100.0),
        ]);
        report
            .row(format!("G1/{}", model.name()))
            .value("after_decreasing_mah", dec)
            .value("after_constant_mah", flat_d)
            .value("after_increasing_mah", inc);
        assert!(
            dec >= inc,
            "{}: non-increasing history must leave at least as much extractable charge",
            model.name()
        );
    }
    outln!(out, "{}", table.render());

    // ---------------- G2: no gratuitous idling --------------------------
    // One task: C cycles due by D on the unit 3-OPP processor.
    let proc = unit_processor();
    let d = 10.0;
    let cycles = 5.0; // fits at f = 0.5 exactly
    let stretched = proc.realize(cycles / d, FreqPolicy::Interpolate);
    let fast = proc.realize(proc.fmax(), FreqPolicy::Interpolate);
    let i_slow = proc.battery_current_of(&stretched);
    let i_fast = proc.battery_current_of(&fast);
    let i_idle = proc.supply().idle_current;
    let t_slow = stretched.time_for_cycles(cycles);
    let t_fast = fast.time_for_cycles(cycles);

    // (a) stretch to the deadline; (b) idle first, run at fmax at the end;
    // (c) run at fmax immediately, idle after.
    let stretch = LoadProfile::from_pairs([(i_slow, t_slow.min(d))]);
    let idle_then_fast = LoadProfile::from_pairs([(i_idle, d - t_fast), (i_fast, t_fast)]);
    let fast_then_idle = LoadProfile::from_pairs([(i_fast, t_fast), (i_idle, d - t_fast)]);

    outln!(out, "G2 — {cycles} cycles due by t = {d} (unit 3-OPP processor):");
    let mut table = TextTable::new(&["strategy", "charge/period (C)", "KiBaM lifetime (min)"]);
    for (name, profile) in [
        ("(a) stretch to deadline (f = 0.5)", &stretch),
        ("(b) idle, then fmax at the end", &idle_then_fast),
        ("(c) fmax now, then idle", &fast_then_idle),
    ] {
        let mut cell = Kibam::paper_cell();
        let r = run_profile(&mut cell, profile, RunOptions::default());
        table.row(&[
            name.to_string(),
            format!("{:.3}", profile.total_charge()),
            format!("{:.1}", r.lifetime / 60.0),
        ]);
        report
            .row(format!("G2/{name}"))
            .value("charge_per_period_c", profile.total_charge())
            .value("kibam_lifetime_min", r.lifetime / 60.0);
    }
    outln!(out, "{}", table.render());
    let q_stretch = stretch.total_charge();
    let q_idle_fast = idle_then_fast.total_charge();
    assert!(
        q_stretch < q_idle_fast,
        "stretching must consume less charge than idling then sprinting"
    );
    outln!(out, "checks: (a) uses the least charge per period — G2's primary claim");
    outln!(out, "('minimize net charge consumed is primary, §3'); between the two fmax");
    outln!(out, "variants, (c) work-first is the locally non-increasing shape G1 prefers.");

    // And the battery agrees on (b) vs (c): same charge, different shape.
    let mut cell_b = Kibam::paper_cell();
    let life_b = run_profile(&mut cell_b, &idle_then_fast, RunOptions::default()).lifetime;
    let mut cell_c = Kibam::paper_cell();
    let life_c = run_profile(&mut cell_c, &fast_then_idle, RunOptions::default()).lifetime;
    outln!(
        out,
        "\nshape-only comparison at equal charge: work-then-idle lives {:.1} min vs idle-then-work {:.1} min",
        life_c / 60.0,
        life_b / 60.0
    );
    // Under cyclic repetition (b) and (c) are phase shifts of one another, so
    // their long-run lifetimes nearly coincide — the pure shape effect shows
    // in the G1 probe experiment above; here we only require no regression.
    assert!(life_c >= life_b * 0.99, "work-first (non-increasing) must not lose to idle-first");
    Ok((out, report))
}
