//! Table 2 — charge delivered (mAh) and battery lifetime (min) for the five
//! scheduling schemes, averaged over many random task-graph sets at 70 %
//! utilization, plus the §6 headline improvement percentages.
//!
//! Paper reference values:
//!
//! ```text
//! Scheme  DVS    Priority  Ready list      Charge(mAh)  Life(min)
//! EDF     none   random    most imminent   1567         74
//! ccEDF   ccEDF  random    most imminent   1608         101
//! laEDF   laEDF  random    most imminent   1607         120
//! BAS-1   laEDF  pUBS      most imminent   1723         137
//! BAS-2   laEDF  pUBS      all released    1757         148
//! ```
//!
//! Platform: the paper's 1 GHz / 3-OPP processor behind a 90 % DC-DC
//! converter and the 1.2 V, 2000 mAh (max) AAA NiMH cell, simulated with the
//! stochastic KiBaM (`battery = "kibam"|"stochastic"|"diffusion"` to
//! switch).
//!
//! Knobs: `trials`, `seed`, `graphs`, `util`, `threads`, `battery`,
//! `horizon` (the lifetime cap; runs that outlive it are censored), `freq`,
//! `sampler`.

use crate::outln;
use bas_core::workloads::paper_scale_config;
use bas_core::TextTable;
use bas_core::{Report, Scenario, SchedulerSpec, SpecReport, Sweep};
use bas_cpu::presets::paper_processor;

const PAPER: &[(&str, f64, f64)] = &[
    ("EDF", 1567.0, 74.0),
    ("ccEDF", 1608.0, 101.0),
    ("laEDF", 1607.0, 120.0),
    ("BAS-1", 1723.0, 137.0),
    ("BAS-2", 1757.0, 148.0),
];

/// Run the Table 2 scenario.
pub fn run(sc: &Scenario) -> Result<(String, Report), String> {
    let mut out = String::new();
    let trials = sc.trials;
    let base_seed = sc.seed;
    let graphs = sc.graphs;
    let util = sc.util;
    let threads = sc.threads;
    let battery_kind = sc.battery.as_str();
    // Cap on simulated lifetime; runs that outlive it are censored (reported
    // at the cap) — with the s³ current law the DVS schemes stretch lifetime
    // further than the paper's calibration did (see EXPERIMENTS.md).
    let max_time = sc.horizon;
    // The paper's reported average currents are only consistent with the
    // processor sitting on one of the three discrete OPPs (round-up); the
    // optimal two-point interpolation of §2/[4] is available with
    // `freq = "interp"`. EXPERIMENTS.md quantifies the difference.
    let freq = sc.freq;
    // Per-task persistent actual fractions by default: the paper's
    // history-based Xk estimation presumes cross-instance predictability
    // (EXPERIMENTS.md, "actual-computation model").
    let sampler = sc.sampler;

    outln!(out, "Table 2 reproduction — battery lifetime per scheduling scheme");
    outln!(
        out,
        "trials: {trials}, {graphs} graphs/set, utilization {util}, battery {battery_kind}, base seed {base_seed}"
    );
    outln!(
        out,
        "cell: 1.2 V AAA NiMH, 2000 mAh max capacity; processor: 1 GHz 3-OPP, ~1.8 A at fmax\n"
    );

    // Paper lineup + two supplementary rows pairing pUBS with ccEDF: at the
    // paper's 70 % utilization laEDF is already pinned at the lowest OPP
    // (nothing for ordering to win), so the ordering effect is demonstrated
    // on the governor that retains frequency headroom. At `util = 0.9` the
    // laEDF-based BAS rows separate as in the paper (see EXPERIMENTS.md).
    let mut lineup: Vec<(&str, SchedulerSpec)> = SchedulerSpec::table2_lineup().to_vec();
    lineup.push(("BAS-1cc", SchedulerSpec::bas1cc()));
    lineup.push(("BAS-2cc", SchedulerSpec::bas2cc()));

    let processor = paper_processor();
    let report = Sweep::over_seeds(base_seed, trials)
        .specs(lineup)
        .workload(paper_scale_config(graphs, util))
        .processor(&processor)
        .horizon(max_time)
        .threads(threads)
        .freq_policy(freq)
        .sampler(sampler)
        .battery(|seed| sc.build_battery(seed).expect("battery name validated"))
        .run()
        .map_err(|e| format!("sweep failed: {e}"))?;
    for spec in &report.specs {
        for t in &spec.trials {
            assert_eq!(t.deadline_misses, 0, "{} missed a deadline", spec.label);
            if t.battery_died == Some(false) {
                eprintln!(
                    "warning: {} seed {} censored at {:.0} min",
                    spec.label,
                    t.seed,
                    t.lifetime_minutes().unwrap_or(0.0)
                );
            }
        }
    }

    let mut table = TextTable::new(&[
        "Scheme",
        "DVS Algo.",
        "Priority",
        "Ready list",
        "Charge (mAh)",
        "Life (min)",
        "paper (mAh/min)",
    ]);
    let meta = [
        ("EDF", "None", "Random", "most imminent"),
        ("ccEDF", "ccEDF", "Random", "most imminent"),
        ("laEDF", "laEDF", "Random", "most imminent"),
        ("BAS-1", "laEDF", "pUBS", "most imminent"),
        ("BAS-2", "laEDF", "pUBS", "all released"),
        ("BAS-1cc", "ccEDF", "pUBS", "most imminent"),
        ("BAS-2cc", "ccEDF", "pUBS", "all released"),
    ];
    for (i, spec) in report.specs.iter().enumerate() {
        let mah_s = spec.delivered_mah.expect("battery sweep");
        let min_s = spec.lifetime_min.expect("battery sweep");
        let (_, dvs, prio, ready) = meta[i];
        let paper_col = if i < PAPER.len() {
            let (pname, pmah, pmin) = PAPER[i];
            assert_eq!(spec.label, pname);
            format!("{pmah:.0}/{pmin:.0}")
        } else {
            "—".to_string()
        };
        table.row(&[
            spec.label.clone(),
            dvs.to_string(),
            prio.to_string(),
            ready.to_string(),
            format!("{:.0} ± {:.0}", mah_s.mean, mah_s.std),
            format!("{:.0} ± {:.0}", min_s.mean, min_s.std),
            paper_col,
        ]);
    }
    outln!(out, "{}", table.render());

    // §6 headline numbers: improvements in battery lifetime.
    let life = |label: &str| report.spec(label).unwrap().lifetime_min.expect("battery sweep").mean;
    let pct = |a: f64, b: f64| (a / b - 1.0) * 100.0;
    outln!(out, "battery-lifetime improvements (mean):");
    outln!(
        out,
        "  BAS-2 vs laEDF : {:+.1}%   (paper: up to +23.3%)",
        pct(life("BAS-2"), life("laEDF"))
    );
    outln!(
        out,
        "  BAS-2 vs ccEDF : {:+.1}%   (paper: up to +47%)",
        pct(life("BAS-2"), life("ccEDF"))
    );
    outln!(
        out,
        "  BAS-2 vs no-DVS: {:+.1}%   (paper: up to +100%)",
        pct(life("BAS-2"), life("EDF"))
    );
    // Per-trial maxima — the paper's "up to" phrasing. Trials are aligned by
    // seed across specs, so per-trial ratios compare like with like.
    let lifetimes = |label: &str| -> Vec<f64> {
        report
            .spec(label)
            .unwrap()
            .trials
            .iter()
            .map(|t| t.lifetime_minutes().expect("battery sweep"))
            .collect()
    };
    let bas2 = lifetimes("BAS-2");
    let max_vs = |other: &SpecReport| {
        bas2.iter()
            .zip(&other.trials)
            .map(|(b, t)| pct(*b, t.lifetime_minutes().expect("battery sweep")))
            .fold(f64::MIN, f64::max)
    };
    outln!(out, "per-set maxima ('up to'):");
    outln!(out, "  BAS-2 vs laEDF : {:+.1}%", max_vs(report.spec("laEDF").unwrap()));
    outln!(out, "  BAS-2 vs ccEDF : {:+.1}%", max_vs(report.spec("ccEDF").unwrap()));
    outln!(out, "  BAS-2 vs no-DVS: {:+.1}%", max_vs(report.spec("EDF").unwrap()));
    outln!(out, "ordering effect at constant governor (ccEDF):");
    outln!(
        out,
        "  BAS-1cc vs ccEDF: {:+.1}%   BAS-2cc vs ccEDF: {:+.1}%   (BAS-2cc > BAS-1cc expected)",
        pct(life("BAS-1cc"), life("ccEDF")),
        pct(life("BAS-2cc"), life("ccEDF"))
    );
    Ok((out, Report::from_sweep(&sc.name, sc.kind.name(), &report)))
}
