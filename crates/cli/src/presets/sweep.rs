//! The generic sweep — "as many scenarios as you can imagine".
//!
//! Runs any scheduler lineup × generated workload × platform combination
//! described by a [`ScenarioKind::Sweep`](bas_core::ScenarioKind::Sweep)
//! scenario and prints per-spec summaries (mean ± std, p50, p95). This is
//! the open entry point new workloads should use instead of a new binary:
//! write a scenario file, `bas run` it.

use crate::outln;
use bas_core::TextTable;
use bas_core::{Report, Scenario};

/// Run a generic sweep scenario.
pub fn run(sc: &Scenario) -> Result<(String, Report), String> {
    let sweep = sc.run_sweep().map_err(|e| e.to_string())?;
    let mut out = String::new();
    outln!(
        out,
        "sweep '{}' — {} trials × {} specs, base seed {}",
        sc.name,
        sc.trials,
        sweep.specs.len(),
        sc.seed
    );
    outln!(
        out,
        "workload: {} scale, {} graphs/set, utilization {}; processor {}; battery {}; sampler {}; freq {}; horizon {} s\n",
        sc.workload,
        sc.graphs,
        sc.util,
        sc.processor,
        sc.battery,
        sc.sampler,
        sc.freq,
        sc.horizon
    );
    if sc.pes > 1 {
        let presets = if sc.processors.is_empty() {
            format!("{} \u{00d7} {}", sc.pes, sc.processor)
        } else {
            sc.processors.join(", ")
        };
        outln!(out, "platform: {} processing elements ({presets}), shared battery\n", sc.pes);
    }
    let with_battery = sc.battery != "none";
    let mut header = vec!["Spec", "Energy (J)", "Charge (C)"];
    if with_battery {
        header.push("Life (min)");
        header.push("Life p50/p95");
        header.push("Charge (mAh)");
    } else {
        header.push("Energy p50/p95");
    }
    let mut table = TextTable::new(&header);
    for spec in &sweep.specs {
        let mut cells = vec![
            spec.label.clone(),
            format!("{:.2} ± {:.2}", spec.energy.mean, spec.energy.std),
            format!("{:.2} ± {:.2}", spec.charge.mean, spec.charge.std),
        ];
        if with_battery {
            let life = spec.lifetime_min.expect("battery sweep");
            let mah = spec.delivered_mah.expect("battery sweep");
            cells.push(format!("{:.1} ± {:.1}", life.mean, life.std));
            cells.push(format!("{:.1}/{:.1}", life.p50, life.p95));
            cells.push(format!("{:.0} ± {:.0}", mah.mean, mah.std));
        } else {
            cells.push(format!("{:.2}/{:.2}", spec.energy.p50, spec.energy.p95));
        }
        table.row(&cells);
    }
    outln!(out, "{}", table.render());
    let misses: u64 =
        sweep.specs.iter().flat_map(|s| s.trials.iter().map(|t| t.deadline_misses)).sum();
    outln!(out, "deadline misses across all runs: {misses}");
    let mut report = Report::from_sweep(&sc.name, sc.kind.name(), &sweep);
    report.pes = sc.pes;
    Ok((out, report))
}
