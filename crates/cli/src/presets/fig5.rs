//! Figure 5 — canonical EDF ordering vs pUBS-based ordering with the
//! feasibility check, on the paper's worked 3-graph example.
//!
//! Task set: T1 (one task, wc 5, D = 20), T2 (one task, wc 5, D = 50),
//! T3 (three tasks, wc 5 each, D = 100); everything released at t = 0, all
//! tasks take their WCET, so U = 0.5 and `fref = 0.5 · fmax` throughout.
//! The paper assumes the pUBS priority ranks T3's tasks ahead of T2's ahead
//! of T1's — the trace then interleaves T3/T2 work ahead of later T1
//! instances *without* missing any deadline or ever exceeding `fref`.
//!
//! Knobs: `horizon`.

use crate::outln;
use bas_core::policy::BasPolicy;
use bas_core::priority::Priority;
use bas_core::workloads::fig5_set;
use bas_core::{Report, Scenario};
use bas_cpu::presets::unit_processor;
use bas_dvs::CcEdf;
use bas_sim::policy::EdfTopo;
use bas_sim::trace::SliceKind;
use bas_sim::{SimConfig, SimState, Simulation, TaskRef, WorstCase};

/// The paper's assumed priority for the example: "tasks from taskgraph3 >
/// taskgraph2 > taskgraph1 according to the pUBS priority function".
struct PaperAssumedOrder;

impl Priority for PaperAssumedOrder {
    fn name(&self) -> &'static str {
        "paper-assumed (T3 > T2 > T1)"
    }

    fn rank(
        &mut self,
        _state: &SimState,
        candidates: &[TaskRef],
        _fref_hz: f64,
        out: &mut Vec<TaskRef>,
    ) {
        out.clear();
        out.extend_from_slice(candidates);
        // Higher graph index first; node order within a graph preserved.
        out.sort_by(|a, b| b.graph.cmp(&a.graph).then(a.node.cmp(&b.node)));
    }
}

/// Run the Figure 5 scenario.
pub fn run(sc: &Scenario) -> Result<(String, Report), String> {
    let mut out = String::new();
    let horizon = sc.horizon;
    outln!(out, "Figure 5 reproduction — canonical EDF vs pUBS ordering + feasibility check");
    outln!(out, "T1(wc 5, D 20), T2(wc 5, D 50), T3(3×5, D 100); all tasks at WCET; fref = 0.5\n");

    // (a) canonical EDF ordering.
    let mut governor = CcEdf;
    let mut policy = EdfTopo;
    let mut sampler = WorstCase;
    let mut sim = Simulation::new(
        fig5_set(),
        SimConfig::new(unit_processor()),
        &mut governor,
        &mut policy,
        &mut sampler,
    )
    .expect("fig5 set is feasible");
    sim.run_until(horizon).expect("no deadline misses");
    let a = sim.finish();
    outln!(out, "(a) Trace using canonical EDF ordering:");
    outln!(out, "{}", a.trace.as_ref().unwrap().render());

    // (b) pUBS-style ordering over all released graphs with the feasibility
    // check (the paper's assumed T3 > T2 > T1 ranking).
    let mut governor = CcEdf;
    let mut policy = BasPolicy::all_released(PaperAssumedOrder);
    let mut sampler = WorstCase;
    let mut sim = Simulation::new(
        fig5_set(),
        SimConfig::new(unit_processor()),
        &mut governor,
        &mut policy,
        &mut sampler,
    )
    .expect("fig5 set is feasible");
    sim.run_until(horizon).expect("no deadline misses");
    let b = sim.finish();
    outln!(out, "(b) Trace using pUBS-based ordering with feasibility check:");
    outln!(out, "{}", b.trace.as_ref().unwrap().render());

    let mut report = Report::new(&sc.name, sc.kind.name(), 0, 0);
    // Checks the paper's example asserts.
    for (label, result) in [("canonical EDF", &a), ("pUBS+feasibility", &b)] {
        assert_eq!(result.metrics.deadline_misses, 0, "{label} missed a deadline");
        let max_f = result
            .trace
            .as_ref()
            .unwrap()
            .slices()
            .iter()
            .filter_map(|s| match s.kind {
                SliceKind::Run { frequency, .. } => Some(frequency),
                SliceKind::Idle => None,
            })
            .fold(0.0, f64::max);
        outln!(out, "{label}: deadline misses = 0, max frequency used = {max_f} (fref = 0.5)");
        assert!(max_f <= 0.5 + 1e-9, "{label} exceeded fref");
        report
            .row(label)
            .value("energy_j", result.metrics.energy)
            .value("deadline_misses", result.metrics.deadline_misses as f64)
            .value("max_frequency", max_f);
    }
    let order_b = b.trace.as_ref().unwrap().execution_order();
    outln!(out, "\n(b) first executions in order: {:?}", order_b);
    outln!(out, "note how T3/T2 tasks run ahead of later T1 work wherever the feasibility");
    outln!(out, "check allows it, without ever forcing a frequency above fref — the");
    outln!(out, "methodology's guarantee (§4.2).");
    // The out-of-order property: in (b) some T3 or T2 task must run before
    // the *second* instance of T1 completes its work window.
    let first_t3_start = b
        .trace
        .as_ref()
        .unwrap()
        .slices()
        .iter()
        .find_map(|s| match s.kind {
            SliceKind::Run { task, .. } if task.graph.index() == 2 => Some(s.start),
            _ => None,
        })
        .expect("T3 must run");
    assert!(
        first_t3_start < 20.0,
        "pUBS ordering should pull T3 work ahead of T1's second instance (got {first_t3_start})"
    );
    Ok((out, report))
}
