//! The portfolio runner — race a spec set, report the Pareto frontier.
//!
//! The text output is [`bas_portfolio::PortfolioReport::to_text`]; the
//! structured [`Report`] is the underlying sweep in the ordinary
//! `bas-report/v1` shape, so `bas run scenarios/portfolio.toml --format
//! json` stays schema-compatible with every other kind. The richer
//! `bas-portfolio/v1` JSON (frontier, hypervolume, auto-pick) is emitted
//! by the dedicated `bas portfolio` subcommand.

use bas_core::{Report, Scenario};

/// Run a portfolio scenario.
pub fn run(sc: &Scenario) -> Result<(String, Report), String> {
    let portfolio = bas_portfolio::run_portfolio(sc).map_err(|e| e.to_string())?;
    let mut report = Report::from_sweep(&sc.name, sc.kind.name(), &portfolio.sweep);
    report.pes = sc.pes;
    Ok((portfolio.to_text(), report))
}
