//! Figure 6 — energy consumption of the ordering schemes, normalized to the
//! near-optimal schedule, as the number of task graphs grows.
//!
//! "They compare the resulting energy consumption of the various ordering
//! schemes … in scheduling increasing number of taskgraphs with nodes varying
//! from 5 to 15. … The results have been normalized with respect to near
//! optimal schedule obtained by removing precedence constraints within the
//! taskgraphs." (§5) The paper's series start near 1 and diverge as graphs
//! are added, with **pUBS over all released tasks closest to near-optimal**.
//!
//! Setup notes (EXPERIMENTS.md discusses both): the energy comparison runs
//! on the ideal-DVS (dense-grid) processor — on the 3-OPP grid the laEDF
//! governor pins at the lowest OPP and all orderings collapse — and actual
//! computations use persistent per-task fractions so the pUBS estimator has
//! something to learn, mirroring its premise.
//!
//! Each trial normalizes its schemes against the trial's own
//! precedence-relaxed twin set, so this preset drives per-trial
//! [`Experiment`]s under `parallel_map` rather than a plain `Sweep`.
//!
//! Knobs: `trials`, `seed`, `threads`, `util`, `governor` (`ccedf` — the
//! §4.2 mechanism presumes a governor that spreads remaining work — or
//! `laedf`, which reproduces the inversion discussed in EXPERIMENTS.md),
//! `max_graphs`, `horizon_periods`.

use crate::outln;
use bas_core::baseline::strip_precedence;
use bas_core::workloads::unit_scale_config;
use bas_core::TextTable;
use bas_core::{
    parallel_map, Experiment, GovernorKind, PriorityKind, Report, SamplerKind, Scenario,
    SchedulerSpec, ScopeKind, SeedRecord, Summary,
};
use bas_cpu::presets::dense_dvs_processor;
use bas_cpu::FreqPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec(governor: GovernorKind, priority: PriorityKind, scope: ScopeKind) -> SchedulerSpec {
    SchedulerSpec { governor, priority, scope }
}

/// Run the Figure 6 scenario.
pub fn run(sc: &Scenario) -> Result<(String, Report), String> {
    let mut out = String::new();
    let trials = sc.trials;
    let max_graphs = sc.max_graphs;
    let horizon_periods = sc.horizon_periods;
    let base_seed = sc.seed;
    let threads = sc.threads;
    let util = sc.util;
    let governor = match sc.governor.as_str() {
        "ccedf" => GovernorKind::CcEdf,
        "laedf" => GovernorKind::LaEdf,
        other => panic!("--governor must be ccedf|laedf, got {other}"),
    };

    // Each added graph contributes a fixed utilization share, so the system
    // load grows with the graph count and reaches `util` at `max_graphs` —
    // the reading under which the paper's "schemes start diverging from the
    // near optimal [as graphs are added]" emerges: an almost idle system is
    // easy for every ordering; a loaded one separates them.
    let per_graph_util = util / max_graphs as f64;
    outln!(out, "Figure 6 reproduction — ordering schemes normalized to near-optimal");
    outln!(
        out,
        "trials {trials}, graphs 1..={max_graphs} at {per_graph_util:.3} utilization each (total {util} at k={max_graphs}), governor {governor:?}, ideal-DVS processor\n"
    );

    let schemes = [
        ("Random/imminent", spec(governor, PriorityKind::Random, ScopeKind::MostImminent)),
        ("LTF/imminent", spec(governor, PriorityKind::Ltf, ScopeKind::MostImminent)),
        ("pUBS/imminent", spec(governor, PriorityKind::Pubs, ScopeKind::MostImminent)),
        ("pUBS/all-released", spec(governor, PriorityKind::Pubs, ScopeKind::AllReleased)),
    ];
    let metric_names = ["random_imm", "ltf_imm", "pubs_imm", "pubs_all", "nearopt_vs_fluid"];

    let mut table = TextTable::new(&[
        "# graphs",
        "Random/imm",
        "LTF/imm",
        "pUBS/imm (BAS-1)",
        "pUBS/all (BAS-2)",
        "near-opt vs fluid bound",
    ]);
    let mut report = Report::new(&sc.name, sc.kind.name(), base_seed, trials);

    let processor = dense_dvs_processor(20, 0.05);
    for k in 1..=max_graphs {
        let rows = parallel_map(trials, threads, |trial| {
            let seed = base_seed
                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                .wrapping_add((k as u64) << 40)
                .wrapping_add(trial as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let set = unit_scale_config(k, per_graph_util * k as f64)
                .generate(&mut rng)
                .expect("valid config");
            let horizon = set.iter().map(|(_, g)| g.period()).fold(0.0, f64::max) * horizon_periods;
            // Near-optimal normalizer. The paper normalizes by the
            // precedence-relaxed pUBS schedule; that heuristic loses its
            // near-optimality guarantee in the periodic multi-deadline
            // setting (we measured schemes *beating* it), so the reported
            // normalizer is the true fluid lower bound: all executed cycles
            // at the constant effective speed (convexity => no schedule does
            // better). The relaxed-pUBS schedule is also run and printed as
            // its own series for fidelity to the paper.
            let relaxed = strip_precedence(&set);
            let run = |set: &bas_taskgraph::TaskSet, s: &SchedulerSpec| {
                Experiment::new(set)
                    .spec(*s)
                    .processor(&processor)
                    .seed(seed)
                    .horizon(horizon)
                    .sampler(SamplerKind::Persistent)
                    .run()
                    .expect("set feasible")
                    .metrics
            };
            let relaxed_metrics =
                run(&relaxed, &spec(governor, PriorityKind::Pubs, ScopeKind::AllReleased));
            let fluid = |m: &bas_sim::Metrics| {
                let f_eff = (m.cycles_executed / horizon).clamp(processor.fmin(), processor.fmax());
                let r = processor.realize(f_eff, FreqPolicy::Interpolate);
                let e_exec =
                    m.cycles_executed * processor.battery_current_of(&r) * processor.supply().vbat
                        / r.average_frequency;
                // Remaining wall-clock idles at the idle draw.
                let idle = (horizon - m.cycles_executed / f_eff).max(0.0);
                e_exec + idle * processor.supply().idle_current * processor.supply().vbat
            };
            // Scheme columns use the paper's normalizer (the relaxed-pUBS
            // schedule); the last column reports that normalizer against the
            // fluid bound so its own quality is visible.
            let relaxed_energy = relaxed_metrics.energy;
            let mut row: Vec<f64> =
                schemes.iter().map(|(_, s)| run(&set, s).energy / relaxed_energy).collect();
            row.push(relaxed_energy / fluid(&relaxed_metrics));
            (seed, row)
        });
        let mut cells = vec![k.to_string()];
        let row = report.row(k.to_string());
        for (i, name) in metric_names.iter().enumerate() {
            let s = Summary::of(&rows.iter().map(|(_, r)| r[i]).collect::<Vec<_>>());
            cells.push(format!("{:.3}", s.mean));
            row.summary(*name, s);
        }
        for (seed, values) in &rows {
            row.trials.push(SeedRecord {
                seed: *seed,
                metrics: metric_names
                    .iter()
                    .zip(values)
                    .map(|(n, v)| (n.to_string(), *v))
                    .collect(),
            });
        }
        table.row(&cells);
    }
    outln!(out, "{}", table.render());
    outln!(out, "scheme columns are normalized by the paper's near-optimal (precedence-");
    outln!(out, "relaxed pUBS) schedule; the last column shows that normalizer against the");
    outln!(out, "fluid lower bound (constant effective speed). expected shape (paper Fig. 6):");
    outln!(out, "pUBS over all released tasks closest to near-optimal, Random farthest.");
    Ok((out, report))
}
