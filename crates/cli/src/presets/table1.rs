//! Table 1 — energy of Random / LTF / pUBS ordering on single DAGs,
//! normalized to the exhaustive optimum, for 5–15 tasks.
//!
//! Paper reference values (energy normalized w.r.t. optimal):
//!
//! ```text
//! #tasks  Random  LTF   pUBS
//! 5       1.32    1.25  1.05
//! 6       1.41    1.29  1.14
//! 7       1.33    1.27  1.17
//! 8       1.56    1.44  1.25
//! 9       1.52    1.26  1.21
//! 10      1.35    1.21  1.09
//! 11      1.66    1.53  1.28
//! 12      1.58    1.39  1.31
//! 13      1.57    1.51  1.22
//! 14      1.44    1.37  1.29
//! 15      1.55    1.51  1.32
//! ```
//!
//! Knobs: `trials`, `seed`, `util`, `threads`, `freq`, `shape`,
//! `processor`, `noise`.

use crate::outln;
use bas_core::single_dag::{Scenario as DagScenario, XSource};
use bas_core::TextTable;
use bas_core::{parallel_map, Report, Scenario, SeedRecord, Summary};
use bas_cpu::Processor;
use bas_taskgraph::{GeneratorConfig, GraphShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PAPER: &[(usize, f64, f64, f64)] = &[
    (5, 1.32, 1.25, 1.05),
    (6, 1.41, 1.29, 1.14),
    (7, 1.33, 1.27, 1.17),
    (8, 1.56, 1.44, 1.25),
    (9, 1.52, 1.26, 1.21),
    (10, 1.35, 1.21, 1.09),
    (11, 1.66, 1.53, 1.28),
    (12, 1.58, 1.39, 1.31),
    (13, 1.57, 1.51, 1.22),
    (14, 1.44, 1.37, 1.29),
    (15, 1.55, 1.51, 1.32),
];

struct TrialResult {
    seed: u64,
    random: f64,
    ltf: f64,
    stf: f64,
    pubs: f64,
    pubs_oracle: f64,
}

/// Expansion budget for the exhaustive search; rare pathological seeds are
/// skipped (and counted) rather than stalling the sweep — the same wall that
/// made the paper stop at 15 tasks.
const OPTIMAL_BUDGET: u64 = 20_000_000;

/// Run the Table 1 scenario.
pub fn run(sc: &Scenario) -> Result<(String, Report), String> {
    let mut out = String::new();
    let trials = sc.trials;
    let base_seed = sc.seed;
    let util = sc.util;
    let threads = sc.threads;
    let freq = sc.freq;
    let shape_name = sc.shape.as_str();
    let proc_name = sc.processor.as_str();
    let processor: Processor = sc.build_processor().map_err(|e| e.to_string())?;

    outln!(out, "Table 1 reproduction — single-DAG ordering vs exhaustive optimum");
    outln!(
        out,
        "trials per row: {trials}, utilization {util}, base seed {base_seed}, freq {freq:?}, processor {proc_name}, shape {shape_name}"
    );
    outln!(
        out,
        "(columns show mean energy normalized to the optimal schedule; paper values in parens)\n"
    );

    // pUBS(est) models a history-trained estimator: Xk = actual · U(1−ε, 1+ε).
    let noise = sc.noise;

    let mut table = TextTable::new(&[
        "# of tasks",
        "Random",
        "LTF",
        "STF",
        "pUBS(est)",
        "pUBS(oracle)",
        "paper R/L/P",
    ]);
    let mut report = Report::new(&sc.name, sc.kind.name(), base_seed, trials);

    for &(n, p_rand, p_ltf, p_pubs) in PAPER {
        let results: Vec<Option<TrialResult>> = parallel_map(trials, threads, |trial| {
            // Independent deterministic stream per (n, trial).
            let seed = base_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((n as u64) << 32)
                .wrapping_add(trial as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let shape = match shape_name {
                // Sparse random dependencies: wide graphs with real ordering
                // freedom — the regime in which ordering heuristics separate
                // (and the closest reading of TGFF's "random dependencies").
                "layered" => GraphShape::Layered { layers: 3, edge_prob: 0.2 },
                // TGFF-like narrow growth: few linear extensions, ordering
                // barely matters (kept for comparison).
                "fifo" => GraphShape::FanInFanOut { max_out: 3, max_in: 3 },
                // No precedence at all: Gruian's original UBS setting.
                "independent" => GraphShape::Independent,
                other => panic!("--shape must be layered|fifo|independent, got {other}"),
            };
            let cfg = GeneratorConfig { nodes: (n, n), wcet: (10, 100), shape };
            let graph = cfg.generate(format!("dag{n}"), &mut rng);
            let scenario =
                DagScenario::with_utilization(graph, util, processor.clone(), (0.2, 1.0), &mut rng)
                    .expect("feasible by construction")
                    .with_freq_policy(freq);
            let opt = scenario.optimal_with_budget(OPTIMAL_BUDGET)?.energy;
            // Noisy-oracle Xk: what a per-task history estimator of ~ε
            // relative accuracy would predict for this instance.
            let xs: Vec<f64> = scenario
                .actuals()
                .iter()
                .enumerate()
                .map(|(i, &a)| {
                    let wc = scenario.graph().wcet(bas_taskgraph::NodeId::from_index(i)) as f64;
                    (a * rng.gen_range(1.0 - noise..=1.0 + noise)).clamp(1e-9, wc)
                })
                .collect();
            Some(TrialResult {
                seed,
                random: scenario.run_random(&mut rng).energy / opt,
                ltf: scenario.run_ltf().energy / opt,
                stf: scenario.run_stf().energy / opt,
                pubs: scenario.run_pubs_with_x(&xs).energy / opt,
                pubs_oracle: scenario.run_pubs(XSource::Oracle).energy / opt,
            })
        });
        let skipped = results.iter().filter(|r| r.is_none()).count();
        let results: Vec<TrialResult> = results.into_iter().flatten().collect();
        if skipped > 0 {
            eprintln!("note: n={n}: {skipped}/{trials} trials exceeded the exhaustive-search budget and were skipped");
        }
        let rand_s = Summary::of(&results.iter().map(|r| r.random).collect::<Vec<_>>());
        let ltf_s = Summary::of(&results.iter().map(|r| r.ltf).collect::<Vec<_>>());
        let stf_s = Summary::of(&results.iter().map(|r| r.stf).collect::<Vec<_>>());
        let pubs_s = Summary::of(&results.iter().map(|r| r.pubs).collect::<Vec<_>>());
        let oracle_s = Summary::of(&results.iter().map(|r| r.pubs_oracle).collect::<Vec<_>>());
        table.row(&[
            n.to_string(),
            format!("{:.2}", rand_s.mean),
            format!("{:.2}", ltf_s.mean),
            format!("{:.2}", stf_s.mean),
            format!("{:.2}", pubs_s.mean),
            format!("{:.2}", oracle_s.mean),
            format!("{p_rand:.2}/{p_ltf:.2}/{p_pubs:.2}"),
        ]);
        let row = report.row(n.to_string());
        row.summary("random", rand_s)
            .summary("ltf", ltf_s)
            .summary("stf", stf_s)
            .summary("pubs_est", pubs_s)
            .summary("pubs_oracle", oracle_s)
            .value("skipped", skipped as f64);
        for r in &results {
            row.trials.push(SeedRecord {
                seed: r.seed,
                metrics: vec![
                    ("random".into(), r.random),
                    ("ltf".into(), r.ltf),
                    ("stf".into(), r.stf),
                    ("pubs_est".into(), r.pubs),
                    ("pubs_oracle".into(), r.pubs_oracle),
                ],
            });
        }
    }
    outln!(out, "{}", table.render());
    outln!(out, "shape checks (see EXPERIMENTS.md for the full discussion):");
    outln!(out, "  * pUBS(est) and pUBS(oracle) sit far closer to 1.00 than any WCET-only");
    outln!(out, "    heuristic — the paper's central Table-1 claim;");
    outln!(out, "  * pUBS(oracle) reproduces Gruian's 'accurate estimates -> within ~1% of");
    outln!(out, "    optimal' result;");
    outln!(out, "  * Random/LTF/STF cluster together above pUBS. The paper's larger absolute");
    outln!(out, "    ratios (and its Random/LTF gap) mix heterogeneous DVS schemes from the");
    outln!(out, "    compared prior works; under a common frequency rule the ordering effect");
    outln!(out, "    is what remains, and pUBS captures nearly all of it.");
    Ok((out, report))
}
