//! The built-in scenario runners — one module per [`ScenarioKind`].
//!
//! Each runner takes a validated [`Scenario`], renders the historical text
//! output of the per-artifact binary it replaced (byte-identical for the
//! same knobs), and builds the structured [`Report`] alongside.
//!
//! [`Scenario`]: bas_core::Scenario
//! [`ScenarioKind`]: bas_core::ScenarioKind
//! [`Report`]: bas_core::Report

pub mod ablation;
pub mod capacity_curve;
pub mod crossover;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod guidelines;
pub mod portfolio;
pub mod sweep;
pub mod table1;
pub mod table2;
