//! Figure 4 — the motivational example: execution order affects slack
//! recovery.
//!
//! Two tasks with a common deadline of 10: task1 (wc 4) and task2 (wc 6).
//!
//! * **Case 1**: actuals are 40 % and 60 % of wc (task1 = 1.6, task2 = 3.6);
//!   the paper's trace shows **STF** recovering slack better.
//! * **Case 2**: actuals are 60 % and 40 % (task1 = 2.4, task2 = 2.4);
//!   **LTF** wins.
//!
//! Prints all four traces (LTF/STF × case 1/2) with the realized frequency
//! of each execution and the resulting energies, and checks the paper's
//! win/loss pattern. No knobs.

use crate::outln;
use bas_core::single_dag::Scenario as DagScenario;
use bas_core::{Report, Scenario};
use bas_cpu::presets::unit_processor;
use bas_taskgraph::TaskGraphBuilder;

fn scenario(a1: f64, a2: f64) -> DagScenario {
    let mut b = TaskGraphBuilder::new("fig4");
    b.add_node("task1", 4);
    b.add_node("task2", 6);
    DagScenario::new(b.build().unwrap(), 10.0, vec![a1, a2], unit_processor())
        .expect("fig4 scenario is feasible")
}

fn show(out: &mut String, label: &str, s: &DagScenario, order_ltf: bool) -> f64 {
    let result = if order_ltf { s.run_ltf() } else { s.run_stf() };
    let timeline = s.timeline_of_order(&result.order).expect("valid order");
    outln!(out, "  {label}:");
    for e in &timeline {
        let name = &s.graph().node(e.node).name;
        outln!(
            out,
            "    [{:5.2} – {:5.2}] {:6} @ f = {:.3}  (energy {:.3} J)",
            e.start,
            e.end,
            name,
            e.frequency,
            e.energy
        );
    }
    outln!(
        out,
        "    total energy {:.4} J, finished at t = {:.2} (deadline 10)\n",
        result.energy,
        result.finish
    );
    result.energy
}

/// Run the Figure 4 scenario.
pub fn run(sc: &Scenario) -> Result<(String, Report), String> {
    let mut out = String::new();
    outln!(out, "Figure 4 reproduction — order affects slack recovery");
    outln!(out, "two tasks, deadline 10, wc = 4 and 6; unit 3-OPP processor\n");

    outln!(out, "Case 1: actual computation 40% / 60% of wc (task1 = 1.6, task2 = 3.6)");
    let c1 = scenario(1.6, 3.6);
    let c1_ltf = show(&mut out, "A: LTF (task2 first)", &c1, true);
    let c1_stf = show(&mut out, "B: STF (task1 first)", &c1, false);

    outln!(out, "Case 2: actual computation 60% / 40% of wc (task1 = 2.4, task2 = 2.4)");
    let c2 = scenario(2.4, 2.4);
    let c2_ltf = show(&mut out, "A: LTF (task2 first)", &c2, true);
    let c2_stf = show(&mut out, "B: STF (task1 first)", &c2, false);

    outln!(out, "checks:");
    let ok1 = c1_stf < c1_ltf;
    let ok2 = c2_ltf < c2_stf;
    outln!(
        out,
        "  case 1: STF better ({:.4} < {:.4})? {}",
        c1_stf,
        c1_ltf,
        if ok1 { "YES (matches paper)" } else { "NO (mismatch!)" }
    );
    outln!(
        out,
        "  case 2: LTF better ({:.4} < {:.4})? {}",
        c2_ltf,
        c2_stf,
        if ok2 { "YES (matches paper)" } else { "NO (mismatch!)" }
    );
    outln!(out, "\nconclusion (paper §4.2): no fixed wc-based order wins in all cases —");
    outln!(out, "the winner depends on where the slack actually materializes, which is");
    outln!(out, "exactly what pUBS estimates per task.");
    assert!(ok1 && ok2, "figure 4 win/loss pattern must hold");

    let mut report = Report::new(&sc.name, sc.kind.name(), 0, 0);
    report.row("case1/LTF").value("energy_j", c1_ltf);
    report.row("case1/STF").value("energy_j", c1_stf);
    report.row("case2/LTF").value("energy_j", c2_ltf);
    report.row("case2/STF").value("energy_j", c2_stf);
    Ok((out, report))
}
