//! `bas serve` — run the scheduling-as-a-service daemon with the full CLI
//! backend.
//!
//! The daemon itself lives in `bas-serve`; this module contributes the
//! [`CliService`] backend (every preset runner plus the on-disk catalog)
//! and the flag surface, then blocks in `Server::run` until SIGINT/SIGTERM
//! drains it.

use crate::args::Args;
use crate::CliError;
use bas_core::{Report, Scenario};
use bas_serve::{ScenarioService, ServeConfig, Server};
use std::sync::Arc;

/// The full-CLI execution backend: jobs run through the same preset
/// runners as `bas run`, so served reports are byte-identical to local
/// `--format json` output, and `/v1/presets` serves the same catalog as
/// `bas list --format json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CliService;

impl ScenarioService for CliService {
    fn run(&self, scenario: &Scenario) -> Result<Report, String> {
        crate::run_scenario(scenario).map(|(_text, report)| report)
    }

    fn presets_json(&self) -> String {
        crate::render_list_json()
    }
}

/// Run `bas serve` with parsed flags. Recognized: `--addr HOST:PORT`,
/// `--workers N`, `--queue-depth N`, `--cache N`, `--max-trials N`,
/// `--max-horizon SECONDS`, `--max-body-bytes N`, `--state-dir DIR`,
/// `--state-max-bytes N`, `--follow-buffer-bytes N`, `--quiet`.
pub fn run(args: &Args) -> Result<(), CliError> {
    let mut config = ServeConfig::default();
    for (key, value) in &args.flags {
        match key.as_str() {
            "addr" => config.addr = value.clone(),
            "workers" => config.workers = parse_count(key, value)?,
            "queue-depth" => config.queue_depth = parse_count(key, value)?,
            "cache" => config.cache_capacity = parse_count(key, value)?,
            "max-trials" => config.max_trials = parse_count(key, value)?,
            "max-horizon" => {
                config.max_horizon =
                    value.parse::<f64>().ok().filter(|h| *h > 0.0).ok_or_else(|| {
                        CliError::Usage(format!(
                            "`bas serve --max-horizon` needs positive seconds, got {value:?}"
                        ))
                    })?;
            }
            "max-body-bytes" => config.max_body_bytes = parse_count(key, value)?,
            "state-dir" => {
                if value.is_empty() {
                    return Err(CliError::Usage(
                        "`bas serve --state-dir` needs a directory path".into(),
                    ));
                }
                config.state_dir = Some(value.into());
            }
            "state-max-bytes" => {
                config.state_max_bytes = value.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(
                    || {
                        CliError::Usage(format!(
                            "`bas serve --state-max-bytes` needs a positive byte count, got {value:?}"
                        ))
                    },
                )?;
            }
            "follow-buffer-bytes" => {
                config.follow_buffer_bytes =
                    value.parse::<usize>().ok().filter(|n| *n > 0).ok_or_else(|| {
                        CliError::Usage(format!(
                            "`bas serve --follow-buffer-bytes` needs a positive byte count, got {value:?}"
                        ))
                    })?;
            }
            "quiet" => config.quiet = true,
            key => {
                return Err(CliError::Usage(format!("`bas serve` takes no --{key} flag")));
            }
        }
    }
    let server = Server::bind(config.clone(), Arc::new(CliService))
        .map_err(|e| CliError::Runtime(format!("binding {}: {e}", config.addr)))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::Runtime(format!("resolving bound address: {e}")))?;
    // The listening line is the startup contract: scripts (CI's e2e job,
    // the CLI tests) parse the ephemeral port from it, so it goes out on
    // stdout, flushed, before the first request can be accepted.
    println!("bas serve listening on http://{addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    bas_serve::signal::install(server.handle());
    server.run().map_err(|e| CliError::Runtime(format!("serve loop: {e}")))
}

fn parse_count(key: &str, value: &str) -> Result<usize, CliError> {
    value.parse::<usize>().map_err(|_| {
        CliError::Usage(format!("`bas serve --{key}` needs a non-negative integer, got {value:?}"))
    })
}
