//! # bas-cli — the unified `bas` command line
//!
//! One binary drives the whole evaluation:
//!
//! ```text
//! bas <preset> [--key value ...] [--format text|json|csv] [--out FILE]
//! bas run <scenario.toml> [--key value ...] [--format ...] [--out FILE]
//! bas list
//! ```
//!
//! Presets (`table1`, `table2`, `fig4`, `fig5`, `fig6`, `guidelines`,
//! `crossover`, `ablation`, `capacity-curve`, `sweep`, `portfolio`) are
//! built-in [`Scenario`] constructors — the same objects as the checked-in
//! files under `scenarios/` — and the named presets ([`NAMED_PRESETS`]:
//! `quickstart`, `sensor-node`, `media-player`, `battery-explorer`) run
//! their curated files by name. `--key value` overrides set scenario fields
//! (`bas table2 --trials 10 --seed 2`). Legacy flag spellings of the
//! retired per-artifact binaries (`--max-time`, `--actuals`, `--proc`,
//! `--max-graphs`, `--horizon-periods`) are accepted as aliases.
//!
//! Every run renders its historical text output and can instead emit a
//! structured [`Report`] (`--format json|csv`); see `bas_core::report` for
//! the stable schemas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bas_core::{Report, Scenario, ScenarioKind};
use std::io::Write as _;
use std::path::Path;

pub mod args;
pub mod bench;
pub mod gen;
pub mod presets;
pub mod serve;

use args::{Args, ArgsError};

/// Short usage text (printed on errors and `--help`).
pub const USAGE: &str = "\
bas — battery-aware scheduling experiments, driven by declarative scenarios

USAGE:
    bas <preset> [--key value ...] [--format text|json|csv] [--out FILE]
    bas run <scenario.toml> [--key value ...] [--format text|json|csv] [--out FILE]
    bas portfolio [<scenario.toml>|<preset>] [--key value ...] [--format text|json] [--out FILE]
    bas scenario <preset> [--key value ...]   # print the preset as a scenario file
    bas gen <layered|fork-join|random> [--nodes N] [--seed S] [--format text|json]
    bas gen import <workflow.json> [--ref-speed HZ] [--format text|json]
    bas bench [--quick] [--repeat N] [--only LIST] [--format text|json]
              [--out FILE] [--scenarios DIR]
    bas serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
              [--state-dir DIR] [--quiet]
    bas list [--format text|json]
    bas help

PRESETS:
    table1, table2, fig4, fig5, fig6, guidelines, crossover, ablation,
    capacity-curve, sweep, portfolio — the paper's artifacts (and the
    generic sweep/portfolio), also checked in as files under scenarios/.
    Named presets (quickstart, sensor-node, media-player,
    battery-explorer) run their checked-in scenarios/<name>.toml.

OPTIONS:
    --format FMT     text (default): the historical tables/traces;
                     json | csv: the structured report (stable schema,
                     spec labels, per-seed metrics, summary stats)
    --out FILE       write the selected output to FILE instead of stdout
    --events FILE    additionally stream the engine's event stream of the
                     scenario's first trial (every spec) to FILE as
                     bas-events/v2 JSONL with per-event PE indices
                     (sweep scenarios only; O(1) memory)
    --key value      override a scenario knob, e.g. --trials 10 --seed 2
                     (run `bas list` for each preset's knobs)

GEN:
    `bas gen <family>` builds a synthetic big DAG (deterministic in
    family + --nodes + --seed, up to 10k nodes) and prints its graph
    summary — node/edge counts, roots/leaves, total and critical-path
    WCET, edge payload bytes — without simulating. The same generators
    back a scenario's `[workload]` block, so the summary describes
    exactly what `bas run` schedules. `bas gen import <file.json>`
    parses a WfCommons workflow instance instead (runtimes become WCET
    cycles at --ref-speed cycles/s, default 1e9; file payloads become
    edge bytes). --format json emits the stable bas-graph/v1 object.

BENCH:
    `bas bench` runs the pinned perf suite (smoke, sweep, mpsoc,
    battery-aware, biglittle, big-dag, each on 1 and 4 PEs) and reports
    steps-per-second per entry; --format json emits the bas-bench/v1 schema CI's perf gate
    compares against BENCH_baseline.json. --quick pins each scenario's
    smaller CI budget (fewer trials, shorter horizons). A `portfolio`
    entry races the whole 40-spec grammar through the portfolio path,
    and the suite ends with a `serve` entry measuring the daemon's
    requests-per-second and cache hit rate against an in-process server.

PORTFOLIO:
    `bas portfolio` races a set of scheduler specs — explicit labels,
    globs over the `governor+priority/scope` grammar, or `all` (40
    specs) — through one deterministic sweep per scenario, then reports
    the Pareto frontier over the scenario's axes (energy_j,
    deadline_misses, makespan, charge_c, lifetime_min), per-spec
    hypervolume and coverage, and an auto-pick recommendation. A `sweep`
    target (file or preset name) is adopted as a whole-grammar portfolio
    over the default axes. --format json emits the stable
    bas-portfolio/v1 schema; `bas run` on a portfolio scenario still
    emits the ordinary bas-report/v1 sweep report.

SERVE:
    `bas serve` runs the scheduling-as-a-service daemon: POST a scenario
    (TOML or JSON body) to /v1/jobs, poll GET /v1/jobs/<id>, fetch the
    bas-report/v1 report at /v1/jobs/<id>/report, stream the bas-events/v2
    replay at /v1/jobs/<id>/events; GET /v1/presets and /v1/healthz for
    the catalog and counters. Completed reports are cached by scenario
    digest (identical submissions coalesce onto one run); a full queue
    answers 429 with Retry-After. SIGINT/SIGTERM drain gracefully.
    With --state-dir the result cache is durable: completed reports and
    event streams are checksummed onto disk and survive restarts (warm
    digests are served byte-identical with zero recompute; torn or
    corrupt entries are quarantined, never served). Add ?follow=1 to the
    events URL of a queued/running job for a live subscription that
    converges byte-identically with the replay.
    --addr HOST:PORT   bind address (default 127.0.0.1:7878; port 0 picks
                       an ephemeral port, printed on the listening line)
    --workers N        worker threads (default 0 = all cores)
    --queue-depth N    queued-job bound before 429 (default 64)
    --cache N          completed jobs kept for cache hits (default 128)
    --max-trials N     per-request trials budget, 422 beyond (default 10000)
    --max-horizon S    per-request horizon budget, seconds (default 1e9)
    --max-body-bytes N request body cap, 413 beyond (default 1 MiB)
    --state-dir DIR    persist results to DIR (journal + checksummed blobs)
    --state-max-bytes N on-disk store budget, LRU-evicted (default 256 MiB)
    --follow-buffer-bytes N per-follower live buffer before lines are
                       dropped with a follow_drop marker (default 1 MiB)
    --quiet            suppress the stderr access log
";

/// Run the CLI on an argument list (no binary name); returns the process
/// exit code: 0 on success, 1 on runtime failure, 2 on usage errors.
pub fn run(argv: Vec<String>) -> i32 {
    match dispatch(argv) {
        Ok(()) => 0,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}\n");
            eprintln!("{USAGE}");
            2
        }
        Err(CliError::Runtime(message)) => {
            eprintln!("error: {message}");
            1
        }
    }
}

/// A CLI failure: a usage error (exit 2) or a runtime error (exit 1).
#[derive(Debug)]
pub enum CliError {
    /// Malformed invocation: bad flags, unknown preset, invalid override.
    Usage(String),
    /// The invocation was well-formed but the run failed.
    Runtime(String),
}

fn usage_err(e: impl std::fmt::Display) -> CliError {
    CliError::Usage(e.to_string())
}

fn dispatch(argv: Vec<String>) -> Result<(), CliError> {
    let args = Args::parse(argv).map_err(|e: ArgsError| usage_err(e))?;
    if args.help {
        println!("{USAGE}");
        return Ok(());
    }
    let Some(command) = args.positional.first() else {
        return Err(CliError::Usage("no command given".to_string()));
    };
    match command.as_str() {
        "list" => {
            expect_positionals(&args, 1)?;
            let mut json = false;
            for (key, value) in &args.flags {
                match (key.as_str(), value.as_str()) {
                    ("format", "text") => json = false,
                    ("format", "json") => json = true,
                    ("format", other) => {
                        return Err(CliError::Usage(format!(
                            "`bas list --format` must be text|json, got {other:?}"
                        )));
                    }
                    (key, _) => {
                        return Err(CliError::Usage(format!("`bas list` takes no --{key} flag")));
                    }
                }
            }
            if json {
                print!("{}", render_list_json());
            } else {
                println!("{}", render_list());
            }
            Ok(())
        }
        "bench" => {
            expect_positionals(&args, 1)?;
            bench::run(&args)
        }
        "serve" => {
            expect_positionals(&args, 1)?;
            serve::run(&args)
        }
        "gen" => gen::run(&args),
        "run" => {
            let path = args
                .positional
                .get(1)
                .ok_or_else(|| CliError::Usage("`bas run` needs a scenario file".to_string()))?;
            expect_positionals(&args, 2)?;
            // An unreadable file is a runtime failure (exit 1); a file that
            // reads but fails to parse or validate is malformed input, which
            // exits 2 with usage like any other bad invocation.
            let input = std::fs::read_to_string(Path::new(path))
                .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
            let scenario =
                Scenario::from_toml(&input).map_err(|e| CliError::Usage(format!("{path}: {e}")))?;
            run_with_overrides(scenario, &args)
        }
        "portfolio" if args.positional.len() > 1 => {
            // `bas portfolio <target>`: race a portfolio over an explicit
            // target — a scenario file, a preset kind, or a named preset.
            // A `sweep` target is adopted (whole grammar, default axes)
            // before the overrides apply, so portfolio-only knobs like
            // --axes and --reference work on any target.
            let target = &args.positional[1];
            expect_positionals(&args, 2)?;
            let scenario = if Path::new(target).exists() {
                let input = std::fs::read_to_string(Path::new(target))
                    .map_err(|e| CliError::Runtime(format!("{target}: {e}")))?;
                Scenario::from_toml(&input)
                    .map_err(|e| CliError::Usage(format!("{target}: {e}")))?
            } else if let Ok(kind) = target.parse::<ScenarioKind>() {
                Scenario::preset(kind)
            } else if NAMED_PRESETS.iter().any(|(n, _)| n == target) {
                load_named_preset(target)?
            } else {
                return Err(CliError::Usage(format!(
                    "`bas portfolio` needs a scenario file or preset, got {target:?}"
                )));
            };
            let adopted =
                bas_portfolio::adopt(scenario).map_err(|e| CliError::Usage(e.to_string()))?;
            run_portfolio_command(adopted, &args)
        }
        "portfolio" => {
            // Bare `bas portfolio`: race the built-in portfolio preset.
            run_portfolio_command(Scenario::preset(ScenarioKind::Portfolio), &args)
        }
        "scenario" => {
            let preset = args
                .positional
                .get(1)
                .ok_or_else(|| CliError::Usage("`bas scenario` needs a preset name".to_string()))?;
            expect_positionals(&args, 2)?;
            let kind: ScenarioKind = preset
                .parse()
                .map_err(|_| CliError::Usage(format!("unknown preset {preset:?}")))?;
            let mut scenario = Scenario::preset(kind);
            for (key, value) in &args.flags {
                scenario.set(&canonical_key(key), value).map_err(usage_err)?;
            }
            scenario.validate().map_err(usage_err)?;
            print!("{}", scenario.to_toml());
            Ok(())
        }
        preset => {
            expect_positionals(&args, 1)?;
            if let Ok(kind) = preset.parse::<ScenarioKind>() {
                run_with_overrides(Scenario::preset(kind), &args)
            } else if NAMED_PRESETS.iter().any(|(n, _)| *n == preset) {
                run_with_overrides(load_named_preset(preset)?, &args)
            } else {
                Err(CliError::Usage(format!("unknown command or preset {preset:?}")))
            }
        }
    }
}

/// Run an adopted/validated-kind portfolio scenario for the `bas
/// portfolio` subcommand: apply `--key` overrides, race the lineup, and
/// emit the text table or the `bas-portfolio/v1` JSON.
fn run_portfolio_command(mut scenario: Scenario, args: &Args) -> Result<(), CliError> {
    let mut json = false;
    let mut out_path: Option<&str> = None;
    for (key, value) in &args.flags {
        match key.as_str() {
            "format" => {
                json = match value.as_str() {
                    "text" => false,
                    "json" => true,
                    other => {
                        return Err(CliError::Usage(format!(
                            "`bas portfolio --format` must be text|json, got {other:?}"
                        )));
                    }
                };
            }
            "out" => out_path = Some(value),
            key => {
                scenario.set(&canonical_key(key), value).map_err(usage_err)?;
            }
        }
    }
    scenario.validate().map_err(usage_err)?;
    let report =
        bas_portfolio::run_portfolio(&scenario).map_err(|e| CliError::Runtime(e.to_string()))?;
    let payload = if json { report.to_json() } else { report.to_text() };
    match out_path {
        Some(path) => std::fs::write(path, &payload)
            .map_err(|e| CliError::Runtime(format!("writing {path}: {e}")))?,
        None => print!("{payload}"),
    }
    Ok(())
}

fn expect_positionals(args: &Args, n: usize) -> Result<(), CliError> {
    if args.positional.len() > n {
        return Err(CliError::Usage(format!("unexpected argument {:?}", args.positional[n])));
    }
    Ok(())
}

/// Output format of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Csv,
}

/// Legacy flag names of the retired per-artifact binaries, mapped onto
/// scenario keys (hyphens normalize to underscores independently).
fn canonical_key(key: &str) -> String {
    match key {
        "max-time" => "horizon".to_string(),
        "actuals" => "sampler".to_string(),
        "proc" => "processor".to_string(),
        _ => key.replace('-', "_"),
    }
}

fn run_with_overrides(mut scenario: Scenario, args: &Args) -> Result<(), CliError> {
    let mut format = Format::Text;
    let mut out_path: Option<&str> = None;
    let mut events_path: Option<&str> = None;
    for (key, value) in &args.flags {
        match key.as_str() {
            "format" => {
                format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => {
                        return Err(CliError::Usage(format!(
                            "--format must be text|json|csv, got {other:?}"
                        )));
                    }
                };
            }
            "out" => out_path = Some(value),
            "events" => events_path = Some(value),
            key => {
                scenario.set(&canonical_key(key), value).map_err(usage_err)?;
            }
        }
    }
    scenario.validate().map_err(usage_err)?;
    if events_path.is_some() && scenario.kind != ScenarioKind::Sweep {
        return Err(CliError::Usage(format!(
            "--events captures the engine event stream of a `sweep` scenario; \
             kind `{}` does not support it",
            scenario.kind
        )));
    }
    let (text, report) = run_scenario(&scenario).map_err(CliError::Runtime)?;
    if let Some(path) = events_path {
        write_events(&scenario, path)?;
    }
    let payload = match format {
        Format::Text => text,
        Format::Json => report.to_json(),
        Format::Csv => report.to_csv(),
    };
    match out_path {
        Some(path) => std::fs::write(path, &payload)
            .map_err(|e| CliError::Runtime(format!("writing {path}: {e}")))?,
        None => print!("{payload}"),
    }
    Ok(())
}

/// Stream the `bas-events/v2` event stream of the scenario's **first trial**
/// to `path` via [`Scenario::stream_events`] — the same replay `bas serve`
/// streams to HTTP subscribers, so file captures and served streams are
/// byte-identical for the same scenario.
fn write_events(scenario: &Scenario, path: &str) -> Result<(), CliError> {
    let file =
        std::fs::File::create(path).map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
    let mut sink = scenario
        .stream_events(std::io::BufWriter::new(file))
        .map_err(|e| CliError::Runtime(format!("events capture: {e}")))?;
    sink.flush().map_err(|e| CliError::Runtime(format!("writing {path}: {e}")))?;
    Ok(())
}

/// Run a validated scenario, returning its historical text rendering and
/// the structured [`Report`]. The text is byte-identical to what the
/// retired per-artifact binaries printed for the same knobs.
pub fn run_scenario(scenario: &Scenario) -> Result<(String, Report), String> {
    let run = match scenario.kind {
        ScenarioKind::Sweep => presets::sweep::run,
        ScenarioKind::Table1 => presets::table1::run,
        ScenarioKind::Table2 => presets::table2::run,
        ScenarioKind::Fig4 => presets::fig4::run,
        ScenarioKind::Fig5 => presets::fig5::run,
        ScenarioKind::Fig6 => presets::fig6::run,
        ScenarioKind::Guidelines => presets::guidelines::run,
        ScenarioKind::Crossover => presets::crossover::run,
        ScenarioKind::Ablation => presets::ablation::run,
        ScenarioKind::CapacityCurve => presets::capacity_curve::run,
        ScenarioKind::Portfolio => presets::portfolio::run,
    };
    run(scenario)
}

/// Named presets: checked-in scenario files promoted into the catalog, run
/// by name like the built-in kinds (`bas quickstart`). Each is a curated
/// configuration of an existing [`ScenarioKind`] rather than a kind of its
/// own, so its knobs come from the file's kind.
pub const NAMED_PRESETS: &[(&str, &str)] = &[
    ("quickstart", "the Table-2 lineup on one paper-scale workload over a AAA NiMH cell"),
    ("sensor-node", "a battery-aware scheduler vs no-DVS on the hand-built sense/calibrate tasks"),
    ("media-player", "the video/UI/housekeeping pipeline lineup from the media-player example"),
    ("battery-explorer", "a small log-spaced constant-current capacity sweep of the NiMH cell"),
];

/// Load a named preset's checked-in scenario file (`scenarios/<name>.toml`).
fn load_named_preset(name: &str) -> Result<Scenario, CliError> {
    let path = format!("scenarios/{name}.toml");
    Scenario::load(Path::new(&path)).map_err(|e| {
        CliError::Runtime(format!("named preset `{name}` needs its checked-in file: {path}: {e}"))
    })
}

/// The preset catalog as machine-readable JSON (`bas list --format json`):
/// one object per preset with its name, description, knob names and the
/// checked-in scenario path, plus the list of scenario files on disk.
fn render_list_json() -> String {
    use bas_core::report::json_string as json_str;
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"presets\": [");
    for (i, kind) in ScenarioKind::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let knobs: Vec<String> = kind.fields().iter().map(|f| json_str(f)).collect();
        let _ = write!(
            out,
            "\n    {{\"name\": {}, \"description\": {}, \"scenario\": {}, \"knobs\": [{}]}}",
            json_str(kind.name()),
            json_str(kind.describe()),
            json_str(&format!("scenarios/{}.toml", kind.name())),
            knobs.join(", ")
        );
    }
    // Named presets ride along in the same array: their knobs are the
    // knobs of the checked-in file's kind.
    for (name, describe) in NAMED_PRESETS {
        let path = format!("scenarios/{name}.toml");
        let Ok(s) = Scenario::load(Path::new(&path)) else { continue };
        let knobs: Vec<String> = s.kind.fields().iter().map(|f| json_str(f)).collect();
        let _ = write!(
            out,
            ",\n    {{\"name\": {}, \"description\": {}, \"scenario\": {}, \"kind\": {}, \"knobs\": [{}]}}",
            json_str(name),
            json_str(describe),
            json_str(&path),
            json_str(s.kind.name()),
            knobs.join(", ")
        );
    }
    out.push_str("\n  ],\n  \"files\": [");
    let mut first = true;
    if let Ok(entries) = std::fs::read_dir("scenarios") {
        let mut files: Vec<String> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "toml"))
            .map(|p| p.display().to_string())
            .collect();
        files.sort();
        for f in files {
            let Ok(s) = Scenario::load(Path::new(&f)) else { continue };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"path\": {}, \"name\": {}, \"kind\": {}}}",
                json_str(&f),
                json_str(&s.name),
                json_str(s.kind.name())
            );
        }
    }
    if !first {
        out.push('\n');
        out.push_str("  ");
    }
    out.push_str("]\n}\n");
    out
}

fn render_list() -> String {
    let mut out = String::from("presets (run with `bas <name>`; files under scenarios/):\n");
    for kind in ScenarioKind::ALL {
        let fields = kind.fields();
        let knobs = if fields.is_empty() { "(no knobs)".to_string() } else { fields.join(", ") };
        out.push_str(&format!("  {:15} {}\n", kind.name(), kind.describe()));
        out.push_str(&format!("  {:15}   knobs: {}\n", "", knobs));
    }
    out.push_str("\nnamed presets (curated scenario files, run with `bas <name>`):\n");
    for (name, describe) in NAMED_PRESETS {
        out.push_str(&format!("  {name:15} {describe}\n"));
    }
    if let Ok(entries) = std::fs::read_dir("scenarios") {
        let mut files: Vec<String> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "toml"))
            .map(|p| p.display().to_string())
            .collect();
        files.sort();
        if !files.is_empty() {
            out.push_str("\nscenario files (run with `bas run <file>`):\n");
            for f in files {
                match Scenario::load(Path::new(&f)) {
                    Ok(s) => out.push_str(&format!("  {f}  ({}, kind {})\n", s.name, s.kind)),
                    Err(e) => out.push_str(&format!("  {f}  (INVALID: {e})\n")),
                }
            }
        }
    }
    out
}

/// `writeln!` into the run's text buffer (infallible for `String`).
macro_rules! outln {
    ($out:expr) => { $out.push('\n') };
    ($out:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        writeln!($out, $($arg)*).expect("writing to String cannot fail");
    }};
}
pub(crate) use outln;
