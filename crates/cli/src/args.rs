//! Fallible `--key value` flag parsing for the `bas` CLI.
//!
//! The historical per-binary parser panicked on malformed input; this one
//! reports [`ArgsError`]s so `bas` can print a usage message and exit with
//! code 2 instead of a backtrace.

use std::fmt;

/// A malformed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(pub String);

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgsError {}

/// Parsed command line: positional words plus `--key value` flags, in
/// order of appearance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// Positional (non-flag) arguments, in order.
    pub positional: Vec<String>,
    /// `--key value` flags, in order of appearance (duplicates preserved —
    /// later occurrences override earlier ones when applied in order).
    pub flags: Vec<(String, String)>,
    /// Whether `--help`/`-h`/`help` appeared anywhere.
    pub help: bool,
}

/// Flags that stand alone (recorded with the value `"true"`): everything
/// else follows the uniform `--key value` grammar.
const VALUELESS_FLAGS: &[&str] = &["quick", "quiet"];

impl Args {
    /// Parse an argument list (without the binary name). A `--` separator
    /// (as inserted by `cargo run --`) is skipped. Every `--key` takes a
    /// value except `--help` and the standalone switches (`--quick`,
    /// `--quiet`); a valued flag without a value is an error.
    pub fn parse(iter: impl IntoIterator<Item = String>) -> Result<Args, ArgsError> {
        let mut args = Args::default();
        let mut it = iter.into_iter();
        while let Some(token) = it.next() {
            if token == "--" {
                continue;
            }
            if token == "--help" || token == "-h" || (args.positional.is_empty() && token == "help")
            {
                args.help = true;
                continue;
            }
            if let Some(key) = token.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgsError("empty flag name `--`".to_string()));
                }
                if VALUELESS_FLAGS.contains(&key) {
                    args.flags.push((key.to_string(), "true".to_string()));
                    continue;
                }
                let value =
                    it.next().ok_or_else(|| ArgsError(format!("flag --{key} needs a value")))?;
                if value.starts_with("--") {
                    return Err(ArgsError(format!(
                        "flag --{key} needs a value, got another flag {value:?}"
                    )));
                }
                args.flags.push((key.to_string(), value));
            } else if token.starts_with('-') && token.len() > 1 {
                return Err(ArgsError(format!("unknown flag {token:?} (flags are --key value)")));
            } else {
                args.positional.push(token);
            }
        }
        Ok(args)
    }

    /// The value of the last occurrence of `--key`, if any.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn splits_positionals_and_flags() {
        let a = parse(&["run", "x.toml", "--trials", "5", "--format", "json"]).unwrap();
        assert_eq!(a.positional, vec!["run", "x.toml"]);
        assert_eq!(a.flag("trials"), Some("5"));
        assert_eq!(a.flag("format"), Some("json"));
        assert!(!a.help);
    }

    #[test]
    fn later_flags_win() {
        let a = parse(&["--seed", "1", "--seed", "2"]).unwrap();
        assert_eq!(a.flag("seed"), Some("2"));
    }

    #[test]
    fn missing_value_is_an_error_not_a_panic() {
        let e = parse(&["table2", "--trials"]).unwrap_err();
        assert!(e.to_string().contains("needs a value"), "{e}");
        let e = parse(&["table2", "--trials", "--seed"]).unwrap_err();
        assert!(e.to_string().contains("another flag"), "{e}");
    }

    #[test]
    fn unknown_single_dash_flags_are_errors() {
        assert!(parse(&["-x"]).is_err());
        assert!(parse(&["--"]).unwrap().positional.is_empty());
    }

    #[test]
    fn help_forms_are_detected() {
        assert!(parse(&["--help"]).unwrap().help);
        assert!(parse(&["-h"]).unwrap().help);
        assert!(parse(&["help"]).unwrap().help);
        // `help` after a subcommand is a positional, not the help flag.
        assert_eq!(parse(&["run", "help"]).unwrap().positional, vec!["run", "help"]);
    }

    #[test]
    fn quick_is_a_valueless_switch() {
        let a = parse(&["bench", "--quick", "--format", "json"]).unwrap();
        assert_eq!(a.positional, vec!["bench"]);
        assert_eq!(a.flag("quick"), Some("true"));
        assert_eq!(a.flag("format"), Some("json"));
        // Trailing --quick must not swallow a missing value.
        let a = parse(&["bench", "--quick"]).unwrap();
        assert_eq!(a.flag("quick"), Some("true"));
    }

    #[test]
    fn quiet_is_a_valueless_switch() {
        let a = parse(&["serve", "--quiet", "--workers", "2"]).unwrap();
        assert_eq!(a.positional, vec!["serve"]);
        assert_eq!(a.flag("quiet"), Some("true"));
        assert_eq!(a.flag("workers"), Some("2"));
    }

    #[test]
    fn double_dash_separator_is_skipped() {
        let a = parse(&["--", "table2", "--trials", "3"]).unwrap();
        assert_eq!(a.positional, vec!["table2"]);
        assert_eq!(a.flag("trials"), Some("3"));
    }
}
