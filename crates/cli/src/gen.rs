//! `bas gen` — synthetic DAG generation and WfCommons import from the
//! command line.
//!
//! ```text
//! bas gen <layered|fork-join|random> [--nodes N] [--seed S]
//! bas gen import <workflow.json> [--ref-speed CYCLES_PER_SEC]
//! ```
//!
//! Both forms build a task graph and print a deterministic summary —
//! node/edge counts, source/sink counts, total and critical-path WCET,
//! total edge payload bytes — without running a simulation. The generator
//! form is the same seeded machinery behind a scenario's `[workload]`
//! block (same family + nodes + seed, same graph, bit for bit), so the
//! summary here describes exactly what `bas run` will schedule.
//! `--format json` emits the stable [`SCHEMA`] object CI's
//! workload-import job validates fixture parses against.

use crate::args::Args;
use crate::{outln, CliError};
use bas_core::report::json_string;
use bas_taskgraph::TaskGraph;
use bas_workload::{wfcommons, BigDagConfig, Family, ImportConfig};
use std::path::Path;

/// Stable schema tag of `bas gen --format json`.
pub const SCHEMA: &str = "bas-graph/v1";

/// Run `bas gen` on the parsed argument list.
pub fn run(args: &Args) -> Result<(), CliError> {
    let (payload, out_path) = render(args)?;
    match out_path {
        Some(path) => std::fs::write(&path, &payload)
            .map_err(|e| CliError::Runtime(format!("writing {path}: {e}")))?,
        None => print!("{payload}"),
    }
    Ok(())
}

/// Build the summary payload and the optional `--out` destination.
fn render(args: &Args) -> Result<(String, Option<String>), CliError> {
    let Some(target) = args.positional.get(1) else {
        return Err(CliError::Usage(
            "`bas gen` needs a DAG family (layered, fork-join, random) \
             or `import <workflow.json>`"
                .to_string(),
        ));
    };
    if target == "import" {
        render_import(args)
    } else {
        render_generate(target, args)
    }
}

fn render_generate(family: &str, args: &Args) -> Result<(String, Option<String>), CliError> {
    crate::expect_positionals(args, 2)?;
    let family: Family = family.parse().map_err(crate::usage_err)?;
    let mut config = BigDagConfig { family, ..BigDagConfig::default() };
    let mut json = false;
    let mut out_path = None;
    for (key, value) in &args.flags {
        match key.as_str() {
            "nodes" => config.nodes = parse_flag(key, value)?,
            "seed" => config.seed = parse_flag(key, value)?,
            "format" => json = parse_format(value)?,
            "out" => out_path = Some(value.clone()),
            key => return Err(CliError::Usage(format!("`bas gen` takes no --{key} flag"))),
        }
    }
    let graph = config.generate().map_err(crate::usage_err)?;
    let payload = if json {
        graph_json(
            &graph,
            &[
                ("source", json_string("generated")),
                ("family", json_string(family.name())),
                ("seed", config.seed.to_string()),
            ],
        )
    } else {
        graph_text(
            &graph,
            &format!("{}: generated {} DAG, seed {}", graph.name(), family.name(), config.seed),
        )
    };
    Ok((payload, out_path))
}

fn render_import(args: &Args) -> Result<(String, Option<String>), CliError> {
    let path = args.positional.get(2).ok_or_else(|| {
        CliError::Usage("`bas gen import` needs a WfCommons JSON file".to_string())
    })?;
    crate::expect_positionals(args, 3)?;
    let mut config = ImportConfig::default();
    let mut json = false;
    let mut out_path = None;
    for (key, value) in &args.flags {
        match key.as_str() {
            "ref-speed" | "ref_speed" => {
                config.ref_speed = parse_flag(key, value)?;
            }
            "format" => json = parse_format(value)?,
            "out" => out_path = Some(value.clone()),
            key => {
                return Err(CliError::Usage(format!("`bas gen import` takes no --{key} flag")));
            }
        }
    }
    // An unreadable file is a runtime failure; a file that reads but does
    // not parse as a workflow instance is malformed input (exit 2), like
    // a scenario file that fails validation.
    let input = std::fs::read_to_string(Path::new(path))
        .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
    let import = wfcommons::import_str(&input, &config)
        .map_err(|e| CliError::Usage(format!("{path}: {e}")))?;
    let payload = if json {
        graph_json(
            &import.graph,
            &[
                ("source", json_string("imported")),
                ("file", json_string(path)),
                ("ref_speed", format!("{}", config.ref_speed)),
            ],
        )
    } else {
        graph_text(
            &import.graph,
            &format!(
                "{}: imported WfCommons workflow ({path}, {} cycles/s)",
                import.name, config.ref_speed
            ),
        )
    };
    Ok((payload, out_path))
}

fn parse_flag<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, CliError> {
    value.parse().map_err(|_| CliError::Usage(format!("--{key} {value:?} is not a valid value")))
}

fn parse_format(value: &str) -> Result<bool, CliError> {
    match value {
        "text" => Ok(false),
        "json" => Ok(true),
        other => {
            Err(CliError::Usage(format!("`bas gen --format` must be text|json, got {other:?}")))
        }
    }
}

/// The `bas-graph/v1` summary: provenance head (pre-rendered JSON values),
/// then the graph's structural numbers.
fn graph_json(graph: &TaskGraph, head: &[(&str, String)]) -> String {
    let mut out = String::from("{\n");
    outln!(out, "  \"schema\": {},", json_string(SCHEMA));
    for (key, value) in head {
        outln!(out, "  {}: {},", json_string(key), value);
    }
    outln!(out, "  \"name\": {},", json_string(graph.name()));
    outln!(out, "  \"nodes\": {},", graph.node_count());
    outln!(out, "  \"edges\": {},", graph.edge_count());
    outln!(out, "  \"roots\": {},", graph.sources().len());
    outln!(out, "  \"leaves\": {},", graph.sinks().len());
    outln!(out, "  \"total_wcet\": {},", graph.total_wcet());
    outln!(out, "  \"critical_path\": {},", graph.critical_path());
    outln!(out, "  \"total_edge_bytes\": {}", graph.total_edge_bytes());
    out.push_str("}\n");
    out
}

fn graph_text(graph: &TaskGraph, headline: &str) -> String {
    let mut out = String::new();
    outln!(out, "{headline}");
    outln!(out, "  nodes            {}", graph.node_count());
    outln!(out, "  edges            {}", graph.edge_count());
    outln!(out, "  roots / leaves   {} / {}", graph.sources().len(), graph.sinks().len());
    outln!(out, "  total WCET       {} cycles", graph.total_wcet());
    outln!(out, "  critical path    {} cycles", graph.critical_path());
    outln!(out, "  edge payload     {} bytes", graph.total_edge_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render_argv(argv: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(argv.iter().map(|s| s.to_string())).unwrap();
        render(&args).map(|(payload, _)| payload)
    }

    const DIAMOND: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../workload/fixtures/diamond.json");

    #[test]
    fn generated_summary_is_deterministic_and_matches_the_generator() {
        let argv = ["gen", "layered", "--nodes", "500", "--seed", "7", "--format", "json"];
        let a = render_argv(&argv).unwrap();
        let b = render_argv(&argv).unwrap();
        assert_eq!(a, b, "same seed, same summary, bit for bit");
        assert!(a.contains("\"schema\": \"bas-graph/v1\""), "{a}");
        assert!(a.contains("\"nodes\": 500"), "{a}");
        let graph = BigDagConfig {
            family: Family::Layered,
            nodes: 500,
            seed: 7,
            ..BigDagConfig::default()
        }
        .generate()
        .unwrap();
        assert!(a.contains(&format!("\"edges\": {}", graph.edge_count())), "{a}");
        assert!(a.contains(&format!("\"critical_path\": {}", graph.critical_path())), "{a}");
    }

    #[test]
    fn import_reports_the_golden_fixture_counts() {
        let json = render_argv(&["gen", "import", DIAMOND, "--format", "json"]).unwrap();
        assert!(json.contains("\"name\": \"diamond\""), "{json}");
        assert!(json.contains("\"nodes\": 4"), "{json}");
        assert!(json.contains("\"edges\": 4"), "{json}");
        assert!(json.contains("\"total_edge_bytes\": 3932160"), "{json}");
        // Halving the reference speed halves every WCET.
        let text = render_argv(&["gen", "import", DIAMOND, "--ref-speed", "5e8"]).unwrap();
        assert!(text.contains("total WCET       6125000000 cycles"), "{text}");
    }

    #[test]
    fn text_summary_has_the_headline_and_rows() {
        let text = render_argv(&["gen", "fork-join", "--nodes", "64", "--seed", "3"]).unwrap();
        assert!(text.starts_with("fork-join-n64-s3: generated fork-join DAG, seed 3\n"), "{text}");
        assert!(text.contains("  nodes            64\n"), "{text}");
    }

    #[test]
    fn bad_invocations_are_usage_errors() {
        for argv in [
            &["gen"][..],
            &["gen", "tree"],
            &["gen", "layered", "--nodes", "zero"],
            &["gen", "layered", "--format", "csv"],
            &["gen", "layered", "--ref-speed", "1e9"],
            &["gen", "import"],
            &["gen", "layered", "extra"],
        ] {
            match render_argv(argv) {
                Err(CliError::Usage(_)) => {}
                other => panic!("{argv:?} should be a usage error, got {other:?}"),
            }
        }
        // A missing import file is a runtime failure, not a usage error.
        match render_argv(&["gen", "import", "/nonexistent/wf.json"]) {
            Err(CliError::Runtime(_)) => {}
            other => panic!("missing file should be a runtime error, got {other:?}"),
        }
    }
}
