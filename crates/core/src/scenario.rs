//! Declarative experiment scenarios — the file-driven experiment surface.
//!
//! A [`Scenario`] is the complete, serializable description of one
//! experiment: which experiment shape ([`ScenarioKind`]), the workload
//! family, the scheduler lineup, the processor and battery presets (by
//! name — see `bas_cpu::presets::by_name` and `bas_battery::registry`),
//! the sampler, horizon, seed range and thread count. Scenarios round-trip
//! through a TOML subset (see [`crate::toml`]), so the whole evaluation is
//! drivable from checked-in files:
//!
//! ```text
//! # scenarios/smoke.toml
//! name = "smoke"
//! kind = "sweep"
//! trials = 2
//! seed = 1
//! specs = ["EDF", "BAS-2"]
//! ...
//! ```
//!
//! Every paper artifact is a preset scenario ([`Scenario::preset`]); the
//! generic [`ScenarioKind::Sweep`] opens arbitrary new workloads — any
//! lineup × workload × platform combination — without writing a binary.
//!
//! Each kind serializes exactly its relevant knobs ([`ScenarioKind::fields`])
//! and rejects unknown keys, so a typo in a scenario file is an error, not a
//! silently ignored setting. Omitted keys take the kind's preset defaults —
//! the checked-in `scenarios/*.toml` files and the built-in presets are the
//! same objects.

use crate::experiment::{Experiment, MapperKind, Sweep, SweepReport};
use crate::runner::{expand_spec_patterns, SamplerKind, SchedulerSpec};
use crate::toml::{self, Value};
use crate::workloads::{paper_scale_config, unit_scale_config};
use bas_battery::BatteryModel;
use bas_cpu::{FreqPolicy, Platform, Processor};
use bas_taskgraph::{TaskSet, TaskSetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::str::FromStr;

/// Which experiment shape a scenario describes. One kind per paper artifact
/// plus the open-ended [`ScenarioKind::Sweep`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// A generic sweep: scheduler lineup × workload × platform, the shape of
    /// the paper's whole evaluation, with every knob open.
    Sweep,
    /// Table 1 — single-DAG ordering vs exhaustive optimum.
    Table1,
    /// Table 2 — charge delivered & battery lifetime per scheduler.
    Table2,
    /// Figure 4 — LTF vs STF motivational traces.
    Fig4,
    /// Figure 5 — canonical EDF vs pUBS+feasibility traces.
    Fig5,
    /// Figure 6 — ordering schemes normalized to near-optimal.
    Fig6,
    /// §3 guideline experiments (G1 shape, G2 no-idle).
    Guidelines,
    /// Utilization sweep — where the battery-aware gains appear.
    Crossover,
    /// Design-choice ablations.
    Ablation,
    /// §5 load-vs-delivered-capacity curve + extrapolation.
    CapacityCurve,
    /// Portfolio race: a spec set (globs over the grammar allowed) raced
    /// through one sweep, reported as a Pareto frontier over metric axes
    /// with hypervolume/coverage analytics and an auto-pick (the analytics
    /// live in the `bas-portfolio` crate; this kind is the declarative
    /// surface).
    Portfolio,
}

impl ScenarioKind {
    /// Every kind, in presentation order.
    pub const ALL: [ScenarioKind; 11] = [
        ScenarioKind::Sweep,
        ScenarioKind::Table1,
        ScenarioKind::Table2,
        ScenarioKind::Fig4,
        ScenarioKind::Fig5,
        ScenarioKind::Fig6,
        ScenarioKind::Guidelines,
        ScenarioKind::Crossover,
        ScenarioKind::Ablation,
        ScenarioKind::CapacityCurve,
        ScenarioKind::Portfolio,
    ];

    /// The scenario-file name of the kind (`"capacity-curve"` style).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::Sweep => "sweep",
            ScenarioKind::Table1 => "table1",
            ScenarioKind::Table2 => "table2",
            ScenarioKind::Fig4 => "fig4",
            ScenarioKind::Fig5 => "fig5",
            ScenarioKind::Fig6 => "fig6",
            ScenarioKind::Guidelines => "guidelines",
            ScenarioKind::Crossover => "crossover",
            ScenarioKind::Ablation => "ablation",
            ScenarioKind::CapacityCurve => "capacity-curve",
            ScenarioKind::Portfolio => "portfolio",
        }
    }

    /// One-line description (shown by `bas list`).
    pub fn describe(&self) -> &'static str {
        match self {
            ScenarioKind::Sweep => "generic scheduler lineup × workload × platform sweep",
            ScenarioKind::Table1 => "Table 1: single-DAG ordering vs exhaustive optimum",
            ScenarioKind::Table2 => "Table 2: charge delivered & battery lifetime per scheduler",
            ScenarioKind::Fig4 => "Figure 4: LTF vs STF motivational traces",
            ScenarioKind::Fig5 => "Figure 5: canonical EDF vs pUBS+feasibility traces",
            ScenarioKind::Fig6 => "Figure 6: ordering schemes normalized to near-optimal",
            ScenarioKind::Guidelines => "§3 guideline experiments (G1 shape, G2 no-idle)",
            ScenarioKind::Crossover => "utilization sweep: where the battery-aware gains appear",
            ScenarioKind::Ablation => {
                "design-choice ablations (freq, estimator, feasibility, Ceff)"
            }
            ScenarioKind::CapacityCurve => "§5 load-vs-delivered-capacity curve + extrapolation",
            ScenarioKind::Portfolio => {
                "race a scheduler portfolio, report the Pareto frontier + auto-pick"
            }
        }
    }

    /// The serialized knobs of this kind, in file order. `name` and `kind`
    /// are always present and not listed here.
    pub fn fields(&self) -> &'static [&'static str] {
        match self {
            ScenarioKind::Sweep => &[
                "trials",
                "seed",
                "threads",
                "graphs",
                "util",
                "horizon",
                "specs",
                "workload",
                "processor",
                "battery",
                "sampler",
                "freq",
                "generator",
                "nodes",
                "pes",
                "processors",
                "latency",
                "bandwidth",
                "mapper",
            ],
            ScenarioKind::Table1 => {
                &["trials", "seed", "threads", "util", "freq", "shape", "processor", "noise"]
            }
            ScenarioKind::Table2 => &[
                "trials", "seed", "threads", "graphs", "util", "horizon", "battery", "freq",
                "sampler",
            ],
            ScenarioKind::Fig4 => &[],
            ScenarioKind::Fig5 => &["horizon"],
            ScenarioKind::Fig6 => {
                &["trials", "seed", "threads", "util", "governor", "max_graphs", "horizon_periods"]
            }
            ScenarioKind::Guidelines => &[],
            ScenarioKind::Crossover => &["trials", "seed", "threads"],
            ScenarioKind::Ablation => &["trials", "seed"],
            ScenarioKind::CapacityCurve => &["points", "lo", "hi"],
            ScenarioKind::Portfolio => &[
                "trials",
                "seed",
                "threads",
                "graphs",
                "util",
                "horizon",
                "specs",
                "axes",
                "reference",
                "workload",
                "processor",
                "battery",
                "sampler",
                "freq",
                "generator",
                "nodes",
                "pes",
                "processors",
                "latency",
                "bandwidth",
                "mapper",
            ],
        }
    }
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ScenarioKind {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ScenarioKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| ScenarioError::invalid("kind", format!("unknown kind {s:?}")))
    }
}

/// The full, serializable description of one experiment. Construct with
/// [`Scenario::preset`] (the paper artifacts) or deserialize from a file
/// with [`Scenario::from_toml`] / [`Scenario::load`].
///
/// The struct is a flat union of every kind's knobs; only the fields the
/// kind lists in [`ScenarioKind::fields`] are serialized or overridable —
/// the rest stay at their defaults and are ignored by the runner.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (defaults to the kind name; file loads may override).
    pub name: String,
    /// The experiment shape.
    pub kind: ScenarioKind,
    /// Trials per measured cell.
    pub trials: usize,
    /// Base seed the trial seeds derive from ([`Sweep::seed_for`]).
    pub seed: u64,
    /// Worker threads (0 = available cores).
    pub threads: usize,
    /// Task graphs per generated set.
    pub graphs: usize,
    /// Target worst-case utilization of generated sets.
    pub util: f64,
    /// Simulated-time bound, seconds (battery runs are censored at it).
    pub horizon: f64,
    /// Scheduler lineup, as [`SchedulerSpec`] labels/aliases. The label in
    /// reports is the string as written (`"BAS-2"` stays `BAS-2`). Portfolio
    /// scenarios additionally accept `"all"` and `*`/`?` globs over the
    /// canonical grammar (see [`crate::expand_spec_patterns`]).
    pub specs: Vec<String>,
    /// Metric axes of a portfolio's Pareto frontier, in presentation order
    /// (subset of [`PORTFOLIO_AXES`]; portfolio kind only).
    pub axes: Vec<String>,
    /// Hypervolume reference point of a portfolio, one value per axis;
    /// empty = derived from the observed points (worst value per axis,
    /// inflated by 10% of the observed range). Portfolio kind only.
    pub reference: Vec<f64>,
    /// Workload family: `paper` (mega-cycle WCETs on the GHz platform) or
    /// `unit` (dimensionless). Ignored while a big-DAG
    /// [`generator`](Self::generator) is active.
    pub workload: String,
    /// Big-DAG generator family (`[workload]` block's `generator` key):
    /// `none` (default — use the TGFF-style [`workload`](Self::workload)
    /// family) or one of `bas_workload`'s families (`layered`, `fork-join`,
    /// `random`). When active, each trial runs one generated
    /// [`nodes`](Self::nodes)-node DAG (seeded with the trial seed) under
    /// the period envelope that hits the scenario's `util` on the
    /// platform's fastest PE; the `graphs` knob is ignored.
    pub generator: String,
    /// Node count of generated big DAGs (`[workload]` block's `nodes` key).
    pub nodes: usize,
    /// Processor preset name (`bas_cpu::presets::by_name`); on a multi-PE
    /// platform, the shared preset every element uses unless
    /// [`Scenario::processors`] lists per-PE presets.
    pub processor: String,
    /// Processing elements of the platform (sweep kind; `[platform]`
    /// block's `pes` key). 1 = the paper's uniprocessor.
    pub pes: usize,
    /// Optional per-PE processor preset names (`[platform]` block's
    /// `processors` key): empty = every PE runs the shared
    /// [`Scenario::processor`] preset; otherwise one name per PE.
    pub processors: Vec<String>,
    /// Interconnect startup latency, seconds (`[platform]` block's
    /// `latency` key). Together with [`bandwidth`](Self::bandwidth): when
    /// either is positive, an [`bas_cpu::Interconnect`] is mounted and
    /// cross-PE DAG edges charge `latency + bytes / bandwidth` before the
    /// successor becomes ready. Both zero (default) = free fabric, the
    /// historical behaviour.
    pub latency: f64,
    /// Interconnect bandwidth, bytes/second (`[platform]` block's
    /// `bandwidth` key). `0` with a positive latency = an infinitely fast
    /// fabric that only charges its latency.
    pub bandwidth: f64,
    /// Multi-PE node placement (`[platform]` block's `mapper` key):
    /// `weighted` (fmax-weighted list scheduling, the default) or `hetero`
    /// (heterogeneity-aware: load + communication-penalty scoring at the
    /// interconnect's prices — see
    /// [`Mapping::list_schedule_hetero`](bas_taskgraph::Mapping::list_schedule_hetero)).
    pub mapper: String,
    /// Battery preset name (`bas_battery::registry::by_name`), or `none`
    /// for horizon-only simulation.
    pub battery: String,
    /// How actual computations are drawn.
    pub sampler: SamplerKind,
    /// How continuous `fref` maps onto the discrete operating points.
    pub freq: FreqPolicy,
    /// Graph shape for Table 1: `layered`, `fifo` or `independent`.
    pub shape: String,
    /// DVS governor for Figure 6: `ccedf` or `laedf`.
    pub governor: String,
    /// Relative accuracy of the modelled `Xk` estimator (Table 1).
    pub noise: f64,
    /// Largest graph count of the Figure 6 sweep.
    pub max_graphs: usize,
    /// Horizon in multiples of the longest period (Figure 6).
    pub horizon_periods: f64,
    /// Number of load points on the capacity curve.
    pub points: usize,
    /// Lowest constant load of the capacity curve, amperes.
    pub lo: f64,
    /// Highest constant load of the capacity curve, amperes.
    pub hi: f64,
}

/// The scenario knobs that live in the `[platform]` table of the
/// serialized form rather than as flat keys.
const PLATFORM_KEYS: &[&str] = &["pes", "processors", "latency", "bandwidth", "mapper"];

/// The scenario knobs that live in the `[workload]` table of the
/// serialized form rather than as flat keys. (The flat `workload` key —
/// the TGFF-style family — predates the table and stays flat.)
const WORKLOAD_KEYS: &[&str] = &["generator", "nodes"];

/// The metric axes a portfolio scenario may race on (its `axes` knob).
/// `energy_j`, `deadline_misses`, `makespan` and `charge_c` are minimized;
/// `lifetime_min` is maximized and needs a battery co-simulation.
pub const PORTFOLIO_AXES: &[&str] =
    &["energy_j", "deadline_misses", "makespan", "charge_c", "lifetime_min"];

/// The salt folded into per-trial battery seeds, so the battery's stochastic
/// stream is decorrelated from the workload/sampler stream of the same
/// trial. (The historical `table2` binary introduced this value; the generic
/// sweep keeps it so results stay comparable.)
pub const BATTERY_SEED_SALT: u64 = 0xba77_e4ee;

impl Scenario {
    /// The built-in scenario for `kind`, with the defaults the historical
    /// per-artifact binaries used.
    pub fn preset(kind: ScenarioKind) -> Scenario {
        let mut s = Scenario {
            name: kind.name().to_string(),
            kind,
            trials: 100,
            seed: 1,
            threads: 0,
            graphs: 4,
            util: 0.7,
            horizon: 24.0 * 3600.0,
            specs: ["EDF", "ccEDF", "laEDF", "BAS-1", "BAS-2"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            axes: ["energy_j", "deadline_misses", "makespan"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            reference: Vec::new(),
            workload: "paper".to_string(),
            generator: "none".to_string(),
            nodes: 1000,
            processor: "paper".to_string(),
            pes: 1,
            processors: Vec::new(),
            latency: 0.0,
            bandwidth: 0.0,
            mapper: "weighted".to_string(),
            battery: "stochastic".to_string(),
            sampler: SamplerKind::Persistent,
            freq: FreqPolicy::RoundUp,
            shape: "layered".to_string(),
            governor: "ccedf".to_string(),
            noise: 0.25,
            max_graphs: 8,
            horizon_periods: 4.0,
            points: 13,
            lo: 0.02,
            hi: 20.0,
        };
        match kind {
            ScenarioKind::Sweep => s.trials = 20,
            ScenarioKind::Table1 => {
                s.freq = FreqPolicy::Interpolate;
                s.processor = "dense".to_string();
            }
            ScenarioKind::Table2 => {}
            ScenarioKind::Fig4 | ScenarioKind::Guidelines | ScenarioKind::CapacityCurve => {}
            ScenarioKind::Fig5 => s.horizon = 100.0,
            ScenarioKind::Fig6 => s.trials = 40,
            ScenarioKind::Crossover | ScenarioKind::Ablation => s.trials = 6,
            ScenarioKind::Portfolio => {
                s.trials = 4;
                s.specs = vec!["all".to_string()];
                s.workload = "unit".to_string();
                s.processor = "unit".to_string();
                s.battery = "none".to_string();
                s.horizon = 1000.0;
            }
        }
        s
    }

    // ---------------------------------------------------------------- codec

    /// Serialize to the TOML subset of [`crate::toml`]: `name`, `kind`, then
    /// the kind's fields in [`ScenarioKind::fields`] order. The workload
    /// generator knobs (`generator`, `nodes`) serialize as a `[workload]`
    /// table and the platform knobs (`pes`, `processors`, `latency`,
    /// `bandwidth`, `mapper`) as a trailing `[platform]` table instead of
    /// flat keys; table keys at their defaults are omitted, so scenarios
    /// that predate them encode (and digest) exactly as before.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name = {}\n", Value::Str(self.name.clone()).render()));
        out.push_str(&format!("kind = {}\n", Value::Str(self.kind.name().into()).render()));
        for key in self.kind.fields() {
            if PLATFORM_KEYS.contains(key) || WORKLOAD_KEYS.contains(key) {
                continue;
            }
            out.push_str(&format!("{key} = {}\n", self.value_of(key).render()));
        }
        if self.kind.fields().contains(&"generator") && self.generator != "none" {
            out.push_str("\n[workload]\n");
            out.push_str(&format!("generator = {}\n", self.value_of("generator").render()));
            out.push_str(&format!("nodes = {}\n", self.value_of("nodes").render()));
        }
        if self.kind.fields().contains(&"pes") {
            out.push_str("\n[platform]\n");
            out.push_str(&format!("pes = {}\n", self.value_of("pes").render()));
            if !self.processors.is_empty() {
                out.push_str(&format!("processors = {}\n", self.value_of("processors").render()));
            }
            if self.latency > 0.0 || self.bandwidth > 0.0 {
                out.push_str(&format!("latency = {}\n", self.value_of("latency").render()));
                out.push_str(&format!("bandwidth = {}\n", self.value_of("bandwidth").render()));
            }
            if self.mapper != "weighted" {
                out.push_str(&format!("mapper = {}\n", self.value_of("mapper").render()));
            }
        }
        out
    }

    /// Deserialize from the TOML subset. Missing keys take the kind's preset
    /// defaults; keys the kind does not list are errors. The result is
    /// validated ([`Scenario::validate`]).
    pub fn from_toml(input: &str) -> Result<Scenario, ScenarioError> {
        let doc = toml::parse(input).map_err(ScenarioError::Toml)?;
        let kind: ScenarioKind = doc
            .get("kind")
            .ok_or_else(|| ScenarioError::invalid("kind", "missing `kind` key"))?
            .as_str()
            .ok_or_else(|| ScenarioError::invalid("kind", "`kind` must be a string"))?
            .parse()?;
        let mut s = Scenario::preset(kind);
        for (key, value) in &doc {
            // The `[platform]`/`[workload]` tables' keys arrive dotted;
            // they alias the flat knobs. (The flat `workload` key itself
            // has no dot and passes through untouched.)
            let key = key
                .strip_prefix("platform.")
                .or_else(|| key.strip_prefix("workload."))
                .unwrap_or(key);
            match key {
                "kind" => {}
                "name" => {
                    s.name = value
                        .as_str()
                        .ok_or_else(|| ScenarioError::invalid("name", "must be a string"))?
                        .to_string();
                }
                key if kind.fields().contains(&key) => s.set_value(key, value)?,
                key => {
                    return Err(ScenarioError::invalid(
                        key,
                        format!(
                            "unknown key for kind `{kind}` (valid: name, kind{}{})",
                            if kind.fields().is_empty() { "" } else { ", " },
                            kind.fields().join(", ")
                        ),
                    ));
                }
            }
        }
        s.validate()?;
        Ok(s)
    }

    /// Stable content digest of the scenario: 16 hex digits of a 64-bit
    /// FNV-1a hash over the **canonical TOML encoding**
    /// ([`Scenario::to_toml`]).
    ///
    /// Because every deserialization path normalizes into the same struct
    /// and `to_toml` emits fields in one pinned order, the digest is
    /// invariant under TOML round-trips, key reordering, comments and
    /// whitespace — and changes whenever any serialized knob (or the name)
    /// changes. `bas serve` keys its result cache on this value, so the
    /// digest must never depend on anything but the scenario's content
    /// (no hasher randomization, no platform-dependent state).
    pub fn digest(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in self.to_toml().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        format!("{hash:016x}")
    }

    /// Stream the `bas-events/v2` event stream of the scenario's **first
    /// trial** into `sink`: for every spec in the lineup, replay trial 0
    /// (same derived seed, same generated task set, same battery salt as
    /// the sweep itself) with a [`JsonlWriter`](bas_sim::JsonlWriter)
    /// attached. One header line introduces each spec's run, flushed
    /// promptly so streaming consumers see it before the run's events.
    /// Memory stays O(1) in the horizon — events are written as they
    /// happen, nothing is buffered here.
    ///
    /// This is the single replay path behind both `bas run --events` and
    /// the `bas serve` events endpoint, so the two streams are
    /// byte-identical for the same scenario. Only
    /// [`ScenarioKind::Sweep`] scenarios support it. If the sink fails
    /// mid-stream (e.g. a disconnected subscriber), the replay stops at
    /// the next spec boundary instead of simulating into the void.
    ///
    /// On success the sink is flushed and handed back.
    pub fn stream_events<W: std::io::Write>(&self, sink: W) -> Result<W, ScenarioError> {
        if self.kind != ScenarioKind::Sweep {
            return Err(ScenarioError::invalid(
                "kind",
                format!(
                    "event-stream replay captures a `sweep` scenario; kind `{}` does not \
                     support it",
                    self.kind
                ),
            ));
        }
        let mut writer = bas_sim::JsonlWriter::new(sink);
        let platform = self.build_platform()?;
        let seed = Sweep::seed_for(self.seed, 0);
        let set = self.trial_set(seed)?;
        for (label, spec) in self.parsed_specs()? {
            writer.header(&self.name, &label, seed);
            writer.flush();
            if writer.error().is_some() {
                break; // subscriber gone — don't simulate into a dead sink
            }
            let mut cell = self.build_battery(seed);
            let mut experiment =
                self.trial_experiment(&set, spec, seed, &platform).observer(&mut writer);
            if let Some(cell) = cell.as_mut() {
                experiment = experiment.battery(cell.as_mut());
            }
            experiment.run().map_err(|e| {
                ScenarioError::Sweep(format!("events replay ({label}, seed {seed}): {e}"))
            })?;
            if writer.error().is_some() {
                break;
            }
        }
        writer.flush();
        writer.into_inner().map_err(|e| ScenarioError::Io(format!("event stream sink: {e}")))
    }

    /// Load and deserialize a scenario file.
    pub fn load(path: &std::path::Path) -> Result<Scenario, ScenarioError> {
        let input = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
        Scenario::from_toml(&input).map_err(|e| match e {
            ScenarioError::Toml(t) => ScenarioError::Io(format!("{}: {t}", path.display())),
            other => other,
        })
    }

    /// Apply a `key = value` override from a CLI flag. `key` must be one of
    /// the kind's fields (or `name`); `value` is parsed like the TOML form
    /// (for `specs`, a comma-separated list). Call
    /// [`Scenario::validate`] after the last override.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), ScenarioError> {
        if key == "name" {
            self.name = value.to_string();
            return Ok(());
        }
        if !self.kind.fields().contains(&key) {
            return Err(ScenarioError::invalid(
                key,
                format!(
                    "not a knob of kind `{}` (valid: {})",
                    self.kind,
                    self.kind.fields().join(", ")
                ),
            ));
        }
        let parsed = if key == "specs" || key == "processors" || key == "axes" {
            Value::Array(value.split(',').map(|s| Value::Str(s.trim().to_string())).collect())
        } else if key == "reference" {
            // `--reference ""` clears the point (auto-derived again).
            let parts: Result<Vec<Value>, ScenarioError> = value
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse::<f64>().map(Value::Float).map_err(|_| {
                        ScenarioError::invalid(key, format!("expected a number, got {s:?}"))
                    })
                })
                .collect();
            Value::Array(parts?)
        } else {
            match self.value_of(key) {
                Value::Int(_) => Value::Int(value.parse::<i64>().map_err(|_| {
                    ScenarioError::invalid(key, format!("expected an integer, got {value:?}"))
                })?),
                Value::Float(_) => Value::Float(value.parse::<f64>().map_err(|_| {
                    ScenarioError::invalid(key, format!("expected a number, got {value:?}"))
                })?),
                _ => Value::Str(value.to_string()),
            }
        };
        self.set_value(key, &parsed)
    }

    /// The serialized value of one field.
    fn value_of(&self, key: &str) -> Value {
        match key {
            "trials" => Value::Int(self.trials as i64),
            "seed" => Value::Int(self.seed as i64),
            "threads" => Value::Int(self.threads as i64),
            "graphs" => Value::Int(self.graphs as i64),
            "util" => Value::Float(self.util),
            "horizon" => Value::Float(self.horizon),
            "specs" => Value::Array(self.specs.iter().cloned().map(Value::Str).collect()),
            "axes" => Value::Array(self.axes.iter().cloned().map(Value::Str).collect()),
            "reference" => Value::Array(self.reference.iter().copied().map(Value::Float).collect()),
            "workload" => Value::Str(self.workload.clone()),
            "generator" => Value::Str(self.generator.clone()),
            "nodes" => Value::Int(self.nodes as i64),
            "processor" => Value::Str(self.processor.clone()),
            "pes" => Value::Int(self.pes as i64),
            "processors" => Value::Array(self.processors.iter().cloned().map(Value::Str).collect()),
            "latency" => Value::Float(self.latency),
            "bandwidth" => Value::Float(self.bandwidth),
            "mapper" => Value::Str(self.mapper.clone()),
            "battery" => Value::Str(self.battery.clone()),
            "sampler" => Value::Str(self.sampler.to_string()),
            "freq" => Value::Str(self.freq.to_string()),
            "shape" => Value::Str(self.shape.clone()),
            "governor" => Value::Str(self.governor.clone()),
            "noise" => Value::Float(self.noise),
            "max_graphs" => Value::Int(self.max_graphs as i64),
            "horizon_periods" => Value::Float(self.horizon_periods),
            "points" => Value::Int(self.points as i64),
            "lo" => Value::Float(self.lo),
            "hi" => Value::Float(self.hi),
            other => unreachable!("unlisted field {other}"),
        }
    }

    /// Set one field from a parsed TOML value.
    fn set_value(&mut self, key: &str, value: &Value) -> Result<(), ScenarioError> {
        let uint = |v: &Value| -> Option<u64> { v.as_int().and_then(|i| u64::try_from(i).ok()) };
        let bad = |expected: &str| ScenarioError::invalid(key, format!("expected {expected}"));
        match key {
            "trials" => {
                self.trials = uint(value).ok_or_else(|| bad("a non-negative integer"))? as usize
            }
            "seed" => self.seed = uint(value).ok_or_else(|| bad("a non-negative integer"))?,
            "threads" => {
                self.threads = uint(value).ok_or_else(|| bad("a non-negative integer"))? as usize;
            }
            "graphs" => {
                self.graphs = uint(value).ok_or_else(|| bad("a non-negative integer"))? as usize
            }
            "util" => self.util = value.as_float().ok_or_else(|| bad("a number"))?,
            "horizon" => self.horizon = value.as_float().ok_or_else(|| bad("a number"))?,
            "specs" => {
                self.specs = value.as_str_array().ok_or_else(|| bad("an array of strings"))?;
            }
            "axes" => {
                self.axes = value.as_str_array().ok_or_else(|| bad("an array of strings"))?;
            }
            "reference" => {
                self.reference =
                    value.as_float_array().ok_or_else(|| bad("an array of numbers"))?;
            }
            "workload" => {
                self.workload = value.as_str().ok_or_else(|| bad("a string"))?.to_string();
            }
            "generator" => {
                self.generator = value.as_str().ok_or_else(|| bad("a string"))?.to_string();
            }
            "nodes" => {
                self.nodes = uint(value).ok_or_else(|| bad("a non-negative integer"))? as usize;
            }
            "latency" => self.latency = value.as_float().ok_or_else(|| bad("a number"))?,
            "bandwidth" => self.bandwidth = value.as_float().ok_or_else(|| bad("a number"))?,
            "mapper" => {
                self.mapper = value.as_str().ok_or_else(|| bad("a string"))?.to_string();
            }
            "processor" => {
                self.processor = value.as_str().ok_or_else(|| bad("a string"))?.to_string();
            }
            "pes" => {
                self.pes = uint(value).ok_or_else(|| bad("a non-negative integer"))? as usize;
            }
            "processors" => {
                self.processors = value.as_str_array().ok_or_else(|| bad("an array of strings"))?;
            }
            "battery" => {
                self.battery = value.as_str().ok_or_else(|| bad("a string"))?.to_string();
            }
            "sampler" => {
                self.sampler = value.as_str().ok_or_else(|| bad("a string"))?.parse().map_err(
                    |e: crate::runner::ParseSamplerError| {
                        ScenarioError::invalid(key, e.to_string())
                    },
                )?;
            }
            "freq" => {
                self.freq = value.as_str().ok_or_else(|| bad("a string"))?.parse().map_err(
                    |e: bas_cpu::ParseFreqPolicyError| ScenarioError::invalid(key, e.to_string()),
                )?;
            }
            "shape" => self.shape = value.as_str().ok_or_else(|| bad("a string"))?.to_string(),
            "governor" => {
                self.governor = value.as_str().ok_or_else(|| bad("a string"))?.to_string();
            }
            "noise" => self.noise = value.as_float().ok_or_else(|| bad("a number"))?,
            "max_graphs" => {
                self.max_graphs =
                    uint(value).ok_or_else(|| bad("a non-negative integer"))? as usize;
            }
            "horizon_periods" => {
                self.horizon_periods = value.as_float().ok_or_else(|| bad("a number"))?;
            }
            "points" => {
                self.points = uint(value).ok_or_else(|| bad("a non-negative integer"))? as usize
            }
            "lo" => self.lo = value.as_float().ok_or_else(|| bad("a number"))?,
            "hi" => self.hi = value.as_float().ok_or_else(|| bad("a number"))?,
            other => unreachable!("unlisted field {other}"),
        }
        Ok(())
    }

    // ----------------------------------------------------------- validation

    /// Check every knob the kind uses for consistency: spec labels parse,
    /// preset names resolve, numeric ranges make sense.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let uses = |field: &str| self.kind.fields().contains(&field);
        if uses("trials") && self.trials == 0 {
            return Err(ScenarioError::invalid("trials", "must be >= 1"));
        }
        if uses("seed") && i64::try_from(self.seed).is_err() {
            return Err(ScenarioError::invalid("seed", "must fit in a TOML integer (i64)"));
        }
        if uses("util") && !(self.util > 0.0 && self.util <= 1.0) {
            return Err(ScenarioError::invalid("util", "must be in (0, 1]"));
        }
        if uses("graphs") && self.graphs == 0 {
            return Err(ScenarioError::invalid("graphs", "must be >= 1"));
        }
        if uses("horizon") && (self.horizon.is_nan() || self.horizon <= 0.0) {
            return Err(ScenarioError::invalid("horizon", "must be > 0"));
        }
        if uses("specs") {
            if self.specs.is_empty() {
                return Err(ScenarioError::invalid("specs", "must name at least one scheduler"));
            }
            if self.kind == ScenarioKind::Portfolio {
                // Portfolio lineups admit `all` and globs over the grammar;
                // expansion also catches patterns that match nothing.
                expand_spec_patterns(&self.specs)
                    .map_err(|e| ScenarioError::invalid("specs", e.to_string()))?;
            } else {
                for label in &self.specs {
                    label
                        .parse::<SchedulerSpec>()
                        .map_err(|e| ScenarioError::invalid("specs", e.to_string()))?;
                }
            }
        }
        if uses("axes") {
            if self.axes.is_empty() {
                return Err(ScenarioError::invalid("axes", "must name at least one metric axis"));
            }
            for (i, axis) in self.axes.iter().enumerate() {
                if !PORTFOLIO_AXES.contains(&axis.as_str()) {
                    return Err(ScenarioError::invalid(
                        "axes",
                        format!(
                            "unknown axis {axis:?}: expected one of {}",
                            PORTFOLIO_AXES.join("|")
                        ),
                    ));
                }
                if self.axes[..i].contains(axis) {
                    return Err(ScenarioError::invalid("axes", format!("duplicate axis {axis:?}")));
                }
            }
            if self.axes.iter().any(|a| a == "lifetime_min") && self.battery == "none" {
                return Err(ScenarioError::invalid(
                    "axes",
                    "the lifetime_min axis needs a battery co-simulation (battery != \"none\")",
                ));
            }
        }
        if uses("reference") && !self.reference.is_empty() {
            if self.reference.len() != self.axes.len() {
                return Err(ScenarioError::invalid(
                    "reference",
                    format!(
                        "lists {} values for {} axes (leave empty to derive from the \
                         observed points)",
                        self.reference.len(),
                        self.axes.len()
                    ),
                ));
            }
            if self.reference.iter().any(|x| !x.is_finite()) {
                return Err(ScenarioError::invalid("reference", "values must be finite"));
            }
        }
        if uses("workload") && !matches!(self.workload.as_str(), "paper" | "unit") {
            return Err(ScenarioError::invalid(
                "workload",
                format!("unknown workload {:?}: expected paper|unit", self.workload),
            ));
        }
        if uses("generator") && self.generator != "none" {
            self.generator
                .parse::<bas_workload::Family>()
                .map_err(|e| ScenarioError::invalid("generator", e.to_string()))?;
        }
        if uses("nodes") && self.nodes == 0 {
            return Err(ScenarioError::invalid("nodes", "must be >= 1"));
        }
        if uses("latency") && !(self.latency.is_finite() && self.latency >= 0.0) {
            return Err(ScenarioError::invalid("latency", "must be finite and >= 0"));
        }
        if uses("bandwidth") && !(self.bandwidth.is_finite() && self.bandwidth >= 0.0) {
            return Err(ScenarioError::invalid(
                "bandwidth",
                "must be finite and >= 0 (0 = unlimited)",
            ));
        }
        if uses("mapper") && !matches!(self.mapper.as_str(), "weighted" | "hetero") {
            return Err(ScenarioError::invalid(
                "mapper",
                format!("unknown mapper {:?}: expected weighted|hetero", self.mapper),
            ));
        }
        if uses("pes") && !(1..=64).contains(&self.pes) {
            return Err(ScenarioError::invalid("pes", "must be in 1..=64"));
        }
        if uses("processors") && !self.processors.is_empty() {
            if self.processors.len() != self.pes {
                return Err(ScenarioError::invalid(
                    "processors",
                    format!(
                        "lists {} per-PE presets for a {}-PE platform (leave empty to share \
                         `processor`)",
                        self.processors.len(),
                        self.pes
                    ),
                ));
            }
            for name in &self.processors {
                if bas_cpu::presets::by_name(name).is_none() {
                    return Err(ScenarioError::invalid(
                        "processors",
                        format!(
                            "unknown processor {:?}: expected one of {}",
                            name,
                            bas_cpu::presets::NAMES.join("|")
                        ),
                    ));
                }
            }
        }
        if uses("processor") && bas_cpu::presets::by_name(&self.processor).is_none() {
            return Err(ScenarioError::invalid(
                "processor",
                format!(
                    "unknown processor {:?}: expected one of {}",
                    self.processor,
                    bas_cpu::presets::NAMES.join("|")
                ),
            ));
        }
        if uses("battery")
            && self.battery != "none"
            && bas_battery::registry::by_name(&self.battery, 0).is_none()
        {
            return Err(ScenarioError::invalid(
                "battery",
                format!(
                    "unknown battery {:?}: expected none or one of {}",
                    self.battery,
                    bas_battery::registry::NAMES.join("|")
                ),
            ));
        }
        if self.kind == ScenarioKind::Table2 && self.battery == "none" {
            return Err(ScenarioError::invalid("battery", "table2 needs a battery model"));
        }
        if uses("shape") && !matches!(self.shape.as_str(), "layered" | "fifo" | "independent") {
            return Err(ScenarioError::invalid(
                "shape",
                format!("unknown shape {:?}: expected layered|fifo|independent", self.shape),
            ));
        }
        if uses("governor") && !matches!(self.governor.as_str(), "ccedf" | "laedf") {
            return Err(ScenarioError::invalid(
                "governor",
                format!("unknown governor {:?}: expected ccedf|laedf", self.governor),
            ));
        }
        if uses("noise") && !(0.0..1.0).contains(&self.noise) {
            return Err(ScenarioError::invalid("noise", "must be in [0, 1)"));
        }
        if uses("max_graphs") && self.max_graphs == 0 {
            return Err(ScenarioError::invalid("max_graphs", "must be >= 1"));
        }
        if uses("horizon_periods") && (self.horizon_periods.is_nan() || self.horizon_periods <= 0.0)
        {
            return Err(ScenarioError::invalid("horizon_periods", "must be > 0"));
        }
        if uses("points") && self.points < 2 {
            return Err(ScenarioError::invalid("points", "need >= 2 points to extrapolate"));
        }
        if uses("lo") && (self.lo.is_nan() || self.lo <= 0.0) {
            return Err(ScenarioError::invalid("lo", "must be > 0"));
        }
        if uses("hi") && (self.hi.is_nan() || self.hi <= self.lo) {
            return Err(ScenarioError::invalid("hi", "must be > lo"));
        }
        Ok(())
    }

    // ------------------------------------------------------------- building

    /// The lineup as labelled [`SchedulerSpec`]s, labels as written.
    pub fn parsed_specs(&self) -> Result<Vec<(String, SchedulerSpec)>, ScenarioError> {
        self.specs
            .iter()
            .map(|label| {
                label
                    .parse::<SchedulerSpec>()
                    .map(|spec| (label.clone(), spec))
                    .map_err(|e| ScenarioError::invalid("specs", e.to_string()))
            })
            .collect()
    }

    /// Resolve the processor preset.
    pub fn build_processor(&self) -> Result<Processor, ScenarioError> {
        bas_cpu::presets::by_name(&self.processor).ok_or_else(|| {
            ScenarioError::invalid("processor", format!("unknown processor {:?}", self.processor))
        })
    }

    /// Resolve the execution platform described by the `[platform]` block:
    /// `pes` copies of the shared [`Scenario::processor`] preset, or the
    /// per-PE [`Scenario::processors`] presets when listed.
    pub fn build_platform(&self) -> Result<Platform, ScenarioError> {
        let platform = if self.processors.is_empty() {
            Platform::uniform(self.build_processor()?, self.pes.max(1))
        } else {
            let pes: Result<Vec<Processor>, ScenarioError> = self
                .processors
                .iter()
                .map(|name| {
                    bas_cpu::presets::by_name(name).ok_or_else(|| {
                        ScenarioError::invalid("processors", format!("unknown processor {name:?}"))
                    })
                })
                .collect();
            Platform::new(pes?).map_err(|e| ScenarioError::invalid("processors", e.to_string()))?
        };
        if self.latency > 0.0 || self.bandwidth > 0.0 {
            // `bandwidth = 0` with a positive latency: an infinitely fast
            // fabric that only charges its startup cost.
            let bps = if self.bandwidth > 0.0 { self.bandwidth } else { f64::INFINITY };
            let ic = bas_cpu::Interconnect::new(self.latency, bps)
                .map_err(|e| ScenarioError::invalid("latency", e.to_string()))?;
            return Ok(platform.with_interconnect(ic));
        }
        Ok(platform)
    }

    /// The configured multi-PE node-placement strategy (`mapper` knob).
    pub fn mapper_kind(&self) -> MapperKind {
        if self.mapper == "hetero" {
            MapperKind::Hetero
        } else {
            MapperKind::Weighted
        }
    }

    /// Build a fresh battery for a trial seed, or `None` for `battery =
    /// "none"`. The trial seed is salted with [`BATTERY_SEED_SALT`].
    pub fn build_battery(&self, trial_seed: u64) -> Option<Box<dyn BatteryModel>> {
        if self.battery == "none" {
            return None;
        }
        bas_battery::registry::by_name(&self.battery, trial_seed ^ BATTERY_SEED_SALT)
    }

    /// The generated-workload family (`workload`/`graphs`/`util` knobs).
    pub fn workload_config(&self) -> Result<TaskSetConfig, ScenarioError> {
        match self.workload.as_str() {
            "paper" => Ok(paper_scale_config(self.graphs, self.util)),
            "unit" => Ok(unit_scale_config(self.graphs, self.util)),
            other => Err(ScenarioError::invalid(
                "workload",
                format!("unknown workload {other:?}: expected paper|unit"),
            )),
        }
    }

    /// Whether the `[workload]` block turns the big-DAG generator on
    /// (`generator != "none"`); per-trial sets then come from
    /// `bas-workload` instead of the TGFF-style family.
    pub fn uses_generator(&self) -> bool {
        self.generator != "none"
    }

    /// The big-DAG generator configuration of one trial, when
    /// [`uses_generator`](Self::uses_generator): the scenario's family and
    /// node count, seeded with the trial seed.
    fn generator_config(
        &self,
        trial_seed: u64,
    ) -> Result<bas_workload::BigDagConfig, ScenarioError> {
        let family = self
            .generator
            .parse::<bas_workload::Family>()
            .map_err(|e| ScenarioError::invalid("generator", e.to_string()))?;
        Ok(bas_workload::BigDagConfig {
            family,
            nodes: self.nodes,
            seed: trial_seed,
            ..bas_workload::BigDagConfig::default()
        })
    }

    /// Run a [`ScenarioKind::Sweep`] scenario over its generated workload.
    ///
    /// The bespoke per-artifact kinds are run by the `bas` CLI (they need
    /// their historical text renderings); the generic sweep is runnable
    /// straight from the library — this is what the examples use.
    pub fn run_sweep(&self) -> Result<SweepReport, ScenarioError> {
        if self.uses_generator() {
            return self.run_sweep_inner(|sweep| {
                sweep.workload_with(|seed| self.trial_set(seed).map_err(|e| e.to_string()))
            });
        }
        let config = self.workload_config()?;
        self.run_sweep_inner(|sweep| sweep.workload(config))
    }

    /// Like [`Scenario::run_sweep`], but over a fixed, caller-built task set
    /// (the scenario's `workload`/`graphs`/`util` knobs are ignored).
    pub fn run_sweep_with_set(&self, set: &TaskSet) -> Result<SweepReport, ScenarioError> {
        self.run_sweep_inner(|sweep| sweep.set(set))
    }

    /// Generate the task set of one sweep trial, exactly as
    /// [`Scenario::run_sweep`]'s trials do (`trial_seed` comes from
    /// [`Sweep::seed_for`]).
    pub fn trial_set(&self, trial_seed: u64) -> Result<TaskSet, ScenarioError> {
        if self.uses_generator() {
            let graph = self
                .generator_config(trial_seed)?
                .generate()
                .map_err(|e| ScenarioError::Sweep(format!("generator (seed {trial_seed}): {e}")))?;
            // The envelope targets the scenario's utilization on the
            // platform's fastest PE; slower PEs just carry a lighter share.
            let fmax = self.build_platform()?.fmax_any();
            let periodic = bas_workload::wfcommons::periodic_envelope(graph, self.util, fmax)
                .map_err(|e| ScenarioError::Sweep(format!("generator (seed {trial_seed}): {e}")))?;
            let mut set = TaskSet::new();
            set.push(periodic);
            return Ok(set);
        }
        self.workload_config()?
            .generate(&mut StdRng::seed_from_u64(trial_seed))
            .map_err(|e| ScenarioError::Sweep(format!("workload (seed {trial_seed}): {e}")))
    }

    /// Assemble the [`Experiment`] for one (spec × trial) cell with exactly
    /// the knob wiring the sweep uses. Replay surfaces (e.g. the CLI's
    /// `--events` capture) must build their runs through this — and
    /// [`Scenario::trial_set`] / [`Scenario::build_battery`] — so they
    /// cannot drift from the sweep they claim to replay; any future knob
    /// added to the sweep's trial construction belongs here too.
    pub fn trial_experiment<'a>(
        &self,
        set: &'a TaskSet,
        spec: SchedulerSpec,
        trial_seed: u64,
        platform: &'a Platform,
    ) -> Experiment<'a> {
        Experiment::new(set)
            .spec(spec)
            .platform(platform)
            .mapper(self.mapper_kind())
            .seed(trial_seed)
            .horizon(self.horizon)
            .sampler(self.sampler)
            .freq_policy(self.freq)
    }

    fn run_sweep_inner<'a, F>(&'a self, attach_workload: F) -> Result<SweepReport, ScenarioError>
    where
        F: FnOnce(Sweep<'a>) -> Sweep<'a>,
    {
        if self.kind != ScenarioKind::Sweep {
            return Err(ScenarioError::invalid(
                "kind",
                format!("run_sweep only runs `sweep` scenarios, not `{}`", self.kind),
            ));
        }
        self.validate()?;
        let platform = self.build_platform()?;
        let mut sweep = attach_workload(Sweep::over_seeds(self.seed, self.trials))
            .specs(self.parsed_specs()?)
            .platform(&platform)
            .mapper(self.mapper_kind())
            .horizon(self.horizon)
            .threads(self.threads)
            .sampler(self.sampler)
            .freq_policy(self.freq);
        if self.battery != "none" {
            sweep = sweep
                .battery(|seed| self.build_battery(seed).expect("battery name validated above"));
        }
        sweep.run().map_err(|e| ScenarioError::Sweep(e.to_string()))
    }
}

/// Anything that can go wrong loading, validating or running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The file is not in the supported TOML subset.
    Toml(toml::ParseError),
    /// A key failed validation; carries the key and the reason.
    Invalid {
        /// The offending key.
        key: String,
        /// Why it was rejected.
        message: String,
    },
    /// The file could not be read.
    Io(String),
    /// The underlying sweep failed.
    Sweep(String),
}

impl ScenarioError {
    fn invalid(key: &str, message: impl Into<String>) -> Self {
        ScenarioError::Invalid { key: key.to_string(), message: message.into() }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Toml(e) => write!(f, "scenario parse error: {e}"),
            ScenarioError::Invalid { key, message } => write!(f, "scenario key `{key}`: {message}"),
            ScenarioError::Io(e) => write!(f, "scenario file: {e}"),
            ScenarioError::Sweep(e) => write!(f, "sweep failed: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_round_trips_through_toml() {
        for kind in ScenarioKind::ALL {
            let scenario = Scenario::preset(kind);
            scenario.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
            let text = scenario.to_toml();
            let parsed =
                Scenario::from_toml(&text).unwrap_or_else(|e| panic!("{kind}: {e}\n{text}"));
            assert_eq!(parsed, scenario, "{kind}\n{text}");
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in ScenarioKind::ALL {
            assert_eq!(kind.name().parse::<ScenarioKind>().unwrap(), kind);
        }
        assert!("table3".parse::<ScenarioKind>().is_err());
    }

    #[test]
    fn omitted_keys_take_preset_defaults() {
        let s = Scenario::from_toml("kind = \"table2\"\ntrials = 5\n").unwrap();
        assert_eq!(s.trials, 5);
        assert_eq!(s.seed, Scenario::preset(ScenarioKind::Table2).seed);
        assert_eq!(s.battery, "stochastic");
        assert_eq!(s.name, "table2");
    }

    #[test]
    fn unknown_keys_are_rejected_per_kind() {
        // `points` belongs to capacity-curve, not table2.
        let e = Scenario::from_toml("kind = \"table2\"\npoints = 9\n").unwrap_err();
        assert!(e.to_string().contains("unknown key"), "{e}");
        // Typos are caught, not ignored.
        let e = Scenario::from_toml("kind = \"sweep\"\ntrails = 5\n").unwrap_err();
        assert!(e.to_string().contains("trails"), "{e}");
    }

    #[test]
    fn bad_values_are_rejected_with_the_key_named() {
        for (input, key) in [
            ("kind = \"sweep\"\nspecs = [\"EDF\", \"bogus\"]\n", "specs"),
            ("kind = \"sweep\"\nbattery = \"fusion\"\n", "battery"),
            ("kind = \"sweep\"\nprocessor = \"granite\"\n", "processor"),
            ("kind = \"sweep\"\nsampler = \"gaussian\"\n", "sampler"),
            ("kind = \"sweep\"\nfreq = \"fast\"\n", "freq"),
            ("kind = \"sweep\"\nutil = 1.5\n", "util"),
            ("kind = \"sweep\"\ntrials = 0\n", "trials"),
            ("kind = \"sweep\"\nseed = -1\n", "seed"),
            ("kind = \"table1\"\nshape = \"star\"\n", "shape"),
            ("kind = \"fig6\"\ngovernor = \"ondemand\"\n", "governor"),
            ("kind = \"capacity-curve\"\nhi = 0.001\n", "hi"),
            ("kind = \"table2\"\nbattery = \"none\"\n", "battery"),
            ("kind = \"portfolio\"\nspecs = [\"zzz+*/*\"]\n", "specs"),
            ("kind = \"portfolio\"\naxes = []\n", "axes"),
            ("kind = \"portfolio\"\naxes = [\"energy_j\", \"latency\"]\n", "axes"),
            ("kind = \"portfolio\"\naxes = [\"energy_j\", \"energy_j\"]\n", "axes"),
            ("kind = \"portfolio\"\naxes = [\"lifetime_min\"]\n", "axes"),
            ("kind = \"portfolio\"\nreference = [1.0, 2.0]\n", "reference"),
            ("kind = \"sweep\"\n[workload]\ngenerator = \"tree\"\n", "generator"),
            ("kind = \"sweep\"\n[workload]\ngenerator = \"layered\"\nnodes = 0\n", "nodes"),
            ("kind = \"sweep\"\n[platform]\npes = 2\nlatency = -1.0\n", "latency"),
            ("kind = \"sweep\"\n[platform]\npes = 2\nbandwidth = -1.0\n", "bandwidth"),
            ("kind = \"sweep\"\n[platform]\npes = 2\nmapper = \"annealing\"\n", "mapper"),
        ] {
            let e = Scenario::from_toml(input).unwrap_err();
            assert!(e.to_string().contains(key), "{input:?} -> {e}");
        }
    }

    #[test]
    fn portfolio_scenarios_admit_globs_and_reference_points() {
        let s = Scenario::from_toml(
            "kind = \"portfolio\"\nspecs = [\"all\"]\naxes = [\"energy_j\", \"makespan\"]\n\
             reference = [500.0, 20.0]\n",
        )
        .unwrap();
        assert_eq!(s.specs, vec!["all"]);
        assert_eq!(s.axes, vec!["energy_j", "makespan"]);
        assert_eq!(s.reference, vec![500.0, 20.0]);
        // Globs expand during validation; a lifetime axis needs a battery.
        Scenario::from_toml("kind = \"portfolio\"\nspecs = [\"laEDF+*/*\", \"BAS-kv\"]\n").unwrap();
        Scenario::from_toml(
            "kind = \"portfolio\"\naxes = [\"lifetime_min\", \"energy_j\"]\n\
             battery = \"stochastic\"\n",
        )
        .unwrap();
        // CLI-style overrides parse the same lists.
        let mut s = Scenario::preset(ScenarioKind::Portfolio);
        s.set("axes", "energy_j, charge_c").unwrap();
        s.set("reference", "450, 30").unwrap();
        s.validate().unwrap();
        assert_eq!(s.axes, vec!["energy_j", "charge_c"]);
        assert_eq!(s.reference, vec![450.0, 30.0]);
        s.set("reference", "").unwrap();
        assert!(s.reference.is_empty(), "empty override clears the reference");
    }

    #[test]
    fn missing_kind_is_an_error() {
        assert!(Scenario::from_toml("name = \"x\"\n").is_err());
    }

    #[test]
    fn cli_overrides_parse_like_the_file_form() {
        let mut s = Scenario::preset(ScenarioKind::Sweep);
        s.set("trials", "7").unwrap();
        s.set("util", "0.5").unwrap();
        s.set("specs", "EDF, BAS-2cc").unwrap();
        s.set("battery", "kibam").unwrap();
        assert_eq!(s.trials, 7);
        assert_eq!(s.util, 0.5);
        assert_eq!(s.specs, vec!["EDF", "BAS-2cc"]);
        s.validate().unwrap();
        assert!(s.set("trials", "many").is_err());
        assert!(s.set("points", "9").is_err(), "points is not a sweep knob");
    }

    #[test]
    fn sweep_scenario_runs_end_to_end() {
        let mut s = Scenario::preset(ScenarioKind::Sweep);
        s.set("trials", "2").unwrap();
        s.set("specs", "EDF,BAS-2").unwrap();
        s.set("battery", "none").unwrap();
        s.set("workload", "unit").unwrap();
        s.set("processor", "unit").unwrap();
        s.set("horizon", "200").unwrap();
        let report = s.run_sweep().unwrap();
        assert_eq!(report.specs.len(), 2);
        assert_eq!(report.specs[0].label, "EDF");
        assert_eq!(report.specs[0].trials.len(), 2);
        assert!(report.specs[0].lifetime_min.is_none());
    }

    #[test]
    fn generator_and_interconnect_knobs_round_trip_in_their_tables() {
        let mut s = Scenario::preset(ScenarioKind::Sweep);
        s.set("generator", "fork-join").unwrap();
        s.set("nodes", "500").unwrap();
        s.set("pes", "4").unwrap();
        s.set("processors", "big,big,little,little").unwrap();
        s.set("latency", "0.0002").unwrap();
        s.set("bandwidth", "1e8").unwrap();
        s.set("mapper", "hetero").unwrap();
        s.validate().unwrap();
        let text = s.to_toml();
        assert!(text.contains("[workload]"), "{text}");
        assert!(text.contains("generator = \"fork-join\""), "{text}");
        assert!(text.contains("mapper = \"hetero\""), "{text}");
        let parsed = Scenario::from_toml(&text).unwrap();
        assert_eq!(parsed, s, "{text}");
        // At their defaults the new knobs stay silent, so pre-existing
        // scenario encodings (and digests, and serve cache keys) are
        // untouched by this layer's existence.
        let preset = Scenario::preset(ScenarioKind::Sweep).to_toml();
        for absent in ["generator", "nodes", "latency", "bandwidth", "mapper", "[workload]"] {
            assert!(!preset.contains(absent), "{absent} leaked into the default encoding");
        }
    }

    #[test]
    fn generator_sweep_runs_end_to_end() {
        let mut s = Scenario::preset(ScenarioKind::Sweep);
        s.set("trials", "2").unwrap();
        s.set("specs", "EDF,BAS-2").unwrap();
        s.set("battery", "none").unwrap();
        s.set("processor", "unit").unwrap();
        s.set("generator", "layered").unwrap();
        s.set("nodes", "200").unwrap();
        // unit fmax = 1 cycle/s: a ~11k-cycle DAG at util 0.7 gets a
        // ~16000 s period; two periods fit the horizon.
        s.set("horizon", "40000").unwrap();
        let report = s.run_sweep().unwrap();
        assert_eq!(report.specs.len(), 2);
        for spec in &report.specs {
            assert_eq!(spec.trials.len(), 2);
            assert!(spec.trials.iter().all(|t| t.instances_completed >= 1), "{}", spec.label);
        }
        // The factory path derives everything from the trial seed: the two
        // trials generate different DAGs, so their makespans differ.
        let t = &report.specs[0].trials;
        assert_ne!(t[0].makespan, t[1].makespan, "per-trial DAGs must differ");
        // Replay surfaces see the same sets the sweep ran.
        let set = s.trial_set(Sweep::seed_for(s.seed, 0)).unwrap();
        assert_eq!(set.iter().count(), 1);
        assert_eq!(set.iter().next().unwrap().1.graph().node_count(), 200);
    }

    #[test]
    fn hetero_mapper_changes_the_outcome_on_an_asymmetric_platform() {
        let mut s = Scenario::preset(ScenarioKind::Sweep);
        s.set("trials", "1").unwrap();
        s.set("specs", "EDF").unwrap();
        s.set("battery", "none").unwrap();
        s.set("pes", "4").unwrap();
        s.set("processors", "big,big,little,little").unwrap();
        s.set("latency", "0.0001").unwrap();
        s.set("bandwidth", "1e9").unwrap();
        s.set("horizon", "30").unwrap();
        let weighted = s.run_sweep().unwrap();
        s.set("mapper", "hetero").unwrap();
        let hetero = s.run_sweep().unwrap();
        let w = &weighted.specs[0].trials[0];
        let h = &hetero.specs[0].trials[0];
        assert!(
            w.energy != h.energy || w.makespan != h.makespan,
            "hetero placement must change the execution (energy {} vs {}, makespan {} vs {})",
            w.energy,
            h.energy,
            w.makespan,
            h.makespan,
        );
    }

    #[test]
    fn sweep_scenario_with_battery_reports_lifetime() {
        let mut s = Scenario::preset(ScenarioKind::Sweep);
        s.set("trials", "1").unwrap();
        s.set("specs", "BAS-2cc").unwrap();
        s.set("battery", "kibam").unwrap();
        s.set("horizon", "1e6").unwrap();
        let report = s.run_sweep().unwrap();
        assert!(report.specs[0].lifetime_min.is_some());
    }

    #[test]
    fn non_sweep_kinds_refuse_run_sweep() {
        let e = Scenario::preset(ScenarioKind::Fig4).run_sweep().unwrap_err();
        assert!(e.to_string().contains("sweep"), "{e}");
    }

    #[test]
    fn digest_is_invariant_under_round_trip_and_key_order() {
        for kind in ScenarioKind::ALL {
            let scenario = Scenario::preset(kind);
            let reparsed = Scenario::from_toml(&scenario.to_toml()).unwrap();
            assert_eq!(reparsed.digest(), scenario.digest(), "{kind}: round-trip changed digest");
        }
        // Key order, comments and whitespace are canonicalized away.
        let a = Scenario::from_toml("kind = \"sweep\"\ntrials = 5\nseed = 9\n").unwrap();
        let b = Scenario::from_toml(
            "# reordered\nseed = 9\n\nkind = \"sweep\"   # same content\ntrials = 5\n",
        )
        .unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.digest().len(), 16, "{}", a.digest());
        assert!(a.digest().chars().all(|c| c.is_ascii_hexdigit()), "{}", a.digest());
    }

    #[test]
    fn digest_changes_when_any_knob_changes() {
        let base = Scenario::preset(ScenarioKind::Sweep);
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(base.digest()));
        // Every serialized knob of the kind must feed the digest.
        for (key, value) in [
            ("trials", "21"),
            ("seed", "2"),
            ("threads", "3"),
            ("graphs", "5"),
            ("util", "0.6"),
            ("horizon", "123.0"),
            ("specs", "EDF"),
            ("workload", "unit"),
            ("processor", "unit"),
            ("battery", "kibam"),
            ("sampler", "iid"),
            ("freq", "interp"),
            ("generator", "layered"),
            ("pes", "2"),
            ("latency", "0.001"),
            ("bandwidth", "1e8"),
            ("mapper", "hetero"),
            ("name", "renamed"),
        ] {
            let mut tweaked = base.clone();
            tweaked.set(key, value).unwrap();
            assert!(
                seen.insert(tweaked.digest()),
                "changing `{key}` to {value:?} did not change the digest"
            );
        }
        // Different kinds never collide on their presets.
        for kind in ScenarioKind::ALL {
            if kind != ScenarioKind::Sweep {
                assert!(seen.insert(Scenario::preset(kind).digest()), "{kind}");
            }
        }
        // `nodes` serializes (and feeds the digest) while a generator is on.
        let mut gen = base.clone();
        gen.set("generator", "layered").unwrap();
        let mut bigger = gen.clone();
        bigger.set("nodes", "5000").unwrap();
        assert_ne!(gen.digest(), bigger.digest(), "nodes must feed the digest");
    }

    #[test]
    fn stream_events_replays_sweeps_and_rejects_other_kinds() {
        let mut s = Scenario::preset(ScenarioKind::Sweep);
        s.set("trials", "1").unwrap();
        s.set("specs", "EDF,BAS-2").unwrap();
        s.set("battery", "none").unwrap();
        s.set("workload", "unit").unwrap();
        s.set("processor", "unit").unwrap();
        s.set("horizon", "100").unwrap();
        let bytes = s.stream_events(Vec::new()).unwrap();
        let stream = String::from_utf8(bytes).unwrap();
        let headers = stream.lines().filter(|l| l.contains("\"type\":\"header\"")).count();
        assert_eq!(headers, 2, "one header per spec:\n{stream}");
        assert!(stream.lines().next().unwrap().contains("\"schema\":\"bas-events/v2\""));
        // Deterministic: the same scenario replays to the same bytes.
        assert_eq!(s.stream_events(Vec::new()).unwrap(), stream.as_bytes());

        let e = Scenario::preset(ScenarioKind::Fig4).stream_events(Vec::new()).unwrap_err();
        assert!(e.to_string().contains("sweep"), "{e}");
    }

    #[test]
    fn spec_labels_stay_as_written() {
        let mut s = Scenario::preset(ScenarioKind::Sweep);
        s.set("specs", "BAS-2,laEDF+pUBS/all").unwrap();
        let parsed = s.parsed_specs().unwrap();
        assert_eq!(parsed[0].0, "BAS-2");
        assert_eq!(parsed[1].0, "laEDF+pUBS/all");
        assert_eq!(parsed[0].1, parsed[1].1, "alias and canonical label are the same spec");
    }
}
