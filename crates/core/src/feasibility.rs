//! Algorithm 2 — the feasibility check guarding out-of-EDF-order execution.
//!
//! Executing a task whose graph sits at position `k` of the EDF order "can
//! only jeopardize the meeting of the deadlines of k−1 taskgraphs before it"
//! (§4.2), so k−1 conditions suffice: for every earlier deadline `Dj`, all
//! worst-case work due by `Dj` **plus the candidate** must fit at the current
//! `fref` — "use of fref in these checks ensures that we are not forced to
//! run at higher frequencies even if tasks take their worst case (locally
//! non-increasing voltage assignments)".
//!
//! ## The `sumWC` reset
//!
//! The paper's pseudocode resets `sumWC ← 0` *inside* the loop, which would
//! make the accumulator always zero — each check would compare only the
//! j-th graph's own remaining work. That cannot be intended: two
//! earlier-deadline graphs would each individually fit while their union does
//! not, and a deadline would be missed. We implement the evidently intended
//! **cumulative prefix sum** as the default ([`FeasibilityVariant::Cumulative`]),
//! keep the literal reading available ([`FeasibilityVariant::PaperLiteral`])
//! for comparison, and prove in the property tests (and the workspace
//! integration tests) that the cumulative variant never misses deadlines.

use bas_sim::{SimState, TaskRef};

/// Which reading of Algorithm 2 to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeasibilityVariant {
    /// Cumulative prefix sums — the intended check (default).
    #[default]
    Cumulative,
    /// The literal pseudocode with `sumWC` reset each iteration — unsafe;
    /// provided only so the ablation bench can demonstrate the miss it
    /// causes.
    PaperLiteral,
}

/// Can `candidate` be run next, out of EDF order, at `fref_hz`, without
/// endangering any earlier-deadline graph?
///
/// The candidate's own graph's deadline (and later ones) need no check: once
/// earlier deadlines pass, the candidate's graph becomes most imminent and
/// plain EDF would run it anyway (§4.2).
pub fn is_feasible(
    state: &SimState,
    candidate: TaskRef,
    fref_hz: f64,
    variant: FeasibilityVariant,
) -> bool {
    let now = state.now();
    let wc_candidate = state.remaining_wc_node(candidate);
    let mut sum_wc = 0.0;
    for &gj in state.edf_order() {
        if gj == candidate.graph {
            // Reached the candidate's EDF position: all k−1 checks passed.
            return true;
        }
        match variant {
            FeasibilityVariant::Cumulative => sum_wc += state.remaining_wc(gj),
            FeasibilityVariant::PaperLiteral => sum_wc = state.remaining_wc(gj),
        }
        let dj = state.deadline(gj).expect("EDF order holds active graphs");
        // Work due by Dj plus the candidate must fit at fref.
        if sum_wc + wc_candidate > fref_hz * (dj - now) + 1e-9 {
            return false;
        }
    }
    // Candidate's graph not in the EDF order — not active; never feasible.
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_taskgraph::{GraphId, NodeId, PeriodicTaskGraph, TaskGraphBuilder, TaskSet};

    fn gid(i: usize) -> GraphId {
        GraphId::from_index(i)
    }
    fn tref(g: usize, n: usize) -> TaskRef {
        TaskRef::new(gid(g), NodeId::from_index(n))
    }

    fn single(wc: u64, period: f64) -> PeriodicTaskGraph {
        let mut b = TaskGraphBuilder::new("T");
        b.add_node("t", wc);
        PeriodicTaskGraph::new(b.build().unwrap(), period).unwrap()
    }

    /// The paper's Figure 5 set: T1(5, D20), T2(5, D50), T3(3×5, D100).
    /// U = 0.5, fref = 0.5.
    fn fig5_state() -> SimState {
        let mut set = TaskSet::new();
        set.push(single(5, 20.0));
        set.push(single(5, 50.0));
        let mut b = TaskGraphBuilder::new("T3");
        for i in 0..3 {
            b.add_node(format!("t{i}"), 5);
        }
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 100.0).unwrap());
        let mut s = SimState::new(set);
        s.release(gid(0), vec![5.0]);
        s.release(gid(1), vec![5.0]);
        s.release(gid(2), vec![5.0, 5.0, 5.0]);
        s.refresh_edf();
        s
    }

    #[test]
    fn most_imminent_graph_needs_no_checks() {
        let s = fig5_state();
        assert!(is_feasible(&s, tref(0, 0), 0.5, FeasibilityVariant::Cumulative));
    }

    #[test]
    fn paper_fig5_t3_task_is_feasible_at_fref_half() {
        // Running one T3 node (wc 5) at t=0, fref=0.5: check against
        // D1=20: 5 + 5 = 10 ≤ 0.5·20 = 10 ✓ (tight!)
        // D2=50: 5+5 + 5 = 15 ≤ 0.5·50 = 25 ✓
        let s = fig5_state();
        assert!(is_feasible(&s, tref(2, 0), 0.5, FeasibilityVariant::Cumulative));
    }

    #[test]
    fn t3_infeasible_once_fref_too_low() {
        let s = fig5_state();
        // At fref = 0.4: 5 + 5 = 10 > 0.4·20 = 8 -> infeasible.
        assert!(!is_feasible(&s, tref(2, 0), 0.4, FeasibilityVariant::Cumulative));
    }

    #[test]
    fn second_graph_task_checks_only_first_deadline() {
        let s = fig5_state();
        // T2's node at fref 0.5: 5 (T1) + 5 (cand) = 10 ≤ 10 ✓.
        assert!(is_feasible(&s, tref(1, 0), 0.5, FeasibilityVariant::Cumulative));
    }

    #[test]
    fn cumulative_is_stricter_than_paper_literal() {
        // Two tight graphs before the candidate: each alone fits by D2, but
        // their sum does not. T0: 4/D10, T1: 4/D11, T2 (cand): 4/D100 at
        // fref = 0.8: D1 check: 4+4=8 ≤ 8 ✓; D2: cumulative 8+4=12 > 8.8 ✗,
        // literal 4+4=8 ≤ 8.8 ✓ — the literal reading wrongly admits it.
        let mut set = TaskSet::new();
        set.push(single(4, 10.0));
        set.push(single(4, 11.0));
        set.push(single(4, 100.0));
        let mut s = SimState::new(set);
        s.release(gid(0), vec![4.0]);
        s.release(gid(1), vec![4.0]);
        s.release(gid(2), vec![4.0]);
        s.refresh_edf();
        let cand = tref(2, 0);
        assert!(!is_feasible(&s, cand, 0.8, FeasibilityVariant::Cumulative));
        assert!(is_feasible(&s, cand, 0.8, FeasibilityVariant::PaperLiteral));
    }

    #[test]
    fn inactive_graph_candidate_is_infeasible() {
        let mut set = TaskSet::new();
        set.push(single(4, 10.0));
        set.push(single(4, 20.0));
        let mut s = SimState::new(set);
        s.release(gid(0), vec![4.0]);
        s.refresh_edf();
        // Graph 1 has no released instance.
        assert!(!is_feasible(&s, tref(1, 0), 1.0, FeasibilityVariant::Cumulative));
    }

    #[test]
    fn progress_frees_feasibility() {
        let mut s = fig5_state();
        // Initially T3 at fref 0.45 fails the D1 check (5+5=10 > 9).
        assert!(!is_feasible(&s, tref(2, 0), 0.45, FeasibilityVariant::Cumulative));
        // Execute 3 cycles of T1: its remaining wc drops to 2.
        s.advance(tref(0, 0), 3.0);
        s.refresh_edf();
        // Now 2+5 = 7 ≤ 9 and the D2 check also passes.
        assert!(is_feasible(&s, tref(2, 0), 0.45, FeasibilityVariant::Cumulative));
    }
}
