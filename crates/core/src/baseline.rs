//! Evaluation-only workload transforms.
//!
//! Figure 6 normalizes every ordering scheme against a "near optimal schedule
//! obtained by removing precedence constraints within the taskgraphs" (§5):
//! with no precedence, every node is immediately ready, so the UBS priority
//! operates on the full instance — the setting in which Gruian proved it
//! within 1 % of optimal. [`strip_precedence`] builds that relaxed task set.

use bas_taskgraph::{PeriodicTaskGraph, TaskGraphBuilder, TaskSet};

/// The same task set with every precedence edge removed (same nodes, WCETs,
/// periods and phases).
///
/// Releases and (for a fixed seed) sampled actuals are identical to the
/// original set's, so energies are directly comparable.
pub fn strip_precedence(set: &TaskSet) -> TaskSet {
    let mut out = TaskSet::new();
    for (_, pg) in set.iter() {
        let g = pg.graph();
        let mut b = TaskGraphBuilder::with_capacity(g.name(), g.node_count(), 0);
        for (_, node) in g.nodes() {
            b.add_node(node.name.clone(), node.wcet);
        }
        let stripped = b.build().expect("same nodes, no edges: always valid");
        out.push(
            PeriodicTaskGraph::with_phase(stripped, pg.period(), pg.phase())
                .expect("period/phase already validated"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_taskgraph::{GeneratorConfig, TaskSetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stripping_removes_edges_and_keeps_everything_else() {
        let mut rng = StdRng::seed_from_u64(5);
        let set = TaskSetConfig {
            graphs: 3,
            graph: GeneratorConfig::default(),
            ..TaskSetConfig::default()
        }
        .generate(&mut rng)
        .unwrap();
        let stripped = strip_precedence(&set);
        assert_eq!(stripped.len(), set.len());
        for (gid, pg) in set.iter() {
            let spg = &stripped[gid];
            assert_eq!(spg.period(), pg.period());
            assert_eq!(spg.graph().node_count(), pg.graph().node_count());
            assert_eq!(spg.graph().total_wcet(), pg.graph().total_wcet());
            assert_eq!(spg.graph().edge_count(), 0);
            for (nid, node) in pg.graph().nodes() {
                assert_eq!(spg.graph().node(nid).wcet, node.wcet);
                assert_eq!(spg.graph().node(nid).name, node.name);
            }
        }
        // Utilization is untouched.
        assert!((stripped.utilization(1.0) - set.utilization(1.0)).abs() < 1e-12);
    }

    #[test]
    fn stripping_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(6);
        let set = TaskSetConfig::default().generate(&mut rng).unwrap();
        let once = strip_precedence(&set);
        let twice = strip_precedence(&once);
        for (gid, pg) in once.iter() {
            assert_eq!(pg.graph(), twice[gid].graph());
        }
    }
}
