//! Summary statistics for experiment results.
//!
//! This module moved here from `bas-bench` when the [`crate::experiment`]
//! layer started returning per-spec summaries; `bas_bench::Summary` remains
//! as a re-export.

/// Mean / standard deviation / extremes of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Empty input yields an all-NaN summary with n = 0.
    pub fn of(xs: &[f64]) -> Summary {
        let n = xs.len();
        if n == 0 {
            return Summary { n: 0, mean: f64::NAN, std: f64::NAN, min: f64::NAN, max: f64::NAN };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl std::fmt::Display for Summary {
    /// `mean ± std` with two decimals — the form every table column uses.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn single_point_has_zero_std() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn empty_sample_is_nan() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
    }

    #[test]
    fn displays_mean_and_std() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.to_string(), "2.00 ± 1.41");
    }
}
