//! Summary statistics for experiment results.
//!
//! This module moved here from `bas-bench` when the [`crate::experiment`]
//! layer started returning per-spec summaries (`bas-bench` is a pure
//! criterion-bench crate now).

/// Mean / standard deviation / extremes / percentiles of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile, linearly interpolated).
    pub p50: f64,
    /// 95th percentile (linearly interpolated). Scenario-diverse workloads
    /// are not well described by mean ± std alone; the tail matters.
    pub p95: f64,
}

impl Summary {
    /// Summarize a sample. Empty input yields an all-NaN summary with n = 0.
    pub fn of(xs: &[f64]) -> Summary {
        let n = xs.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: f64::NAN,
                std: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                p50: f64::NAN,
                p95: f64::NAN,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        // Order statistics skip NaNs (as the former fold-based min/max did):
        // a single NaN sample poisons mean/std but not min/max/p50/p95.
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered out"));
        let (min, max, p50, p95) = if sorted.is_empty() {
            (f64::NAN, f64::NAN, f64::NAN, f64::NAN)
        } else {
            (
                sorted[0],
                sorted[sorted.len() - 1],
                percentile_sorted(&sorted, 0.50),
                percentile_sorted(&sorted, 0.95),
            )
        };
        Summary { n, mean, std: var.sqrt(), min, max, p50, p95 }
    }
}

/// Linearly interpolated percentile of an already-sorted sample (the
/// "linear" / numpy default convention: rank `q · (n − 1)` interpolated
/// between its neighbours). `q` in `[0, 1]`.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

impl std::fmt::Display for Summary {
    /// `mean ± std` with two decimals — the form every table column uses.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.p50 - 2.5).abs() < 1e-12);
        assert!((s.p95 - 3.85).abs() < 1e-12);
    }

    #[test]
    fn single_point_has_zero_std() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    fn empty_sample_is_nan() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
        assert!(s.p50.is_nan());
        assert!(s.p95.is_nan());
    }

    #[test]
    fn percentiles_are_order_invariant() {
        let a = Summary::of(&[5.0, 1.0, 4.0, 2.0, 3.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a, b);
        assert_eq!(a.p50, 3.0);
        assert!((a.p95 - 4.8).abs() < 1e-12);
    }

    #[test]
    fn median_of_even_sample_interpolates() {
        let s = Summary::of(&[1.0, 2.0]);
        assert!((s.p50 - 1.5).abs() < 1e-12);
        assert!((s.p95 - 1.95).abs() < 1e-12);
    }

    #[test]
    fn nan_samples_poison_mean_but_not_order_statistics() {
        let s = Summary::of(&[f64::NAN, 2.0, 1.0]);
        assert!(s.mean.is_nan());
        assert!(s.std.is_nan());
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.p50, 1.5);
        let all_nan = Summary::of(&[f64::NAN, f64::NAN]);
        assert!(all_nan.min.is_nan() && all_nan.p95.is_nan());
    }

    #[test]
    fn displays_mean_and_std() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.to_string(), "2.00 ± 1.41");
    }
}
