//! Standard workload families shared by scenarios, examples and the CLI.
//!
//! This module moved here from `bas-bench` when the [`crate::scenario`]
//! layer started naming workloads in scenario files (`bas-bench` is a pure
//! criterion-bench crate now).
//!
//! Two scales are used, mirroring the paper:
//!
//! * **unit scale** — `fmax = 1`, WCETs of a few cycles, dimensionless time;
//!   the worked examples (Figures 4/5) and the energy-only comparisons
//!   (Table 1, Figure 6) live here.
//! * **paper scale** — the 1 GHz evaluation processor; WCETs in mega-cycles
//!   so node run times are tens of milliseconds and battery lifetimes come
//!   out in the minutes range of Table 2.

use bas_taskgraph::{
    GeneratorConfig, GraphShape, PeriodicTaskGraph, TaskGraphBuilder, TaskSet, TaskSetConfig,
};

/// The paper's Figure 5 task set: T1 (wc 5, D 20), T2 (wc 5, D 50),
/// T3 (three independent wc-5 nodes, D 100). Utilization 0.5.
pub fn fig5_set() -> TaskSet {
    let mut set = TaskSet::new();
    let mut b = TaskGraphBuilder::new("T1");
    b.add_node("t1", 5);
    set.push(PeriodicTaskGraph::new(b.build().unwrap(), 20.0).unwrap());
    let mut b = TaskGraphBuilder::new("T2");
    b.add_node("t2", 5);
    set.push(PeriodicTaskGraph::new(b.build().unwrap(), 50.0).unwrap());
    let mut b = TaskGraphBuilder::new("T3");
    for i in 0..3 {
        b.add_node(format!("t3{}", (b'a' + i) as char), 5);
    }
    set.push(PeriodicTaskGraph::new(b.build().unwrap(), 100.0).unwrap());
    set
}

/// Unit-scale random task-set family (Figure 6 and quick experiments):
/// `graphs` sparse random-dependency DAGs of 5–15 nodes, total utilization
/// `util`.
///
/// Shape note: the paper's TGFF graphs have "random dependencies"; sparse
/// layered DAGs keep several nodes simultaneously ready, which is the regime
/// in which ready-list *ordering* (the paper's contribution) can matter at
/// all. Narrow fan-in/fan-out chains leave no ordering freedom — see
/// EXPERIMENTS.md "workload shape".
pub fn unit_scale_config(graphs: usize, util: f64) -> TaskSetConfig {
    TaskSetConfig {
        graphs,
        graph: GeneratorConfig {
            nodes: (5, 15),
            wcet: (10, 100),
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.2 },
        },
        utilization: util,
        fmax: 1.0,
        period_quantum: None,
    }
}

/// Paper-scale task-set family (Table 2): WCETs of 10–100 mega-cycles on the
/// 1 GHz processor (node run times 10–100 ms at fmax), utilization `util`.
pub fn paper_scale_config(graphs: usize, util: f64) -> TaskSetConfig {
    TaskSetConfig {
        graphs,
        graph: GeneratorConfig {
            nodes: (5, 15),
            wcet: (10_000_000, 100_000_000),
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.2 },
        },
        utilization: util,
        fmax: 1.0e9,
        period_quantum: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig5_set_matches_paper_utilization() {
        let set = fig5_set();
        assert_eq!(set.len(), 3);
        assert!((set.utilization(1.0) - 0.5).abs() < 1e-12);
        assert_eq!(set.hyperperiod(1.0), Some(100.0));
    }

    #[test]
    fn unit_scale_generates_at_target_utilization() {
        let cfg = unit_scale_config(4, 0.7);
        let set = cfg.generate(&mut StdRng::seed_from_u64(1)).unwrap();
        let u = set.utilization(1.0);
        assert!(u <= 0.7 + 1e-9 && u > 0.3, "u = {u}");
    }

    #[test]
    fn paper_scale_node_times_are_tens_of_ms() {
        let cfg = paper_scale_config(4, 0.7);
        let set = cfg.generate(&mut StdRng::seed_from_u64(2)).unwrap();
        for (_, pg) in set.iter() {
            for (id, node) in pg.graph().nodes() {
                let dur_at_fmax = node.wcet as f64 / 1.0e9;
                assert!((0.009..=0.101).contains(&dur_at_fmax), "node {id}: {dur_at_fmax} s");
            }
        }
    }
}
