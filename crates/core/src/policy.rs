//! The composed battery-aware task policy: priority function × ready-list
//! scope × feasibility check.
//!
//! * **BAS-1** — "Ready list comprising of nodes of one graph only": the
//!   priority function chooses among the precedence-free nodes of the *most
//!   imminent* released graph. Plain EDF at the graph level, so no
//!   feasibility checks are needed.
//! * **BAS-2** — "Ready list comprising of nodes of all released graphs":
//!   candidates from every released graph, ranked by the priority function;
//!   the first candidate passing Algorithm 2's feasibility check runs.
//!   Most-imminent-graph candidates need no check (§4.2).

use crate::feasibility::{is_feasible, FeasibilityVariant};
use crate::priority::Priority;
use bas_sim::{SimState, TaskPolicy, TaskRef};

/// Which tasks are allowed into the ready list the priority function sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadyScope {
    /// Only the most imminent released graph's independent nodes (BAS-1).
    #[default]
    MostImminent,
    /// Independent nodes of all released graphs, guarded by the feasibility
    /// check (BAS-2).
    AllReleased,
}

/// A task policy assembled from a priority function and a ready-list scope.
pub struct BasPolicy<P: Priority> {
    priority: P,
    scope: ReadyScope,
    variant: FeasibilityVariant,
    /// Scratch buffers reused across decisions.
    candidates: Vec<TaskRef>,
    ranked: Vec<TaskRef>,
    /// Count of decisions where the feasibility check rejected the top-ranked
    /// candidate (observable in tests/benches).
    demotions: u64,
}

impl<P: Priority> BasPolicy<P> {
    /// BAS-1: `priority` over the most imminent graph only.
    pub fn most_imminent(priority: P) -> Self {
        BasPolicy {
            priority,
            scope: ReadyScope::MostImminent,
            variant: FeasibilityVariant::Cumulative,
            candidates: Vec::new(),
            ranked: Vec::new(),
            demotions: 0,
        }
    }

    /// BAS-2: `priority` over all released graphs with the (cumulative)
    /// feasibility check.
    pub fn all_released(priority: P) -> Self {
        BasPolicy {
            priority,
            scope: ReadyScope::AllReleased,
            variant: FeasibilityVariant::Cumulative,
            candidates: Vec::new(),
            ranked: Vec::new(),
            demotions: 0,
        }
    }

    /// Override the feasibility variant (ablation only — the literal paper
    /// pseudocode is unsafe; see [`FeasibilityVariant`]).
    pub fn with_feasibility_variant(mut self, variant: FeasibilityVariant) -> Self {
        self.variant = variant;
        self
    }

    /// The configured scope.
    pub fn scope(&self) -> ReadyScope {
        self.scope
    }

    /// How often the top-ranked candidate failed the feasibility check and a
    /// lower-ranked one ran instead.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Access the priority function.
    pub fn priority(&self) -> &P {
        &self.priority
    }
}

impl<P: Priority> TaskPolicy for BasPolicy<P> {
    fn name(&self) -> &'static str {
        match self.scope {
            ReadyScope::MostImminent => "BAS/most-imminent",
            ReadyScope::AllReleased => "BAS/all-released",
        }
    }

    fn pick(&mut self, state: &SimState, ready: &[TaskRef], fref_hz: f64) -> Option<TaskRef> {
        self.candidates.clear();
        match self.scope {
            ReadyScope::MostImminent => {
                let imminent = state.most_imminent()?;
                self.candidates.extend(ready.iter().copied().filter(|t| t.graph == imminent));
            }
            ReadyScope::AllReleased => {
                self.candidates.extend_from_slice(ready);
            }
        }
        if self.candidates.is_empty() {
            return None;
        }
        self.priority.rank(state, &self.candidates, fref_hz, &mut self.ranked);
        debug_assert_eq!(self.ranked.len(), self.candidates.len());
        match self.scope {
            ReadyScope::MostImminent => self.ranked.first().copied(),
            ReadyScope::AllReleased => {
                // "The checks are conducted in the increasing order of pUBS
                // value and stopped as soon as a valid candidate is found."
                let imminent = state.most_imminent();
                for (i, &cand) in self.ranked.iter().enumerate() {
                    let exempt = Some(cand.graph) == imminent;
                    if exempt || is_feasible(state, cand, fref_hz, self.variant) {
                        if i > 0 {
                            self.demotions += 1;
                        }
                        return Some(cand);
                    }
                }
                // Everything out-of-order is infeasible and the most imminent
                // graph has no ready node (can happen transiently only if its
                // ready nodes are all blocked — impossible for a DAG instance,
                // so in practice unreachable). Fall back to EDF to stay safe.
                self.demotions += 1;
                self.ranked.iter().copied().find(|t| Some(t.graph) == imminent)
            }
        }
    }

    fn on_completion(&mut self, state: &SimState, task: TaskRef, actual: f64) {
        self.priority.on_completion(state, task, actual);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{CycleEstimator, EmaEstimator};
    use crate::priority::{Ltf, Pubs, RandomPriority};
    use bas_taskgraph::{GraphId, NodeId, PeriodicTaskGraph, TaskGraphBuilder, TaskSet};

    fn gid(i: usize) -> GraphId {
        GraphId::from_index(i)
    }
    fn tref(g: usize, n: usize) -> TaskRef {
        TaskRef::new(gid(g), NodeId::from_index(n))
    }

    fn single(wc: u64, period: f64) -> PeriodicTaskGraph {
        let mut b = TaskGraphBuilder::new("T");
        b.add_node("t", wc);
        PeriodicTaskGraph::new(b.build().unwrap(), period).unwrap()
    }

    /// Fig-5 style: T0(5, D20), T1(5, D50), T2: 3 independent ×5, D100.
    fn fig5() -> (SimState, Vec<TaskRef>) {
        let mut set = TaskSet::new();
        set.push(single(5, 20.0));
        set.push(single(5, 50.0));
        let mut b = TaskGraphBuilder::new("T2");
        for i in 0..3 {
            b.add_node(format!("t{i}"), 5);
        }
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 100.0).unwrap());
        let mut s = SimState::new(set);
        s.release(gid(0), vec![5.0]);
        s.release(gid(1), vec![5.0]);
        s.release(gid(2), vec![5.0, 5.0, 5.0]);
        s.refresh_edf();
        let mut ready = Vec::new();
        s.ready_tasks(&mut ready);
        (s, ready)
    }

    #[test]
    fn most_imminent_scope_restricts_to_earliest_deadline_graph() {
        let (s, ready) = fig5();
        let mut p = BasPolicy::most_imminent(Ltf);
        let pick = p.pick(&s, &ready, 0.5).unwrap();
        assert_eq!(pick.graph, gid(0), "must pick from T0 (D=20)");
    }

    #[test]
    fn all_released_scope_can_go_out_of_edf_order_when_feasible() {
        let (s, ready) = fig5();
        // LTF ties on wc=5; tie-break by id puts T0 first — teach pUBS that
        // T2's nodes have slack so they rank first instead.
        let mut est = EmaEstimator::new(1.0, 0.6);
        for n in 0..3 {
            est.observe(tref(2, n), 1.0);
        }
        est.observe(tref(0, 0), 5.0);
        est.observe(tref(1, 0), 5.0);
        let mut p = BasPolicy::all_released(Pubs::new(est));
        let pick = p.pick(&s, &ready, 0.5).unwrap();
        // At fref = 0.5, a T2 node is feasible (see feasibility tests).
        assert_eq!(pick.graph, gid(2), "out-of-order run of slack-rich T2");
    }

    #[test]
    fn infeasible_top_candidate_is_demoted() {
        let (s, ready) = fig5();
        let mut est = EmaEstimator::new(1.0, 0.6);
        for n in 0..3 {
            est.observe(tref(2, n), 1.0);
        }
        est.observe(tref(0, 0), 5.0);
        est.observe(tref(1, 0), 5.0);
        let mut p = BasPolicy::all_released(Pubs::new(est));
        // At fref = 0.45 the T2 nodes fail the D0 check (10 > 9): the policy
        // must fall back down the ranking.
        let pick = p.pick(&s, &ready, 0.45).unwrap();
        assert_ne!(pick.graph, gid(2));
        assert_eq!(p.demotions(), 1);
    }

    #[test]
    fn empty_ready_list_returns_none() {
        let (s, _) = fig5();
        let mut p = BasPolicy::all_released(Ltf);
        assert_eq!(p.pick(&s, &[], 1.0), None);
    }

    #[test]
    fn completion_feedback_reaches_the_estimator() {
        let (s, _) = fig5();
        let mut p = BasPolicy::most_imminent(Pubs::new(EmaEstimator::new(1.0, 0.6)));
        p.on_completion(&s, tref(0, 0), 2.0);
        assert!((p.priority().estimator().estimate(tref(0, 0), 5.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn random_policy_only_picks_ready_tasks() {
        let (s, ready) = fig5();
        let mut p = BasPolicy::all_released(RandomPriority::new(11));
        for _ in 0..50 {
            let pick = p.pick(&s, &ready, 1.0).unwrap();
            assert!(ready.contains(&pick));
        }
    }

    #[test]
    fn names_reflect_scope() {
        assert_eq!(BasPolicy::most_imminent(Ltf).name(), "BAS/most-imminent");
        assert_eq!(BasPolicy::all_released(Ltf).name(), "BAS/all-released");
    }
}
