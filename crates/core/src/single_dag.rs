//! The offline single-DAG scenario of Table 1.
//!
//! "The first set of simulations compare the performance of pUBS priority
//! function with the LTF based heuristic … in scheduling single DAGs" (§5),
//! normalized against "the optimal schedule (in terms of energy consumption)
//! calculated using exhaustive search".
//!
//! One task graph, one common deadline, actuals fixed per trial (the oracle
//! knows them; heuristics see only WCETs and, for pUBS, an `Xk` estimate).
//! Frequency follows the single-deadline cycle-conserving rule: after each
//! completion, `fref = remaining-worst-case / time-to-deadline`, realized on
//! the discrete operating points. Energy is battery-side energy of the
//! executed work (idle after early completion costs nothing here — all
//! orders finish the same work, and Table 1 compares execution energy).
//!
//! The exhaustive search is a depth-first enumeration of linear extensions
//! with two sound prunings:
//!
//! * **bound** — accumulated energy plus (remaining actual cycles × cheapest
//!   per-cycle energy) must undercut the incumbent;
//! * **dominance** — per completed-subset Pareto fronts over (energy, time):
//!   a partial schedule that is both later *and* costlier than a known one
//!   cannot lead to a better completion (energy rates increase with required
//!   speed, which increases with elapsed time).

use crate::estimator::CycleEstimator;
use bas_cpu::{FreqPolicy, Processor};
use bas_sim::TaskRef;
use bas_taskgraph::{GraphId, NodeId, TaskGraph};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// Upper bound on node count for the exhaustive search (the paper stops at
/// 15 for the same reason).
pub const MAX_OPTIMAL_NODES: usize = 20;

/// A single-DAG, common-deadline scheduling trial with fixed actuals.
#[derive(Debug, Clone)]
pub struct Scenario {
    graph: TaskGraph,
    deadline: f64,
    actuals: Vec<f64>,
    processor: Processor,
    freq_policy: FreqPolicy,
}

/// The result of scheduling one order.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderOutcome {
    /// The executed order (a linear extension of the DAG).
    pub order: Vec<NodeId>,
    /// Battery-side energy of the executed work, joules.
    pub energy: f64,
    /// Completion time of the last task, seconds.
    pub finish: f64,
}

/// Where pUBS's `Xk` comes from in the offline scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum XSource {
    /// The true actuals — the "very accurate estimate" case the paper says
    /// brings pUBS within 1 % of optimal.
    Oracle,
    /// A static fraction of WCET (0.6 = the U(0.2,1) mean).
    Fraction(f64),
}

impl Scenario {
    /// Build a scenario; `actuals[i]` is node `i`'s true cycle demand.
    ///
    /// Fails when lengths mismatch, any actual is outside `(0, wcet]`, or
    /// the worst case cannot meet the deadline at `fmax`.
    pub fn new(
        graph: TaskGraph,
        deadline: f64,
        actuals: Vec<f64>,
        processor: Processor,
    ) -> Result<Self, String> {
        if actuals.len() != graph.node_count() {
            return Err(format!("{} actuals for {} nodes", actuals.len(), graph.node_count()));
        }
        for (i, &a) in actuals.iter().enumerate() {
            let wc = graph.wcet(NodeId::from_index(i)) as f64;
            if !(a > 0.0 && a <= wc + 1e-9) {
                return Err(format!("actual {a} of node {i} outside (0, {wc}]"));
            }
        }
        if !(deadline.is_finite() && deadline > 0.0) {
            return Err(format!("invalid deadline {deadline}"));
        }
        if graph.total_wcet() as f64 > deadline * processor.fmax() + 1e-9 {
            return Err("worst case exceeds deadline at fmax".to_string());
        }
        Ok(Scenario { graph, deadline, actuals, processor, freq_policy: FreqPolicy::Interpolate })
    }

    /// Override how `fref` maps to the discrete operating points.
    ///
    /// Table 1's between-order energy spread depends strongly on this: with
    /// [`FreqPolicy::RoundUp`] (run at the next discrete frequency ≥ `fref`,
    /// as a table-driven C simulator would) a good order drops into a lower
    /// frequency bin sooner, reproducing the paper's 1.2–1.6× ratios; with
    /// perfect interpolation the frequency path is nearly order-independent
    /// and the ratios compress (see EXPERIMENTS.md, Table 1 discussion).
    pub fn with_freq_policy(mut self, policy: FreqPolicy) -> Self {
        self.freq_policy = policy;
        self
    }

    /// Convenience: deadline chosen for the given worst-case utilization
    /// (the paper keeps 70 %), actuals sampled `U(lo, hi)·wcet`.
    pub fn with_utilization(
        graph: TaskGraph,
        utilization: f64,
        processor: Processor,
        actual_range: (f64, f64),
        rng: &mut impl Rng,
    ) -> Result<Self, String> {
        if !(utilization > 0.0 && utilization <= 1.0) {
            return Err(format!("utilization {utilization} outside (0,1]"));
        }
        let deadline = graph.total_wcet() as f64 / (utilization * processor.fmax());
        let actuals = graph
            .node_ids()
            .map(|n| {
                let wc = graph.wcet(n) as f64;
                (wc * rng.gen_range(actual_range.0..=actual_range.1)).max(1.0).min(wc)
            })
            .collect();
        Scenario::new(graph, deadline, actuals, processor)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The common deadline.
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// The fixed actuals (oracle view).
    pub fn actuals(&self) -> &[f64] {
        &self.actuals
    }

    /// Battery-side energy of executing `cycles` at the single-deadline
    /// cycle-conserving frequency for (remaining wc `w`, elapsed `t`), and
    /// the wall-clock the execution takes.
    fn exec_cost(&self, w_rem: f64, t: f64, cycles: f64) -> (f64, f64) {
        let window = (self.deadline - t).max(1e-12);
        let fref = (w_rem / window).clamp(self.processor.fmin(), self.processor.fmax());
        let r = self.processor.realize(fref, self.freq_policy);
        let energy = self.processor.energy_for_cycles(&r, cycles);
        let dur = r.time_for_cycles(cycles);
        (energy, dur)
    }

    /// Energy/finish of executing the nodes in `order` (must be a linear
    /// extension covering every node).
    pub fn energy_of_order(&self, order: &[NodeId]) -> Result<OrderOutcome, String> {
        let n = self.graph.node_count();
        if order.len() != n {
            return Err(format!("order covers {} of {n} nodes", order.len()));
        }
        let mut done = vec![false; n];
        let mut t = 0.0;
        let mut w_rem: f64 = self.graph.total_wcet() as f64;
        let mut energy = 0.0;
        for &node in order {
            if done[node.index()] {
                return Err(format!("node {node} repeated"));
            }
            if !self.graph.predecessors(node).iter().all(|p| done[p.index()]) {
                return Err(format!("node {node} runs before a predecessor"));
            }
            let (e, dur) = self.exec_cost(w_rem, t, self.actuals[node.index()]);
            energy += e;
            t += dur;
            w_rem -= self.graph.wcet(node) as f64;
            done[node.index()] = true;
        }
        debug_assert!(t <= self.deadline + 1e-6, "feasible scenario overran: {t}");
        Ok(OrderOutcome { order: order.to_vec(), energy, finish: t })
    }

    /// Detailed per-task schedule of `order`: start/end, realized average
    /// frequency and energy of each execution — the data behind the Figure 4
    /// trace printouts.
    pub fn timeline_of_order(&self, order: &[NodeId]) -> Result<Vec<TimelineEntry>, String> {
        // Reuse the validation of energy_of_order, then replay.
        self.energy_of_order(order)?;
        let mut t = 0.0;
        let mut w_rem: f64 = self.graph.total_wcet() as f64;
        let mut out = Vec::with_capacity(order.len());
        for &node in order {
            let window = (self.deadline - t).max(1e-12);
            let fref = (w_rem / window).clamp(self.processor.fmin(), self.processor.fmax());
            let r = self.processor.realize(fref, self.freq_policy);
            let cycles = self.actuals[node.index()];
            let (energy, dur) = self.exec_cost(w_rem, t, cycles);
            out.push(TimelineEntry {
                node,
                start: t,
                end: t + dur,
                frequency: r.average_frequency,
                energy,
            });
            t += dur;
            w_rem -= self.graph.wcet(node) as f64;
        }
        Ok(out)
    }

    /// Run a selector-driven heuristic: at each step `select` picks among the
    /// ready nodes (indices into the graph).
    pub fn run_selector(
        &self,
        mut select: impl FnMut(&SelectorView<'_>, &[NodeId]) -> NodeId,
    ) -> OrderOutcome {
        let n = self.graph.node_count();
        let mut done = vec![false; n];
        let mut indeg: Vec<usize> =
            self.graph.node_ids().map(|v| self.graph.in_degree(v)).collect();
        let mut ready: Vec<NodeId> =
            self.graph.node_ids().filter(|&v| indeg[v.index()] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut t = 0.0;
        let mut w_rem: f64 = self.graph.total_wcet() as f64;
        let mut energy = 0.0;
        while !ready.is_empty() {
            let view = SelectorView { scenario: self, elapsed: t, remaining_wc: w_rem };
            let node = select(&view, &ready);
            let pos =
                ready.iter().position(|&v| v == node).expect("selector must choose a ready node");
            ready.swap_remove(pos);
            let (e, dur) = self.exec_cost(w_rem, t, self.actuals[node.index()]);
            energy += e;
            t += dur;
            w_rem -= self.graph.wcet(node) as f64;
            done[node.index()] = true;
            order.push(node);
            for &s in self.graph.successors(node) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    ready.push(s);
                }
            }
            ready.sort_unstable();
        }
        debug_assert_eq!(order.len(), n, "DAG must drain completely");
        OrderOutcome { order, energy, finish: t }
    }

    /// Random ready-list order (the Table 1 "Random" column).
    pub fn run_random(&self, rng: &mut impl Rng) -> OrderOutcome {
        self.run_selector(|_, ready| *ready.choose(rng).expect("nonempty"))
    }

    /// Largest (worst-case) task first.
    pub fn run_ltf(&self) -> OrderOutcome {
        self.run_selector(|view, ready| {
            *ready
                .iter()
                .max_by(|a, b| {
                    let ga = view.scenario.graph.wcet(**a);
                    let gb = view.scenario.graph.wcet(**b);
                    ga.cmp(&gb).then(b.cmp(a))
                })
                .expect("nonempty")
        })
    }

    /// Shortest (worst-case) task first.
    pub fn run_stf(&self) -> OrderOutcome {
        self.run_selector(|view, ready| {
            *ready
                .iter()
                .min_by(|a, b| {
                    let ga = view.scenario.graph.wcet(**a);
                    let gb = view.scenario.graph.wcet(**b);
                    ga.cmp(&gb).then(a.cmp(b))
                })
                .expect("nonempty")
        })
    }

    /// pUBS order with the given `Xk` source.
    pub fn run_pubs(&self, x: XSource) -> OrderOutcome {
        self.run_selector(|view, ready| {
            let mut best = ready[0];
            let mut best_v = f64::INFINITY;
            for &k in ready {
                let v = view.pubs_value(k, x);
                if v < best_v || (v == best_v && k < best) {
                    best_v = v;
                    best = k;
                }
            }
            best
        })
    }

    /// pUBS order with an explicit per-node `Xk` vector (e.g. a noisy oracle
    /// modelling a history-trained estimator of a given accuracy).
    ///
    /// # Panics
    /// Panics when `xs.len()` differs from the node count.
    pub fn run_pubs_with_x(&self, xs: &[f64]) -> OrderOutcome {
        assert_eq!(xs.len(), self.graph.node_count(), "one Xk per node");
        self.run_selector(|view, ready| {
            let mut best = ready[0];
            let mut best_v = f64::INFINITY;
            for &k in ready {
                let v = view.pubs_value_with_x(k, xs[k.index()]);
                if v < best_v || (v == best_v && k < best) {
                    best_v = v;
                    best = k;
                }
            }
            best
        })
    }

    /// pUBS order driven by a live [`CycleEstimator`] (as the online policy
    /// would see it). `graph_id` keys the estimator's task references.
    pub fn run_pubs_with_estimator(
        &self,
        estimator: &dyn CycleEstimator,
        graph_id: GraphId,
    ) -> OrderOutcome {
        self.run_selector(|view, ready| {
            let mut best = ready[0];
            let mut best_v = f64::INFINITY;
            for &k in ready {
                let wc = view.scenario.graph.wcet(k) as f64;
                let xk = estimator.estimate(TaskRef::new(graph_id, k), wc);
                let v = view.pubs_value_with_x(k, xk);
                if v < best_v || (v == best_v && k < best) {
                    best_v = v;
                    best = k;
                }
            }
            best
        })
    }

    /// The exhaustive minimum-energy linear extension (branch-and-bound).
    ///
    /// # Panics
    /// Panics when the graph exceeds [`MAX_OPTIMAL_NODES`] (use the paper's
    /// own cutoff reasoning: the search space explodes).
    pub fn optimal(&self) -> OrderOutcome {
        self.optimal_with_budget(u64::MAX).expect("unbounded budget always completes")
    }

    /// [`Scenario::optimal`] with an expansion budget: returns `None` when
    /// the search was cut off before proving optimality. Wide DAGs on a
    /// dense-OPP processor occasionally blow past any practical budget (the
    /// cheapest-per-cycle lower bound is weak there) — the same wall that
    /// made the paper stop Table 1 at 15 tasks. Sweeps skip-and-count such
    /// trials rather than stall.
    pub fn optimal_with_budget(&self, max_expansions: u64) -> Option<OrderOutcome> {
        let n = self.graph.node_count();
        assert!(n <= MAX_OPTIMAL_NODES, "exhaustive search capped at {MAX_OPTIMAL_NODES} nodes");
        // Cheapest possible battery energy per cycle across OPPs (bound).
        let e_min_per_cycle = (0..self.processor.opps().len())
            .map(|i| {
                let opp = self.processor.opps().get(i);
                self.processor.battery_current_at(i) * self.processor.supply().vbat / opp.frequency
            })
            .fold(f64::INFINITY, f64::min);
        let pred_mask: Vec<u32> = self
            .graph
            .node_ids()
            .map(|v| self.graph.predecessors(v).iter().fold(0u32, |m, p| m | (1 << p.index())))
            .collect();
        let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

        // Seed the incumbent with a decent heuristic so pruning bites early.
        let seed = self.run_pubs(XSource::Oracle);
        let mut best_energy = seed.energy;
        let mut best_order: Vec<NodeId> = seed.order;

        // Pareto fronts per subset: (energy, time) pairs, none dominating
        // another. A new partial state dominated by a stored one is pruned.
        let mut fronts: HashMap<u32, Vec<(f64, f64)>> = HashMap::new();

        struct Frame {
            mask: u32,
            t: f64,
            w_rem: f64,
            energy: f64,
            rem_actual: f64,
            order: Vec<NodeId>,
        }
        let total_actual: f64 = self.actuals.iter().sum();
        let mut stack = vec![Frame {
            mask: 0,
            t: 0.0,
            w_rem: self.graph.total_wcet() as f64,
            energy: 0.0,
            rem_actual: total_actual,
            order: Vec::new(),
        }];
        let mut expansions: u64 = 0;
        while let Some(frame) = stack.pop() {
            expansions += 1;
            if expansions > max_expansions {
                return None; // budget exhausted before proof of optimality
            }
            if frame.mask == full {
                if frame.energy < best_energy {
                    best_energy = frame.energy;
                    best_order = frame.order;
                }
                continue;
            }
            if frame.energy + frame.rem_actual * e_min_per_cycle >= best_energy {
                continue; // bound
            }
            let front = fronts.entry(frame.mask).or_default();
            if front.iter().any(|&(e, t)| e <= frame.energy + 1e-12 && t <= frame.t + 1e-12) {
                continue; // dominated
            }
            front.retain(|&(e, t)| !(frame.energy <= e && frame.t <= t));
            front.push((frame.energy, frame.t));
            for (v, &pm) in pred_mask.iter().enumerate() {
                let bit = 1u32 << v;
                if frame.mask & bit != 0 || pm & frame.mask != pm {
                    continue;
                }
                let node = NodeId::from_index(v);
                let (e, dur) = self.exec_cost(frame.w_rem, frame.t, self.actuals[v]);
                let mut order = frame.order.clone();
                order.push(node);
                stack.push(Frame {
                    mask: frame.mask | bit,
                    t: frame.t + dur,
                    w_rem: frame.w_rem - self.graph.wcet(node) as f64,
                    energy: frame.energy + e,
                    rem_actual: frame.rem_actual - self.actuals[v],
                    order,
                });
            }
        }
        Some(OrderOutcome {
            energy: best_energy,
            finish: self.energy_of_order(&best_order).expect("optimal order valid").finish,
            order: best_order,
        })
    }
}

/// One executed task in a [`Scenario::timeline_of_order`] replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEntry {
    /// The executed node.
    pub node: NodeId,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Realized average frequency, Hz.
    pub frequency: f64,
    /// Battery-side energy of the execution, joules.
    pub energy: f64,
}

/// Read-only view handed to selectors.
pub struct SelectorView<'a> {
    scenario: &'a Scenario,
    /// Elapsed time, seconds.
    pub elapsed: f64,
    /// Remaining worst-case cycles (all unfinished nodes).
    pub remaining_wc: f64,
}

impl SelectorView<'_> {
    /// The scenario being scheduled.
    pub fn scenario(&self) -> &Scenario {
        self.scenario
    }

    /// pUBS value of candidate `k` under the given `Xk` source.
    pub fn pubs_value(&self, k: NodeId, x: XSource) -> f64 {
        let wc = self.scenario.graph.wcet(k) as f64;
        let xk = match x {
            XSource::Oracle => self.scenario.actuals[k.index()],
            XSource::Fraction(f) => (f * wc).max(1e-9),
        };
        self.pubs_value_with_x(k, xk)
    }

    /// pUBS value with an explicit `Xk`.
    pub fn pubs_value_with_x(&self, k: NodeId, xk: f64) -> f64 {
        let horizon = (self.scenario.deadline - self.elapsed).max(1e-12);
        let wc = self.scenario.graph.wcet(k) as f64;
        let xk = xk.clamp(1e-9, wc);
        let s_o = self.remaining_wc / horizon;
        if s_o <= 0.0 {
            return f64::INFINITY;
        }
        let time_after = horizon - xk / s_o;
        if time_after <= 1e-12 {
            return f64::INFINITY;
        }
        let s_ok = (self.remaining_wc - wc) / time_after;
        let denom = s_o * s_o - s_ok * s_ok;
        if denom <= 0.0 {
            return f64::INFINITY;
        }
        xk / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_cpu::presets::unit_processor;
    use bas_taskgraph::{GeneratorConfig, GraphShape, TaskGraphBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nid(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// Two independent tasks, the Figure 4 shape: wc 4 and 6, deadline 10.
    fn fig4(actual1: f64, actual2: f64) -> Scenario {
        let mut b = TaskGraphBuilder::new("fig4");
        b.add_node("task1", 4);
        b.add_node("task2", 6);
        Scenario::new(b.build().unwrap(), 10.0, vec![actual1, actual2], unit_processor()).unwrap()
    }

    #[test]
    fn order_validation_rejects_bad_orders() {
        let mut b = TaskGraphBuilder::new("chain");
        let a = b.add_node("a", 2);
        let c = b.add_node("b", 2);
        b.add_edge(a, c).unwrap();
        let s = Scenario::new(b.build().unwrap(), 10.0, vec![2.0, 2.0], unit_processor()).unwrap();
        assert!(s.energy_of_order(&[c, a]).is_err(), "precedence violated");
        assert!(s.energy_of_order(&[a]).is_err(), "incomplete");
        assert!(s.energy_of_order(&[a, a]).is_err(), "repeated");
        assert!(s.energy_of_order(&[a, c]).is_ok());
    }

    #[test]
    fn fig4_case1_stf_beats_ltf() {
        // Case 1: actuals 40 % and 60 % -> task1 = 1.6, task2 = 3.6.
        // STF (task1 first) recovers task1's slack before the big task runs.
        let s = fig4(1.6, 3.6);
        let stf = s.run_stf();
        let ltf = s.run_ltf();
        assert!(
            stf.energy < ltf.energy,
            "STF {} must beat LTF {} in case 1",
            stf.energy,
            ltf.energy
        );
    }

    #[test]
    fn fig4_case2_ltf_beats_stf() {
        // Case 2: actuals 60 % and 40 % -> task1 = 2.4, task2 = 2.4.
        let s = fig4(2.4, 2.4);
        let stf = s.run_stf();
        let ltf = s.run_ltf();
        assert!(
            ltf.energy < stf.energy,
            "LTF {} must beat STF {} in case 2",
            ltf.energy,
            stf.energy
        );
    }

    #[test]
    fn oracle_pubs_matches_exhaustive_on_fig4() {
        for (a1, a2) in [(1.6, 3.6), (2.4, 2.4), (4.0, 1.2)] {
            let s = fig4(a1, a2);
            let pubs = s.run_pubs(XSource::Oracle);
            let opt = s.optimal();
            assert!(
                pubs.energy <= opt.energy * 1.01 + 1e-12,
                "pubs {} vs optimal {} for ({a1},{a2})",
                pubs.energy,
                opt.energy
            );
        }
    }

    #[test]
    fn optimal_is_never_beaten() {
        let cfg = GeneratorConfig::default()
            .with_nodes(8)
            .with_wcet(5, 40)
            .with_shape(GraphShape::FanInFanOut { max_out: 3, max_in: 3 });
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = cfg.generate("g", &mut rng);
            let s =
                Scenario::with_utilization(g, 0.7, unit_processor(), (0.2, 1.0), &mut rng).unwrap();
            let opt = s.optimal();
            for heur in [
                s.run_ltf(),
                s.run_stf(),
                s.run_pubs(XSource::Oracle),
                s.run_pubs(XSource::Fraction(0.6)),
                s.run_random(&mut rng),
            ] {
                assert!(
                    heur.energy >= opt.energy - 1e-9,
                    "heuristic {:?} beat 'optimal' {} (seed {seed})",
                    heur.energy,
                    opt.energy
                );
            }
            // And optimal must itself be a valid order.
            let check = s.energy_of_order(&opt.order).unwrap();
            assert!((check.energy - opt.energy).abs() < 1e-9);
        }
    }

    #[test]
    fn budgeted_optimal_returns_none_when_exhausted() {
        let mut b = TaskGraphBuilder::new("ind");
        for i in 0..10 {
            b.add_node(format!("t{i}"), 10 + i as u64);
        }
        let g = b.build().unwrap();
        let actuals: Vec<f64> = (0..10).map(|i| 3.0 + i as f64).collect();
        let s = Scenario::new(g, 200.0, actuals, unit_processor()).unwrap();
        // A one-expansion budget cannot even open the root's children.
        assert!(s.optimal_with_budget(1).is_none());
        // A generous budget completes and matches the unbounded search.
        let bounded = s.optimal_with_budget(u64::MAX / 2).unwrap();
        let full = s.optimal();
        assert!((bounded.energy - full.energy).abs() < 1e-12);
    }

    #[test]
    fn orders_finish_by_the_deadline() {
        let cfg = GeneratorConfig::default().with_nodes(10).with_wcet(5, 40);
        let mut rng = StdRng::seed_from_u64(3);
        let g = cfg.generate("g", &mut rng);
        let s = Scenario::with_utilization(g, 0.7, unit_processor(), (0.2, 1.0), &mut rng).unwrap();
        for out in [s.run_ltf(), s.run_stf(), s.run_pubs(XSource::Oracle)] {
            assert!(out.finish <= s.deadline() + 1e-6, "{} > {}", out.finish, s.deadline());
        }
    }

    #[test]
    fn worst_case_actuals_make_all_orders_equal_energy() {
        // With actual = wc for every node and a fully-packed frequency rule,
        // every linear extension runs the same cycles at the same speeds.
        let mut b = TaskGraphBuilder::new("ind");
        b.add_node("a", 5);
        b.add_node("b", 5);
        b.add_node("c", 5);
        let s =
            Scenario::new(b.build().unwrap(), 30.0, vec![5.0, 5.0, 5.0], unit_processor()).unwrap();
        let e1 = s.energy_of_order(&[nid(0), nid(1), nid(2)]).unwrap().energy;
        let e2 = s.energy_of_order(&[nid(2), nid(0), nid(1)]).unwrap().energy;
        assert!((e1 - e2).abs() < 1e-9);
    }

    #[test]
    fn invalid_scenarios_are_rejected() {
        let mut b = TaskGraphBuilder::new("t");
        b.add_node("a", 10);
        let g = b.build().unwrap();
        // actual > wcet
        assert!(Scenario::new(g.clone(), 20.0, vec![11.0], unit_processor()).is_err());
        // wrong arity
        assert!(Scenario::new(g.clone(), 20.0, vec![], unit_processor()).is_err());
        // infeasible deadline
        assert!(Scenario::new(g.clone(), 5.0, vec![10.0], unit_processor()).is_err());
        // bad deadline
        assert!(Scenario::new(g, f64::NAN, vec![10.0], unit_processor()).is_err());
    }

    #[test]
    fn estimator_driven_pubs_matches_fraction_source_when_untrained() {
        let cfg = GeneratorConfig::default().with_nodes(7).with_wcet(5, 40);
        let mut rng = StdRng::seed_from_u64(9);
        let g = cfg.generate("g", &mut rng);
        let s = Scenario::with_utilization(g, 0.7, unit_processor(), (0.2, 1.0), &mut rng).unwrap();
        let est = crate::estimator::MeanFraction::new(0.6);
        let via_est = s.run_pubs_with_estimator(&est, GraphId::from_index(0));
        let via_fraction = s.run_pubs(XSource::Fraction(0.6));
        assert_eq!(via_est.order, via_fraction.order);
    }
}
