//! # bas-core — the battery-aware scheduling methodology
//!
//! The paper's contribution (§4), assembled from the substrates in the other
//! crates:
//!
//! * [`estimator`] — `Xk` estimators for the expected actual cycle demand of
//!   a task: history-based exponential moving average (the paper suggests
//!   "keep history of previous instances of each task"), the distribution
//!   mean, and the pessimistic worst case.
//! * [`priority`] — the ready-list priority functions of the evaluation:
//!   **Random**, **LTF** (largest task first), **STF** (shortest task first)
//!   and **pUBS** (Gruian's near-optimal priority,
//!   `pubs(o, τk) = Xk / (s_o² − s_{o,k}²)`, minimized).
//! * [`feasibility`] — Algorithm 2: the O(k) check that lets a task be run
//!   *out of EDF order* without endangering any earlier deadline, never
//!   requiring more than the current `fref`.
//! * [`policy`] — the composed [`policy::BasPolicy`]: a priority function
//!   plus a ready-list scope (most-imminent graph = **BAS-1**, all released
//!   graphs guarded by the feasibility check = **BAS-2**).
//! * [`single_dag`] — the offline single-DAG scenario of Table 1: energy of
//!   a given execution order, branch-and-bound exhaustive optimum, and
//!   selector-driven heuristic orders.
//! * [`baseline`] — evaluation-only transforms: precedence stripping (the
//!   near-optimal normalizer of Figure 6).
//! * [`runner`] — one-call experiment façade: build any scheduler of the
//!   paper's Table 2 by name and run it (with or without a battery).
//!
//! ## Quick start
//!
//! ```
//! use bas_core::runner::{simulate, SchedulerSpec};
//! use bas_cpu::presets::unit_processor;
//! use bas_taskgraph::{GeneratorConfig, TaskSetConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let set = TaskSetConfig::default().generate(&mut rng).unwrap();
//! let out = simulate(&set, &SchedulerSpec::bas2(), &unit_processor(), 42, 200.0).unwrap();
//! assert_eq!(out.metrics.deadline_misses, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod estimator;
pub mod feasibility;
pub mod policy;
pub mod priority;
pub mod runner;
pub mod single_dag;

pub use estimator::{CycleEstimator, EmaEstimator, MeanFraction, WorstCaseEstimate};
pub use feasibility::{is_feasible, FeasibilityVariant};
pub use policy::{BasPolicy, ReadyScope};
pub use priority::{Ltf, Priority, Pubs, RandomPriority, Stf};
pub use runner::SchedulerSpec;
