//! # bas-core — the battery-aware scheduling methodology
//!
//! The paper's contribution (§4), assembled from the substrates in the other
//! crates:
//!
//! * [`estimator`] — `Xk` estimators for the expected actual cycle demand of
//!   a task: history-based exponential moving average (the paper suggests
//!   "keep history of previous instances of each task"), the distribution
//!   mean, and the pessimistic worst case.
//! * [`priority`] — the ready-list priority functions of the evaluation:
//!   **Random**, **LTF** (largest task first), **STF** (shortest task first)
//!   and **pUBS** (Gruian's near-optimal priority,
//!   `pubs(o, τk) = Xk / (s_o² − s_{o,k}²)`, minimized).
//! * [`feasibility`] — Algorithm 2: the O(k) check that lets a task be run
//!   *out of EDF order* without endangering any earlier deadline, never
//!   requiring more than the current `fref`.
//! * [`policy`] — the composed [`policy::BasPolicy`]: a priority function
//!   plus a ready-list scope (most-imminent graph = **BAS-1**, all released
//!   graphs guarded by the feasibility check = **BAS-2**).
//! * [`single_dag`] — the offline single-DAG scenario of Table 1: energy of
//!   a given execution order, branch-and-bound exhaustive optimum, and
//!   selector-driven heuristic orders.
//! * [`baseline`] — evaluation-only transforms: precedence stripping (the
//!   near-optimal normalizer of Figure 6).
//! * [`runner`] — the scheduler vocabulary: [`SchedulerSpec`] names any
//!   Table 2 scheduler and round-trips through strings.
//! * [`experiment`] — the builder-style experiment API: [`Experiment`] for
//!   one run, [`Sweep`] for deterministic parallel batches.
//! * [`scenario`] — the declarative layer above the builders: a
//!   serializable [`Scenario`] describes a whole experiment (kind ×
//!   workload × lineup × platform × seeds) and round-trips through scenario
//!   files via the offline TOML-subset codec in [`toml`].
//! * [`report`] — structured results: a [`Report`] serializes spec-labelled
//!   per-seed metrics and [`Summary`] statistics as stable JSON/CSV.
//! * [`table`] — the plain-text [`TextTable`] renderer behind the CLI's
//!   historical output.
//! * [`workloads`] — the standard workload families scenario files name.
//! * [`parallel`] / [`stats`] — the deterministic fan-out primitive and
//!   [`Summary`] statistics backing [`Sweep`].
//!
//! ## Quick start
//!
//! One experiment — builder in, [`bas_sim::SimOutcome`] out:
//!
//! ```
//! use bas_core::{Experiment, SchedulerSpec};
//! use bas_cpu::presets::unit_processor;
//! use bas_taskgraph::TaskSetConfig;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let set = TaskSetConfig::default()
//!     .generate(&mut StdRng::seed_from_u64(7))
//!     .unwrap();
//! let proc = unit_processor();
//! let out = Experiment::new(&set)
//!     .spec(SchedulerSpec::bas2())
//!     .processor(&proc)
//!     .seed(42)
//!     .horizon(200.0)
//!     .run()
//!     .unwrap();
//! assert_eq!(out.metrics.deadline_misses, 0);
//! ```
//!
//! A batch — the paper's protocol of many random task sets per scheduler,
//! fanned out over worker threads with bit-identical results:
//!
//! ```
//! use bas_core::{SchedulerSpec, Sweep};
//! use bas_cpu::presets::unit_processor;
//! use bas_taskgraph::TaskSetConfig;
//!
//! let proc = unit_processor();
//! let report = Sweep::over_seeds(1, 4)
//!     .specs(SchedulerSpec::table2_lineup())
//!     .workload(TaskSetConfig::default())
//!     .processor(&proc)
//!     .horizon(200.0)
//!     .run()
//!     .unwrap();
//! assert!(report.spec("BAS-2").unwrap().energy.mean
//!     < report.spec("EDF").unwrap().energy.mean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod estimator;
pub mod experiment;
pub mod feasibility;
pub mod parallel;
pub mod policy;
pub mod priority;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod single_dag;
pub mod stats;
pub mod table;
pub mod toml;
pub mod workloads;

pub use estimator::{CycleEstimator, EmaEstimator, MeanFraction, WorstCaseEstimate};
pub use experiment::{
    Experiment, MapperKind, SpecReport, Sweep, SweepError, SweepReport, TrialRecord,
};
pub use feasibility::{is_feasible, FeasibilityVariant};
pub use parallel::parallel_map;
pub use policy::{BasPolicy, ReadyScope};
pub use priority::{Ltf, Priority, Pubs, RandomPriority, Stf};
pub use report::{Report, ReportRow, SeedRecord};
pub use runner::{
    all_specs, expand_spec_patterns, GovernorKind, ParseSpecError, PriorityKind, SamplerKind,
    SchedulerSpec, ScopeKind,
};
pub use scenario::{Scenario, ScenarioError, ScenarioKind, PORTFOLIO_AXES};
pub use stats::Summary;
pub use table::TextTable;
