//! The builder-style experiment API.
//!
//! The paper's whole evaluation is one experiment shape — a scheduler spec ×
//! workload × processor × battery × sampler, repeated over seeds — so the
//! workspace expresses it with two composable types instead of a zoo of free
//! functions:
//!
//! * [`Experiment`] — one run. Configure a [`SchedulerSpec`], a workload, a
//!   processor and a seed, optionally attach a battery, and `run()`:
//!
//!   ```
//!   use bas_core::{Experiment, SchedulerSpec};
//!   use bas_cpu::presets::unit_processor;
//!   use bas_taskgraph::TaskSetConfig;
//!   use rand::{rngs::StdRng, SeedableRng};
//!
//!   let set = TaskSetConfig::default()
//!       .generate(&mut StdRng::seed_from_u64(7))
//!       .unwrap();
//!   let proc = unit_processor();
//!   let out = Experiment::new(&set)
//!       .spec(SchedulerSpec::bas2())
//!       .processor(&proc)
//!       .seed(42)
//!       .horizon(200.0)
//!       .run()
//!       .unwrap();
//!   assert_eq!(out.metrics.deadline_misses, 0);
//!   ```
//!
//! * [`Sweep`] — a batch of experiments over trial seeds × scheduler specs,
//!   with deterministic parallel fan-out (see [`crate::parallel`]) and
//!   per-spec [`Summary`] statistics:
//!
//!   ```no_run
//!   use bas_core::{SchedulerSpec, Sweep};
//!   use bas_cpu::presets::unit_processor;
//!   use bas_taskgraph::TaskSetConfig;
//!
//!   let proc = unit_processor();
//!   let report = Sweep::over_seeds(1, 20)
//!       .specs(SchedulerSpec::table2_lineup())
//!       .workload(TaskSetConfig::default())
//!       .processor(&proc)
//!       .horizon(300.0)
//!       .threads(0)
//!       .run()
//!       .unwrap();
//!   for spec in &report.specs {
//!       println!("{}: {}", spec.label, spec.energy);
//!   }
//!   ```
//!
//! ## Determinism
//!
//! Every stochastic piece of a trial (workload generation, random priority,
//! actual-computation sampling, stochastic battery) derives from the trial
//! seed, and [`parallel_map`] scatters results back into trial order, so a
//! sweep's [`SweepReport`] is **bit-identical** for any `threads` setting —
//! parallelism is purely a wall-clock optimization.

use crate::parallel::parallel_map;
use crate::runner::{SamplerKind, SchedulerSpec};
use crate::stats::Summary;
use bas_battery::BatteryModel;
use bas_cpu::{FreqPolicy, Platform, Processor};
use bas_sim::{DeadlineMode, SimConfig, SimError, SimObserver, SimOutcome, Simulation};
use bas_taskgraph::{Mapping, TaskSet, TaskSetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// How DAG nodes are placed onto the PEs of a multi-PE platform when no
/// explicit [`Experiment::mapping`] is given. Irrelevant on a 1-PE
/// platform (everything runs on PE 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapperKind {
    /// Deterministic fmax-weighted list scheduling
    /// ([`Mapping::list_schedule_weighted`]) — pure load balance, blind to
    /// where a node's predecessors sit. The historical default.
    #[default]
    Weighted,
    /// Heterogeneity-aware list scheduling
    /// ([`Mapping::list_schedule_hetero`]): resulting-load scoring plus a
    /// communication penalty for edges whose endpoints land on different
    /// PEs, priced at the platform's interconnect. Without a mounted
    /// interconnect the fabric is free and only the load term remains.
    Hetero,
}

/// A single configured experiment run: scheduler spec × workload ×
/// processor × seed, optionally co-simulated with a battery.
///
/// Construct with [`Experiment::new`], chain setters, finish with
/// [`Experiment::run`]. Required pieces: [`spec`](Self::spec),
/// [`processor`](Self::processor) and [`horizon`](Self::horizon) — `run`
/// returns [`SimError::Unconfigured`] when one is missing. Everything else
/// defaults to the paper's evaluation setup: i.i.d. uniform actuals,
/// interpolated frequency realization, fail on deadline miss, no trace.
pub struct Experiment<'a> {
    set: &'a TaskSet,
    spec: Option<SchedulerSpec>,
    processor: Option<&'a Processor>,
    platform: Option<&'a Platform>,
    mapping: Option<Mapping>,
    mapper: MapperKind,
    seed: u64,
    horizon: Option<f64>,
    battery: Option<&'a mut dyn BatteryModel>,
    observers: Vec<&'a mut dyn SimObserver>,
    sampler: SamplerKind,
    freq_policy: FreqPolicy,
    deadline_mode: DeadlineMode,
    trace: bool,
    check_feasibility: bool,
}

impl<'a> Experiment<'a> {
    /// Start configuring an experiment over `set`.
    pub fn new(set: &'a TaskSet) -> Self {
        Experiment {
            set,
            spec: None,
            processor: None,
            platform: None,
            mapping: None,
            mapper: MapperKind::default(),
            seed: 0,
            horizon: None,
            battery: None,
            observers: Vec::new(),
            sampler: SamplerKind::IidUniform,
            freq_policy: FreqPolicy::Interpolate,
            deadline_mode: DeadlineMode::Fail,
            trace: false,
            check_feasibility: true,
        }
    }

    /// The scheduler to run (required).
    pub fn spec(mut self, spec: SchedulerSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// The DVS processor model — shorthand for a 1-PE
    /// [`platform`](Self::platform) (one of the two is required).
    pub fn processor(mut self, processor: &'a Processor) -> Self {
        self.processor = Some(processor);
        self
    }

    /// The execution platform: `N ≥ 1` processing elements sharing the
    /// battery, each driven by its own governor/policy instance from the
    /// spec's banks. Takes precedence over
    /// [`processor`](Self::processor).
    pub fn platform(mut self, platform: &'a Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// Pin nodes to PEs explicitly. Default: everything on PE 0 for a 1-PE
    /// platform, deterministic fmax-weighted list scheduling
    /// ([`Mapping::list_schedule_weighted`]) otherwise.
    pub fn mapping(mut self, mapping: Mapping) -> Self {
        self.mapping = Some(mapping);
        self
    }

    /// How unmapped nodes are placed on a multi-PE platform. Ignored when
    /// an explicit [`mapping`](Self::mapping) is given or the platform has
    /// a single PE. Default [`MapperKind::Weighted`].
    pub fn mapper(mut self, mapper: MapperKind) -> Self {
        self.mapper = mapper;
        self
    }

    /// Seed for every stochastic piece (random priority, sampler). Two runs
    /// with equal configuration and seed are bit-identical. Default 0.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Simulated-time bound, seconds (required). Without a battery this is
    /// the exact horizon; with one it caps the co-simulation (censoring runs
    /// that outlive it).
    pub fn horizon(mut self, horizon: f64) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Co-simulate against `battery` until it dies (or the horizon passes).
    /// The battery is mounted *inside* the engine, so governors and policies
    /// see its [`bas_sim::BatteryView`] on the simulation state.
    pub fn battery(mut self, battery: &'a mut dyn BatteryModel) -> Self {
        self.battery = Some(battery);
        self
    }

    /// Attach a [`SimObserver`] to the run — e.g. a
    /// [`bas_sim::JsonlWriter`] streaming the `bas-events/v2` event stream,
    /// or a [`bas_sim::TraceRecorder`]/custom analysis. May be called
    /// repeatedly; observers see the whole stream in order.
    pub fn observer(mut self, observer: &'a mut dyn SimObserver) -> Self {
        self.observers.push(observer);
        self
    }

    /// How actual computations are drawn. This is the **only** sampler knob —
    /// the retired `simulate`/`simulate_lean` façade hardcoded
    /// [`SamplerKind::IidUniform`] and silently ignored the concept.
    /// Default [`SamplerKind::IidUniform`] (the literal reading of §5).
    pub fn sampler(mut self, sampler: SamplerKind) -> Self {
        self.sampler = sampler;
        self
    }

    /// How continuous `fref` maps onto discrete operating points. Default
    /// [`FreqPolicy::Interpolate`] (the optimal two-point scheme of \[4\]).
    pub fn freq_policy(mut self, policy: FreqPolicy) -> Self {
        self.freq_policy = policy;
        self
    }

    /// Deadline-miss behaviour. Default [`DeadlineMode::Fail`] — every
    /// scheduler of the paper is supposed to be miss-free, so a miss aborts.
    pub fn deadline_mode(mut self, mode: DeadlineMode) -> Self {
        self.deadline_mode = mode;
        self
    }

    /// Record the full execution trace. Default `false` (traces cost memory
    /// on long runs; metrics and battery accounting are exact regardless).
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Reject over-utilized / structurally infeasible sets up front.
    /// Default `true`.
    pub fn check_feasibility(mut self, check: bool) -> Self {
        self.check_feasibility = check;
        self
    }

    /// Run the experiment: build the scheduler pieces, assemble a
    /// [`Simulation`], mount the battery and observers, run to the horizon
    /// (or battery death) and [`finish`](Simulation::finish) into the
    /// outcome — the trace and metrics are moved out, never cloned.
    pub fn run(self) -> Result<SimOutcome, SimError> {
        let spec = self.spec.ok_or(SimError::Unconfigured("spec"))?;
        let horizon = self.horizon.ok_or(SimError::Unconfigured("horizon"))?;
        let single;
        let platform: &Platform = match (self.platform, self.processor) {
            (Some(p), _) => p,
            (None, Some(proc)) => {
                single = Platform::single(proc.clone());
                &single
            }
            (None, None) => return Err(SimError::Unconfigured("processor")),
        };
        let mapping = match self.mapping {
            Some(m) => m,
            None if platform.len() == 1 => Mapping::single_pe(self.set),
            None => match self.mapper {
                MapperKind::Weighted => {
                    Mapping::list_schedule_weighted(self.set, &platform.fmax_per_pe())
                }
                MapperKind::Hetero => {
                    let (latency, bytes_per_sec) = platform
                        .interconnect()
                        .map(|ic| (ic.latency, ic.bytes_per_sec))
                        .unwrap_or((0.0, f64::INFINITY));
                    Mapping::list_schedule_hetero(
                        self.set,
                        &platform.fmax_per_pe(),
                        latency,
                        bytes_per_sec,
                    )
                }
            },
        };
        let mut governors = spec.build_governor_bank(platform);
        let mut policies = spec.build_policy_bank(self.seed, platform.len());
        let mut sampler = self.sampler.build(self.seed);
        let mut cfg = SimConfig::with_platform(platform.clone());
        cfg.record_trace = self.trace;
        cfg.deadline_mode = self.deadline_mode;
        cfg.freq_policy = self.freq_policy;
        cfg.check_feasibility = self.check_feasibility;
        let policy_refs: Vec<&mut dyn bas_sim::TaskPolicy> =
            policies.iter_mut().map(|p| &mut **p as &mut dyn bas_sim::TaskPolicy).collect();
        let mut sim = Simulation::with_platform(
            self.set.clone(),
            mapping,
            cfg,
            governors.as_muts(),
            policy_refs,
            sampler.as_mut(),
        )?;
        if let Some(battery) = self.battery {
            sim.mount_battery(battery);
        }
        for observer in self.observers {
            sim.attach(observer);
        }
        sim.run_until(horizon)?;
        Ok(sim.finish())
    }
}

/// Where a sweep's per-trial task sets come from.
enum Workload<'a> {
    /// The same fixed set for every trial.
    Fixed(&'a TaskSet),
    /// A fresh set generated per trial from the trial seed.
    Generated(TaskSetConfig),
    /// A fresh set built per trial by an arbitrary factory (trial seed in).
    Factory(SetFactory<'a>),
}

/// Per-trial workload factory: trial seed → fresh task set (or a reason).
type SetFactory<'a> = Box<dyn Fn(u64) -> Result<TaskSet, String> + Sync + 'a>;

/// Per-trial battery factory: trial seed → fresh model.
type BatteryFactory<'a> = Box<dyn Fn(u64) -> Box<dyn BatteryModel> + Sync + 'a>;

/// A batch of [`Experiment`]s: `trials` seeds × a lineup of scheduler specs,
/// run with deterministic parallel fan-out.
///
/// Construct with [`Sweep::over_seeds`], add [`specs`](Self::specs), a
/// workload ([`set`](Self::set) or [`workload`](Self::workload)), a
/// [`processor`](Self::processor) and a [`horizon`](Self::horizon), then
/// [`run`](Self::run). Every trial's seed comes from
/// [`Sweep::seed_for`], so results do not depend on
/// [`threads`](Self::threads).
pub struct Sweep<'a> {
    base_seed: u64,
    trials: usize,
    specs: Vec<(String, SchedulerSpec)>,
    threads: usize,
    workload: Option<Workload<'a>>,
    processor: Option<&'a Processor>,
    platform: Option<&'a Platform>,
    mapper: MapperKind,
    horizon: Option<f64>,
    sampler: SamplerKind,
    freq_policy: FreqPolicy,
    deadline_mode: DeadlineMode,
    battery: Option<BatteryFactory<'a>>,
}

impl<'a> Sweep<'a> {
    /// A sweep of `trials` trials whose seeds derive from `base_seed`.
    pub fn over_seeds(base_seed: u64, trials: usize) -> Self {
        Sweep {
            base_seed,
            trials,
            specs: Vec::new(),
            threads: 0,
            workload: None,
            processor: None,
            platform: None,
            mapper: MapperKind::default(),
            horizon: None,
            sampler: SamplerKind::IidUniform,
            freq_policy: FreqPolicy::Interpolate,
            deadline_mode: DeadlineMode::Fail,
            battery: None,
        }
    }

    /// The canonical trial-seed derivation: a fixed odd multiplier spreads
    /// `base_seed` across the seed space, then the trial index is added, so
    /// neighbouring base seeds give unrelated trial streams while trial
    /// seeds stay enumerable.
    pub fn seed_for(base_seed: u64, trial: usize) -> u64 {
        base_seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(trial as u64)
    }

    /// Add labelled scheduler specs, e.g.
    /// `.specs(SchedulerSpec::table2_lineup())`. Labels name rows in the
    /// report; call repeatedly to extend the lineup.
    pub fn specs<S, I>(mut self, specs: I) -> Self
    where
        S: Into<String>,
        I: IntoIterator<Item = (S, SchedulerSpec)>,
    {
        self.specs.extend(specs.into_iter().map(|(label, spec)| (label.into(), spec)));
        self
    }

    /// Add one spec, labelled by its canonical `Display` form.
    pub fn spec(mut self, spec: SchedulerSpec) -> Self {
        self.specs.push((spec.to_string(), spec));
        self
    }

    /// Run every trial against this fixed task set.
    pub fn set(mut self, set: &'a TaskSet) -> Self {
        self.workload = Some(Workload::Fixed(set));
        self
    }

    /// Generate a fresh task set per trial from `config`, seeded with the
    /// trial seed — the paper's "many random task-graph sets" protocol.
    pub fn workload(mut self, config: TaskSetConfig) -> Self {
        self.workload = Some(Workload::Generated(config));
        self
    }

    /// Build each trial's task set with `factory` (trial seed in) — the
    /// open-ended workload source behind the scenario layer's big-DAG
    /// generators. The factory must be a pure function of the seed, or the
    /// sweep's thread-count invariance is lost.
    pub fn workload_with<F>(mut self, factory: F) -> Self
    where
        F: Fn(u64) -> Result<TaskSet, String> + Sync + 'a,
    {
        self.workload = Some(Workload::Factory(Box::new(factory)));
        self
    }

    /// The DVS processor model (this or [`platform`](Self::platform) is
    /// required).
    pub fn processor(mut self, processor: &'a Processor) -> Self {
        self.processor = Some(processor);
        self
    }

    /// Run every trial on a multi-PE platform instead of a single
    /// processor; each trial's nodes are mapped by deterministic
    /// fmax-weighted list scheduling. Takes precedence over
    /// [`processor`](Self::processor).
    pub fn platform(mut self, platform: &'a Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// How each trial's nodes are placed on a multi-PE platform; see
    /// [`Experiment::mapper`]. Default [`MapperKind::Weighted`].
    pub fn mapper(mut self, mapper: MapperKind) -> Self {
        self.mapper = mapper;
        self
    }

    /// Per-trial simulated-time bound, seconds (required); see
    /// [`Experiment::horizon`].
    pub fn horizon(mut self, horizon: f64) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Worker threads for the fan-out; `0` = available cores (default).
    /// Results are bit-identical for every setting.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// How actual computations are drawn; see [`Experiment::sampler`].
    pub fn sampler(mut self, sampler: SamplerKind) -> Self {
        self.sampler = sampler;
        self
    }

    /// Frequency realization policy; see [`Experiment::freq_policy`].
    pub fn freq_policy(mut self, policy: FreqPolicy) -> Self {
        self.freq_policy = policy;
        self
    }

    /// Deadline-miss behaviour; see [`Experiment::deadline_mode`].
    pub fn deadline_mode(mut self, mode: DeadlineMode) -> Self {
        self.deadline_mode = mode;
        self
    }

    /// Attach a battery co-simulation: `factory` builds a fresh cell per
    /// trial from the trial seed (stochastic models should fold the seed in
    /// so trials stay independent yet reproducible).
    pub fn battery<F>(mut self, factory: F) -> Self
    where
        F: Fn(u64) -> Box<dyn BatteryModel> + Sync + 'a,
    {
        self.battery = Some(Box::new(factory));
        self
    }

    /// Run the sweep: `trials × specs` experiments, fanned out over
    /// [`threads`](Self::threads) workers, folded into per-spec summaries.
    ///
    /// Within a trial every spec sees the same task set and seed, so
    /// per-trial cross-spec ratios (the paper's "up to" numbers) are
    /// meaningful.
    pub fn run(self) -> Result<SweepReport, SweepError> {
        let workload = self
            .workload
            .as_ref()
            .ok_or_else(|| SweepError::unconfigured("workload (call .set(..) or .workload(..))"))?;
        if self.processor.is_none() && self.platform.is_none() {
            return Err(SweepError::unconfigured("processor"));
        }
        let horizon = self.horizon.ok_or_else(|| SweepError::unconfigured("horizon"))?;
        if self.specs.is_empty() {
            return Err(SweepError::unconfigured("specs"));
        }
        if self.trials == 0 {
            return Err(SweepError::unconfigured("trials (must be >= 1)"));
        }

        // Once any trial fails, remaining workers skip their (potentially
        // day-long simulated) trials so the error surfaces promptly instead
        // of after the whole batch. Skipped slots are placeholders; the
        // first *real* error in trial order is reported.
        let failed = std::sync::atomic::AtomicBool::new(false);
        let per_trial: Vec<Result<Vec<TrialRecord>, SweepError>> =
            parallel_map(self.trials, self.threads, |trial| {
                let seed = Self::seed_for(self.base_seed, trial);
                if failed.load(std::sync::atomic::Ordering::Relaxed) {
                    return Err(SweepError {
                        label: "<skipped>".to_string(),
                        seed,
                        message: "trial skipped after an earlier failure".to_string(),
                    });
                }
                let fail_fast = |e: SweepError| {
                    failed.store(true, std::sync::atomic::Ordering::Relaxed);
                    e
                };
                // Fixed workloads are borrowed straight from the caller —
                // no per-trial deep copy; the graph structure itself is
                // Arc-shared all the way into the engine.
                let generated;
                let set: &TaskSet = match workload {
                    Workload::Fixed(set) => set,
                    Workload::Generated(cfg) => {
                        generated =
                            cfg.generate(&mut StdRng::seed_from_u64(seed)).map_err(|e| {
                                fail_fast(SweepError {
                                    label: "<workload generation>".to_string(),
                                    seed,
                                    message: e.to_string(),
                                })
                            })?;
                        &generated
                    }
                    Workload::Factory(factory) => {
                        generated = factory(seed).map_err(|message| {
                            fail_fast(SweepError {
                                label: "<workload generation>".to_string(),
                                seed,
                                message,
                            })
                        })?;
                        &generated
                    }
                };
                self.specs
                    .iter()
                    .map(|(label, spec)| {
                        let mut cell = self.battery.as_ref().map(|f| f(seed));
                        let mut experiment = Experiment::new(set)
                            .spec(*spec)
                            .seed(seed)
                            .mapper(self.mapper)
                            .horizon(horizon)
                            .sampler(self.sampler)
                            .freq_policy(self.freq_policy)
                            .deadline_mode(self.deadline_mode);
                        match (self.platform, self.processor) {
                            (Some(p), _) => experiment = experiment.platform(p),
                            (None, Some(proc)) => experiment = experiment.processor(proc),
                            (None, None) => unreachable!("checked above"),
                        }
                        if let Some(cell) = cell.as_mut() {
                            experiment = experiment.battery(cell.as_mut());
                        }
                        let out = experiment.run().map_err(|e| {
                            fail_fast(SweepError {
                                label: label.clone(),
                                seed,
                                message: e.to_string(),
                            })
                        })?;
                        Ok(TrialRecord::from_outcome(seed, &out))
                    })
                    .collect()
            });

        // On failure, report the first real error in trial order (skipped
        // placeholders are only fallbacks in case of unlucky interleaving).
        if failed.load(std::sync::atomic::Ordering::Relaxed) {
            let mut first: Option<SweepError> = None;
            for r in per_trial {
                if let Err(e) = r {
                    if e.label != "<skipped>" {
                        return Err(e);
                    }
                    first.get_or_insert(e);
                }
            }
            return Err(first.expect("failed flag implies at least one error"));
        }

        // Transpose trial-major results into spec-major reports.
        let mut rows: Vec<Vec<TrialRecord>> =
            self.specs.iter().map(|_| Vec::with_capacity(self.trials)).collect();
        for trial in per_trial {
            let records = trial.expect("failure path handled above");
            for (row, record) in rows.iter_mut().zip(records) {
                row.push(record);
            }
        }
        let specs = self
            .specs
            .into_iter()
            .zip(rows)
            .map(|((label, spec), trials)| SpecReport::new(label, spec, trials))
            .collect();
        Ok(SweepReport { base_seed: self.base_seed, trials: self.trials, specs })
    }
}

/// One experiment's scalar results inside a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// The trial seed (shared by every spec in the trial).
    pub seed: u64,
    /// Battery-side energy consumed, joules.
    pub energy: f64,
    /// Battery charge consumed, coulombs.
    pub charge: f64,
    /// Deadline misses (0 unless [`DeadlineMode::DropAndCount`]).
    pub deadline_misses: u64,
    /// Completed graph instances.
    pub instances_completed: u64,
    /// Makespan, seconds: worst release-to-last-completion span over all
    /// completed graph instances (see [`bas_sim::Metrics::makespan`]).
    pub makespan: f64,
    /// Battery lifetime, seconds — co-simulated runs only.
    pub lifetime: Option<f64>,
    /// Charge the battery delivered, mAh — co-simulated runs only.
    pub delivered_mah: Option<f64>,
    /// Whether the battery actually died (`Some(false)` = censored at the
    /// horizon) — co-simulated runs only.
    pub battery_died: Option<bool>,
}

impl TrialRecord {
    fn from_outcome(seed: u64, out: &SimOutcome) -> Self {
        TrialRecord {
            seed,
            energy: out.metrics.energy,
            charge: out.metrics.charge,
            deadline_misses: out.metrics.deadline_misses,
            instances_completed: out.metrics.instances_completed,
            makespan: out.metrics.makespan,
            lifetime: out.battery.as_ref().map(|b| b.lifetime),
            delivered_mah: out.battery.as_ref().map(|b| b.delivered_mah()),
            battery_died: out.battery.as_ref().map(|b| b.died),
        }
    }

    /// Battery lifetime in minutes; `None` without a battery.
    pub fn lifetime_minutes(&self) -> Option<f64> {
        self.lifetime.map(|s| s / 60.0)
    }
}

/// One scheduler spec's results across all trials of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecReport {
    /// The row label handed to [`Sweep::specs`].
    pub label: String,
    /// The spec itself.
    pub spec: SchedulerSpec,
    /// Per-trial records, in trial (seed) order.
    pub trials: Vec<TrialRecord>,
    /// Summary of battery-side energy, joules.
    pub energy: Summary,
    /// Summary of charge consumed, coulombs.
    pub charge: Summary,
    /// Summary of per-trial makespan, seconds.
    pub makespan: Summary,
    /// Summary of battery lifetime in **minutes**; `None` without a battery.
    pub lifetime_min: Option<Summary>,
    /// Summary of delivered charge in mAh; `None` without a battery.
    pub delivered_mah: Option<Summary>,
}

impl SpecReport {
    fn new(label: String, spec: SchedulerSpec, trials: Vec<TrialRecord>) -> Self {
        let energy = Summary::of(&trials.iter().map(|t| t.energy).collect::<Vec<_>>());
        let charge = Summary::of(&trials.iter().map(|t| t.charge).collect::<Vec<_>>());
        let makespan = Summary::of(&trials.iter().map(|t| t.makespan).collect::<Vec<_>>());
        let lifetimes: Vec<f64> = trials.iter().filter_map(|t| t.lifetime_minutes()).collect();
        let delivered: Vec<f64> = trials.iter().filter_map(|t| t.delivered_mah).collect();
        SpecReport {
            label,
            spec,
            lifetime_min: (!lifetimes.is_empty()).then(|| Summary::of(&lifetimes)),
            delivered_mah: (!delivered.is_empty()).then(|| Summary::of(&delivered)),
            energy,
            charge,
            makespan,
            trials,
        }
    }

    /// Summarize any per-trial metric, e.g.
    /// `report.metric(|t| t.energy / baseline)`.
    pub fn metric(&self, f: impl Fn(&TrialRecord) -> f64) -> Summary {
        Summary::of(&self.trials.iter().map(f).collect::<Vec<_>>())
    }
}

/// Everything a [`Sweep`] produced. Bit-identical across `threads` settings.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The sweep's base seed.
    pub base_seed: u64,
    /// Number of trials per spec.
    pub trials: usize,
    /// Per-spec reports, in lineup order.
    pub specs: Vec<SpecReport>,
}

impl SweepReport {
    /// Look a spec report up by its label.
    pub fn spec(&self, label: &str) -> Option<&SpecReport> {
        self.specs.iter().find(|s| s.label == label)
    }
}

/// A sweep failure, carrying which spec and trial seed failed.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepError {
    /// The spec label (or pseudo-stage) that failed.
    pub label: String,
    /// The trial seed being run; 0 for configuration errors.
    pub seed: u64,
    /// Human-readable cause.
    pub message: String,
}

impl SweepError {
    fn unconfigured(what: &str) -> Self {
        SweepError {
            label: "<configuration>".to_string(),
            seed: 0,
            message: format!("sweep is missing its {what}"),
        }
    }
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (seed {}): {}", self.label, self.seed, self.message)
    }
}

impl std::error::Error for SweepError {}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_battery::{Kibam, KibamParams};
    use bas_cpu::presets::unit_processor;
    use bas_taskgraph::TaskSetConfig;

    fn test_set(seed: u64) -> TaskSet {
        TaskSetConfig::default().generate(&mut StdRng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn experiment_requires_spec_processor_horizon() {
        let set = test_set(1);
        let proc = unit_processor();
        let e = Experiment::new(&set).processor(&proc).horizon(10.0).run();
        assert_eq!(e.unwrap_err(), SimError::Unconfigured("spec"));
        let e = Experiment::new(&set).spec(SchedulerSpec::edf()).horizon(10.0).run();
        assert_eq!(e.unwrap_err(), SimError::Unconfigured("processor"));
        let e = Experiment::new(&set).spec(SchedulerSpec::edf()).processor(&proc).run();
        assert_eq!(e.unwrap_err(), SimError::Unconfigured("horizon"));
    }

    #[test]
    fn experiment_runs_all_table2_specs() {
        let set = test_set(1);
        let proc = unit_processor();
        for (name, spec) in SchedulerSpec::table2_lineup() {
            let out = Experiment::new(&set)
                .spec(spec)
                .processor(&proc)
                .seed(7)
                .horizon(500.0)
                .trace(true)
                .run()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(out.metrics.deadline_misses, 0, "{name}");
            assert!(out.metrics.nodes_completed > 0, "{name}");
            out.trace.expect("trace").validate().unwrap();
        }
    }

    #[test]
    fn trace_defaults_off() {
        let set = test_set(2);
        let proc = unit_processor();
        let out = Experiment::new(&set)
            .spec(SchedulerSpec::edf())
            .processor(&proc)
            .horizon(100.0)
            .run()
            .unwrap();
        assert!(out.trace.is_none());
    }

    #[test]
    fn sampler_kind_changes_drawn_actuals() {
        // Regression: the old `simulate` façade hardcoded UniformFraction
        // and silently ignored SamplerKind. The builder's sampler knob must
        // actually steer the workload: with the same seed, persistent
        // actuals must produce a different execution than i.i.d. actuals.
        //
        // Short periods so many instances complete inside the horizon — the
        // EDF busy time is then exactly the sum of drawn actuals at fmax.
        use bas_taskgraph::{PeriodicTaskGraph, TaskGraphBuilder};
        let mut set = TaskSet::new();
        let mut b = TaskGraphBuilder::new("g");
        let a = b.add_node("a", 5);
        let c = b.add_node("b", 7);
        b.add_edge(a, c).unwrap();
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 30.0).unwrap());
        let proc = unit_processor();
        let run = |sampler| {
            Experiment::new(&set)
                .spec(SchedulerSpec::edf())
                .processor(&proc)
                .seed(11)
                .horizon(300.0)
                .sampler(sampler)
                .run()
                .unwrap()
                .metrics
        };
        let iid = run(SamplerKind::IidUniform);
        let persistent = run(SamplerKind::Persistent);
        assert!(iid.instances_completed >= 9, "{}", iid.instances_completed);
        assert_ne!(
            iid.cycles_executed, persistent.cycles_executed,
            "sampler knob must change the drawn actual computations"
        );
    }

    #[test]
    fn experiment_with_battery_reports_lifetime() {
        let set = test_set(4);
        let proc = unit_processor();
        let mut cell = Kibam::new(KibamParams { capacity: 200.0, c: 0.6, k_prime: 1e-3 });
        let out = Experiment::new(&set)
            .spec(SchedulerSpec::bas2())
            .processor(&proc)
            .seed(11)
            .horizon(1e6)
            .battery(&mut cell)
            .run()
            .unwrap();
        let report = out.battery.unwrap();
        assert!(report.died);
        assert!(report.lifetime > 0.0);
        assert!((report.charge_delivered - cell.charge_delivered()).abs() < 1e-9);
    }

    #[test]
    fn sweep_requires_workload_processor_horizon_specs() {
        let proc = unit_processor();
        let set = test_set(1);
        let err = Sweep::over_seeds(1, 2).run().unwrap_err();
        assert!(err.message.contains("workload"), "{err}");
        let err = Sweep::over_seeds(1, 2).set(&set).run().unwrap_err();
        assert!(err.message.contains("processor"), "{err}");
        let err = Sweep::over_seeds(1, 2).set(&set).processor(&proc).run().unwrap_err();
        assert!(err.message.contains("horizon"), "{err}");
        let err =
            Sweep::over_seeds(1, 2).set(&set).processor(&proc).horizon(100.0).run().unwrap_err();
        assert!(err.message.contains("specs"), "{err}");
        let err = Sweep::over_seeds(1, 0)
            .spec(SchedulerSpec::edf())
            .set(&set)
            .processor(&proc)
            .horizon(100.0)
            .run()
            .unwrap_err();
        assert!(err.message.contains("trials"), "{err}");
    }

    #[test]
    fn sweep_surfaces_a_real_error_not_a_skip_placeholder() {
        // An over-utilized workload fails every trial up front; the reported
        // error must be a real one, with its spec label and seed, not the
        // internal "<skipped>" marker.
        use bas_taskgraph::{PeriodicTaskGraph, TaskGraphBuilder};
        let mut set = TaskSet::new();
        let mut b = TaskGraphBuilder::new("too-big");
        b.add_node("t", 100);
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap());
        let proc = unit_processor();
        let err = Sweep::over_seeds(1, 8)
            .spec(SchedulerSpec::edf())
            .set(&set)
            .processor(&proc)
            .horizon(100.0)
            .threads(4)
            .run()
            .unwrap_err();
        assert_ne!(err.label, "<skipped>", "{err}");
        assert!(err.message.contains("utilization"), "{err}");
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let proc = unit_processor();
        let sweep = |threads| {
            Sweep::over_seeds(5, 6)
                .specs(SchedulerSpec::table2_lineup())
                .workload(TaskSetConfig::default())
                .processor(&proc)
                .horizon(200.0)
                .threads(threads)
                .run()
                .unwrap()
        };
        let sequential = sweep(1);
        let parallel = sweep(4);
        assert_eq!(sequential, parallel, "threads must not change results");
        assert_eq!(sequential.specs.len(), 5);
        assert_eq!(sequential.specs[0].trials.len(), 6);
    }

    #[test]
    fn sweep_trials_share_seed_across_specs() {
        let proc = unit_processor();
        let report = Sweep::over_seeds(2, 3)
            .spec(SchedulerSpec::edf())
            .spec(SchedulerSpec::bas2())
            .workload(TaskSetConfig::default())
            .processor(&proc)
            .horizon(150.0)
            .run()
            .unwrap();
        for trial in 0..3 {
            assert_eq!(report.specs[0].trials[trial].seed, report.specs[1].trials[trial].seed);
            assert_eq!(report.specs[0].trials[trial].seed, Sweep::seed_for(2, trial));
        }
    }

    #[test]
    fn sweep_with_battery_summarizes_lifetime() {
        let proc = unit_processor();
        let report = Sweep::over_seeds(3, 2)
            .spec(SchedulerSpec::bas2())
            .workload(TaskSetConfig::default())
            .processor(&proc)
            .horizon(1e6)
            .battery(|_seed| {
                Box::new(Kibam::new(KibamParams { capacity: 200.0, c: 0.6, k_prime: 1e-3 }))
            })
            .run()
            .unwrap();
        let spec = &report.specs[0];
        let life = spec.lifetime_min.expect("battery sweep has lifetimes");
        assert_eq!(life.n, 2);
        assert!(life.mean > 0.0);
        assert!(spec.trials.iter().all(|t| t.battery_died == Some(true)));
    }

    #[test]
    fn spec_lookup_by_label() {
        let proc = unit_processor();
        let report = Sweep::over_seeds(1, 1)
            .specs(SchedulerSpec::table2_lineup())
            .workload(TaskSetConfig::default())
            .processor(&proc)
            .horizon(100.0)
            .run()
            .unwrap();
        assert!(report.spec("BAS-2").is_some());
        assert!(report.spec("nonsense").is_none());
    }
}
