//! Deprecated one-call simulation façade.
//!
//! These free functions were the original experiment API; they are kept for
//! one release as thin shims over the [`crate::experiment::Experiment`]
//! builder so out-of-tree callers get a compile-time nudge instead of
//! breakage. Each shim reproduces its historical behaviour exactly
//! (including `simulate`/`simulate_lean` hardcoding the i.i.d. uniform
//! sampler — the builder's `.sampler(..)` knob is how you actually choose).

use crate::experiment::Experiment;
use crate::runner::{SamplerKind, SchedulerSpec};
use bas_battery::BatteryModel;
use bas_cpu::Processor;
use bas_sim::{SimError, SimOutcome};
use bas_taskgraph::TaskSet;

/// Simulate `set` under `spec` for `horizon` seconds (no battery), with
/// trace recording on.
#[deprecated(
    since = "0.2.0",
    note = "use Experiment::new(set).spec(..).processor(..).seed(..).horizon(..).trace(true).run()"
)]
pub fn simulate(
    set: &TaskSet,
    spec: &SchedulerSpec,
    processor: &Processor,
    seed: u64,
    horizon: f64,
) -> Result<SimOutcome, SimError> {
    Experiment::new(set)
        .spec(*spec)
        .processor(processor)
        .seed(seed)
        .horizon(horizon)
        .trace(true)
        .run()
}

/// Like [`simulate`] but without trace recording (fast path for sweeps).
#[deprecated(
    since = "0.2.0",
    note = "use Experiment::new(set).spec(..).processor(..).seed(..).horizon(..).run()"
)]
pub fn simulate_lean(
    set: &TaskSet,
    spec: &SchedulerSpec,
    processor: &Processor,
    seed: u64,
    horizon: f64,
) -> Result<SimOutcome, SimError> {
    Experiment::new(set).spec(*spec).processor(processor).seed(seed).horizon(horizon).run()
}

/// Co-simulate with a battery until it dies (or `max_time`).
#[deprecated(
    since = "0.2.0",
    note = "use Experiment::new(set).spec(..).processor(..).seed(..).horizon(..).battery(..).run()"
)]
pub fn simulate_with_battery(
    set: &TaskSet,
    spec: &SchedulerSpec,
    processor: &Processor,
    battery: &mut dyn BatteryModel,
    seed: u64,
    max_time: f64,
) -> Result<SimOutcome, SimError> {
    Experiment::new(set)
        .spec(*spec)
        .processor(processor)
        .seed(seed)
        .horizon(max_time)
        .battery(battery)
        .run()
}

/// [`simulate_with_battery`] with an explicit frequency-realization policy.
#[deprecated(since = "0.2.0", note = "use the Experiment builder's .freq_policy(..) knob")]
pub fn simulate_with_battery_freq(
    set: &TaskSet,
    spec: &SchedulerSpec,
    processor: &Processor,
    battery: &mut dyn BatteryModel,
    seed: u64,
    max_time: f64,
    freq_policy: bas_cpu::FreqPolicy,
) -> Result<SimOutcome, SimError> {
    Experiment::new(set)
        .spec(*spec)
        .processor(processor)
        .seed(seed)
        .horizon(max_time)
        .battery(battery)
        .freq_policy(freq_policy)
        .run()
}

/// Fully-parameterized battery co-simulation.
#[deprecated(
    since = "0.2.0",
    note = "use the Experiment builder's .freq_policy(..) and .sampler(..) knobs"
)]
#[allow(clippy::too_many_arguments)] // frozen legacy signature
pub fn simulate_with_battery_custom(
    set: &TaskSet,
    spec: &SchedulerSpec,
    processor: &Processor,
    battery: &mut dyn BatteryModel,
    seed: u64,
    max_time: f64,
    freq_policy: bas_cpu::FreqPolicy,
    sampler_kind: SamplerKind,
) -> Result<SimOutcome, SimError> {
    Experiment::new(set)
        .spec(*spec)
        .processor(processor)
        .seed(seed)
        .horizon(max_time)
        .battery(battery)
        .freq_policy(freq_policy)
        .sampler(sampler_kind)
        .run()
}

/// Fully-parameterized horizon simulation (no battery), lean (no trace).
#[deprecated(
    since = "0.2.0",
    note = "use the Experiment builder's .freq_policy(..) and .sampler(..) knobs"
)]
#[allow(clippy::too_many_arguments)] // frozen legacy signature
pub fn simulate_lean_custom(
    set: &TaskSet,
    spec: &SchedulerSpec,
    processor: &Processor,
    seed: u64,
    horizon: f64,
    freq_policy: bas_cpu::FreqPolicy,
    sampler_kind: SamplerKind,
) -> Result<SimOutcome, SimError> {
    Experiment::new(set)
        .spec(*spec)
        .processor(processor)
        .seed(seed)
        .horizon(horizon)
        .freq_policy(freq_policy)
        .sampler(sampler_kind)
        .run()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use bas_cpu::presets::unit_processor;
    use bas_cpu::FreqPolicy;
    use bas_taskgraph::TaskSetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The shims must reproduce the builder bit-for-bit — this is the
    /// contract that lets callers migrate without result drift.
    #[test]
    fn shims_match_builder_exactly() {
        let set = TaskSetConfig::default().generate(&mut StdRng::seed_from_u64(3)).unwrap();
        let proc = unit_processor();
        let old = simulate_lean(&set, &SchedulerSpec::bas2(), &proc, 9, 300.0).unwrap();
        let new = Experiment::new(&set)
            .spec(SchedulerSpec::bas2())
            .processor(&proc)
            .seed(9)
            .horizon(300.0)
            .run()
            .unwrap();
        assert_eq!(old.metrics, new.metrics);

        let old = simulate_lean_custom(
            &set,
            &SchedulerSpec::bas1(),
            &proc,
            9,
            300.0,
            FreqPolicy::RoundUp,
            SamplerKind::Persistent,
        )
        .unwrap();
        let new = Experiment::new(&set)
            .spec(SchedulerSpec::bas1())
            .processor(&proc)
            .seed(9)
            .horizon(300.0)
            .freq_policy(FreqPolicy::RoundUp)
            .sampler(SamplerKind::Persistent)
            .run()
            .unwrap();
        assert_eq!(old.metrics, new.metrics);
    }
}
