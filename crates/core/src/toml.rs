//! A hand-rolled offline TOML-subset codec.
//!
//! The build environment has no registry access, so scenario files are
//! (de)serialized with this minimal codec instead of `serde` + `toml`. The
//! supported subset is deliberately small but is real TOML — any file this
//! module emits or accepts parses identically under a full TOML parser:
//!
//! * `key = value` pairs at the top level, plus one level of `[table]`
//!   sections whose keys surface as dotted `table.key` document entries;
//! * values: basic strings (`"..."` with `\"`, `\\`, `\n`, `\t`, `\r`
//!   escapes), integers, floats (including `inf`/`nan` forms), booleans,
//!   and single-line arrays of those;
//! * `#` comments and blank lines.
//!
//! Out of scope (rejected with an error, never silently misread): deeper
//! nesting, arrays of tables, dotted keys in source files, multi-line
//! strings/arrays, dates.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value (subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array.
    Array(Vec<Value>),
}

impl Value {
    /// Render the value in TOML syntax.
    pub fn render(&self) -> String {
        match self {
            Value::Str(s) => render_string(s),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => render_float(*x),
            Value::Bool(b) => b.to_string(),
            Value::Array(items) => {
                let inner: Vec<String> = items.iter().map(|v| v.render()).collect();
                format!("[{}]", inner.join(", "))
            }
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float (integers coerce, as in most TOML consumers).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array of strings, if it is one.
    pub fn as_str_array(&self) -> Option<Vec<String>> {
        match self {
            Value::Array(items) => items.iter().map(|v| v.as_str().map(str::to_string)).collect(),
            _ => None,
        }
    }

    /// The value as an array of floats, if it is one (integer elements
    /// coerce, as in [`Value::as_float`]).
    pub fn as_float_array(&self) -> Option<Vec<f64>> {
        match self {
            Value::Array(items) => items.iter().map(Value::as_float).collect(),
            _ => None,
        }
    }
}

fn render_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_float(x: f64) -> String {
    if x.is_nan() {
        "nan".to_string()
    } else if x.is_infinite() {
        if x > 0.0 {
            "inf".to_string()
        } else {
            "-inf".to_string()
        }
    } else if x == x.trunc() && x.abs() < 1e15 {
        // TOML floats need a decimal point (or exponent) to stay floats.
        format!("{x:.1}")
    } else {
        // Rust's shortest round-trip formatting; always contains '.' or 'e'.
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("nan") {
            s
        } else {
            format!("{s}.0")
        }
    }
}

/// A flat key → value document with stable (insertion-independent,
/// alphabetical) iteration order.
pub type Document = BTreeMap<String, Value>;

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Parse a TOML document: top-level `key = value` pairs plus optionally
/// one level of `[table]` headers, whose keys land in the document as
/// dotted `table.key` entries (e.g. the scenario `[platform]` block's
/// `pes` arrives as `platform.pes`).
pub fn parse(input: &str) -> Result<Document, ParseError> {
    let mut doc = Document::new();
    let mut prefix = String::new();
    for (ix, raw) in input.lines().enumerate() {
        let lineno = ix + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return Err(err(lineno, format!("malformed table header {line:?}")));
            };
            let name = name.trim();
            if name.starts_with('[') {
                return Err(err(lineno, "arrays of tables are not supported"));
            }
            if name.is_empty()
                || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            {
                return Err(err(lineno, format!("invalid table name {name:?}")));
            }
            prefix = format!("{name}.");
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| err(lineno, format!("expected `key = value`, got {line:?}")))?;
        let key = line[..eq].trim();
        if key.is_empty() {
            return Err(err(lineno, "empty key"));
        }
        if !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
            return Err(err(lineno, format!("invalid bare key {key:?}")));
        }
        let mut rest = line[eq + 1..].trim();
        let value = parse_value(&mut rest, lineno)?;
        let rest = rest.trim();
        if !rest.is_empty() && !rest.starts_with('#') {
            return Err(err(lineno, format!("trailing garbage after value: {rest:?}")));
        }
        if doc.insert(format!("{prefix}{key}"), value).is_some() {
            return Err(err(lineno, format!("duplicate key {key:?}")));
        }
    }
    Ok(doc)
}

/// Parse one value from the front of `rest`, consuming it.
fn parse_value(rest: &mut &str, lineno: usize) -> Result<Value, ParseError> {
    *rest = rest.trim_start();
    if rest.is_empty() {
        return Err(err(lineno, "missing value"));
    }
    if rest.starts_with('"') {
        return parse_string(rest, lineno);
    }
    if rest.starts_with('[') {
        return parse_array(rest, lineno);
    }
    // Bare scalar: runs until a delimiter.
    let end = rest
        .find(|c: char| c == ',' || c == ']' || c == '#' || c.is_whitespace())
        .unwrap_or(rest.len());
    let token = &rest[..end];
    *rest = &rest[end..];
    match token {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        "inf" | "+inf" => return Ok(Value::Float(f64::INFINITY)),
        "-inf" => return Ok(Value::Float(f64::NEG_INFINITY)),
        "nan" | "+nan" | "-nan" => return Ok(Value::Float(f64::NAN)),
        _ => {}
    }
    if let Some(clean) = clean_number(token) {
        if !token.contains('.') && !token.contains('e') && !token.contains('E') {
            if let Ok(i) = clean.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        if let Ok(x) = clean.parse::<f64>() {
            // TOML requires digits on both sides of '.'; be strict enough to
            // reject obvious junk while accepting what we emit.
            if !token.starts_with('.') && !token.ends_with('.') {
                return Ok(Value::Float(x));
            }
        }
    }
    Err(err(lineno, format!("unrecognized value {token:?}")))
}

/// Apply TOML's numeric-token rules before handing the token to Rust's
/// number parsers: underscores must be surrounded by digits, and the
/// mantissa's integer part must not have a leading zero (`01`, `01.5` are
/// invalid TOML; `0`, `0.5` and exponents like `1e05` are fine). Returns the
/// underscore-stripped token, or `None` if the token violates the rules.
fn clean_number(token: &str) -> Option<String> {
    let bytes = token.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'_' {
            let prev_digit = i > 0 && bytes[i - 1].is_ascii_digit();
            let next_digit = i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit();
            if !(prev_digit && next_digit) {
                return None;
            }
        }
    }
    let clean = token.replace('_', "");
    let unsigned = clean.strip_prefix(['+', '-']).unwrap_or(&clean);
    let int_part = unsigned.split(['.', 'e', 'E']).next().unwrap_or("");
    if int_part.len() > 1 && int_part.starts_with('0') {
        return None;
    }
    Some(clean)
}

fn parse_string(rest: &mut &str, lineno: usize) -> Result<Value, ParseError> {
    debug_assert!(rest.starts_with('"'));
    let mut out = String::new();
    let mut chars = rest.char_indices().skip(1);
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *rest = &rest[i + 1..];
                return Ok(Value::Str(out));
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, other)) => {
                    return Err(err(lineno, format!("unsupported escape \\{other}")));
                }
                None => return Err(err(lineno, "unterminated escape")),
            },
            c => out.push(c),
        }
    }
    Err(err(lineno, "unterminated string"))
}

fn parse_array(rest: &mut &str, lineno: usize) -> Result<Value, ParseError> {
    debug_assert!(rest.starts_with('['));
    *rest = &rest[1..];
    let mut items = Vec::new();
    loop {
        *rest = rest.trim_start();
        if let Some(stripped) = rest.strip_prefix(']') {
            *rest = stripped;
            return Ok(Value::Array(items));
        }
        if rest.is_empty() {
            return Err(err(lineno, "unterminated array (arrays must be single-line)"));
        }
        items.push(parse_value(rest, lineno)?);
        *rest = rest.trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            *rest = stripped;
        } else if rest.is_empty() {
            return Err(err(lineno, "unterminated array (arrays must be single-line)"));
        } else if !rest.starts_with(']') {
            return Err(err(lineno, "expected `,` or `]` in array"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_comments() {
        let doc = parse(
            "# a scenario\nname = \"table2\"\ntrials = 100\nutil = 0.7\nquiet = false\n\nhorizon = 8.64e4\n",
        )
        .unwrap();
        assert_eq!(doc["name"], Value::Str("table2".into()));
        assert_eq!(doc["trials"], Value::Int(100));
        assert_eq!(doc["util"], Value::Float(0.7));
        assert_eq!(doc["quiet"], Value::Bool(false));
        assert_eq!(doc["horizon"], Value::Float(86_400.0));
    }

    #[test]
    fn parses_arrays_and_inline_comments() {
        let doc = parse("specs = [\"EDF\", \"BAS-2\"]  # lineup\nns = [1, 2, 3]\n").unwrap();
        assert_eq!(doc["specs"].as_str_array().unwrap(), vec!["EDF", "BAS-2"]);
        assert_eq!(doc["ns"], Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)]));
    }

    #[test]
    fn float_arrays_coerce_integer_elements() {
        let doc = parse("ref = [450.0, 2, 12.5]\nempty = []\n").unwrap();
        assert_eq!(doc["ref"].as_float_array().unwrap(), vec![450.0, 2.0, 12.5]);
        assert_eq!(doc["empty"].as_float_array().unwrap(), Vec::<f64>::new());
        assert!(parse("x = [1.0, \"two\"]\n").unwrap()["x"].as_float_array().is_none());
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["plain", "with \"quotes\"", "back\\slash", "line\nbreak\ttab"] {
            let rendered = Value::Str(s.to_string()).render();
            let doc = parse(&format!("k = {rendered}\n")).unwrap();
            assert_eq!(doc["k"].as_str().unwrap(), s, "{rendered}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.0, 0.7, 86_400.0, 1e6, 0.05, 2.5e-3, f64::INFINITY, 1.0 / 3.0] {
            let rendered = render_float(x);
            let doc = parse(&format!("x = {rendered}\n")).unwrap();
            assert_eq!(doc["x"].as_float().unwrap(), x, "{rendered}");
        }
        // Whole floats stay floats (not ints) through the round trip.
        assert!(matches!(parse("x = 5.0\n").unwrap()["x"], Value::Float(_)));
    }

    #[test]
    fn rejects_junk_with_line_numbers() {
        for (input, needle) in [
            ("[bad header\nk = 1", "malformed table header"),
            ("[[array]]\nk = 1", "arrays of tables"),
            ("[]\nk = 1", "invalid table name"),
            ("just a line", "key = value"),
            ("k = ", "missing value"),
            ("k = 1 2", "trailing garbage"),
            ("k = 1\nk = 2", "duplicate"),
            ("k = [1, 2", "unterminated array"),
            ("k = \"oops", "unterminated string"),
            ("k = 1.2.3", "unrecognized value"),
            ("a key = 1", "invalid bare key"),
        ] {
            let e = parse(input).unwrap_err();
            assert!(e.message.contains(needle), "{input:?} -> {e}");
        }
        assert_eq!(parse("ok = 1\nbad =").unwrap_err().line, 2);
    }

    #[test]
    fn underscore_separators_parse() {
        assert_eq!(parse("n = 1_000_000\n").unwrap()["n"], Value::Int(1_000_000));
        assert_eq!(parse("x = 1_0.5_5\n").unwrap()["x"], Value::Float(10.55));
    }

    #[test]
    fn table_sections_surface_as_dotted_keys() {
        let doc = parse("a = 1\n\n[platform]\npes = 4\nprocessors = [\"unit\"]\n").unwrap();
        assert_eq!(doc["a"], Value::Int(1));
        assert_eq!(doc["platform.pes"], Value::Int(4));
        assert_eq!(doc["platform.processors"].as_str_array().unwrap(), vec!["unit"]);
        assert!(!doc.contains_key("pes"), "section keys must stay qualified");
    }

    #[test]
    fn non_toml_numbers_are_rejected() {
        // Underscores must be surrounded by digits; no leading zeros in the
        // mantissa's integer part — a file we accept must be real TOML.
        for junk in ["1_", "_1", "1__2", "0_.5", "1._5", "01", "-042", "01.5", "0x10"] {
            let e = parse(&format!("k = {junk}\n")).unwrap_err();
            assert!(e.message.contains("unrecognized value"), "{junk}: {e}");
        }
        // …while legitimate zero forms still parse.
        assert_eq!(parse("k = 0\n").unwrap()["k"], Value::Int(0));
        assert_eq!(parse("k = -0\n").unwrap()["k"], Value::Int(0));
        assert_eq!(parse("k = 0.5\n").unwrap()["k"], Value::Float(0.5));
        assert_eq!(parse("k = 1e05\n").unwrap()["k"], Value::Float(1e5));
    }
}
