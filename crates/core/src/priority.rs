//! Ready-list priority functions: Random, LTF, STF and pUBS.
//!
//! A priority function *ranks* the candidate tasks; the BAS policy then runs
//! the best-ranked candidate that passes the feasibility check ("the checks
//! are conducted in the increasing order of pUBS value and stopped as soon as
//! a valid candidate is found", §4.2).
//!
//! ## pUBS
//!
//! Gruian's near-optimal priority for tasks sharing a deadline:
//!
//! ```text
//!   pubs(o, τk) = Xk / (s_o² − s_{o,k}²)        (minimize)
//! ```
//!
//! `Xk` is the estimated actual cycle demand of `τk`, `s_o` the processor
//! speed required after the executed partial order `o`, and `s_{o,k}` the
//! required speed after additionally running `τk` (which spends only `Xk`
//! cycles but retires `wc_k` of worst-case obligation). A task whose actual
//! is likely far below its worst case gives a large speed drop per cycle
//! invested — the slack-recovery potential the methodology maximizes.
//!
//! For candidates from different graphs (BAS-2) the speeds are evaluated in
//! the candidate's own EDF scope: work due by the candidate's deadline over
//! time to that deadline. For a single graph this reduces exactly to
//! Gruian's common-deadline setting; DESIGN.md §5 records the choice.

use crate::estimator::CycleEstimator;
use bas_sim::{SimState, TaskRef};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A ranking over ready candidates (best first).
pub trait Priority: Send {
    /// Name for reports (e.g. `"pUBS"`).
    fn name(&self) -> &'static str;

    /// Write the candidates into `out`, best-first. `candidates` is sorted
    /// `(graph, node)`; implementations must be deterministic given their own
    /// state (Random owns a seeded RNG).
    fn rank(
        &mut self,
        state: &SimState,
        candidates: &[TaskRef],
        fref_hz: f64,
        out: &mut Vec<TaskRef>,
    );

    /// Completion feedback for learning estimators.
    fn on_completion(&mut self, state: &SimState, task: TaskRef, actual: f64) {
        let _ = (state, task, actual);
    }
}

/// Uniformly random order — the baseline priority of the paper's Table 2
/// rows "EDF", "Cycle Conserving" and "Look Ahead".
#[derive(Debug)]
pub struct RandomPriority {
    rng: StdRng,
}

impl RandomPriority {
    /// Seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        RandomPriority { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Priority for RandomPriority {
    fn name(&self) -> &'static str {
        "random"
    }

    fn rank(&mut self, _: &SimState, candidates: &[TaskRef], _: f64, out: &mut Vec<TaskRef>) {
        out.clear();
        out.extend_from_slice(candidates);
        out.shuffle(&mut self.rng);
    }
}

/// Largest (remaining worst-case) task first — the heuristic of Zhu, Melhem
/// & Childers the paper compares against in Table 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ltf;

impl Priority for Ltf {
    fn name(&self) -> &'static str {
        "LTF"
    }

    fn rank(&mut self, state: &SimState, candidates: &[TaskRef], _: f64, out: &mut Vec<TaskRef>) {
        out.clear();
        out.extend_from_slice(candidates);
        // Distinct tasks make this comparator a strict total order, so the
        // unstable sort (no temporary buffer) permutes exactly like sort_by.
        out.sort_unstable_by(|a, b| {
            state
                .remaining_wc_node(*b)
                .partial_cmp(&state.remaining_wc_node(*a))
                .expect("finite")
                .then(a.cmp(b))
        });
    }
}

/// Shortest (remaining worst-case) task first — LTF's mirror, shown in the
/// paper's Figure 4 to win in the complementary cases.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stf;

impl Priority for Stf {
    fn name(&self) -> &'static str {
        "STF"
    }

    fn rank(&mut self, state: &SimState, candidates: &[TaskRef], _: f64, out: &mut Vec<TaskRef>) {
        out.clear();
        out.extend_from_slice(candidates);
        out.sort_unstable_by(|a, b| {
            state
                .remaining_wc_node(*a)
                .partial_cmp(&state.remaining_wc_node(*b))
                .expect("finite")
                .then(a.cmp(b))
        });
    }
}

/// Gruian's pUBS priority with a pluggable `Xk` estimator.
pub struct Pubs<E: CycleEstimator> {
    estimator: E,
    /// Scratch `(value, task)` pairs reused across decisions — ranking runs
    /// at every scheduling point, so a fresh `Vec` per call sat on the
    /// engine's hot loop.
    keyed: Vec<(f64, TaskRef)>,
    /// Scratch per-graph "work due by this graph's deadline" (the EDF-order
    /// prefix sums), computed once per decision and shared by every
    /// candidate of the same graph.
    due_by_graph: Vec<f64>,
}

impl<E: CycleEstimator> Pubs<E> {
    /// pUBS over the given estimator.
    pub fn new(estimator: E) -> Self {
        Pubs { estimator, keyed: Vec::new(), due_by_graph: Vec::new() }
    }

    /// Access the estimator (e.g. to inspect learning in tests).
    pub fn estimator(&self) -> &E {
        &self.estimator
    }

    /// The pUBS value of one candidate; lower runs first. `f64::INFINITY`
    /// encodes "no speed reduction achievable" (denominator ≤ 0).
    pub fn value(&self, state: &SimState, task: TaskRef, _fref_hz: f64) -> f64 {
        let Some(d_k) = state.deadline(task.graph) else {
            return f64::INFINITY;
        };
        if d_k - state.now() <= 1e-12 {
            return f64::INFINITY;
        }
        // Work due by the candidate's deadline: remaining worst case of every
        // active graph at or before it in EDF order (its common-deadline
        // scope). For a single graph this is the graph's remaining work —
        // exactly Gruian's setting.
        let mut due = 0.0;
        for &g in state.edf_order() {
            due += state.remaining_wc(g);
            if g == task.graph {
                break;
            }
        }
        Self::value_given_due(&self.estimator, state, task, due)
    }

    /// The value computation past the due-work scope. `rank` pre-computes
    /// `due` once per decision via the EDF-order prefix sums (the identical
    /// additions in the identical order as [`Pubs::value`]'s own loop).
    fn value_given_due(estimator: &E, state: &SimState, task: TaskRef, due: f64) -> f64 {
        let now = state.now();
        let Some(d_k) = state.deadline(task.graph) else {
            return f64::INFINITY;
        };
        let horizon = d_k - now;
        if horizon <= 1e-12 {
            return f64::INFINITY;
        }
        let wc_k = state.remaining_wc_node(task);
        // Remaining actual estimate: the estimator predicts the instance
        // total; subtract what already ran (wcet − remaining tracks executed
        // cycles one-for-one).
        let executed = state.wcet(task) - wc_k;
        let x_k =
            (estimator.estimate(task, state.wcet(task)) - executed).clamp(1e-9, wc_k.max(1e-9));
        let s_o = due / horizon;
        if s_o <= 0.0 {
            return f64::INFINITY;
        }
        let time_after = horizon - x_k / s_o;
        if time_after <= 1e-12 {
            return f64::INFINITY;
        }
        let s_ok = (due - wc_k) / time_after;
        let denom = s_o * s_o - s_ok * s_ok;
        if denom <= 0.0 {
            return f64::INFINITY;
        }
        x_k / denom
    }
}

impl<E: CycleEstimator> Priority for Pubs<E> {
    fn name(&self) -> &'static str {
        "pUBS"
    }

    fn rank(
        &mut self,
        state: &SimState,
        candidates: &[TaskRef],
        _fref_hz: f64,
        out: &mut Vec<TaskRef>,
    ) {
        // Per-graph due work via the EDF-order prefix sums — one
        // `remaining_wc` pass per graph per decision instead of one per
        // candidate, with the same additions in the same order as `value`.
        self.due_by_graph.clear();
        self.due_by_graph.resize(state.set().len(), 0.0);
        let mut due = 0.0;
        for &g in state.edf_order() {
            due += state.remaining_wc(g);
            self.due_by_graph[g.index()] = due;
        }
        self.keyed.clear();
        for &t in candidates {
            let v = Self::value_given_due(
                &self.estimator,
                state,
                t,
                self.due_by_graph[t.graph.index()],
            );
            self.keyed.push((v, t));
        }
        // Unstable sort is exact here: distinct tasks make the comparator a
        // strict total order (no Equal outcomes), so the permutation matches
        // the stable sort without its temporary buffer.
        self.keyed.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("no NaN priorities").then(a.1.cmp(&b.1))
        });
        out.clear();
        out.extend(self.keyed.iter().map(|&(_, t)| t));
    }

    fn on_completion(&mut self, _state: &SimState, task: TaskRef, actual: f64) {
        self.estimator.observe(task, actual);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{CycleEstimator, EmaEstimator, MeanFraction};
    use bas_taskgraph::{GraphId, NodeId, PeriodicTaskGraph, TaskGraphBuilder, TaskSet};

    fn gid(i: usize) -> GraphId {
        GraphId::from_index(i)
    }
    fn tref(g: usize, n: usize) -> TaskRef {
        TaskRef::new(gid(g), NodeId::from_index(n))
    }

    /// One graph, three independent nodes with wc 4, 6, 8, deadline 30.
    fn state() -> (SimState, Vec<TaskRef>) {
        let mut b = TaskGraphBuilder::new("T0");
        b.add_node("a", 4);
        b.add_node("b", 6);
        b.add_node("c", 8);
        let mut set = TaskSet::new();
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 30.0).unwrap());
        let mut s = SimState::new(set);
        s.release(gid(0), vec![4.0, 6.0, 8.0]);
        s.refresh_edf();
        let mut ready = Vec::new();
        s.ready_tasks(&mut ready);
        (s, ready)
    }

    #[test]
    fn ltf_orders_largest_first() {
        let (s, ready) = state();
        let mut out = Vec::new();
        Ltf.rank(&s, &ready, 1.0, &mut out);
        assert_eq!(out, vec![tref(0, 2), tref(0, 1), tref(0, 0)]);
    }

    #[test]
    fn stf_orders_smallest_first() {
        let (s, ready) = state();
        let mut out = Vec::new();
        Stf.rank(&s, &ready, 1.0, &mut out);
        assert_eq!(out, vec![tref(0, 0), tref(0, 1), tref(0, 2)]);
    }

    #[test]
    fn random_is_a_permutation_and_seed_deterministic() {
        let (s, ready) = state();
        let mut a = Vec::new();
        let mut b = Vec::new();
        RandomPriority::new(3).rank(&s, &ready, 1.0, &mut a);
        RandomPriority::new(3).rank(&s, &ready, 1.0, &mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, ready);
    }

    #[test]
    fn pubs_prefers_high_slack_ratio_tasks() {
        // Teach the estimator: node a usually takes ~100% of wc, node c ~25%.
        let (s, ready) = state();
        let mut est = EmaEstimator::new(1.0, 0.6);
        est.observe(tref(0, 0), 4.0); // a: no slack expected
        est.observe(tref(0, 1), 6.0); // b: no slack expected
        est.observe(tref(0, 2), 2.0); // c: 6 cycles of expected slack
        let mut pubs = Pubs::new(est);
        let mut out = Vec::new();
        pubs.rank(&s, &ready, 1.0, &mut out);
        assert_eq!(out[0], tref(0, 2), "task with most expected slack first: {out:?}");
    }

    #[test]
    fn pubs_value_decreases_with_expected_slack() {
        let (s, _) = state();
        let mut est = EmaEstimator::new(1.0, 0.6);
        est.observe(tref(0, 2), 2.0);
        let pubs = Pubs::new(est);
        let v_slacky = pubs.value(&s, tref(0, 2), 1.0);
        let mut est2 = EmaEstimator::new(1.0, 0.6);
        est2.observe(tref(0, 2), 8.0);
        let pubs2 = Pubs::new(est2);
        let v_tight = pubs2.value(&s, tref(0, 2), 1.0);
        assert!(v_slacky < v_tight, "{v_slacky} vs {v_tight}");
    }

    #[test]
    fn pubs_learns_through_completion_hook() {
        let (s, _) = state();
        let mut pubs = Pubs::new(EmaEstimator::new(1.0, 0.6));
        pubs.on_completion(&s, tref(0, 0), 1.0);
        assert!((pubs.estimator().estimate(tref(0, 0), 4.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pubs_handles_inactive_graph_gracefully() {
        let mut b = TaskGraphBuilder::new("T0");
        b.add_node("a", 4);
        let mut set = TaskSet::new();
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 30.0).unwrap());
        let s = SimState::new(set);
        let pubs = Pubs::new(MeanFraction::paper());
        assert_eq!(pubs.value(&s, tref(0, 0), 1.0), f64::INFINITY);
    }

    #[test]
    fn pubs_ranking_is_deterministic() {
        let (s, ready) = state();
        let mut pubs = Pubs::new(MeanFraction::paper());
        let mut a = Vec::new();
        let mut b = Vec::new();
        pubs.rank(&s, &ready, 1.0, &mut a);
        pubs.rank(&s, &ready, 1.0, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }
}
