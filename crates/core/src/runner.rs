//! Scheduler specifications — the vocabulary of the experiment API.
//!
//! A [`SchedulerSpec`] names one complete scheduler of the paper's Table 2
//! (a DVS governor × a priority function × a ready-list scope) and knows how
//! to instantiate its pieces. Specs round-trip through strings
//! (`Display`/`FromStr`, e.g. `"laEDF+pUBS/all"` or the paper aliases
//! `"BAS-2"`), so CLIs and configs name schedulers uniformly.
//!
//! Experiments are *run* through the builder API in [`crate::experiment`]:
//!
//! ```
//! use bas_core::{Experiment, SchedulerSpec};
//! use bas_cpu::presets::unit_processor;
//! use bas_taskgraph::TaskSetConfig;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let set = TaskSetConfig::default()
//!     .generate(&mut StdRng::seed_from_u64(7))
//!     .unwrap();
//! let spec: SchedulerSpec = "laEDF+pUBS/all".parse().unwrap();
//! assert_eq!(spec, SchedulerSpec::bas2());
//! let proc = unit_processor();
//! let out = Experiment::new(&set)
//!     .spec(spec)
//!     .processor(&proc)
//!     .seed(42)
//!     .horizon(200.0)
//!     .run()
//!     .unwrap();
//! assert_eq!(out.metrics.deadline_misses, 0);
//! ```
//!
use crate::estimator::EmaEstimator;
use crate::policy::BasPolicy;
use crate::priority::{Ltf, Pubs, RandomPriority, Stf};
use bas_cpu::Platform;
use bas_dvs::{CcEdf, GovernorBank, KvEdf, LaEdf, NoDvs, SocFloor};
use bas_sim::{ActualSampler, FrequencyGovernor, PersistentFraction, TaskPolicy, UniformFraction};
use std::fmt;
use std::str::FromStr;

/// Which DVS governor drives the frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GovernorKind {
    /// No DVS: always fmax (the canonical [`bas_sim::MaxSpeed`], re-exported
    /// as [`NoDvs`]).
    None,
    /// Cycle-conserving EDF.
    CcEdf,
    /// Look-ahead EDF.
    LaEdf,
    /// Battery-aware look-ahead EDF: laEDF wrapped in [`SocFloor`], flooring
    /// `fref` at the flat static-utilization rate once the mounted battery's
    /// state of charge drops below the default threshold. Without a battery
    /// it behaves exactly like [`GovernorKind::LaEdf`].
    Soc,
    /// Khan–Vemuri iterative battery-aware EDF ([`KvEdf`]): per decision,
    /// walks a candidate grid between laEDF's feasible floor and the flat
    /// static-utilization ceiling, accepting slowdown notches while a
    /// state-of-charge–weighted battery cost improves. Without a battery it
    /// behaves exactly like [`GovernorKind::LaEdf`].
    Kv,
}

/// Which priority function orders the ready list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorityKind {
    /// Uniformly random.
    Random,
    /// Largest task first.
    Ltf,
    /// Shortest task first.
    Stf,
    /// Gruian's pUBS over an EMA estimator.
    Pubs,
}

/// How actual computations are drawn (see `bas_sim::workload`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplerKind {
    /// U(0.2, 1.0)·WCET redrawn independently per instance — the literal
    /// reading of §5. No estimator can beat the mean here.
    IidUniform,
    /// Persistent per-task fractions ~ U(0.2, 1.0) with 5 % jitter — the
    /// reading under which the paper's history-based `Xk` works.
    Persistent,
}

impl SamplerKind {
    /// Instantiate the sampler.
    pub fn build(&self, seed: u64) -> Box<dyn ActualSampler> {
        match self {
            SamplerKind::IidUniform => Box::new(UniformFraction::paper(seed)),
            SamplerKind::Persistent => Box::new(PersistentFraction::paper(seed)),
        }
    }
}

impl fmt::Display for SamplerKind {
    /// The canonical scenario-file name: `iid` or `persistent`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SamplerKind::IidUniform => "iid",
            SamplerKind::Persistent => "persistent",
        })
    }
}

/// Error parsing a [`SamplerKind`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSamplerError(String);

impl fmt::Display for ParseSamplerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sampler {:?}: expected iid|persistent", self.0)
    }
}

impl std::error::Error for ParseSamplerError {}

impl FromStr for SamplerKind {
    type Err = ParseSamplerError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "iid" => Ok(SamplerKind::IidUniform),
            "persistent" => Ok(SamplerKind::Persistent),
            other => Err(ParseSamplerError(other.to_string())),
        }
    }
}

/// Which tasks the priority function may choose from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScopeKind {
    /// Most imminent released graph only.
    MostImminent,
    /// All released graphs, with the feasibility check.
    AllReleased,
}

/// A complete scheduler description — one row of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchedulerSpec {
    /// The DVS algorithm.
    pub governor: GovernorKind,
    /// The priority function.
    pub priority: PriorityKind,
    /// The ready-list scope.
    pub scope: ScopeKind,
}

impl SchedulerSpec {
    /// Table 2 row 1: EDF without DVS, random order, most imminent graph.
    pub fn edf() -> Self {
        SchedulerSpec {
            governor: GovernorKind::None,
            priority: PriorityKind::Random,
            scope: ScopeKind::MostImminent,
        }
    }

    /// Table 2 row 2: ccEDF with random order.
    pub fn cc_edf() -> Self {
        SchedulerSpec {
            governor: GovernorKind::CcEdf,
            priority: PriorityKind::Random,
            scope: ScopeKind::MostImminent,
        }
    }

    /// Table 2 row 3: laEDF with random order.
    pub fn la_edf() -> Self {
        SchedulerSpec {
            governor: GovernorKind::LaEdf,
            priority: PriorityKind::Random,
            scope: ScopeKind::MostImminent,
        }
    }

    /// Table 2 row 4: BAS-1 — laEDF + pUBS over the most imminent graph.
    pub fn bas1() -> Self {
        SchedulerSpec {
            governor: GovernorKind::LaEdf,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::MostImminent,
        }
    }

    /// Table 2 row 5: BAS-2 — laEDF + pUBS over all released graphs.
    pub fn bas2() -> Self {
        SchedulerSpec {
            governor: GovernorKind::LaEdf,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::AllReleased,
        }
    }

    /// BAS-1 paired with ccEDF instead of laEDF — the workspace's
    /// supplementary row showing the ordering effect on a governor with
    /// frequency headroom (see EXPERIMENTS.md).
    pub fn bas1cc() -> Self {
        SchedulerSpec {
            governor: GovernorKind::CcEdf,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::MostImminent,
        }
    }

    /// BAS-2 paired with ccEDF instead of laEDF (see [`Self::bas1cc`]).
    pub fn bas2cc() -> Self {
        SchedulerSpec {
            governor: GovernorKind::CcEdf,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::AllReleased,
        }
    }

    /// BAS-2 with the battery-aware SoC-floored governor — the workspace's
    /// demonstration that a scheduler can *react* to state of charge now
    /// that the engine exposes it (`scenarios/battery-aware.toml` runs it
    /// head-to-head against plain BAS-2).
    pub fn bas_soc() -> Self {
        SchedulerSpec {
            governor: GovernorKind::Soc,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::AllReleased,
        }
    }

    /// BAS-2 with the Khan–Vemuri iterative battery-aware governor — the
    /// portfolio's genuinely new contender (see [`KvEdf`]).
    pub fn bas_kv() -> Self {
        SchedulerSpec {
            governor: GovernorKind::Kv,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::AllReleased,
        }
    }

    /// All five Table 2 rows in paper order, with their paper names.
    pub fn table2_lineup() -> [(&'static str, SchedulerSpec); 5] {
        [
            ("EDF", SchedulerSpec::edf()),
            ("ccEDF", SchedulerSpec::cc_edf()),
            ("laEDF", SchedulerSpec::la_edf()),
            ("BAS-1", SchedulerSpec::bas1()),
            ("BAS-2", SchedulerSpec::bas2()),
        ]
    }

    /// Short display name, e.g. `laEDF+pUBS/all`. Also available through
    /// `Display`, and parseable back through `FromStr`.
    pub fn label(&self) -> String {
        let g = match self.governor {
            GovernorKind::None => "noDVS",
            GovernorKind::CcEdf => "ccEDF",
            GovernorKind::LaEdf => "laEDF",
            GovernorKind::Soc => "socEDF",
            GovernorKind::Kv => "kvEDF",
        };
        let p = match self.priority {
            PriorityKind::Random => "random",
            PriorityKind::Ltf => "LTF",
            PriorityKind::Stf => "STF",
            PriorityKind::Pubs => "pUBS",
        };
        let s = match self.scope {
            ScopeKind::MostImminent => "imminent",
            ScopeKind::AllReleased => "all",
        };
        format!("{g}+{p}/{s}")
    }

    /// Instantiate the governor for a processor with peak `fmax` (Hz).
    pub fn build_governor(&self, fmax: f64) -> Box<dyn FrequencyGovernor> {
        match self.governor {
            GovernorKind::None => Box::new(NoDvs),
            GovernorKind::CcEdf => Box::new(CcEdf),
            GovernorKind::LaEdf => Box::new(LaEdf::with_fmax(fmax)),
            GovernorKind::Soc => Box::new(SocFloor::with_default_threshold(LaEdf::with_fmax(fmax))),
            GovernorKind::Kv => Box::new(KvEdf::with_fmax(fmax)),
        }
    }

    /// Instantiate one governor per PE of `platform`, each constructed
    /// against its own element's peak frequency — laEDF's deferral math and
    /// SocFloor's state must not be shared between elements.
    pub fn build_governor_bank(&self, platform: &Platform) -> GovernorBank {
        GovernorBank::uniform(platform.len(), |pe| self.build_governor(platform.pe(pe).fmax()))
    }

    /// Instantiate one task policy per PE. PE 0 is seeded with `seed`
    /// itself — on a 1-PE platform the bank is exactly the historical
    /// single policy — and later PEs derive decorrelated seeds from it.
    pub fn build_policy_bank(&self, seed: u64, pes: usize) -> Vec<Box<dyn TaskPolicy>> {
        (0..pes).map(|pe| self.build_policy(Self::pe_seed(seed, pe))).collect()
    }

    /// The per-PE policy seed derivation: PE 0 keeps the trial seed
    /// verbatim, later PEs spread it with an odd multiplier.
    pub fn pe_seed(seed: u64, pe: usize) -> u64 {
        seed ^ (pe as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Instantiate the task policy; `seed` feeds the random priority.
    pub fn build_policy(&self, seed: u64) -> Box<dyn TaskPolicy> {
        macro_rules! scoped {
            ($prio:expr) => {
                match self.scope {
                    ScopeKind::MostImminent => {
                        Box::new(BasPolicy::most_imminent($prio)) as Box<dyn TaskPolicy>
                    }
                    ScopeKind::AllReleased => {
                        Box::new(BasPolicy::all_released($prio)) as Box<dyn TaskPolicy>
                    }
                }
            };
        }
        match self.priority {
            PriorityKind::Random => scoped!(RandomPriority::new(seed ^ 0x9e37_79b9_7f4a_7c15)),
            PriorityKind::Ltf => scoped!(Ltf),
            PriorityKind::Stf => scoped!(Stf),
            PriorityKind::Pubs => scoped!(Pubs::new(EmaEstimator::paper())),
        }
    }
}

impl fmt::Display for SchedulerSpec {
    /// The canonical `governor+priority/scope` label, e.g. `laEDF+pUBS/all`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error parsing a [`SchedulerSpec`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    input: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid scheduler spec {:?}: expected `governor+priority/scope` \
             (noDVS|ccEDF|laEDF|socEDF|kvEDF + random|LTF|STF|pUBS / imminent|all) or a \
             paper alias (EDF, ccEDF, laEDF, BAS-1, BAS-2, BAS-1cc, BAS-2cc, BAS-soc, BAS-kv)",
            self.input
        )
    }
}

impl std::error::Error for ParseSpecError {}

impl FromStr for SchedulerSpec {
    type Err = ParseSpecError;

    /// Parse the canonical `governor+priority/scope` label produced by
    /// `Display`, or one of the paper row aliases.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "EDF" => return Ok(SchedulerSpec::edf()),
            "ccEDF" => return Ok(SchedulerSpec::cc_edf()),
            "laEDF" => return Ok(SchedulerSpec::la_edf()),
            "BAS-1" => return Ok(SchedulerSpec::bas1()),
            "BAS-2" => return Ok(SchedulerSpec::bas2()),
            "BAS-1cc" => return Ok(SchedulerSpec::bas1cc()),
            "BAS-2cc" => return Ok(SchedulerSpec::bas2cc()),
            "BAS-soc" => return Ok(SchedulerSpec::bas_soc()),
            "BAS-kv" => return Ok(SchedulerSpec::bas_kv()),
            _ => {}
        }
        let err = || ParseSpecError { input: s.to_string() };
        let (head, scope) = s.split_once('/').ok_or_else(err)?;
        let (governor, priority) = head.split_once('+').ok_or_else(err)?;
        let governor = match governor {
            "noDVS" => GovernorKind::None,
            "ccEDF" => GovernorKind::CcEdf,
            "laEDF" => GovernorKind::LaEdf,
            "socEDF" => GovernorKind::Soc,
            "kvEDF" => GovernorKind::Kv,
            _ => return Err(err()),
        };
        let priority = match priority {
            "random" => PriorityKind::Random,
            "LTF" => PriorityKind::Ltf,
            "STF" => PriorityKind::Stf,
            "pUBS" => PriorityKind::Pubs,
            _ => return Err(err()),
        };
        let scope = match scope {
            "imminent" => ScopeKind::MostImminent,
            "all" => ScopeKind::AllReleased,
            _ => return Err(err()),
        };
        Ok(SchedulerSpec { governor, priority, scope })
    }
}

/// Every expressible spec (5 governors × 4 priorities × 2 scopes), for
/// exhaustive round-trip checks and enumerating sweeps.
pub fn all_specs() -> Vec<SchedulerSpec> {
    let mut out = Vec::with_capacity(40);
    for governor in [
        GovernorKind::None,
        GovernorKind::CcEdf,
        GovernorKind::LaEdf,
        GovernorKind::Soc,
        GovernorKind::Kv,
    ] {
        for priority in
            [PriorityKind::Random, PriorityKind::Ltf, PriorityKind::Stf, PriorityKind::Pubs]
        {
            for scope in [ScopeKind::MostImminent, ScopeKind::AllReleased] {
                out.push(SchedulerSpec { governor, priority, scope });
            }
        }
    }
    out
}

/// Expand a list of spec *patterns* into a labelled spec set.
///
/// Each pattern is one of:
/// * `all` — every expressible spec ([`all_specs`]), canonically labelled;
/// * a glob over the canonical `governor+priority/scope` grammar, using `*`
///   for any run of characters and `?` for exactly one (e.g. `laEDF+*/all`,
///   `*EDF+pUBS/*`) — expands to every matching canonical label, and it is
///   an error for a glob to match nothing;
/// * anything else — parsed as a single [`SchedulerSpec`] (canonical label
///   or paper alias), keeping the spelling given as its label.
///
/// Duplicate specs are dropped (the first label for a spec wins) so globs
/// may overlap; the result preserves first-mention order, which makes the
/// expansion deterministic.
pub fn expand_spec_patterns(
    patterns: &[String],
) -> Result<Vec<(String, SchedulerSpec)>, ParseSpecError> {
    let mut out: Vec<(String, SchedulerSpec)> = Vec::new();
    let push = |label: String, spec: SchedulerSpec, out: &mut Vec<(String, SchedulerSpec)>| {
        if !out.iter().any(|(_, s)| *s == spec) {
            out.push((label, spec));
        }
    };
    for pattern in patterns {
        if pattern == "all" {
            for spec in all_specs() {
                push(spec.label(), spec, &mut out);
            }
        } else if pattern.contains('*') || pattern.contains('?') {
            let mut matched = false;
            for spec in all_specs() {
                let label = spec.label();
                if glob_match(pattern, &label) {
                    matched = true;
                    push(label, spec, &mut out);
                }
            }
            if !matched {
                return Err(ParseSpecError { input: pattern.clone() });
            }
        } else {
            let spec: SchedulerSpec = pattern.parse()?;
            push(pattern.clone(), spec, &mut out);
        }
    }
    Ok(out)
}

/// Match `pattern` (with `*` = any run, `?` = exactly one char) against
/// `text`, byte-wise with greedy backtracking — the classic two-pointer
/// wildcard matcher.
fn glob_match(pattern: &str, text: &str) -> bool {
    let (p, t) = (pattern.as_bytes(), text.as_bytes());
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = pi;
            mark = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            ti = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = all_specs().iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "{labels:?}");
    }

    #[test]
    fn display_matches_label() {
        for spec in all_specs() {
            assert_eq!(spec.to_string(), spec.label());
        }
    }

    #[test]
    fn every_spec_round_trips_through_strings() {
        for spec in all_specs() {
            let parsed: SchedulerSpec = spec.to_string().parse().unwrap();
            assert_eq!(parsed, spec, "{}", spec);
        }
    }

    #[test]
    fn paper_aliases_parse() {
        for (name, spec) in SchedulerSpec::table2_lineup() {
            assert_eq!(name.parse::<SchedulerSpec>().unwrap(), spec, "{name}");
        }
        assert_eq!("BAS-1cc".parse::<SchedulerSpec>().unwrap(), SchedulerSpec::bas1cc());
        assert_eq!("BAS-2cc".parse::<SchedulerSpec>().unwrap(), SchedulerSpec::bas2cc());
        assert_eq!("BAS-soc".parse::<SchedulerSpec>().unwrap(), SchedulerSpec::bas_soc());
    }

    #[test]
    fn battery_aware_spec_round_trips() {
        assert_eq!(SchedulerSpec::bas_soc().to_string(), "socEDF+pUBS/all");
        assert_eq!("socEDF+pUBS/all".parse::<SchedulerSpec>().unwrap(), SchedulerSpec::bas_soc());
        assert_eq!(SchedulerSpec::bas_kv().to_string(), "kvEDF+pUBS/all");
        assert_eq!("BAS-kv".parse::<SchedulerSpec>().unwrap(), SchedulerSpec::bas_kv());
        assert_eq!(all_specs().len(), 40);
    }

    #[test]
    fn spec_patterns_expand_deterministically() {
        let strs = |ps: &[&str]| ps.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // `all` is the whole grammar, canonically labelled, no duplicates.
        let all = expand_spec_patterns(&strs(&["all"])).unwrap();
        assert_eq!(all.len(), 40);
        assert_eq!(all[0].0, "noDVS+random/imminent");
        // A governor glob picks out its 8 priority/scope combinations.
        let la = expand_spec_patterns(&strs(&["laEDF+*/*"])).unwrap();
        assert_eq!(la.len(), 8);
        assert!(la.iter().all(|(_, s)| s.governor == GovernorKind::LaEdf));
        // `?` matches exactly one character.
        let q = expand_spec_patterns(&strs(&["laEDF+?TF/all"])).unwrap();
        assert_eq!(q.len(), 2, "{q:?}");
        // Aliases keep their spelling; duplicates collapse onto the first
        // mention (BAS-2 *is* laEDF+pUBS/all).
        let mix = expand_spec_patterns(&strs(&["BAS-2", "laEDF+*/all"])).unwrap();
        assert_eq!(mix[0].0, "BAS-2");
        assert_eq!(mix.iter().filter(|(_, s)| *s == SchedulerSpec::bas2()).count(), 1);
        // A glob matching nothing is an error, as is junk.
        assert!(expand_spec_patterns(&strs(&["zzz+*/*"])).is_err());
        assert!(expand_spec_patterns(&strs(&["junk"])).is_err());
    }

    #[test]
    fn junk_fails_to_parse_with_helpful_message() {
        for junk in ["", "EDF2", "laEDF+pUBS", "laEDF/all", "x+y/z", "laEDF+pUBS/everything"] {
            let e = junk.parse::<SchedulerSpec>().unwrap_err();
            assert!(e.to_string().contains("expected"), "{junk}: {e}");
        }
    }

    #[test]
    fn sampler_kind_round_trips_through_strings() {
        for kind in [SamplerKind::IidUniform, SamplerKind::Persistent] {
            assert_eq!(kind.to_string().parse::<SamplerKind>().unwrap(), kind);
        }
        assert!("gaussian".parse::<SamplerKind>().is_err());
    }

    #[test]
    fn bas2_label_matches_issue_grammar() {
        assert_eq!(SchedulerSpec::bas2().to_string(), "laEDF+pUBS/all");
        assert_eq!(SchedulerSpec::edf().to_string(), "noDVS+random/imminent");
    }
}
