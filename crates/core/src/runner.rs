//! One-call experiment façade.
//!
//! Builds any scheduler of the paper's Table 2 from a compact
//! [`SchedulerSpec`] and runs it against a task set — with a plain horizon
//! (energy experiments) or co-simulated with a battery (lifetime
//! experiments). All stochastic pieces (random priority, actual-computation
//! sampling) derive from the single `seed` argument, so runs are exactly
//! reproducible and different schedulers see identical workloads.

use crate::estimator::EmaEstimator;
use crate::policy::BasPolicy;
use crate::priority::{Ltf, Pubs, RandomPriority, Stf};
use bas_battery::BatteryModel;
use bas_cpu::Processor;
use bas_dvs::{CcEdf, LaEdf, NoDvs};
use bas_sim::{
    ActualSampler, DeadlineMode, Executor, FrequencyGovernor, PersistentFraction, SimConfig,
    SimError, SimOutcome, TaskPolicy, UniformFraction,
};
use bas_taskgraph::TaskSet;

/// Which DVS governor drives the frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GovernorKind {
    /// No DVS: always fmax.
    None,
    /// Cycle-conserving EDF.
    CcEdf,
    /// Look-ahead EDF.
    LaEdf,
}

/// Which priority function orders the ready list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityKind {
    /// Uniformly random.
    Random,
    /// Largest task first.
    Ltf,
    /// Shortest task first.
    Stf,
    /// Gruian's pUBS over an EMA estimator.
    Pubs,
}

/// How actual computations are drawn (see `bas_sim::workload`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// U(0.2, 1.0)·WCET redrawn independently per instance — the literal
    /// reading of §5. No estimator can beat the mean here.
    IidUniform,
    /// Persistent per-task fractions ~ U(0.2, 1.0) with 5 % jitter — the
    /// reading under which the paper's history-based `Xk` works.
    Persistent,
}

impl SamplerKind {
    /// Instantiate the sampler.
    pub fn build(&self, seed: u64) -> Box<dyn ActualSampler> {
        match self {
            SamplerKind::IidUniform => Box::new(UniformFraction::paper(seed)),
            SamplerKind::Persistent => Box::new(PersistentFraction::paper(seed)),
        }
    }
}

/// Which tasks the priority function may choose from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// Most imminent released graph only.
    MostImminent,
    /// All released graphs, with the feasibility check.
    AllReleased,
}

/// A complete scheduler description — one row of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerSpec {
    /// The DVS algorithm.
    pub governor: GovernorKind,
    /// The priority function.
    pub priority: PriorityKind,
    /// The ready-list scope.
    pub scope: ScopeKind,
}

impl SchedulerSpec {
    /// Table 2 row 1: EDF without DVS, random order, most imminent graph.
    pub fn edf() -> Self {
        SchedulerSpec {
            governor: GovernorKind::None,
            priority: PriorityKind::Random,
            scope: ScopeKind::MostImminent,
        }
    }

    /// Table 2 row 2: ccEDF with random order.
    pub fn cc_edf() -> Self {
        SchedulerSpec {
            governor: GovernorKind::CcEdf,
            priority: PriorityKind::Random,
            scope: ScopeKind::MostImminent,
        }
    }

    /// Table 2 row 3: laEDF with random order.
    pub fn la_edf() -> Self {
        SchedulerSpec {
            governor: GovernorKind::LaEdf,
            priority: PriorityKind::Random,
            scope: ScopeKind::MostImminent,
        }
    }

    /// Table 2 row 4: BAS-1 — laEDF + pUBS over the most imminent graph.
    pub fn bas1() -> Self {
        SchedulerSpec {
            governor: GovernorKind::LaEdf,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::MostImminent,
        }
    }

    /// Table 2 row 5: BAS-2 — laEDF + pUBS over all released graphs.
    pub fn bas2() -> Self {
        SchedulerSpec {
            governor: GovernorKind::LaEdf,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::AllReleased,
        }
    }

    /// All five Table 2 rows in paper order, with their display names.
    pub fn table2_lineup() -> [(&'static str, SchedulerSpec); 5] {
        [
            ("EDF", SchedulerSpec::edf()),
            ("ccEDF", SchedulerSpec::cc_edf()),
            ("laEDF", SchedulerSpec::la_edf()),
            ("BAS-1", SchedulerSpec::bas1()),
            ("BAS-2", SchedulerSpec::bas2()),
        ]
    }

    /// Short display name, e.g. `laEDF+pUBS/all`.
    pub fn label(&self) -> String {
        let g = match self.governor {
            GovernorKind::None => "noDVS",
            GovernorKind::CcEdf => "ccEDF",
            GovernorKind::LaEdf => "laEDF",
        };
        let p = match self.priority {
            PriorityKind::Random => "random",
            PriorityKind::Ltf => "LTF",
            PriorityKind::Stf => "STF",
            PriorityKind::Pubs => "pUBS",
        };
        let s = match self.scope {
            ScopeKind::MostImminent => "imminent",
            ScopeKind::AllReleased => "all",
        };
        format!("{g}+{p}/{s}")
    }

    /// Instantiate the governor for a processor with peak `fmax` (Hz).
    pub fn build_governor(&self, fmax: f64) -> Box<dyn FrequencyGovernor> {
        match self.governor {
            GovernorKind::None => Box::new(NoDvs),
            GovernorKind::CcEdf => Box::new(CcEdf),
            GovernorKind::LaEdf => Box::new(LaEdf::with_fmax(fmax)),
        }
    }

    /// Instantiate the task policy; `seed` feeds the random priority.
    pub fn build_policy(&self, seed: u64) -> Box<dyn TaskPolicy> {
        macro_rules! scoped {
            ($prio:expr) => {
                match self.scope {
                    ScopeKind::MostImminent => {
                        Box::new(BasPolicy::most_imminent($prio)) as Box<dyn TaskPolicy>
                    }
                    ScopeKind::AllReleased => {
                        Box::new(BasPolicy::all_released($prio)) as Box<dyn TaskPolicy>
                    }
                }
            };
        }
        match self.priority {
            PriorityKind::Random => scoped!(RandomPriority::new(seed ^ 0x9e37_79b9_7f4a_7c15)),
            PriorityKind::Ltf => scoped!(Ltf),
            PriorityKind::Stf => scoped!(Stf),
            PriorityKind::Pubs => scoped!(Pubs::new(EmaEstimator::paper())),
        }
    }
}

/// Simulate `set` under `spec` for `horizon` seconds (no battery). The
/// sampler is the paper's U(0.2, 1.0) seeded with `seed`, so every spec run
/// with the same seed sees the same actual computations.
pub fn simulate(
    set: &TaskSet,
    spec: &SchedulerSpec,
    processor: &Processor,
    seed: u64,
    horizon: f64,
) -> Result<SimOutcome, SimError> {
    let mut governor = spec.build_governor(processor.fmax());
    let mut policy = spec.build_policy(seed);
    let mut sampler = UniformFraction::paper(seed);
    let cfg = SimConfig::new(processor.clone());
    let mut ex = Executor::new(set.clone(), cfg, governor.as_mut(), policy.as_mut(), &mut sampler)?;
    ex.run_for(horizon)
}

/// Like [`simulate`] but without trace recording (fast path for sweeps).
pub fn simulate_lean(
    set: &TaskSet,
    spec: &SchedulerSpec,
    processor: &Processor,
    seed: u64,
    horizon: f64,
) -> Result<SimOutcome, SimError> {
    let mut governor = spec.build_governor(processor.fmax());
    let mut policy = spec.build_policy(seed);
    let mut sampler = UniformFraction::paper(seed);
    let mut cfg = SimConfig::new(processor.clone());
    cfg.record_trace = false;
    let mut ex = Executor::new(set.clone(), cfg, governor.as_mut(), policy.as_mut(), &mut sampler)?;
    ex.run_for(horizon)
}

/// Co-simulate with a battery until it dies (or `max_time`); trace recording
/// off (these runs span battery lifetimes — hours of simulated time).
pub fn simulate_with_battery(
    set: &TaskSet,
    spec: &SchedulerSpec,
    processor: &Processor,
    battery: &mut dyn BatteryModel,
    seed: u64,
    max_time: f64,
) -> Result<SimOutcome, SimError> {
    simulate_with_battery_freq(
        set,
        spec,
        processor,
        battery,
        seed,
        max_time,
        bas_cpu::FreqPolicy::Interpolate,
    )
}

/// [`simulate_with_battery`] with an explicit frequency-realization policy
/// (interpolated pair vs round-up quantization) — the Table 2 binary and the
/// frequency ablation sweep this knob.
#[allow(clippy::too_many_arguments)]
pub fn simulate_with_battery_freq(
    set: &TaskSet,
    spec: &SchedulerSpec,
    processor: &Processor,
    battery: &mut dyn BatteryModel,
    seed: u64,
    max_time: f64,
    freq_policy: bas_cpu::FreqPolicy,
) -> Result<SimOutcome, SimError> {
    simulate_with_battery_custom(
        set,
        spec,
        processor,
        battery,
        seed,
        max_time,
        freq_policy,
        SamplerKind::IidUniform,
    )
}

/// Fully-parameterized battery co-simulation: frequency realization policy
/// and actual-computation model both explicit.
#[allow(clippy::too_many_arguments)]
pub fn simulate_with_battery_custom(
    set: &TaskSet,
    spec: &SchedulerSpec,
    processor: &Processor,
    battery: &mut dyn BatteryModel,
    seed: u64,
    max_time: f64,
    freq_policy: bas_cpu::FreqPolicy,
    sampler_kind: SamplerKind,
) -> Result<SimOutcome, SimError> {
    let mut governor = spec.build_governor(processor.fmax());
    let mut policy = spec.build_policy(seed);
    let mut sampler = sampler_kind.build(seed);
    let mut cfg = SimConfig::new(processor.clone());
    cfg.record_trace = false;
    cfg.deadline_mode = DeadlineMode::Fail;
    cfg.freq_policy = freq_policy;
    let mut ex = Executor::new(
        set.clone(),
        cfg,
        governor.as_mut(),
        policy.as_mut(),
        sampler.as_mut(),
    )?;
    ex.run_until_battery_dead(battery, max_time)
}

/// Fully-parameterized horizon simulation (no battery), lean (no trace).
pub fn simulate_lean_custom(
    set: &TaskSet,
    spec: &SchedulerSpec,
    processor: &Processor,
    seed: u64,
    horizon: f64,
    freq_policy: bas_cpu::FreqPolicy,
    sampler_kind: SamplerKind,
) -> Result<SimOutcome, SimError> {
    let mut governor = spec.build_governor(processor.fmax());
    let mut policy = spec.build_policy(seed);
    let mut sampler = sampler_kind.build(seed);
    let mut cfg = SimConfig::new(processor.clone());
    cfg.record_trace = false;
    cfg.freq_policy = freq_policy;
    let mut ex = Executor::new(
        set.clone(),
        cfg,
        governor.as_mut(),
        policy.as_mut(),
        sampler.as_mut(),
    )?;
    ex.run_for(horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_battery::{BatteryModel, Kibam, KibamParams};
    use bas_cpu::presets::unit_processor;
    use bas_taskgraph::TaskSetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_set(seed: u64) -> TaskSet {
        let mut rng = StdRng::seed_from_u64(seed);
        TaskSetConfig::default().generate(&mut rng).unwrap()
    }

    #[test]
    fn all_table2_specs_run_without_misses() {
        let set = test_set(1);
        for (name, spec) in SchedulerSpec::table2_lineup() {
            let out = simulate(&set, &spec, &unit_processor(), 7, 500.0)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(out.metrics.deadline_misses, 0, "{name}");
            assert!(out.metrics.nodes_completed > 0, "{name}");
            out.trace.expect("trace").validate().unwrap();
        }
    }

    #[test]
    fn dvs_schedulers_use_less_energy_than_edf() {
        let set = test_set(2);
        let proc = unit_processor();
        let edf = simulate_lean(&set, &SchedulerSpec::edf(), &proc, 7, 500.0).unwrap();
        let cc = simulate_lean(&set, &SchedulerSpec::cc_edf(), &proc, 7, 500.0).unwrap();
        let la = simulate_lean(&set, &SchedulerSpec::la_edf(), &proc, 7, 500.0).unwrap();
        assert!(cc.metrics.energy < edf.metrics.energy, "ccEDF must save energy");
        assert!(la.metrics.energy < edf.metrics.energy, "laEDF must save energy");
    }

    #[test]
    fn same_seed_same_result() {
        let set = test_set(3);
        let a = simulate_lean(&set, &SchedulerSpec::bas2(), &unit_processor(), 9, 300.0).unwrap();
        let b = simulate_lean(&set, &SchedulerSpec::bas2(), &unit_processor(), 9, 300.0).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn battery_cosim_reports_lifetime() {
        let set = test_set(4);
        // Small unit-scale cell so the test is quick.
        let mut cell = Kibam::new(KibamParams { capacity: 200.0, c: 0.6, k_prime: 1e-3 });
        let out = simulate_with_battery(
            &set,
            &SchedulerSpec::bas2(),
            &unit_processor(),
            &mut cell,
            11,
            1e6,
        )
        .unwrap();
        let report = out.battery.unwrap();
        assert!(report.died, "cell must be exhausted");
        assert!(report.lifetime > 0.0);
        assert!((report.charge_delivered - cell.charge_delivered()).abs() < 1e-9);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = SchedulerSpec::table2_lineup()
            .iter()
            .map(|(_, s)| s.label())
            .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "{labels:?}");
    }
}
