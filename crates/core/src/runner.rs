//! Scheduler specifications — the vocabulary of the experiment API.
//!
//! A [`SchedulerSpec`] names one complete scheduler of the paper's Table 2
//! (a DVS governor × a priority function × a ready-list scope) and knows how
//! to instantiate its pieces. Specs round-trip through strings
//! (`Display`/`FromStr`, e.g. `"laEDF+pUBS/all"` or the paper aliases
//! `"BAS-2"`), so CLIs and configs name schedulers uniformly.
//!
//! Experiments are *run* through the builder API in [`crate::experiment`]:
//!
//! ```
//! use bas_core::{Experiment, SchedulerSpec};
//! use bas_cpu::presets::unit_processor;
//! use bas_taskgraph::TaskSetConfig;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let set = TaskSetConfig::default()
//!     .generate(&mut StdRng::seed_from_u64(7))
//!     .unwrap();
//! let spec: SchedulerSpec = "laEDF+pUBS/all".parse().unwrap();
//! assert_eq!(spec, SchedulerSpec::bas2());
//! let proc = unit_processor();
//! let out = Experiment::new(&set)
//!     .spec(spec)
//!     .processor(&proc)
//!     .seed(42)
//!     .horizon(200.0)
//!     .run()
//!     .unwrap();
//! assert_eq!(out.metrics.deadline_misses, 0);
//! ```
//!
use crate::estimator::EmaEstimator;
use crate::policy::BasPolicy;
use crate::priority::{Ltf, Pubs, RandomPriority, Stf};
use bas_cpu::Platform;
use bas_dvs::{CcEdf, GovernorBank, LaEdf, NoDvs, SocFloor};
use bas_sim::{ActualSampler, FrequencyGovernor, PersistentFraction, TaskPolicy, UniformFraction};
use std::fmt;
use std::str::FromStr;

/// Which DVS governor drives the frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GovernorKind {
    /// No DVS: always fmax (the canonical [`bas_sim::MaxSpeed`], re-exported
    /// as [`NoDvs`]).
    None,
    /// Cycle-conserving EDF.
    CcEdf,
    /// Look-ahead EDF.
    LaEdf,
    /// Battery-aware look-ahead EDF: laEDF wrapped in [`SocFloor`], flooring
    /// `fref` at the flat static-utilization rate once the mounted battery's
    /// state of charge drops below the default threshold. Without a battery
    /// it behaves exactly like [`GovernorKind::LaEdf`].
    Soc,
}

/// Which priority function orders the ready list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorityKind {
    /// Uniformly random.
    Random,
    /// Largest task first.
    Ltf,
    /// Shortest task first.
    Stf,
    /// Gruian's pUBS over an EMA estimator.
    Pubs,
}

/// How actual computations are drawn (see `bas_sim::workload`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplerKind {
    /// U(0.2, 1.0)·WCET redrawn independently per instance — the literal
    /// reading of §5. No estimator can beat the mean here.
    IidUniform,
    /// Persistent per-task fractions ~ U(0.2, 1.0) with 5 % jitter — the
    /// reading under which the paper's history-based `Xk` works.
    Persistent,
}

impl SamplerKind {
    /// Instantiate the sampler.
    pub fn build(&self, seed: u64) -> Box<dyn ActualSampler> {
        match self {
            SamplerKind::IidUniform => Box::new(UniformFraction::paper(seed)),
            SamplerKind::Persistent => Box::new(PersistentFraction::paper(seed)),
        }
    }
}

impl fmt::Display for SamplerKind {
    /// The canonical scenario-file name: `iid` or `persistent`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SamplerKind::IidUniform => "iid",
            SamplerKind::Persistent => "persistent",
        })
    }
}

/// Error parsing a [`SamplerKind`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSamplerError(String);

impl fmt::Display for ParseSamplerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sampler {:?}: expected iid|persistent", self.0)
    }
}

impl std::error::Error for ParseSamplerError {}

impl FromStr for SamplerKind {
    type Err = ParseSamplerError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "iid" => Ok(SamplerKind::IidUniform),
            "persistent" => Ok(SamplerKind::Persistent),
            other => Err(ParseSamplerError(other.to_string())),
        }
    }
}

/// Which tasks the priority function may choose from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScopeKind {
    /// Most imminent released graph only.
    MostImminent,
    /// All released graphs, with the feasibility check.
    AllReleased,
}

/// A complete scheduler description — one row of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchedulerSpec {
    /// The DVS algorithm.
    pub governor: GovernorKind,
    /// The priority function.
    pub priority: PriorityKind,
    /// The ready-list scope.
    pub scope: ScopeKind,
}

impl SchedulerSpec {
    /// Table 2 row 1: EDF without DVS, random order, most imminent graph.
    pub fn edf() -> Self {
        SchedulerSpec {
            governor: GovernorKind::None,
            priority: PriorityKind::Random,
            scope: ScopeKind::MostImminent,
        }
    }

    /// Table 2 row 2: ccEDF with random order.
    pub fn cc_edf() -> Self {
        SchedulerSpec {
            governor: GovernorKind::CcEdf,
            priority: PriorityKind::Random,
            scope: ScopeKind::MostImminent,
        }
    }

    /// Table 2 row 3: laEDF with random order.
    pub fn la_edf() -> Self {
        SchedulerSpec {
            governor: GovernorKind::LaEdf,
            priority: PriorityKind::Random,
            scope: ScopeKind::MostImminent,
        }
    }

    /// Table 2 row 4: BAS-1 — laEDF + pUBS over the most imminent graph.
    pub fn bas1() -> Self {
        SchedulerSpec {
            governor: GovernorKind::LaEdf,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::MostImminent,
        }
    }

    /// Table 2 row 5: BAS-2 — laEDF + pUBS over all released graphs.
    pub fn bas2() -> Self {
        SchedulerSpec {
            governor: GovernorKind::LaEdf,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::AllReleased,
        }
    }

    /// BAS-1 paired with ccEDF instead of laEDF — the workspace's
    /// supplementary row showing the ordering effect on a governor with
    /// frequency headroom (see EXPERIMENTS.md).
    pub fn bas1cc() -> Self {
        SchedulerSpec {
            governor: GovernorKind::CcEdf,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::MostImminent,
        }
    }

    /// BAS-2 paired with ccEDF instead of laEDF (see [`Self::bas1cc`]).
    pub fn bas2cc() -> Self {
        SchedulerSpec {
            governor: GovernorKind::CcEdf,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::AllReleased,
        }
    }

    /// BAS-2 with the battery-aware SoC-floored governor — the workspace's
    /// demonstration that a scheduler can *react* to state of charge now
    /// that the engine exposes it (`scenarios/battery-aware.toml` runs it
    /// head-to-head against plain BAS-2).
    pub fn bas_soc() -> Self {
        SchedulerSpec {
            governor: GovernorKind::Soc,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::AllReleased,
        }
    }

    /// All five Table 2 rows in paper order, with their paper names.
    pub fn table2_lineup() -> [(&'static str, SchedulerSpec); 5] {
        [
            ("EDF", SchedulerSpec::edf()),
            ("ccEDF", SchedulerSpec::cc_edf()),
            ("laEDF", SchedulerSpec::la_edf()),
            ("BAS-1", SchedulerSpec::bas1()),
            ("BAS-2", SchedulerSpec::bas2()),
        ]
    }

    /// Short display name, e.g. `laEDF+pUBS/all`. Also available through
    /// `Display`, and parseable back through `FromStr`.
    pub fn label(&self) -> String {
        let g = match self.governor {
            GovernorKind::None => "noDVS",
            GovernorKind::CcEdf => "ccEDF",
            GovernorKind::LaEdf => "laEDF",
            GovernorKind::Soc => "socEDF",
        };
        let p = match self.priority {
            PriorityKind::Random => "random",
            PriorityKind::Ltf => "LTF",
            PriorityKind::Stf => "STF",
            PriorityKind::Pubs => "pUBS",
        };
        let s = match self.scope {
            ScopeKind::MostImminent => "imminent",
            ScopeKind::AllReleased => "all",
        };
        format!("{g}+{p}/{s}")
    }

    /// Instantiate the governor for a processor with peak `fmax` (Hz).
    pub fn build_governor(&self, fmax: f64) -> Box<dyn FrequencyGovernor> {
        match self.governor {
            GovernorKind::None => Box::new(NoDvs),
            GovernorKind::CcEdf => Box::new(CcEdf),
            GovernorKind::LaEdf => Box::new(LaEdf::with_fmax(fmax)),
            GovernorKind::Soc => Box::new(SocFloor::with_default_threshold(LaEdf::with_fmax(fmax))),
        }
    }

    /// Instantiate one governor per PE of `platform`, each constructed
    /// against its own element's peak frequency — laEDF's deferral math and
    /// SocFloor's state must not be shared between elements.
    pub fn build_governor_bank(&self, platform: &Platform) -> GovernorBank {
        GovernorBank::uniform(platform.len(), |pe| self.build_governor(platform.pe(pe).fmax()))
    }

    /// Instantiate one task policy per PE. PE 0 is seeded with `seed`
    /// itself — on a 1-PE platform the bank is exactly the historical
    /// single policy — and later PEs derive decorrelated seeds from it.
    pub fn build_policy_bank(&self, seed: u64, pes: usize) -> Vec<Box<dyn TaskPolicy>> {
        (0..pes).map(|pe| self.build_policy(Self::pe_seed(seed, pe))).collect()
    }

    /// The per-PE policy seed derivation: PE 0 keeps the trial seed
    /// verbatim, later PEs spread it with an odd multiplier.
    pub fn pe_seed(seed: u64, pe: usize) -> u64 {
        seed ^ (pe as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Instantiate the task policy; `seed` feeds the random priority.
    pub fn build_policy(&self, seed: u64) -> Box<dyn TaskPolicy> {
        macro_rules! scoped {
            ($prio:expr) => {
                match self.scope {
                    ScopeKind::MostImminent => {
                        Box::new(BasPolicy::most_imminent($prio)) as Box<dyn TaskPolicy>
                    }
                    ScopeKind::AllReleased => {
                        Box::new(BasPolicy::all_released($prio)) as Box<dyn TaskPolicy>
                    }
                }
            };
        }
        match self.priority {
            PriorityKind::Random => scoped!(RandomPriority::new(seed ^ 0x9e37_79b9_7f4a_7c15)),
            PriorityKind::Ltf => scoped!(Ltf),
            PriorityKind::Stf => scoped!(Stf),
            PriorityKind::Pubs => scoped!(Pubs::new(EmaEstimator::paper())),
        }
    }
}

impl fmt::Display for SchedulerSpec {
    /// The canonical `governor+priority/scope` label, e.g. `laEDF+pUBS/all`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error parsing a [`SchedulerSpec`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    input: String,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid scheduler spec {:?}: expected `governor+priority/scope` \
             (noDVS|ccEDF|laEDF|socEDF + random|LTF|STF|pUBS / imminent|all) or a \
             paper alias (EDF, ccEDF, laEDF, BAS-1, BAS-2, BAS-1cc, BAS-2cc, BAS-soc)",
            self.input
        )
    }
}

impl std::error::Error for ParseSpecError {}

impl FromStr for SchedulerSpec {
    type Err = ParseSpecError;

    /// Parse the canonical `governor+priority/scope` label produced by
    /// `Display`, or one of the paper row aliases.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "EDF" => return Ok(SchedulerSpec::edf()),
            "ccEDF" => return Ok(SchedulerSpec::cc_edf()),
            "laEDF" => return Ok(SchedulerSpec::la_edf()),
            "BAS-1" => return Ok(SchedulerSpec::bas1()),
            "BAS-2" => return Ok(SchedulerSpec::bas2()),
            "BAS-1cc" => return Ok(SchedulerSpec::bas1cc()),
            "BAS-2cc" => return Ok(SchedulerSpec::bas2cc()),
            "BAS-soc" => return Ok(SchedulerSpec::bas_soc()),
            _ => {}
        }
        let err = || ParseSpecError { input: s.to_string() };
        let (head, scope) = s.split_once('/').ok_or_else(err)?;
        let (governor, priority) = head.split_once('+').ok_or_else(err)?;
        let governor = match governor {
            "noDVS" => GovernorKind::None,
            "ccEDF" => GovernorKind::CcEdf,
            "laEDF" => GovernorKind::LaEdf,
            "socEDF" => GovernorKind::Soc,
            _ => return Err(err()),
        };
        let priority = match priority {
            "random" => PriorityKind::Random,
            "LTF" => PriorityKind::Ltf,
            "STF" => PriorityKind::Stf,
            "pUBS" => PriorityKind::Pubs,
            _ => return Err(err()),
        };
        let scope = match scope {
            "imminent" => ScopeKind::MostImminent,
            "all" => ScopeKind::AllReleased,
            _ => return Err(err()),
        };
        Ok(SchedulerSpec { governor, priority, scope })
    }
}

/// Every expressible spec (4 governors × 4 priorities × 2 scopes), for
/// exhaustive round-trip checks and enumerating sweeps.
pub fn all_specs() -> Vec<SchedulerSpec> {
    let mut out = Vec::with_capacity(32);
    for governor in
        [GovernorKind::None, GovernorKind::CcEdf, GovernorKind::LaEdf, GovernorKind::Soc]
    {
        for priority in
            [PriorityKind::Random, PriorityKind::Ltf, PriorityKind::Stf, PriorityKind::Pubs]
        {
            for scope in [ScopeKind::MostImminent, ScopeKind::AllReleased] {
                out.push(SchedulerSpec { governor, priority, scope });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = all_specs().iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "{labels:?}");
    }

    #[test]
    fn display_matches_label() {
        for spec in all_specs() {
            assert_eq!(spec.to_string(), spec.label());
        }
    }

    #[test]
    fn every_spec_round_trips_through_strings() {
        for spec in all_specs() {
            let parsed: SchedulerSpec = spec.to_string().parse().unwrap();
            assert_eq!(parsed, spec, "{}", spec);
        }
    }

    #[test]
    fn paper_aliases_parse() {
        for (name, spec) in SchedulerSpec::table2_lineup() {
            assert_eq!(name.parse::<SchedulerSpec>().unwrap(), spec, "{name}");
        }
        assert_eq!("BAS-1cc".parse::<SchedulerSpec>().unwrap(), SchedulerSpec::bas1cc());
        assert_eq!("BAS-2cc".parse::<SchedulerSpec>().unwrap(), SchedulerSpec::bas2cc());
        assert_eq!("BAS-soc".parse::<SchedulerSpec>().unwrap(), SchedulerSpec::bas_soc());
    }

    #[test]
    fn battery_aware_spec_round_trips() {
        assert_eq!(SchedulerSpec::bas_soc().to_string(), "socEDF+pUBS/all");
        assert_eq!("socEDF+pUBS/all".parse::<SchedulerSpec>().unwrap(), SchedulerSpec::bas_soc());
        assert_eq!(all_specs().len(), 32);
    }

    #[test]
    fn junk_fails_to_parse_with_helpful_message() {
        for junk in ["", "EDF2", "laEDF+pUBS", "laEDF/all", "x+y/z", "laEDF+pUBS/everything"] {
            let e = junk.parse::<SchedulerSpec>().unwrap_err();
            assert!(e.to_string().contains("expected"), "{junk}: {e}");
        }
    }

    #[test]
    fn sampler_kind_round_trips_through_strings() {
        for kind in [SamplerKind::IidUniform, SamplerKind::Persistent] {
            assert_eq!(kind.to_string().parse::<SamplerKind>().unwrap(), kind);
        }
        assert!("gaussian".parse::<SamplerKind>().is_err());
    }

    #[test]
    fn bas2_label_matches_issue_grammar() {
        assert_eq!(SchedulerSpec::bas2().to_string(), "laEDF+pUBS/all");
        assert_eq!(SchedulerSpec::edf().to_string(), "noDVS+random/imminent");
    }
}
