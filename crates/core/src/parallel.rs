//! Deterministic parallel fan-out for experiment sweeps.
//!
//! Experiments are embarrassingly parallel over trial seeds. Jobs are
//! distributed over `std::thread::scope` workers through a shared atomic
//! cursor; each worker collects `(index, value)` pairs which are scattered
//! back into index order afterwards, so the output order (and therefore every
//! downstream average) is identical to a sequential run — parallelism is
//! purely a wall-clock optimization, per the reproducibility policy in
//! DESIGN.md §5.
//!
//! This module moved here from `bas-bench` when the [`crate::experiment`]
//! layer absorbed batch execution (`bas-bench` is a pure criterion-bench
//! crate now).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `0..jobs` in parallel, preserving index order in the output.
///
/// `f` must be `Sync` (it is shared by worker threads) and is called exactly
/// once per index. `threads = 0` means "number of available cores".
pub fn parallel_map<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(jobs.max(1));
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    if threads <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(i));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let mut buckets: Vec<Vec<(usize, T)>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                }));
            }
            for h in handles {
                buckets.push(h.join().expect("worker panicked"));
            }
        });
        for (i, v) in buckets.into_iter().flatten() {
            slots[i] = Some(v);
        }
    }
    slots.into_iter().map(|s| s.expect("every job filled its slot")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = parallel_map(100, 4, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = parallel_map(37, 1, |i| (i as f64).sqrt());
        let par = parallel_map(37, 8, |i| (i as f64).sqrt());
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_uses_available_cores() {
        let out = parallel_map(10, 0, |i| i + 1);
        assert_eq!(out.len(), 10);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = parallel_map(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }
}
