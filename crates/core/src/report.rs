//! Structured experiment reports with stable JSON and CSV schemas.
//!
//! Every `bas` CLI run can emit, besides its text table, a [`Report`]: the
//! scenario's results as spec-labelled rows carrying per-seed metrics and
//! [`Summary`] statistics. The schemas are stable — downstream tooling may
//! parse them — and versioned by [`SCHEMA`].
//!
//! ## JSON schema (`Report::to_json`)
//!
//! ```json
//! {
//!   "schema": "bas-report/v1",
//!   "scenario": "<scenario name>",
//!   "kind": "<scenario kind>",
//!   "base_seed": 1,
//!   "trials": 100,
//!   "pes": 2,                 // only present on multi-PE platforms
//!   "rows": [
//!     {
//!       "label": "BAS-2",
//!       "summaries": {
//!         "lifetime_min": {"n": 100, "mean": 148.0, "std": 12.0,
//!                           "min": ..., "max": ..., "p50": ..., "p95": ...}
//!       },
//!       "trials": [
//!         {"seed": 2685821657736338718, "metrics": {"lifetime_min": 147.2}}
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! Row labels are the sweep's spec labels (or a preset's own row keys, e.g.
//! Table 1's task counts). Metric names are snake_case and unit-suffixed
//! where ambiguous (`lifetime_min`, `delivered_mah`, `energy_j`). Non-finite
//! values serialize as JSON `null`.
//!
//! ## CSV schema (`Report::to_csv`)
//!
//! One flat table, header first, two record types sharing the columns
//!
//! ```text
//! record,label,metric,seed,value,n,mean,std,min,max,p50,p95
//! trial,BAS-2,lifetime_min,2685821657736338718,147.2,,,,,,,
//! summary,BAS-2,lifetime_min,,,100,148.0,12.0,...,...,...,...
//! ```
//!
//! `trial` records fill `seed`/`value` and leave the statistics columns
//! empty; `summary` records do the opposite. Non-finite values render as
//! empty cells. Fields containing commas or quotes are double-quoted
//! (RFC 4180).

use crate::stats::Summary;
use std::fmt::Write as _;

/// Identifier of the report schema emitted by this version of the crate.
pub const SCHEMA: &str = "bas-report/v1";

/// A structured experiment report: labelled rows of per-seed metrics plus
/// summary statistics. See the module docs for the serialized schemas.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Scenario name (e.g. `table2` or the loaded file's `name` field).
    pub scenario: String,
    /// Scenario kind (e.g. `sweep`, `table1`).
    pub kind: String,
    /// The base seed the run derives its trial seeds from.
    pub base_seed: u64,
    /// Trials per row (0 where the notion does not apply).
    pub trials: usize,
    /// Processing elements of the platform the scenario ran on (1 = the
    /// paper's uniprocessor). Serialized as a `pes` key only when > 1, so
    /// historical uniprocessor reports stay byte-identical.
    pub pes: usize,
    /// Result rows, in presentation order.
    pub rows: Vec<ReportRow>,
}

/// One labelled result row (a scheduler spec, a table row, a model, …).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportRow {
    /// Row label (spec label for sweeps).
    pub label: String,
    /// Named summary statistics, in presentation order.
    pub summaries: Vec<(String, Summary)>,
    /// Per-seed metric records, in trial order.
    pub trials: Vec<SeedRecord>,
}

/// Metrics of one (row, seed) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedRecord {
    /// The trial seed that produced these metrics.
    pub seed: u64,
    /// Named metric values, in presentation order.
    pub metrics: Vec<(String, f64)>,
}

impl Report {
    /// An empty report shell for `scenario`/`kind`.
    pub fn new(
        scenario: impl Into<String>,
        kind: impl Into<String>,
        base_seed: u64,
        trials: usize,
    ) -> Self {
        Report {
            scenario: scenario.into(),
            kind: kind.into(),
            base_seed,
            trials,
            pes: 1,
            rows: Vec::new(),
        }
    }

    /// Append a row, returning a mutable handle to fill it.
    pub fn row(&mut self, label: impl Into<String>) -> &mut ReportRow {
        self.rows.push(ReportRow { label: label.into(), ..ReportRow::default() });
        self.rows.last_mut().expect("just pushed")
    }

    /// Build a report from a [`crate::SweepReport`], carrying the standard
    /// per-trial metrics (`energy_j`, `charge_c`, `deadline_misses`,
    /// `instances_completed`, `makespan`, plus `lifetime_min`/
    /// `delivered_mah` for battery co-simulations) and their summaries.
    pub fn from_sweep(
        scenario: impl Into<String>,
        kind: impl Into<String>,
        sweep: &crate::SweepReport,
    ) -> Self {
        let mut report = Report::new(scenario, kind, sweep.base_seed, sweep.trials);
        for spec in &sweep.specs {
            let row = report.row(&spec.label);
            row.summaries.push(("energy_j".into(), spec.energy));
            row.summaries.push(("charge_c".into(), spec.charge));
            row.summaries.push(("makespan".into(), spec.makespan));
            if let Some(s) = spec.lifetime_min {
                row.summaries.push(("lifetime_min".into(), s));
            }
            if let Some(s) = spec.delivered_mah {
                row.summaries.push(("delivered_mah".into(), s));
            }
            for t in &spec.trials {
                let mut metrics: Vec<(String, f64)> = vec![
                    ("energy_j".into(), t.energy),
                    ("charge_c".into(), t.charge),
                    ("deadline_misses".into(), t.deadline_misses as f64),
                    ("instances_completed".into(), t.instances_completed as f64),
                    ("makespan".into(), t.makespan),
                ];
                if let Some(l) = t.lifetime_minutes() {
                    metrics.push(("lifetime_min".into(), l));
                }
                if let Some(m) = t.delivered_mah {
                    metrics.push(("delivered_mah".into(), m));
                }
                row.trials.push(SeedRecord { seed: t.seed, metrics });
            }
        }
        report
    }

    /// Serialize as JSON (schema in the module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
        let _ = writeln!(out, "  \"scenario\": {},", json_string(&self.scenario));
        let _ = writeln!(out, "  \"kind\": {},", json_string(&self.kind));
        let _ = writeln!(out, "  \"base_seed\": {},", self.base_seed);
        let _ = writeln!(out, "  \"trials\": {},", self.trials);
        if self.pes > 1 {
            let _ = writeln!(out, "  \"pes\": {},", self.pes);
        }
        out.push_str("  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"label\": {},", json_string(&row.label));
            out.push_str("      \"summaries\": {");
            for (j, (name, s)) in row.summaries.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n        {}: {{\"n\": {}, \"mean\": {}, \"std\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}}}",
                    json_string(name),
                    s.n,
                    json_number(s.mean),
                    json_number(s.std),
                    json_number(s.min),
                    json_number(s.max),
                    json_number(s.p50),
                    json_number(s.p95),
                );
            }
            if !row.summaries.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("},\n");
            out.push_str("      \"trials\": [");
            for (j, t) in row.trials.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\n        {{\"seed\": {}, \"metrics\": {{", t.seed);
                for (k, (name, v)) in t.metrics.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{}: {}", json_string(name), json_number(*v));
                }
                out.push_str("}}");
            }
            if !row.trials.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.rows.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Serialize as CSV (schema in the module docs).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("record,label,metric,seed,value,n,mean,std,min,max,p50,p95\n");
        for row in &self.rows {
            for t in &row.trials {
                for (name, v) in &t.metrics {
                    let _ = writeln!(
                        out,
                        "trial,{},{},{},{},,,,,,,",
                        csv_field(&row.label),
                        csv_field(name),
                        t.seed,
                        csv_number(*v),
                    );
                }
            }
            for (name, s) in &row.summaries {
                let _ = writeln!(
                    out,
                    "summary,{},{},,,{},{},{},{},{},{},{}",
                    csv_field(&row.label),
                    csv_field(name),
                    s.n,
                    csv_number(s.mean),
                    csv_number(s.std),
                    csv_number(s.min),
                    csv_number(s.max),
                    csv_number(s.p50),
                    csv_number(s.p95),
                );
            }
        }
        out
    }
}

impl ReportRow {
    /// Append a named summary.
    pub fn summary(&mut self, name: impl Into<String>, s: Summary) -> &mut Self {
        self.summaries.push((name.into(), s));
        self
    }

    /// Append a single scalar as a one-point summary — for worked-example
    /// presets whose rows are single measurements, not samples.
    pub fn value(&mut self, name: impl Into<String>, v: f64) -> &mut Self {
        self.summaries.push((name.into(), Summary::of(&[v])));
        self
    }
}

/// JSON string escaping (control characters, quotes, backslash) — the one
/// escaper every JSON emitter above the engine shares (`bas-sim`'s
/// streaming writer keeps its own copy only because the dependency runs
/// the other way).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A float as a JSON number; non-finite values become `null`.
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// A float as a CSV cell; non-finite values become the empty cell.
fn csv_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        String::new()
    }
}

/// RFC 4180 quoting for fields containing delimiters or quotes.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report::new("smoke", "sweep", 1, 2);
        let row = r.row("BAS-2");
        row.summaries.push(("energy_j".into(), Summary::of(&[1.0, 3.0])));
        row.trials.push(SeedRecord { seed: 11, metrics: vec![("energy_j".into(), 1.0)] });
        row.trials.push(SeedRecord { seed: 12, metrics: vec![("energy_j".into(), 3.0)] });
        r
    }

    #[test]
    fn json_has_schema_labels_and_seeds() {
        let j = sample_report().to_json();
        assert!(j.contains("\"schema\": \"bas-report/v1\""), "{j}");
        assert!(j.contains("\"label\": \"BAS-2\""), "{j}");
        assert!(j.contains("\"seed\": 11"), "{j}");
        assert!(j.contains("\"p95\":"), "{j}");
        // Balanced braces/brackets (cheap well-formedness check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                j.matches(open).count(),
                j.matches(close).count(),
                "unbalanced {open}{close}\n{j}"
            );
        }
    }

    #[test]
    fn empty_report_is_well_formed() {
        let j = Report::new("empty", "sweep", 0, 0).to_json();
        assert!(j.contains("\"rows\": []"), "{j}");
    }

    #[test]
    fn csv_has_header_trials_and_summaries() {
        let c = sample_report().to_csv();
        let mut lines = c.lines();
        assert_eq!(
            lines.next().unwrap(),
            "record,label,metric,seed,value,n,mean,std,min,max,p50,p95"
        );
        assert!(c.contains("trial,BAS-2,energy_j,11,1,,,,,,,"), "{c}");
        assert!(c.lines().any(|l| l.starts_with("summary,BAS-2,energy_j,,,2,2,")), "{c}");
        let width = c.lines().next().unwrap().split(',').count();
        for line in c.lines() {
            assert_eq!(line.split(',').count(), width, "ragged row: {line}");
        }
    }

    #[test]
    fn non_finite_values_do_not_break_the_formats() {
        let mut r = Report::new("n", "k", 0, 0);
        r.row("empty").summary("x", Summary::of(&[]));
        assert!(r.to_json().contains("\"mean\": null"), "{}", r.to_json());
        assert!(r.to_csv().contains("summary,empty,x,,,0,,,,,,"), "{}", r.to_csv());
    }

    #[test]
    fn csv_quotes_awkward_labels() {
        let mut r = Report::new("n", "k", 0, 0);
        r.row("a,b\"c").value("m", 1.0);
        assert!(r.to_csv().contains("\"a,b\"\"c\""), "{}", r.to_csv());
    }

    #[test]
    fn from_sweep_carries_per_seed_metrics() {
        use crate::{SchedulerSpec, Sweep};
        use bas_cpu::presets::unit_processor;
        use bas_taskgraph::TaskSetConfig;
        let proc = unit_processor();
        let sweep = Sweep::over_seeds(1, 3)
            .spec(SchedulerSpec::edf())
            .workload(TaskSetConfig::default())
            .processor(&proc)
            .horizon(100.0)
            .run()
            .unwrap();
        let report = Report::from_sweep("test", "sweep", &sweep);
        assert_eq!(report.trials, 3);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].trials.len(), 3);
        assert_eq!(report.rows[0].trials[0].seed, Sweep::seed_for(1, 0));
        assert!(report.rows[0].summaries.iter().any(|(n, _)| n == "energy_j"));
        assert!(report.rows[0].summaries.iter().any(|(n, _)| n == "makespan"));
        assert!(report.rows[0].trials[0].metrics.iter().any(|(n, _)| n == "makespan"));
        // No battery: no lifetime metrics.
        assert!(!report.rows[0].summaries.iter().any(|(n, _)| n == "lifetime_min"));
    }
}
