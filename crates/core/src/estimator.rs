//! Estimators for `Xk` — the expected actual cycle demand of a task.
//!
//! The pUBS priority needs an estimate of how many cycles a task will
//! *really* take. "Even if the estimate is wrong no deadlines are violated.
//! However, the accuracy of the estimate definitely determines the optimality
//! of the schedule. … One \[technique\] is to keep history of previous
//! instances of each task" (§4.2). Three estimators:
//!
//! * [`EmaEstimator`] — per-task exponential moving average of observed
//!   actuals (the history technique the paper suggests);
//! * [`MeanFraction`] — a static fraction of WCET (the distribution mean,
//!   0.6 for the paper's U(0.2, 1.0) workload) — no learning;
//! * [`WorstCaseEstimate`] — `Xk = wcet`: deliberately uninformative; with
//!   it pUBS degenerates toward a WCET-driven order, which the ablation
//!   benches use to show how much the estimate quality matters.

use bas_sim::TaskRef;

/// An online estimator of per-task actual cycle demand.
pub trait CycleEstimator: Send {
    /// Estimator name for reports.
    fn name(&self) -> &'static str;

    /// Estimated *total* actual cycles of the task's current instance, given
    /// the task's static WCET. Must lie in `(0, wcet]`.
    fn estimate(&self, task: TaskRef, wcet: f64) -> f64;

    /// Feed an observed completion (actual cycles used by an instance).
    fn observe(&mut self, task: TaskRef, actual: f64);
}

/// Per-task exponential moving average with a cold-start fraction.
///
/// History is held in dense per-graph/per-node vectors keyed by the task
/// set's stable node ordering — pUBS consults the estimator for every ready
/// candidate at every scheduling decision, which made the former
/// `HashMap<TaskRef, f64>` the hottest lookup on the engine's decision
/// path.
#[derive(Debug, Clone)]
pub struct EmaEstimator {
    alpha: f64,
    cold_fraction: f64,
    /// `history[graph][node]`, grown on first observation.
    history: Vec<Vec<Option<f64>>>,
    tracked: usize,
}

impl EmaEstimator {
    /// `alpha` is the smoothing factor in `(0, 1]` (1 = keep only the last
    /// observation); `cold_fraction` (of WCET) seeds unseen tasks.
    ///
    /// # Panics
    /// Panics when parameters are out of range.
    pub fn new(alpha: f64, cold_fraction: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} out of (0,1]");
        assert!(
            cold_fraction > 0.0 && cold_fraction <= 1.0,
            "cold_fraction {cold_fraction} out of (0,1]"
        );
        EmaEstimator { alpha, cold_fraction, history: Vec::new(), tracked: 0 }
    }

    /// The configuration used throughout the experiments: α = 0.25, cold
    /// start at the U(0.2, 1.0) mean of 0.6·WCET.
    pub fn paper() -> Self {
        EmaEstimator::new(0.25, 0.6)
    }

    /// Number of tasks with learned history.
    pub fn tracked(&self) -> usize {
        self.tracked
    }
}

impl CycleEstimator for EmaEstimator {
    fn name(&self) -> &'static str {
        "ema"
    }

    fn estimate(&self, task: TaskRef, wcet: f64) -> f64 {
        let raw = self
            .history
            .get(task.graph.index())
            .and_then(|nodes| nodes.get(task.node.index()))
            .copied()
            .flatten()
            .unwrap_or(self.cold_fraction * wcet);
        raw.clamp(1e-9, wcet)
    }

    fn observe(&mut self, task: TaskRef, actual: f64) {
        let (g, n) = (task.graph.index(), task.node.index());
        if self.history.len() <= g {
            self.history.resize(g + 1, Vec::new());
        }
        if self.history[g].len() <= n {
            self.history[g].resize(n + 1, None);
        }
        match &mut self.history[g][n] {
            Some(e) => *e += self.alpha * (actual - *e),
            slot @ None => {
                *slot = Some(actual);
                self.tracked += 1;
            }
        }
    }
}

/// Static `Xk = fraction · wcet` (no learning).
#[derive(Debug, Clone, Copy)]
pub struct MeanFraction(f64);

impl MeanFraction {
    /// A fixed fraction in `(0, 1]`.
    ///
    /// # Panics
    /// Panics when outside that range.
    pub fn new(fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction {fraction} out of (0,1]");
        MeanFraction(fraction)
    }

    /// Mean of the paper's U(0.2, 1.0) actual-fraction distribution.
    pub fn paper() -> Self {
        MeanFraction(0.6)
    }
}

impl CycleEstimator for MeanFraction {
    fn name(&self) -> &'static str {
        "mean-fraction"
    }

    fn estimate(&self, _task: TaskRef, wcet: f64) -> f64 {
        self.0 * wcet
    }

    fn observe(&mut self, _task: TaskRef, _actual: f64) {}
}

/// Pessimistic `Xk = wcet`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstCaseEstimate;

impl CycleEstimator for WorstCaseEstimate {
    fn name(&self) -> &'static str {
        "worst-case"
    }

    fn estimate(&self, _task: TaskRef, wcet: f64) -> f64 {
        wcet
    }

    fn observe(&mut self, _task: TaskRef, _actual: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_taskgraph::{GraphId, NodeId};

    fn task(g: usize, n: usize) -> TaskRef {
        TaskRef::new(GraphId::from_index(g), NodeId::from_index(n))
    }

    #[test]
    fn ema_cold_start_uses_fraction() {
        let e = EmaEstimator::new(0.5, 0.6);
        assert!((e.estimate(task(0, 0), 100.0) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn ema_first_observation_replaces_cold_start() {
        let mut e = EmaEstimator::new(0.5, 0.6);
        e.observe(task(0, 0), 30.0);
        assert!((e.estimate(task(0, 0), 100.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn ema_converges_toward_stationary_actuals() {
        let mut e = EmaEstimator::new(0.25, 0.6);
        for _ in 0..50 {
            e.observe(task(0, 0), 42.0);
        }
        assert!((e.estimate(task(0, 0), 100.0) - 42.0).abs() < 1e-6);
    }

    #[test]
    fn ema_tracks_tasks_independently() {
        let mut e = EmaEstimator::paper();
        e.observe(task(0, 0), 10.0);
        e.observe(task(1, 0), 90.0);
        assert_eq!(e.tracked(), 2);
        assert!(e.estimate(task(0, 0), 100.0) < e.estimate(task(1, 0), 100.0));
    }

    #[test]
    fn ema_estimate_is_clamped_to_wcet() {
        let mut e = EmaEstimator::new(1.0, 0.6);
        e.observe(task(0, 0), 500.0); // bogus observation beyond wcet
        assert_eq!(e.estimate(task(0, 0), 100.0), 100.0);
    }

    #[test]
    fn mean_fraction_scales_wcet() {
        let e = MeanFraction::paper();
        assert!((e.estimate(task(0, 0), 50.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_returns_wcet() {
        let e = WorstCaseEstimate;
        assert_eq!(e.estimate(task(0, 0), 77.0), 77.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ema_rejects_bad_alpha() {
        EmaEstimator::new(0.0, 0.6);
    }
}
