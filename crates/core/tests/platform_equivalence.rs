//! The compatibility contract of the platform refactor: for **every**
//! scheduler spec in [`all_specs`], running on an explicit 1-PE
//! [`Platform`] produces a `Trace`, `Metrics` and `bas-events/v2` JSONL
//! stream identical to the historical processor-based entry point —
//! byte-for-byte on the stream, field-for-field on the metrics, slice-for-
//! slice on the trace. (The stream goldens themselves are pinned in
//! `crates/sim/tests/observer_equivalence.rs`, re-blessed as v2 with
//! `pe: 0` everywhere.)
//!
//! A second property pins the multi-PE accounting invariants that have no
//! uniprocessor counterpart: per-PE lanes cover the same wall clock, busy
//! time sums over elements, and the charge integral equals the trace's
//! summed-current reduction.

use bas_battery::{Kibam, KibamParams};
use bas_core::{all_specs, Experiment, SchedulerSpec};
use bas_cpu::presets::unit_processor;
use bas_cpu::Platform;
use bas_sim::{JsonlWriter, SimOutcome};
use bas_taskgraph::{GeneratorConfig, GraphShape, TaskSet, TaskSetConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_set(seed: u64) -> TaskSet {
    TaskSetConfig {
        graphs: 3,
        graph: GeneratorConfig {
            nodes: (2, 6),
            wcet: (5, 40),
            shape: GraphShape::Layered { layers: 2, edge_prob: 0.3 },
        },
        utilization: 0.6,
        fmax: 1.0,
        period_quantum: None,
    }
    .generate(&mut StdRng::seed_from_u64(seed))
    .unwrap()
}

fn run(set: &TaskSet, spec: SchedulerSpec, platform: Option<&Platform>) -> (SimOutcome, String) {
    let proc = unit_processor();
    let mut writer = JsonlWriter::new(Vec::new());
    let mut cell = Kibam::new(KibamParams { capacity: 400.0, c: 0.6, k_prime: 1e-3 });
    let mut e = Experiment::new(set)
        .spec(spec)
        .seed(17)
        .horizon(400.0)
        .trace(true)
        .battery(&mut cell)
        .observer(&mut writer);
    e = match platform {
        Some(p) => e.platform(p),
        None => e.processor(&proc),
    };
    let out = e.run().expect("feasible run");
    let stream = String::from_utf8(writer.into_inner().unwrap()).unwrap();
    (out, stream)
}

#[test]
fn every_spec_is_bit_identical_on_a_one_pe_platform() {
    let set = test_set(5);
    let single = Platform::single(unit_processor());
    for spec in all_specs() {
        let (legacy, legacy_stream) = run(&set, spec, None);
        let (platform, platform_stream) = run(&set, spec, Some(&single));
        assert_eq!(legacy.metrics, platform.metrics, "{spec}: metrics drifted");
        assert_eq!(
            legacy.trace.as_ref().unwrap().slices(),
            platform.trace.as_ref().unwrap().slices(),
            "{spec}: trace drifted"
        );
        assert_eq!(
            legacy.battery.as_ref().unwrap().charge_delivered,
            platform.battery.as_ref().unwrap().charge_delivered,
            "{spec}: battery accounting drifted"
        );
        assert_eq!(legacy_stream, platform_stream, "{spec}: JSONL stream drifted");
        assert!(legacy_stream.lines().any(|l| l.contains("\"pe\":0")), "{spec}: v2 carries pe");
    }
}

#[test]
fn multi_pe_accounting_invariants_hold_for_the_table2_lineup() {
    let set = test_set(9);
    let duo = Platform::uniform(unit_processor(), 2);
    for (name, spec) in SchedulerSpec::table2_lineup() {
        let (out, stream) = run(&set, spec, Some(&duo));
        let m = &out.metrics;
        assert_eq!(m.deadline_misses, 0, "{name}");
        assert!(m.nodes_completed > 0, "{name}");
        // Wall clock is counted once; busy + idle sum over both elements.
        assert!(
            (m.busy_time + m.idle_time - 2.0 * m.sim_time).abs() < 1e-6,
            "{name}: busy {} + idle {} != 2 × wall {}",
            m.busy_time,
            m.idle_time,
            m.sim_time
        );
        // The charge integral equals the trace's summed-current reduction.
        let trace = out.trace.as_ref().unwrap();
        assert!(trace.lane_count() >= 1);
        trace.validate().unwrap();
        let profile = trace.to_load_profile();
        assert!(
            (profile.total_charge() - m.charge).abs() < 1e-6,
            "{name}: trace integral {} vs metrics {}",
            profile.total_charge(),
            m.charge
        );
        // The stream names both elements.
        assert!(stream.lines().any(|l| l.contains("\"pe\":1")), "{name}: PE 1 never appeared");
    }
}

#[test]
fn two_pes_run_independent_work_concurrently() {
    // Two independent single-node graphs end up one per PE under the
    // list-scheduling default; the same seeds draw the same actuals on
    // both platforms, so work is conserved while the elements genuinely
    // overlap in time (both lanes run from t = 0).
    use bas_sim::trace::SliceKind;
    use bas_taskgraph::{PeriodicTaskGraph, TaskGraphBuilder};
    let mut set = TaskSet::new();
    for name in ["A", "B"] {
        let mut b = TaskGraphBuilder::new(name);
        b.add_node("n", 4);
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap());
    }
    // No battery here: a shared cell dies at different times on 1 vs 2 PEs
    // (doubled idle draw), which would cut the runs at different horizons.
    let proc = unit_processor();
    let duo_platform = Platform::uniform(unit_processor(), 2);
    let run_plain = |platform: Option<&Platform>| {
        let mut e =
            Experiment::new(&set).spec(SchedulerSpec::edf()).seed(17).horizon(100.0).trace(true);
        e = match platform {
            Some(p) => e.platform(p),
            None => e.processor(&proc),
        };
        e.run().expect("feasible run")
    };
    let single = run_plain(None);
    let duo = run_plain(Some(&duo_platform));
    assert!(
        (single.metrics.busy_time - duo.metrics.busy_time).abs() < 1e-9,
        "same actuals at fmax either way: {} vs {}",
        single.metrics.busy_time,
        duo.metrics.busy_time
    );
    assert_eq!(duo.metrics.deadline_misses, 0);
    assert_eq!(duo.metrics.instances_completed, single.metrics.instances_completed);
    let trace = duo.trace.as_ref().unwrap();
    assert_eq!(trace.lane_count(), 2, "one lane per element");
    for pe in 0..2 {
        let first_run = trace
            .lane(pe)
            .iter()
            .find(|s| matches!(s.kind, SliceKind::Run { .. }))
            .unwrap_or_else(|| panic!("PE {pe} never ran"));
        assert!(first_run.start < 1e-9, "PE {pe} starts at t = 0, not {}", first_run.start);
    }
}
