//! Bit-exactness goldens for the engine kernel.
//!
//! The event-calendar engine core (per-PE incremental ready queues, O(1)
//! next-event peeks, observation memoization) is a pure performance
//! refactor: every observable artifact — the JSONL event stream, the
//! recorded `Trace`, `Metrics`, the battery lifetime report, and the
//! parallel `Sweep` report — must stay **bit-identical** to the stepped
//! rescan engine it replaced. These tests pin FNV-1a digests of those
//! artifacts, for every expressible scheduler spec on 1 and 4 PEs over the
//! paper-scale sweep workload, and for the 10k-node generated sweep across
//! thread counts 1/2/8 (which also proves the report is independent of the
//! worker count).
//!
//! Regenerate the tables after a *deliberate* behaviour change with:
//!
//! ```text
//! BLESS_GOLDENS=1 cargo test -p bas-core --test engine_goldens -- --nocapture
//! ```
//!
//! and audit the diff — a changed digest means scheduler-visible behaviour
//! changed, never "just" performance.

use bas_core::{all_specs, Scenario, Sweep};
use bas_sim::{DeadlineMode, JsonlWriter};
use std::path::Path;

/// FNV-1a 64-bit, folded over every artifact of one run.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn scenario(path: &str) -> Scenario {
    let full = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(path);
    Scenario::load(&full).expect("scenario preset loads")
}

/// Run one spec on the sweep workload and digest JSONL + trace + metrics +
/// battery report.
fn run_digest(sc: &Scenario, spec: bas_core::SchedulerSpec) -> u64 {
    let platform = sc.build_platform().unwrap();
    let seed = Sweep::seed_for(sc.seed, 0);
    let set = sc.trial_set(seed).unwrap();
    let mut battery = sc.build_battery(seed);
    let mut jsonl = JsonlWriter::new(Vec::<u8>::new());
    let outcome = {
        let mut experiment = sc
            .trial_experiment(&set, spec, seed, &platform)
            .trace(true)
            .deadline_mode(DeadlineMode::DropAndCount)
            .observer(&mut jsonl);
        if let Some(cell) = battery.as_mut() {
            experiment = experiment.battery(cell.as_mut());
        }
        experiment.run().expect("golden run succeeds")
    };
    let mut d = Digest::new();
    d.update(&jsonl.into_inner().expect("in-memory sink cannot fail"));
    d.update(format!("{:?}", outcome.metrics).as_bytes());
    d.update(format!("{:?}", outcome.battery).as_bytes());
    if let Some(trace) = &outcome.trace {
        d.update(format!("{:?}", trace).as_bytes());
    }
    d.0
}

fn spec_goldens(pes: usize, golden: &[(&str, u64)]) {
    let mut sc = scenario("scenarios/sweep.toml");
    sc.trials = 1;
    sc.horizon = 60.0;
    sc.pes = pes;
    if sc.processors.len() != pes {
        sc.processors = Vec::new();
    }
    sc.validate().unwrap();
    let bless = std::env::var_os("BLESS_GOLDENS").is_some();
    let mut fresh = Vec::new();
    for spec in all_specs() {
        let label = spec.label();
        let digest = run_digest(&sc, spec);
        if bless {
            println!("    (\"{label}\", 0x{digest:016x}),");
        }
        fresh.push((label, digest));
    }
    if bless {
        return;
    }
    assert_eq!(fresh.len(), golden.len(), "spec grammar changed; re-bless");
    for ((label, digest), (glabel, gdigest)) in fresh.iter().zip(golden) {
        assert_eq!(label, glabel, "spec order changed; re-bless");
        assert_eq!(
            *digest, *gdigest,
            "{label} on {pes} PE(s): artifact stream diverged from the stepped engine \
             (digest 0x{digest:016x}, golden 0x{gdigest:016x})"
        );
    }
}

#[test]
fn all_specs_bit_identical_on_1_pe() {
    spec_goldens(1, GOLDEN_1PE);
}

#[test]
fn all_specs_bit_identical_on_4_pes() {
    spec_goldens(4, GOLDEN_4PE);
}

/// The 10k-node generated sweep must produce one bit-identical report
/// regardless of the worker thread count (and identical to the golden).
#[test]
fn big_dag_sweep_identical_across_threads() {
    let mut sc = scenario("scenarios/big-dag.toml");
    sc.trials = 2;
    sc.horizon = 60_000.0;
    sc.validate().unwrap();
    let bless = std::env::var_os("BLESS_GOLDENS").is_some();
    let mut digests = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut sc = sc.clone();
        sc.threads = threads;
        let report = sc.run_sweep().expect("big-dag sweep runs");
        let mut d = Digest::new();
        d.update(format!("{report:?}").as_bytes());
        digests.push((threads, d.0));
    }
    if bless {
        for (threads, digest) in &digests {
            println!("    ({threads}, 0x{digest:016x}),");
        }
        return;
    }
    for (threads, digest) in &digests {
        assert_eq!(
            *digest, GOLDEN_BIG_DAG,
            "big-dag sweep with {threads} thread(s) diverged (0x{digest:016x})"
        );
    }
}

// ---------------------------------------------------------------------
// Golden tables (regenerate with BLESS_GOLDENS=1, see module docs).
// ---------------------------------------------------------------------

const GOLDEN_BIG_DAG: u64 = 0x598fc472039bf597;

const GOLDEN_1PE: &[(&str, u64)] = &[
    ("noDVS+random/imminent", 0xcb9e2f13e329ba17),
    ("noDVS+random/all", 0xf7e5bbfd556fa1ee),
    ("noDVS+LTF/imminent", 0xb1cdd07ba9f01668),
    ("noDVS+LTF/all", 0xa07d1acaf3a3378a),
    ("noDVS+STF/imminent", 0x5967766110582fc1),
    ("noDVS+STF/all", 0x2edc9e49c9afe730),
    ("noDVS+pUBS/imminent", 0xbecfe144c054c007),
    ("noDVS+pUBS/all", 0xf5dd75f818247776),
    ("ccEDF+random/imminent", 0xbaa9b7fb528a0160),
    ("ccEDF+random/all", 0xfaff28357d37254d),
    ("ccEDF+LTF/imminent", 0xe637f8754cbbfa14),
    ("ccEDF+LTF/all", 0xdcf52e007f2cc2a1),
    ("ccEDF+STF/imminent", 0xf4f9a47eca242fe2),
    ("ccEDF+STF/all", 0x55c1ecac39cd7bc0),
    ("ccEDF+pUBS/imminent", 0x5417d8b43b436ffb),
    ("ccEDF+pUBS/all", 0x761de57e0c9acc26),
    ("laEDF+random/imminent", 0x56ea3fa25741b195),
    ("laEDF+random/all", 0x3b6d72a35dd8661e),
    ("laEDF+LTF/imminent", 0xfb875962435b7d59),
    ("laEDF+LTF/all", 0x12f601d2b05bb4b4),
    ("laEDF+STF/imminent", 0xd4fdba602d8b938c),
    ("laEDF+STF/all", 0x89b3907576ea207c),
    ("laEDF+pUBS/imminent", 0xc64417c9dee42df9),
    ("laEDF+pUBS/all", 0x14a723451a63e0d6),
    ("socEDF+random/imminent", 0x56ea3fa25741b195),
    ("socEDF+random/all", 0x3b6d72a35dd8661e),
    ("socEDF+LTF/imminent", 0xfb875962435b7d59),
    ("socEDF+LTF/all", 0x12f601d2b05bb4b4),
    ("socEDF+STF/imminent", 0xd4fdba602d8b938c),
    ("socEDF+STF/all", 0x89b3907576ea207c),
    ("socEDF+pUBS/imminent", 0xc64417c9dee42df9),
    ("socEDF+pUBS/all", 0x14a723451a63e0d6),
    ("kvEDF+random/imminent", 0x56ea3fa25741b195),
    ("kvEDF+random/all", 0x3b6d72a35dd8661e),
    ("kvEDF+LTF/imminent", 0xfb875962435b7d59),
    ("kvEDF+LTF/all", 0x12f601d2b05bb4b4),
    ("kvEDF+STF/imminent", 0xd4fdba602d8b938c),
    ("kvEDF+STF/all", 0x89b3907576ea207c),
    ("kvEDF+pUBS/imminent", 0xc64417c9dee42df9),
    ("kvEDF+pUBS/all", 0x14a723451a63e0d6),
];

const GOLDEN_4PE: &[(&str, u64)] = &[
    ("noDVS+random/imminent", 0x416c5874d3950a1a),
    ("noDVS+random/all", 0x2d73ad38c10a7845),
    ("noDVS+LTF/imminent", 0x6b35c148a40bd04c),
    ("noDVS+LTF/all", 0x8161f6e272d34f69),
    ("noDVS+STF/imminent", 0xa2b3b99f81f04cbe),
    ("noDVS+STF/all", 0x6ef718b7d9232243),
    ("noDVS+pUBS/imminent", 0xeb6a7c4e5cc0c87d),
    ("noDVS+pUBS/all", 0xc66000fba1a6d536),
    ("ccEDF+random/imminent", 0x913f520ed2ffe6e2),
    ("ccEDF+random/all", 0xfc73f1a088863b83),
    ("ccEDF+LTF/imminent", 0x39814dd91b458c5b),
    ("ccEDF+LTF/all", 0x9f7ccf6346b68e7a),
    ("ccEDF+STF/imminent", 0xc639926f0342a2f4),
    ("ccEDF+STF/all", 0x59eff3a47278344d),
    ("ccEDF+pUBS/imminent", 0x9ad94efe70747e25),
    ("ccEDF+pUBS/all", 0x5cc428105f49aaf7),
    ("laEDF+random/imminent", 0x913f520ed2ffe6e2),
    ("laEDF+random/all", 0xfc73f1a088863b83),
    ("laEDF+LTF/imminent", 0x39814dd91b458c5b),
    ("laEDF+LTF/all", 0x9f7ccf6346b68e7a),
    ("laEDF+STF/imminent", 0xc639926f0342a2f4),
    ("laEDF+STF/all", 0x59eff3a47278344d),
    ("laEDF+pUBS/imminent", 0x9ad94efe70747e25),
    ("laEDF+pUBS/all", 0x5cc428105f49aaf7),
    ("socEDF+random/imminent", 0x913f520ed2ffe6e2),
    ("socEDF+random/all", 0xfc73f1a088863b83),
    ("socEDF+LTF/imminent", 0x39814dd91b458c5b),
    ("socEDF+LTF/all", 0x9f7ccf6346b68e7a),
    ("socEDF+STF/imminent", 0xc639926f0342a2f4),
    ("socEDF+STF/all", 0x59eff3a47278344d),
    ("socEDF+pUBS/imminent", 0x9ad94efe70747e25),
    ("socEDF+pUBS/all", 0x5cc428105f49aaf7),
    ("kvEDF+random/imminent", 0x913f520ed2ffe6e2),
    ("kvEDF+random/all", 0xfc73f1a088863b83),
    ("kvEDF+LTF/imminent", 0x39814dd91b458c5b),
    ("kvEDF+LTF/all", 0x9f7ccf6346b68e7a),
    ("kvEDF+STF/imminent", 0xc639926f0342a2f4),
    ("kvEDF+STF/all", 0x59eff3a47278344d),
    ("kvEDF+pUBS/imminent", 0x9ad94efe70747e25),
    ("kvEDF+pUBS/all", 0x5cc428105f49aaf7),
];
