//! Property tests for the scenario codec: `Scenario ⇄ TOML` round-trips for
//! every kind, with every field randomly perturbed over its valid domain —
//! including every `SchedulerSpec` alias in the lineup vocabulary.

use bas_core::{all_specs, Scenario, ScenarioKind, SchedulerSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every way a scenario file may name a scheduler: the seven paper aliases
/// plus the canonical `governor+priority/scope` label of all 24 specs.
fn spec_vocabulary() -> Vec<String> {
    let mut pool: Vec<String> = ["EDF", "ccEDF", "laEDF", "BAS-1", "BAS-2", "BAS-1cc", "BAS-2cc"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    pool.extend(all_specs().iter().map(|s| s.to_string()));
    pool
}

/// Randomize one field of `s` over its valid domain.
fn randomize_field(s: &mut Scenario, field: &str, rng: &mut StdRng) {
    let pick = |rng: &mut StdRng, options: &[&str]| -> String {
        options[rng.gen_range(0..options.len())].to_string()
    };
    match field {
        "trials" => s.trials = rng.gen_range(1..500usize),
        "seed" => s.seed = rng.gen_range(0..u64::MAX / 4),
        "threads" => s.threads = rng.gen_range(0..32usize),
        "graphs" => s.graphs = rng.gen_range(1..9usize),
        "util" => s.util = rng.gen_range(0.05..=1.0),
        "horizon" => s.horizon = rng.gen_range(1.0..1e7),
        "specs" => {
            let mut pool = spec_vocabulary();
            if s.kind == ScenarioKind::Portfolio {
                // Portfolio lineups also admit `all` and grammar globs.
                pool.extend(["all", "laEDF+*/*", "*+pUBS/all", "kvEDF+?TF/*"].map(String::from));
            }
            let n = rng.gen_range(1..6usize);
            s.specs = (0..n).map(|_| pool[rng.gen_range(0..pool.len())].clone()).collect();
        }
        "axes" => {
            // Any non-empty subset of the always-valid axes, in a stable
            // order, so a later `battery = "none"` draw stays consistent.
            let pool = ["energy_j", "deadline_misses", "makespan", "charge_c"];
            let mut axes: Vec<String> =
                pool.iter().filter(|_| rng.gen_bool(0.5)).map(|s| s.to_string()).collect();
            if axes.is_empty() {
                axes.push("energy_j".to_string());
            }
            s.axes = axes;
            if s.reference.len() != s.axes.len() {
                s.reference = Vec::new();
            }
        }
        "reference" => {
            s.reference = if rng.gen_bool(0.5) {
                Vec::new()
            } else {
                (0..s.axes.len()).map(|_| rng.gen_range(0.1..1e6)).collect()
            };
        }
        "workload" => s.workload = pick(rng, &["paper", "unit"]),
        "generator" => s.generator = pick(rng, &["none", "layered", "fork-join", "random"]),
        "nodes" => {
            // Only serialized while a generator is active (`generator` is
            // randomized before `nodes` in field order).
            if s.generator != "none" {
                s.nodes = rng.gen_range(1..20_000usize);
            }
        }
        "latency" => s.latency = rng.gen_range(0.0..0.01),
        "bandwidth" => s.bandwidth = rng.gen_range(0.0..1e9),
        "mapper" => s.mapper = pick(rng, &["weighted", "hetero"]),
        "processor" => s.processor = pick(rng, bas_cpu::presets::NAMES),
        "battery" => {
            let mut names: Vec<&str> = bas_battery::registry::NAMES.to_vec();
            if s.kind != ScenarioKind::Table2 {
                names.push("none");
            }
            s.battery = pick(rng, &names);
        }
        "sampler" => s.sampler = pick(rng, &["iid", "persistent"]).parse().unwrap(),
        "freq" => s.freq = pick(rng, &["interp", "roundup"]).parse().unwrap(),
        "shape" => s.shape = pick(rng, &["layered", "fifo", "independent"]),
        "governor" => s.governor = pick(rng, &["ccedf", "laedf"]),
        "noise" => s.noise = rng.gen_range(0.0..0.99),
        "max_graphs" => s.max_graphs = rng.gen_range(1..12usize),
        "horizon_periods" => s.horizon_periods = rng.gen_range(0.5..20.0),
        "points" => s.points = rng.gen_range(2..30usize),
        "lo" => s.lo = rng.gen_range(1e-3..1.0),
        "hi" => s.hi = s.lo + rng.gen_range(0.1..50.0),
        "pes" => s.pes = rng.gen_range(1..5usize),
        "processors" => {
            // Either shared (empty) or one preset per PE (`pes` is
            // randomized before `processors` in field order).
            s.processors = if rng.gen_bool(0.5) {
                Vec::new()
            } else {
                (0..s.pes).map(|_| pick(rng, bas_cpu::presets::NAMES)).collect()
            };
        }
        other => panic!("test does not know how to randomize field {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_valid_scenario_round_trips_through_toml(
        kind_ix in 0usize..ScenarioKind::ALL.len(),
        seed in 0u64..u64::MAX / 2,
    ) {
        let kind = ScenarioKind::ALL[kind_ix];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scenario = Scenario::preset(kind);
        // `hi` depends on `lo`, so randomize in declaration order.
        for field in kind.fields() {
            if rng.gen_bool(0.7) {
                randomize_field(&mut scenario, field, &mut rng);
            }
        }
        scenario.validate().expect("randomized scenario stays valid");
        let text = scenario.to_toml();
        let parsed = Scenario::from_toml(&text)
            .unwrap_or_else(|e| panic!("{kind}: {e}\n{text}"));
        prop_assert_eq!(parsed, scenario, "kind {} did not round-trip:\n{}", kind, text);
    }

    #[test]
    fn every_spec_alias_survives_a_lineup_round_trip(ix in 0usize..31) {
        // One lineup containing the chosen vocabulary entry round-trips with
        // the label preserved verbatim.
        let pool = spec_vocabulary();
        let label = &pool[ix % pool.len()];
        let mut scenario = Scenario::preset(ScenarioKind::Sweep);
        scenario.specs = vec![label.clone()];
        let parsed = Scenario::from_toml(&scenario.to_toml()).unwrap();
        prop_assert_eq!(&parsed.specs, &scenario.specs);
        let specs = parsed.parsed_specs().unwrap();
        prop_assert_eq!(&specs[0].0, label);
        prop_assert_eq!(specs[0].1, label.parse::<SchedulerSpec>().unwrap());
    }
}

#[test]
fn awkward_names_round_trip() {
    for name in ["plain", "with \"quotes\"", "back\\slash", "täsk-βeta", "tab\there"] {
        let mut scenario = Scenario::preset(ScenarioKind::Fig4);
        scenario.name = name.to_string();
        let parsed = Scenario::from_toml(&scenario.to_toml()).unwrap();
        assert_eq!(parsed.name, name);
    }
}
