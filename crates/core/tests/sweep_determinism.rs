//! Property test pinning the determinism claim of the parallel sweep
//! layer: a [`Sweep`]'s results — every per-seed [`TrialRecord`] metric
//! and every [`Summary`] — are **bit-identical** across worker-thread
//! counts. Parallelism must stay a pure wall-clock optimization.

use bas_core::{Scenario, ScenarioKind, SchedulerSpec, Sweep, SweepReport};
use bas_cpu::presets::unit_processor;
use bas_taskgraph::{GeneratorConfig, GraphShape, TaskSetConfig};
use proptest::prelude::*;

fn workload(graphs: usize, util: f64) -> TaskSetConfig {
    TaskSetConfig {
        graphs,
        graph: GeneratorConfig {
            nodes: (2, 8),
            wcet: (5, 60),
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.3 },
        },
        utilization: util,
        fmax: 1.0,
        period_quantum: None,
    }
}

fn run_sweep(
    base_seed: u64,
    trials: usize,
    graphs: usize,
    util: f64,
    threads: usize,
) -> SweepReport {
    let proc = unit_processor();
    Sweep::over_seeds(base_seed, trials)
        .specs(SchedulerSpec::table2_lineup())
        .workload(workload(graphs, util))
        .processor(&proc)
        .horizon(150.0)
        .threads(threads)
        .run()
        .expect("sweep must succeed for every thread count")
}

/// Exact comparison of every number in the report, with f64s compared by
/// bit pattern so `-0.0 != 0.0` and NaNs cannot hide behind `PartialEq`.
fn assert_bit_identical(a: &SweepReport, b: &SweepReport, what: &str) {
    assert_eq!(a.base_seed, b.base_seed, "{what}: base_seed");
    assert_eq!(a.trials, b.trials, "{what}: trials");
    assert_eq!(a.specs.len(), b.specs.len(), "{what}: spec count");
    let bits = |x: f64| x.to_bits();
    for (sa, sb) in a.specs.iter().zip(&b.specs) {
        assert_eq!(sa.label, sb.label, "{what}: label");
        assert_eq!(sa.trials.len(), sb.trials.len(), "{what}/{}: trials", sa.label);
        for (ta, tb) in sa.trials.iter().zip(&sb.trials) {
            assert_eq!(ta.seed, tb.seed, "{what}/{}: seed", sa.label);
            assert_eq!(bits(ta.energy), bits(tb.energy), "{what}/{}: energy", sa.label);
            assert_eq!(bits(ta.charge), bits(tb.charge), "{what}/{}: charge", sa.label);
            assert_eq!(ta.deadline_misses, tb.deadline_misses, "{what}/{}", sa.label);
            assert_eq!(ta.instances_completed, tb.instances_completed, "{what}/{}", sa.label);
            assert_eq!(
                ta.lifetime.map(bits),
                tb.lifetime.map(bits),
                "{what}/{}: lifetime",
                sa.label
            );
        }
        for (na, nb) in [(&sa.energy, &sb.energy), (&sa.charge, &sb.charge)] {
            assert_eq!(na.n, nb.n, "{what}/{}: summary n", sa.label);
            assert_eq!(bits(na.mean), bits(nb.mean), "{what}/{}: mean", sa.label);
            assert_eq!(bits(na.std), bits(nb.std), "{what}/{}: std", sa.label);
            assert_eq!(bits(na.min), bits(nb.min), "{what}/{}: min", sa.label);
            assert_eq!(bits(na.max), bits(nb.max), "{what}/{}: max", sa.label);
            assert_eq!(bits(na.p50), bits(nb.p50), "{what}/{}: p50", sa.label);
            assert_eq!(bits(na.p95), bits(nb.p95), "{what}/{}: p95", sa.label);
        }
    }
    // Belt and braces: the derived PartialEq must agree with the field walk.
    assert_eq!(a, b, "{what}: full report");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sweep_reports_are_bit_identical_across_thread_counts(
        base_seed in 0u64..10_000,
        trials in 3usize..9,
        graphs in 1usize..4,
        util in 0.3f64..0.85,
    ) {
        let sequential = run_sweep(base_seed, trials, graphs, util, 1);
        for threads in [2, 8] {
            let parallel = run_sweep(base_seed, trials, graphs, util, threads);
            assert_bit_identical(&sequential, &parallel, &format!("threads={threads}"));
        }
    }
}

/// The fixed smoke-scenario shape of the claim, pinned outside proptest so
/// a regression names the exact configuration that diverged.
#[test]
fn fixed_scenario_is_thread_count_invariant() {
    let sequential = run_sweep(1, 6, 4, 0.7, 1);
    for threads in [2, 8] {
        assert_bit_identical(
            &sequential,
            &run_sweep(1, 6, 4, 0.7, threads),
            &format!("threads={threads}"),
        );
    }
}

/// The claim at workload scale: a sweep whose trials each rebuild a
/// generated 10,000-node layered DAG (the `[workload]` generator path,
/// per-trial seeded through `Sweep`'s workload factory) stays bit-identical
/// across thread counts 1 / 2 / 8.
#[test]
fn generated_10k_node_sweep_is_thread_count_invariant() {
    let mut scenario = Scenario::preset(ScenarioKind::Sweep);
    for (key, value) in [
        ("generator", "layered"),
        ("nodes", "10000"),
        ("trials", "2"),
        ("specs", "EDF,BAS-2"),
        ("workload", "unit"),
        ("processor", "unit"),
        ("battery", "none"),
        // Half a period: enough simulated time to schedule thousands of
        // nodes per trial without completing the ~785k-second instance.
        ("horizon", "400000"),
    ] {
        scenario.set(key, value).unwrap();
    }
    scenario.set("threads", "1").unwrap();
    let sequential = scenario.run_sweep().expect("10k-node sweep runs");
    for threads in [2, 8] {
        scenario.set("threads", &threads.to_string()).unwrap();
        let parallel = scenario.run_sweep().expect("10k-node sweep runs");
        assert_bit_identical(&sequential, &parallel, &format!("10k threads={threads}"));
    }
}
