//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no registry access, so this crate implements
//! just enough of proptest's API for the workspace's property tests to
//! compile and run: the [`proptest!`] macro (with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), [`Strategy`] with
//! `prop_map`, range and tuple strategies, `Just`, `prop_oneof!`,
//! `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test RNG (derived from the test name), there is **no shrinking** on
//! failure, and no persisted regression files. A failing case panics with
//! the drawn inputs' debug representation where available.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error type carried by `prop_assert!` failures inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset: number of cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is run with.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values of an associated type.
///
/// Upstream proptest separates strategies from value trees (for shrinking);
/// this stand-in generates values directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (type erasure, used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe helper behind [`BoxedStrategy`].
trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value (clone per case).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Union of same-valued strategies, chosen uniformly (see [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from boxed arms. Panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// `prop::` namespace mirror.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{StdRngAlias, Strategy};
        use rand::Rng;

        /// Strategy for `Vec`s with element strategy `S` and a length range.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// `vec(element, len_range)` — upstream signature subset.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "vec(): empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRngAlias) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

// Internal alias so the `prop` module can name the RNG without a public dep.
use rand::rngs::StdRng as StdRngAlias;

/// Derive a stable per-test seed from the test's module path and name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Run `cases` iterations of a property body with a deterministic RNG.
///
/// This is the engine behind the [`proptest!`] macro; it is public so the
/// macro can expand to calls into it.
pub fn run_property<F>(name: &str, cases: u32, mut body: F)
where
    F: FnMut(&mut StdRng, u32) -> TestCaseResult,
{
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    for case in 0..cases {
        if let Err(e) = body(&mut rng, case) {
            panic!("property '{name}' failed at case {case}: {e}");
        }
    }
}

/// The proptest entry-point macro (subset).
///
/// Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code, unused_mut)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    config.cases,
                    |prop_rng, _case| {
                        $(
                            let $arg = $crate::Strategy::generate(&($strat), prop_rng);
                        )+
                        let mut run = || -> $crate::TestCaseResult { $body Ok(()) };
                        run()
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{
        let cond: bool = $cond;
        if !cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    }};
    ($cond:expr, $($fmt:tt)*) => {{
        let cond: bool = $cond;
        if !cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// `prop_assert_eq!(a, b)` / with trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                a,
                b,
                format!($($fmt)*)
            )));
        }
    }};
}

/// `prop_oneof![s1, s2, ...]` — uniform choice among strategies of one
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, f64)> {
        (1u64..100, 0.5f64..2.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3u64..10,
            y in 0.25f64..0.75,
            n in 2usize..=5,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((2..=5).contains(&n));
        }

        #[test]
        fn maps_and_tuples_compose(
            p in arb_pair().prop_map(|(a, b)| a as f64 * b),
        ) {
            prop_assert!(p > 0.0, "got {p}");
        }

        #[test]
        fn oneof_and_vec_work(
            choice in prop_oneof![Just(1u8), Just(2u8)],
            xs in prop::collection::vec(0.0f64..5.0, 1..10),
        ) {
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| (0.0..5.0).contains(&x)));
        }

        #[test]
        fn early_ok_return_is_allowed(a in 0u64..10) {
            if a > 100 {
                return Ok(());
            }
            prop_assert_eq!(a, a);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        crate::run_property("always-fails", 5, |_rng, _case| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn deterministic_per_test_seed() {
        assert_eq!(crate::seed_for("a::b"), crate::seed_for("a::b"));
        assert_ne!(crate::seed_for("a::b"), crate::seed_for("a::c"));
    }
}
