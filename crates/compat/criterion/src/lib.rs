//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no registry access, so this crate provides an
//! API-compatible miniature benchmark harness: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis it runs a short calibrated
//! loop and prints mean wall-clock time per iteration — enough to compare
//! hot paths locally and to keep `cargo build --benches` honest in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (departed to `std::hint`).
pub use std::hint::black_box;

/// How per-iteration setup output is batched (subset; sizes only steer the
/// batch count upstream, which this stand-in does not need).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    /// Measured mean time per iteration, filled by `iter*`.
    elapsed: Duration,
    iters: u64,
}

/// Target wall-clock budget per benchmark (keeps `cargo bench` quick).
const BUDGET: Duration = Duration::from_millis(300);

impl Bencher {
    fn new() -> Self {
        Bencher { elapsed: Duration::ZERO, iters: 0 }
    }

    /// Time `routine` over a calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: run once to estimate cost, then fill the budget.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = t0.elapsed();
        self.iters = iters;
    }

    /// Time `routine` with a fresh `setup()` input per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let iters = (BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
        }
        self.elapsed = total;
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:50} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let (value, unit) = if per_iter >= 1e9 {
            (per_iter / 1e9, "s")
        } else if per_iter >= 1e6 {
            (per_iter / 1e6, "ms")
        } else if per_iter >= 1e3 {
            (per_iter / 1e3, "µs")
        } else {
            (per_iter, "ns")
        };
        println!("{name:50} {value:10.3} {unit}/iter  ({} iters)", self.iters);
    }
}

/// A named group of benchmarks (prefixes its members' names).
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: R) {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(full, f);
    }

    /// Upstream requires an explicit finish; a no-op here.
    pub fn finish(self) {}
}

/// The benchmark context (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: R,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }
}

/// Declare a group of benchmark functions, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $cfg;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, quick);

    #[test]
    fn group_macro_produces_callable() {
        benches();
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new();
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters >= 1);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.bench_function("x", |b| b.iter(|| 2 * 2));
        g.finish();
    }
}
