//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small, self-contained implementation of the `rand 0.8` API surface it
//! needs: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `partial_shuffle`, `choose`).
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — not the
//! ChaCha12 core of upstream `StdRng`, so absolute random streams differ
//! from upstream `rand`, but every property the workspace relies on holds:
//! deterministic seeding, independent streams per seed, and uniform draws.
//! All experiment reproducibility statements are relative to this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seedable random number generator (the subset of `rand::SeedableRng`
/// used here: construction from a `u64`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator's next output(s).
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The object-safe core: one 64-bit output per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Integer types [`Rng::gen_range`] can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. `hi > lo` is the caller's contract.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo + uniform_u128(rng, span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo + uniform_u128(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform integer in `[0, span)` by rejection on the top bits.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span fits in u64 for every type above (i128 span of u64 range still
    // fits in u128; handle the generic u128 path with two words).
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    } else {
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if v < u128::MAX - (u128::MAX % span) {
                return v % span;
            }
        }
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f64::draw(rng);
        lo + u * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        // 53-bit grid over [0, 1]; endpoints reachable.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
}

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of type `T` (uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from `range` (`a..b` half-open, `a..=b` inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: **xoshiro256++**
    /// seeded via SplitMix64. (Upstream `rand`'s `StdRng` is ChaCha12; the
    /// streams differ but the deterministic-seeding contract is the same.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Shuffle the first `amount` elements into place; returns
        /// `(shuffled, rest)` exactly like upstream.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let j = rng.gen_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn float_draws_are_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
            let f = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_inclusive_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_splits_at_amount() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..10).collect();
        let (head, tail) = v.partial_shuffle(&mut rng, 4);
        assert_eq!(head.len(), 4);
        assert_eq!(tail.len(), 6);
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(8);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut rng), Some(&42));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }
}
