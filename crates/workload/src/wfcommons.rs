//! WfCommons workflow-instance import.
//!
//! [WfCommons](https://wfcommons.org) publishes execution traces of real
//! scientific workflows (Montage, Epigenomics, 1000-genome…) in a common
//! JSON format; the same shape is emitted by Pegasus and WRENCH tooling.
//! The subset consumed here is the task list of the `workflow` object:
//!
//! ```json
//! {
//!   "name": "montage",
//!   "workflow": {
//!     "tasks": [
//!       {"name": "mProject_1", "runtime": 12.0,
//!        "parents": [], "children": ["mDiffFit_12"],
//!        "files": [{"link": "output", "name": "p1.fits", "sizeInBytes": 4194304}]},
//!       ...
//!     ]
//!   }
//! }
//! ```
//!
//! Mapping onto the scheduling model:
//!
//! * **runtime → WCET cycles.** Trace runtimes are seconds on some
//!   reference machine; multiplying by [`ImportConfig::ref_speed`]
//!   (cycles/second) and rounding up yields the node's worst-case cycle
//!   demand. Every node gets at least one cycle.
//! * **files → edge payloads.** A DAG edge `p → c` carries the summed
//!   `sizeInBytes` of the files `p` produces (`"link": "output"`) and `c`
//!   consumes (`"link": "input"`), matched by file name. When the two
//!   endpoints are mapped to different PEs, the simulator charges the
//!   platform interconnect's transfer time for exactly these bytes.
//!
//! Format tolerance, matching what's found in the published instances: the
//! task list may be keyed `tasks` or `jobs`; runtimes may be keyed
//! `runtime` or `runtimeInSeconds`; file sizes `sizeInBytes` or `size`;
//! dependencies may come from `parents`, `children`, or both (the union is
//! taken, so redundant listings are fine).

use crate::error::WorkloadError;
use crate::json::{self, Json};
use bas_taskgraph::{Cycles, NodeId, PeriodicTaskGraph, TaskGraph, TaskGraphBuilder};
use std::collections::{BTreeSet, HashMap};

/// Knobs for translating a workflow instance into a task graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportConfig {
    /// Reference machine speed in cycles per second: a task that ran
    /// `r` seconds becomes `ceil(r · ref_speed)` WCET cycles (min 1).
    pub ref_speed: f64,
}

impl Default for ImportConfig {
    /// 1 GHz — runtimes in seconds become cycles at the paper processor's
    /// peak frequency.
    fn default() -> Self {
        ImportConfig { ref_speed: 1e9 }
    }
}

/// A successfully imported workflow.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowImport {
    /// Workflow name (top-level `name`, falling back to `"workflow"`).
    pub name: String,
    /// The imported DAG: WCETs in cycles, edge payloads in bytes.
    pub graph: TaskGraph,
}

impl WorkflowImport {
    /// Wrap the DAG in a periodic envelope sized for a target worst-case
    /// utilization on a `fmax`-cycles/sec processor: the period is
    /// `total WCET / (utilization · fmax)`, widened if necessary so the
    /// critical path fits in one period (structural feasibility).
    pub fn into_periodic(
        self,
        utilization: f64,
        fmax: f64,
    ) -> Result<PeriodicTaskGraph, WorkloadError> {
        periodic_envelope(self.graph, utilization, fmax)
    }
}

/// Shared periodic-envelope construction (import and generation paths).
pub fn periodic_envelope(
    graph: TaskGraph,
    utilization: f64,
    fmax: f64,
) -> Result<PeriodicTaskGraph, WorkloadError> {
    if !(utilization > 0.0 && utilization <= 1.0) {
        return Err(WorkloadError::Schema(format!("utilization {utilization} outside (0, 1]")));
    }
    if !(fmax.is_finite() && fmax > 0.0) {
        return Err(WorkloadError::Schema(format!("fmax {fmax} must be finite and positive")));
    }
    let period =
        (graph.total_wcet() as f64 / (utilization * fmax)).max(graph.critical_path() as f64 / fmax);
    Ok(PeriodicTaskGraph::new(graph, period)?)
}

/// One task as read from the instance, before graph construction.
struct RawTask {
    name: String,
    wcet: Cycles,
    /// Names of declared predecessor tasks.
    parents: Vec<String>,
    /// Names of declared successor tasks.
    children: Vec<String>,
    /// `(file name, bytes)` this task produces.
    outputs: Vec<(String, u64)>,
    /// File names this task consumes.
    inputs: Vec<String>,
}

/// Import a WfCommons JSON instance into a weighted task graph.
pub fn import_str(input: &str, cfg: &ImportConfig) -> Result<WorkflowImport, WorkloadError> {
    if !(cfg.ref_speed.is_finite() && cfg.ref_speed > 0.0) {
        return Err(WorkloadError::Schema(format!(
            "ref_speed {} must be finite and positive",
            cfg.ref_speed
        )));
    }
    let doc = json::parse(input).map_err(WorkloadError::Json)?;
    let name = doc.get("name").and_then(Json::as_str).unwrap_or("workflow").to_string();
    let workflow = doc
        .get("workflow")
        .ok_or_else(|| WorkloadError::Schema("missing top-level `workflow` object".into()))?;
    let tasks = workflow
        .get("tasks")
        .or_else(|| workflow.get("jobs"))
        .and_then(Json::as_array)
        .ok_or_else(|| WorkloadError::Schema("`workflow.tasks` (or `.jobs`) missing".into()))?;
    if tasks.is_empty() {
        return Err(WorkloadError::Schema("workflow has no tasks".into()));
    }

    let mut raw: Vec<RawTask> = Vec::with_capacity(tasks.len());
    let mut index: HashMap<String, usize> = HashMap::with_capacity(tasks.len());
    for (i, task) in tasks.iter().enumerate() {
        let t = parse_task(task, i, cfg.ref_speed)?;
        if index.insert(t.name.clone(), i).is_some() {
            return Err(WorkloadError::Schema(format!("duplicate task name {:?}", t.name)));
        }
        raw.push(t);
    }

    // Dependency edges: union of every `parents` and `children` listing.
    let mut edge_set: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (i, t) in raw.iter().enumerate() {
        for p in &t.parents {
            let &pi = index.get(p).ok_or_else(|| {
                WorkloadError::Schema(format!("task {:?} lists unknown parent {p:?}", t.name))
            })?;
            edge_set.insert((pi, i));
        }
        for c in &t.children {
            let &ci = index.get(c).ok_or_else(|| {
                WorkloadError::Schema(format!("task {:?} lists unknown child {c:?}", t.name))
            })?;
            edge_set.insert((i, ci));
        }
    }

    let mut b = TaskGraphBuilder::with_capacity(name.clone(), raw.len(), edge_set.len());
    for t in &raw {
        b.add_node(t.name.clone(), t.wcet);
    }
    for &(pi, ci) in &edge_set {
        // Payload: bytes the producer outputs that the consumer inputs.
        let consumer_inputs: &[String] = &raw[ci].inputs;
        let bytes: u64 = raw[pi]
            .outputs
            .iter()
            .filter(|(f, _)| consumer_inputs.iter().any(|g| g == f))
            .map(|&(_, size)| size)
            .sum();
        b.add_edge_weighted(NodeId::from_index(pi), NodeId::from_index(ci), bytes)?;
    }
    Ok(WorkflowImport { name, graph: b.build()? })
}

fn parse_task(task: &Json, i: usize, ref_speed: f64) -> Result<RawTask, WorkloadError> {
    let at = |what: &str| format!("task #{i}: {what}");
    let name = task
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| WorkloadError::Schema(at("missing string `name`")))?
        .to_string();
    let runtime = task
        .get("runtime")
        .or_else(|| task.get("runtimeInSeconds"))
        .and_then(Json::as_f64)
        .ok_or_else(|| {
            WorkloadError::Schema(format!(
                "task {name:?}: missing numeric `runtime` (or `runtimeInSeconds`)"
            ))
        })?;
    if !(runtime.is_finite() && runtime >= 0.0) {
        return Err(WorkloadError::Schema(format!("task {name:?}: bad runtime {runtime}")));
    }
    // Every node needs at least one cycle of demand (a zero-WCET node
    // would never be schedulable work).
    let wcet = ((runtime * ref_speed).ceil() as Cycles).max(1);

    let names_of = |key: &str| -> Result<Vec<String>, WorkloadError> {
        match task.get(key) {
            None | Some(Json::Null) => Ok(Vec::new()),
            Some(v) => v
                .as_array()
                .ok_or_else(|| {
                    WorkloadError::Schema(format!("task {name:?}: `{key}` not an array"))
                })?
                .iter()
                .map(|item| {
                    item.as_str().map(str::to_string).ok_or_else(|| {
                        WorkloadError::Schema(format!(
                            "task {name:?}: `{key}` entries must be task-name strings"
                        ))
                    })
                })
                .collect(),
        }
    };
    let parents = names_of("parents")?;
    let children = names_of("children")?;

    let mut outputs = Vec::new();
    let mut inputs = Vec::new();
    if let Some(files) = task.get("files") {
        let files = files
            .as_array()
            .ok_or_else(|| WorkloadError::Schema(format!("task {name:?}: `files` not an array")))?;
        for file in files {
            let link = file.get("link").and_then(Json::as_str).ok_or_else(|| {
                WorkloadError::Schema(format!("task {name:?}: file entry missing `link`"))
            })?;
            let fname = file.get("name").and_then(Json::as_str).ok_or_else(|| {
                WorkloadError::Schema(format!("task {name:?}: file entry missing `name`"))
            })?;
            // Size is optional in older instances; a missing size means the
            // edge carries no accountable payload.
            let size = file
                .get("sizeInBytes")
                .or_else(|| file.get("size"))
                .map(|v| {
                    v.as_u64().ok_or_else(|| {
                        WorkloadError::Schema(format!(
                            "task {name:?}: file {fname:?} has a non-integer size"
                        ))
                    })
                })
                .transpose()?
                .unwrap_or(0);
            match link {
                "output" => outputs.push((fname.to_string(), size)),
                "input" => inputs.push(fname.to_string()),
                other => {
                    return Err(WorkloadError::Schema(format!(
                        "task {name:?}: file {fname:?} has unknown link {other:?}"
                    )))
                }
            }
        }
    }
    Ok(RawTask { name, wcet, parents, children, outputs, inputs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond_json() -> &'static str {
        r#"{
          "name": "d",
          "workflow": {"tasks": [
            {"name": "a", "runtime": 1.0, "children": ["b", "c"],
             "files": [{"link": "output", "name": "x", "sizeInBytes": 100},
                       {"link": "output", "name": "y", "sizeInBytes": 7}]},
            {"name": "b", "runtime": 2.0, "parents": ["a"],
             "files": [{"link": "input", "name": "x", "sizeInBytes": 100},
                       {"link": "output", "name": "z", "sizeInBytes": 50}]},
            {"name": "c", "runtime": 0.5, "parents": ["a"],
             "files": [{"link": "input", "name": "y", "sizeInBytes": 7}]},
            {"name": "e", "runtime": 1.0, "parents": ["b", "c"],
             "files": [{"link": "input", "name": "z", "sizeInBytes": 50}]}
          ]}
        }"#
    }

    #[test]
    fn diamond_imports_with_payloads() {
        let wf = import_str(diamond_json(), &ImportConfig { ref_speed: 10.0 }).unwrap();
        let g = &wf.graph;
        assert_eq!(wf.name, "d");
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        let id = |i| NodeId::from_index(i);
        assert_eq!(g.wcet(id(0)), 10);
        assert_eq!(g.wcet(id(1)), 20);
        assert_eq!(g.wcet(id(2)), 5);
        assert_eq!(g.edge_bytes(id(0), id(1)), Some(100));
        assert_eq!(g.edge_bytes(id(0), id(2)), Some(7));
        assert_eq!(g.edge_bytes(id(1), id(3)), Some(50));
        assert_eq!(g.edge_bytes(id(2), id(3)), Some(0), "no shared file on c->e");
        assert_eq!(g.total_edge_bytes(), 157);
    }

    #[test]
    fn redundant_parent_and_child_listings_collapse_to_one_edge() {
        let wf = import_str(
            r#"{"workflow": {"jobs": [
                {"name": "a", "runtime": 1, "children": ["b"]},
                {"name": "b", "runtimeInSeconds": 1, "parents": ["a"]}
            ]}}"#,
            &ImportConfig::default(),
        )
        .unwrap();
        assert_eq!(wf.name, "workflow");
        assert_eq!(wf.graph.edge_count(), 1);
    }

    #[test]
    fn sub_cycle_runtimes_round_up_to_one_cycle() {
        let wf = import_str(
            r#"{"workflow": {"tasks": [{"name": "a", "runtime": 0.25}]}}"#,
            &ImportConfig { ref_speed: 1.0 },
        )
        .unwrap();
        assert_eq!(wf.graph.wcet(NodeId::from_index(0)), 1);
    }

    #[test]
    fn periodic_envelope_respects_the_critical_path() {
        let wf = import_str(diamond_json(), &ImportConfig { ref_speed: 10.0 }).unwrap();
        // Total = 45 cycles, critical path a->b->e = 40 cycles: at u = 1
        // the utilization period (45/fmax) already covers the critical
        // path (40/fmax) on both machines.
        let pg = wf.clone().into_periodic(1.0, 10.0).unwrap();
        assert!((pg.period() - 4.5).abs() < 1e-12);
        let pg = wf.into_periodic(1.0, 1.0).unwrap();
        assert!((pg.period() - 45.0).abs() < 1e-12);
    }

    #[test]
    fn bad_instances_are_rejected_with_reasons() {
        let cfg = ImportConfig::default();
        for (input, needle) in [
            ("{}", "missing top-level `workflow`"),
            (r#"{"workflow": {}}"#, "`workflow.tasks`"),
            (r#"{"workflow": {"tasks": []}}"#, "no tasks"),
            (r#"{"workflow": {"tasks": [{"runtime": 1}]}}"#, "missing string `name`"),
            (r#"{"workflow": {"tasks": [{"name": "a"}]}}"#, "missing numeric `runtime`"),
            (r#"{"workflow": {"tasks": [{"name": "a", "runtime": -1}]}}"#, "bad runtime"),
            (
                r#"{"workflow": {"tasks": [{"name": "a", "runtime": 1},
                                            {"name": "a", "runtime": 1}]}}"#,
                "duplicate task name",
            ),
            (
                r#"{"workflow": {"tasks": [{"name": "a", "runtime": 1, "parents": ["ghost"]}]}}"#,
                "unknown parent",
            ),
            (
                r#"{"workflow": {"tasks": [{"name": "a", "runtime": 1,
                    "files": [{"link": "sideways", "name": "x"}]}]}}"#,
                "unknown link",
            ),
        ] {
            let e = import_str(input, &cfg).unwrap_err();
            assert!(e.to_string().contains(needle), "{input:?} -> {e}");
        }
    }

    #[test]
    fn dependency_cycles_surface_as_graph_errors() {
        let e = import_str(
            r#"{"workflow": {"tasks": [
                {"name": "a", "runtime": 1, "parents": ["b"]},
                {"name": "b", "runtime": 1, "parents": ["a"]}
            ]}}"#,
            &ImportConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(e, WorkloadError::Graph(_)), "{e}");
    }
}
