//! Deterministic big-DAG generators.
//!
//! `bas-taskgraph`'s generator reproduces the paper's TGFF sweep — graphs
//! of 5–15 nodes. This module targets the opposite regime: synthetic DAGs
//! of 10³–10⁴ nodes for stress-testing the engine's scheduling paths, the
//! mappers' load balancing, and the interconnect accounting at scale.
//! Three structural families, all **O(n) edges** so 10k-node graphs build
//! in milliseconds:
//!
//! * [`Family::Layered`] — nodes split into `⌈√n⌉` contiguous ranks; each
//!   non-first-rank node draws 1–3 distinct parents from the previous
//!   rank. The workhorse wide-DAG shape (BLAS-like wavefronts).
//! * [`Family::ForkJoin`] — alternating fork/join blocks of width 2–8
//!   threaded on a spine, the classic parallel-loop skeleton (every
//!   OpenMP/Cilk program's shadow).
//! * [`Family::Random`] — growing-network DAG: node `i` attaches to 1–3
//!   distinct uniformly-drawn earlier nodes, giving heavy-tailed
//!   out-degrees (preferential-attachment-ish without the bookkeeping).
//!
//! Node WCETs and edge payloads are drawn uniformly from configured
//! ranges. Everything is a pure function of [`BigDagConfig`] — same
//! config, same graph, bit for bit — which the scenario digest and the
//! sweep's cross-thread determinism guarantees rely on.

use crate::error::WorkloadError;
use bas_taskgraph::{Cycles, NodeId, TaskGraph, TaskGraphBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::str::FromStr;

/// Structural family of a generated big DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// `⌈√n⌉` ranks, 1–3 parents per node from the previous rank.
    Layered,
    /// Fork/join blocks of width 2–8 on a serial spine.
    ForkJoin,
    /// Growing-network DAG: 1–3 uniformly-drawn earlier parents.
    Random,
}

impl Family {
    /// All families, in canonical order (CLI listings, scenario docs).
    pub const ALL: &'static [Family] = &[Family::Layered, Family::ForkJoin, Family::Random];

    /// Canonical lowercase name (accepted back by [`FromStr`]).
    pub fn name(self) -> &'static str {
        match self {
            Family::Layered => "layered",
            Family::ForkJoin => "fork-join",
            Family::Random => "random",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The string did not name a generator family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFamilyError(pub String);

impl fmt::Display for ParseFamilyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown DAG family {:?} (expected layered, fork-join or random)", self.0)
    }
}

impl std::error::Error for ParseFamilyError {}

impl FromStr for Family {
    type Err = ParseFamilyError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "layered" => Ok(Family::Layered),
            "fork-join" | "forkjoin" => Ok(Family::ForkJoin),
            "random" => Ok(Family::Random),
            other => Err(ParseFamilyError(other.to_string())),
        }
    }
}

/// Parameters for one generated big DAG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BigDagConfig {
    /// Structural family.
    pub family: Family,
    /// Exact node count (≥ 1).
    pub nodes: usize,
    /// Generator seed: same seed, same graph, bit for bit.
    pub seed: u64,
    /// Inclusive per-node WCET range in cycles, drawn uniformly.
    pub wcet: (Cycles, Cycles),
    /// Inclusive per-edge payload range in bytes, drawn uniformly.
    pub payload: (u64, u64),
}

impl Default for BigDagConfig {
    /// 1000-node layered graph with the paper's WCET scale and 4 KiB–1 MiB
    /// edge payloads.
    fn default() -> Self {
        BigDagConfig {
            family: Family::Layered,
            nodes: 1000,
            seed: 42,
            wcet: (10, 100),
            payload: (4 << 10, 1 << 20),
        }
    }
}

impl BigDagConfig {
    /// Generate the graph. Deterministic in the config.
    ///
    /// # Errors
    /// Rejects a zero node count and inverted WCET/payload ranges; a WCET
    /// range must not contain 0.
    pub fn generate(&self) -> Result<TaskGraph, WorkloadError> {
        if self.nodes == 0 {
            return Err(WorkloadError::Schema("node count must be at least 1".into()));
        }
        if self.wcet.0 < 1 || self.wcet.0 > self.wcet.1 {
            return Err(WorkloadError::Schema(format!("invalid wcet range {:?}", self.wcet)));
        }
        if self.payload.0 > self.payload.1 {
            return Err(WorkloadError::Schema(format!("invalid payload range {:?}", self.payload)));
        }
        let n = self.nodes;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let name = format!("{}-n{}-s{}", self.family, n, self.seed);
        let mut b = TaskGraphBuilder::with_capacity(name, n, 2 * n);
        for i in 0..n {
            let w = rng.gen_range(self.wcet.0..=self.wcet.1);
            b.add_node(format!("t{i}"), w);
        }
        match self.family {
            Family::Layered => self.layered_edges(&mut b, n, &mut rng),
            Family::ForkJoin => self.fork_join_edges(&mut b, n, &mut rng),
            Family::Random => self.random_edges(&mut b, n, &mut rng),
        }
        Ok(b.build().expect("generated DAGs are acyclic by construction"))
    }

    fn draw_payload(&self, rng: &mut StdRng) -> u64 {
        if self.payload.0 == self.payload.1 {
            self.payload.0
        } else {
            rng.gen_range(self.payload.0..=self.payload.1)
        }
    }

    fn edge(&self, b: &mut TaskGraphBuilder, from: usize, to: usize, rng: &mut StdRng) {
        let bytes = self.draw_payload(rng);
        b.add_edge_weighted(NodeId::from_index(from), NodeId::from_index(to), bytes)
            .expect("generator never repeats an edge");
    }

    /// Contiguous ranks of near-equal size; each node of rank `r > 0`
    /// draws 1–3 distinct parents from rank `r − 1`. Rank 0 nodes are the
    /// roots; some last-rank nodes are guaranteed sinks.
    fn layered_edges(&self, b: &mut TaskGraphBuilder, n: usize, rng: &mut StdRng) {
        let layers = (n as f64).sqrt().ceil() as usize;
        let bound = |l: usize| l * n / layers;
        let mut scratch: Vec<usize> = Vec::new();
        for l in 1..layers {
            let (prev_lo, prev_hi) = (bound(l - 1), bound(l));
            let (lo, hi) = (bound(l), bound(l + 1));
            for child in lo..hi {
                scratch.clear();
                scratch.extend(prev_lo..prev_hi);
                let k = rng.gen_range(1..=3usize.min(scratch.len()));
                let (parents, _) = scratch.partial_shuffle(rng, k);
                // Sort for a deterministic, index-ordered edge insertion.
                parents.sort_unstable();
                for &parent in parents.iter() {
                    self.edge(b, parent, child, rng);
                }
            }
        }
    }

    /// Fork/join blocks on a spine: spine node forks into `w ∈ [2, 8]`
    /// workers, which join into the next spine node, until the node budget
    /// is spent. Single root, single sink (the last spine node).
    fn fork_join_edges(&self, b: &mut TaskGraphBuilder, n: usize, rng: &mut StdRng) {
        let mut spine = 0usize; // current fork point
        let mut next = 1usize; // first unused node id
        while next < n {
            // Need room for at least one worker and the join node.
            let remaining = n - next;
            if remaining < 3 {
                // Tail too small for a block: chain the leftovers.
                for i in next..n {
                    self.edge(b, spine, i, rng);
                    spine = i;
                }
                break;
            }
            let width = rng.gen_range(2..=8usize.min(remaining - 1));
            let join = next + width;
            for w in next..next + width {
                self.edge(b, spine, w, rng);
                self.edge(b, w, join, rng);
            }
            spine = join;
            next = join + 1;
        }
    }

    /// Growing network: node `i ≥ 1` draws `min(i, 1–3)` distinct parents
    /// uniformly from `[0, i)`. Node 0 is the unique root.
    fn random_edges(&self, b: &mut TaskGraphBuilder, n: usize, rng: &mut StdRng) {
        let mut parents = [0usize; 3];
        for child in 1..n {
            let k = rng.gen_range(1..=3usize.min(child));
            let mut picked = 0;
            while picked < k {
                let p = rng.gen_range(0..child);
                if !parents[..picked].contains(&p) {
                    parents[picked] = p;
                    picked += 1;
                }
            }
            parents[..k].sort_unstable();
            for parent in parents.iter().copied().take(k) {
                self.edge(b, parent, child, rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(family: Family, nodes: usize, seed: u64) -> BigDagConfig {
        BigDagConfig { family, nodes, seed, ..BigDagConfig::default() }
    }

    #[test]
    fn family_names_round_trip() {
        for &f in Family::ALL {
            assert_eq!(f.name().parse::<Family>().unwrap(), f);
        }
        assert_eq!("forkjoin".parse::<Family>().unwrap(), Family::ForkJoin);
        assert!("tgff".parse::<Family>().is_err());
    }

    #[test]
    fn same_seed_regenerates_the_identical_graph() {
        for &f in Family::ALL {
            let a = cfg(f, 500, 7).generate().unwrap();
            let b = cfg(f, 500, 7).generate().unwrap();
            assert_eq!(a, b, "{f}");
            let c = cfg(f, 500, 8).generate().unwrap();
            assert_ne!(a, c, "{f}: different seeds should differ");
        }
    }

    #[test]
    fn every_family_has_roots_and_sinks() {
        for &f in Family::ALL {
            for seed in 0..5 {
                let g = cfg(f, 300, seed).generate().unwrap();
                assert_eq!(g.node_count(), 300);
                assert!(!g.sources().is_empty(), "{f}");
                assert!(!g.sinks().is_empty(), "{f}");
            }
        }
    }

    #[test]
    fn fork_join_is_single_rooted_and_single_sinked() {
        for nodes in [2usize, 3, 4, 10, 97, 500] {
            let g = cfg(Family::ForkJoin, nodes, 3).generate().unwrap();
            assert_eq!(g.sources().len(), 1, "n={nodes}");
            assert_eq!(g.sinks().len(), 1, "n={nodes}");
        }
    }

    #[test]
    fn random_family_is_single_rooted() {
        let g = cfg(Family::Random, 400, 11).generate().unwrap();
        assert_eq!(g.sources(), vec![NodeId::from_index(0)]);
    }

    #[test]
    fn payloads_and_wcets_stay_in_range() {
        let c = BigDagConfig {
            family: Family::Layered,
            nodes: 200,
            seed: 1,
            wcet: (7, 9),
            payload: (100, 200),
        };
        let g = c.generate().unwrap();
        for (_, node) in g.nodes() {
            assert!((7..=9).contains(&node.wcet));
        }
        for (from, _) in g.edges() {
            for (_, bytes) in g.out_edges(from) {
                assert!((100..=200).contains(&bytes));
            }
        }
    }

    #[test]
    fn ten_k_nodes_generate_quickly_with_linear_edges() {
        let g = cfg(Family::Layered, 10_000, 42).generate().unwrap();
        assert_eq!(g.node_count(), 10_000);
        // 1-3 parents per non-root node: strictly linear edge growth.
        assert!(g.edge_count() <= 3 * 10_000, "{}", g.edge_count());
        assert!(g.edge_count() >= 10_000 - 100, "{}", g.edge_count());
    }

    #[test]
    fn single_node_graphs_work_in_every_family() {
        for &f in Family::ALL {
            let g = cfg(f, 1, 0).generate().unwrap();
            assert_eq!(g.node_count(), 1);
            assert_eq!(g.edge_count(), 0);
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        assert!(cfg(Family::Layered, 0, 0).generate().is_err());
        let c = BigDagConfig { wcet: (0, 5), ..BigDagConfig::default() };
        assert!(c.generate().is_err());
        let c = BigDagConfig { wcet: (9, 5), ..BigDagConfig::default() };
        assert!(c.generate().is_err());
        let c = BigDagConfig { payload: (9, 5), ..BigDagConfig::default() };
        assert!(c.generate().is_err());
    }
}
