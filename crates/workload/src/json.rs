//! A minimal hand-rolled JSON parser.
//!
//! The workspace is dependency-free by policy (the build environment has no
//! registry access), so WfCommons instances are parsed with the same
//! byte-cursor machinery the serve daemon uses for JSON scenario
//! submissions — re-implemented here rather than imported, because a
//! workload library depending on an HTTP daemon would be the tail wagging
//! the dog. The subset is full JSON minus nothing: objects, arrays, all
//! scalar types, string escapes including surrogate pairs.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in document order. Duplicate keys are rejected at parse.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (ints included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer payload. Accepts floats with an exact integral
    /// value (WfCommons writers disagree on `1048576` vs `1048576.0`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::Float(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }
}

/// Parse a complete JSON document. The entire input must be consumed.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage after JSON document at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("unrecognized token at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
            None => Err("unexpected end of JSON document".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(format!("unsupported escape {other:?}"));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err("raw control character in string".to_string());
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences included).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the 4 hex digits of a `\u` escape (cursor just past the `u`),
    /// joining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let joined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(joined)
                        .ok_or_else(|| "invalid surrogate pair".to_string());
                }
            }
            return Err("lone high surrogate in \\u escape".to_string());
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err("lone low surrogate in \\u escape".to_string());
        }
        char::from_u32(first).ok_or_else(|| "invalid \\u escape".to_string())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or("truncated \\u escape")?;
        let value =
            u32::from_str_radix(digits, 16).map_err(|_| format!("bad \\u escape {digits:?}"))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !float {
            if let Ok(i) = token.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        token
            .parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number {token:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting_round_trip() {
        let doc = parse(
            r#"{"name": "wf", "n": 3, "x": 2.5, "ok": true, "none": null,
               "tags": [1, "two", false], "sub": {"deep": [{"er": {}}]}}"#,
        )
        .unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("wf"));
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("x").unwrap().as_f64(), Some(2.5));
        assert_eq!(doc.get("none"), Some(&Json::Null));
        assert_eq!(doc.get("tags").unwrap().as_array().unwrap().len(), 3);
        assert!(doc.get("sub").unwrap().get("deep").is_some());
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn integral_floats_count_as_u64() {
        let doc = parse(r#"{"a": 1048576.0, "b": 1048576, "c": 0.5, "d": -1}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_u64(), Some(1_048_576));
        assert_eq!(doc.get("b").unwrap().as_u64(), Some(1_048_576));
        assert_eq!(doc.get("c").unwrap().as_u64(), None);
        assert_eq!(doc.get("d").unwrap().as_u64(), None);
    }

    #[test]
    fn string_escapes_decode() {
        let doc = parse(r#"{"s": "a\"b\\c\nd é 😀"}"#).unwrap();
        assert_eq!(doc.get("s").unwrap().as_str(), Some("a\"b\\c\nd é 😀"));
    }

    #[test]
    fn bad_documents_are_rejected_with_reasons() {
        for (input, needle) in [
            ("", "unexpected end"),
            ("{\"a\": 1} junk", "trailing garbage"),
            ("{\"a\": }", "unexpected"),
            ("{\"a\": 1, \"a\": 2}", "duplicate key"),
            ("{\"a\": \"\\ud800 lonely\"}", "surrogate"),
            ("{\"a\": 1e}", "bad number"),
            ("{\"a\" 1}", "expected ':'"),
            ("[1, 2", "expected ','"),
        ] {
            let e = parse(input).unwrap_err();
            assert!(e.contains(needle), "{input:?} -> {e}");
        }
    }
}
