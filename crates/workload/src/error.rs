//! Error type for workflow import and generation.

use bas_taskgraph::GraphError;
use std::fmt;

/// Why a workload could not be imported or generated.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The input was not well-formed JSON.
    Json(String),
    /// The JSON was well-formed but not a valid WfCommons instance.
    Schema(String),
    /// The described DAG is structurally invalid (cycle, duplicate edge…).
    Graph(GraphError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Json(msg) => write!(f, "invalid JSON: {msg}"),
            WorkloadError::Schema(msg) => write!(f, "invalid WfCommons instance: {msg}"),
            WorkloadError::Graph(e) => write!(f, "invalid task graph: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<GraphError> for WorkloadError {
    fn from(e: GraphError) -> Self {
        WorkloadError::Graph(e)
    }
}
