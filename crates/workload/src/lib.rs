//! # bas-workload — workloads at scale
//!
//! The paper's evaluation uses small TGFF-style graphs (5–15 nodes). This
//! crate grows the workload side of the workspace in two directions:
//!
//! * [`wfcommons`] — import **real scientific workflows** in the
//!   [WfCommons](https://wfcommons.org) JSON instance format (the lingua
//!   franca of Pegasus/Makeflow/Nextflow execution traces). Task runtimes
//!   become WCET cycles via a configurable reference speed; file payloads
//!   shared between producer and consumer become DAG edge weights in bytes,
//!   which the simulator charges as inter-PE transfer time when the
//!   endpoints map to different processing elements.
//! * [`generate`] — **big synthetic DAGs** (10³–10⁴ nodes) from three
//!   deterministic seeded families (layered, fork-join, random growth),
//!   sized far beyond the paper's sweep to exercise the engine's O(n)
//!   scheduling paths and the mapper's load balancing at scale.
//!
//! Both produce plain [`bas_taskgraph::TaskGraph`]s, so everything
//! downstream — mapping, DVS policies, battery models, the CLI — works
//! unchanged. The JSON machinery is hand-rolled ([`json`]) to keep the
//! workspace dependency-free, mirroring the byte-cursor parser the serve
//! daemon uses for scenario submissions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod generate;
pub mod json;
pub mod wfcommons;

pub use error::WorkloadError;
pub use generate::{BigDagConfig, Family, ParseFamilyError};
pub use wfcommons::{ImportConfig, WorkflowImport};
