//! Property tests over the big-DAG generator families: determinism under
//! the seed, acyclicity, and the structural invariants each family
//! advertises (roots and leaves always exist).

use bas_workload::{BigDagConfig, Family};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generation_is_deterministic_acyclic_and_rooted(
        seed in 0u64..10_000,
        nodes in 1usize..400,
        fam in 0usize..3,
    ) {
        let family = Family::ALL[fam];
        let cfg = BigDagConfig { family, nodes, seed, ..BigDagConfig::default() };
        let a = cfg.generate().unwrap();
        let b = cfg.generate().unwrap();
        // Same seed -> the identical graph, structure and weights included
        // (TaskGraph equality covers names, WCETs and edge payloads).
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.node_count(), nodes);

        // Acyclic: a full topological order exists and respects every edge.
        let topo = a.topological_order();
        prop_assert_eq!(topo.len(), nodes);
        let mut position = vec![0usize; nodes];
        for (pos, &v) in topo.iter().enumerate() {
            position[v.index()] = pos;
        }
        for (from, to) in a.edges() {
            prop_assert!(
                position[from.index()] < position[to.index()],
                "{family}: edge {from} -> {to} violates the topological order"
            );
        }

        // Every family guarantees entry and exit points.
        prop_assert!(!a.sources().is_empty(), "{family}: no root");
        prop_assert!(!a.sinks().is_empty(), "{family}: no sink");
    }

    #[test]
    fn seed_changes_the_graph(seed in 0u64..10_000, fam in 0usize..3) {
        let family = Family::ALL[fam];
        let a = BigDagConfig { family, nodes: 64, seed, ..BigDagConfig::default() }
            .generate()
            .unwrap();
        let b = BigDagConfig { family, nodes: 64, seed: seed + 1, ..BigDagConfig::default() }
            .generate()
            .unwrap();
        // WCET/payload draws make a collision astronomically unlikely.
        prop_assert!(a != b, "seeds {seed} and {} collided", seed + 1);
    }
}
