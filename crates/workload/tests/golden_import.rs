//! Golden parse tests over the checked-in WfCommons fixtures: exact node,
//! edge, WCET and payload counts. These pin the importer's observable
//! mapping — if any number here moves, the change is a format-semantics
//! change and must be deliberate.

use bas_taskgraph::NodeId;
use bas_workload::wfcommons::import_str;
use bas_workload::ImportConfig;

const DIAMOND: &str = include_str!("../fixtures/diamond.json");
const MONTAGE: &str = include_str!("../fixtures/montage-tiny.json");
const CHAIN: &str = include_str!("../fixtures/chain.json");

fn id(i: usize) -> NodeId {
    NodeId::from_index(i)
}

#[test]
fn diamond_golden() {
    let wf = import_str(DIAMOND, &ImportConfig::default()).unwrap();
    assert_eq!(wf.name, "diamond");
    let g = &wf.graph;
    assert_eq!(g.node_count(), 4);
    assert_eq!(g.edge_count(), 4);
    // ref_speed 1 GHz: runtime seconds -> gigacycles.
    assert_eq!(g.wcet(id(0)), 2_000_000_000);
    assert_eq!(g.wcet(id(1)), 5_500_000_000);
    assert_eq!(g.wcet(id(2)), 3_250_000_000);
    assert_eq!(g.wcet(id(3)), 1_500_000_000);
    assert_eq!(g.total_wcet(), 12_250_000_000);
    // Edge payloads: the file each producer hands its consumer.
    assert_eq!(g.edge_bytes(id(0), id(1)), Some(1_048_576), "split -> work_a");
    assert_eq!(g.edge_bytes(id(0), id(2)), Some(2_097_152), "split -> work_b");
    assert_eq!(g.edge_bytes(id(1), id(3)), Some(524_288), "work_a -> merge");
    assert_eq!(g.edge_bytes(id(2), id(3)), Some(262_144), "work_b -> merge");
    assert_eq!(g.total_edge_bytes(), 3_932_160);
    // Structure: one root, one sink, critical path split -> work_a -> merge.
    assert_eq!(g.sources(), vec![id(0)]);
    assert_eq!(g.sinks(), vec![id(3)]);
    assert_eq!(g.critical_path(), 9_000_000_000);
}

#[test]
fn montage_tiny_golden() {
    let wf = import_str(MONTAGE, &ImportConfig::default()).unwrap();
    assert_eq!(wf.name, "montage-tiny");
    let g = &wf.graph;
    assert_eq!(g.node_count(), 9);
    assert_eq!(g.edge_count(), 12);
    // `runtimeInSeconds` spelling maps identically to `runtime`.
    assert_eq!(g.wcet(id(0)), 12_000_000_000); // mProject_1
    assert_eq!(g.wcet(id(8)), 1_000_000_000); // mJPEG
                                              // The three mProject outputs feed both their mDiffFit and mAdd.
    assert_eq!(g.edge_bytes(id(0), id(3)), Some(4_194_304), "proj_1 -> diff_12");
    assert_eq!(g.edge_bytes(id(1), id(4)), Some(4_194_304), "proj_2 -> diff_23");
    assert_eq!(g.edge_bytes(id(0), id(7)), Some(4_194_304), "proj_1 -> mAdd");
    assert_eq!(g.edge_bytes(id(6), id(7)), Some(32_768), "mBgModel -> mAdd");
    assert_eq!(g.edge_bytes(id(7), id(8)), Some(16_777_216), "mAdd -> mJPEG");
    assert_eq!(g.total_edge_bytes(), 48_332_800);
    // Three parallel roots (the projections), one sink (the JPEG).
    assert_eq!(g.sources(), vec![id(0), id(1), id(2)]);
    assert_eq!(g.sinks(), vec![id(8)]);
    // Critical path: mProject_3 (13.5) -> mDiffFit_23 (3.5) -> mConcatFit
    // (2) -> mBgModel (4) -> mAdd (8) -> mJPEG (1) = 32 s.
    assert_eq!(g.critical_path(), 32_000_000_000);
}

#[test]
fn chain_golden_with_legacy_spellings() {
    // `jobs` + `children`-only + `size`: the oldest published spelling.
    let wf = import_str(CHAIN, &ImportConfig { ref_speed: 1.0 }).unwrap();
    assert_eq!(wf.name, "chain");
    let g = &wf.graph;
    assert_eq!(g.node_count(), 3);
    assert_eq!(g.edge_count(), 2);
    // Sub-cycle runtimes round UP and never hit zero.
    assert_eq!(g.wcet(id(0)), 1);
    assert_eq!(g.wcet(id(1)), 3);
    assert_eq!(g.wcet(id(2)), 2);
    assert_eq!(g.edge_bytes(id(0), id(1)), Some(1000));
    assert_eq!(g.edge_bytes(id(1), id(2)), Some(500));
}

#[test]
fn fixtures_import_deterministically() {
    for fixture in [DIAMOND, MONTAGE, CHAIN] {
        let a = import_str(fixture, &ImportConfig::default()).unwrap();
        let b = import_str(fixture, &ImportConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}

#[test]
fn ref_speed_scales_wcets_linearly() {
    let slow = import_str(DIAMOND, &ImportConfig { ref_speed: 1.0 }).unwrap();
    let fast = import_str(DIAMOND, &ImportConfig { ref_speed: 1000.0 }).unwrap();
    // 2.0 s -> 2 cycles vs 2000 cycles.
    assert_eq!(slow.graph.wcet(id(0)), 2);
    assert_eq!(fast.graph.wcet(id(0)), 2000);
    // Payloads are independent of the reference speed.
    assert_eq!(slow.graph.total_edge_bytes(), fast.graph.total_edge_bytes());
}
