//! Black-box tests of the daemon over real TCP sockets.
//!
//! Each test binds an ephemeral port, runs the server on a background
//! thread with the built-in [`SweepService`], and talks to it with raw
//! `TcpStream`s — no in-process shortcuts on the request path, so the
//! HTTP framing itself is under test.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bas_core::Scenario;
use bas_serve::{http, ServeConfig, Server, ServerHandle, SweepService};

/// A tiny sweep that finishes in milliseconds.
const SMOKE: &str = "kind = \"sweep\"\ntrials = 2\nhorizon = 200.0\nworkload = \"unit\"\nprocessor = \"unit\"\nbattery = \"none\"\nspecs = [\"EDF\", \"BAS-2\"]\n";

/// The same scenario as [`SMOKE`], submitted as JSON with scrambled key
/// order — must land on the same digest.
const SMOKE_JSON: &str = r#"{"specs": ["EDF", "BAS-2"], "battery": "none", "horizon": 200.0, "kind": "sweep", "workload": "unit", "trials": 2, "processor": "unit"}"#;

struct Daemon {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Daemon {
    fn start(mut config: ServeConfig) -> Daemon {
        config.addr = "127.0.0.1:0".to_string();
        config.quiet = true;
        let server = Server::bind(config, Arc::new(SweepService)).expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address");
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        Daemon { addr, handle, thread: Some(thread) }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread").expect("clean shutdown");
        }
    }
}

/// One HTTP exchange; returns (status, raw head, body bytes).
fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    stream.write_all(raw).expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let split = response.windows(4).position(|w| w == b"\r\n\r\n").unwrap_or_else(|| {
        panic!("no header/body split in {:?}", String::from_utf8_lossy(&response))
    });
    let head = String::from_utf8(response[..split].to_vec()).expect("UTF-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head:?}"));
    (status, head, response[split + 4..].to_vec())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String, Vec<u8>) {
    exchange(addr, format!("GET {path} HTTP/1.1\r\nHost: bas\r\n\r\n").as_bytes())
}

fn post(addr: SocketAddr, body: &str) -> (u16, String, Vec<u8>) {
    let raw = format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: bas\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    exchange(addr, raw.as_bytes())
}

fn body_text(body: &[u8]) -> String {
    String::from_utf8(body.to_vec()).expect("UTF-8 body")
}

/// Pull `"field": value` out of a flat JSON response line.
fn json_field(body: &str, field: &str) -> String {
    let needle = format!("\"{field}\": ");
    let start =
        body.find(&needle).unwrap_or_else(|| panic!("no {field:?} in {body}")) + needle.len();
    let rest = &body[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().trim_matches('"').to_string()
}

fn wait_until(what: &str, deadline: Duration, mut probe: impl FnMut() -> bool) {
    let start = Instant::now();
    while !probe() {
        assert!(start.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_done(addr: SocketAddr, id: &str) -> String {
    let mut last = String::new();
    wait_until("job to finish", Duration::from_secs(60), || {
        let (status, _, body) = get(addr, &format!("/v1/jobs/{id}"));
        assert_eq!(status, 200);
        last = body_text(&body);
        let state = json_field(&last, "status");
        assert_ne!(state, "failed", "{last}");
        state == "done"
    });
    last
}

#[test]
fn healthz_presets_and_error_routes() {
    let daemon = Daemon::start(ServeConfig::default());
    let addr = daemon.addr;

    let (status, _, body) = get(addr, "/v1/healthz");
    let body = body_text(&body);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field(&body, "status"), "ok");
    assert_eq!(json_field(&body, "idle"), "true");
    assert_eq!(json_field(&body, "schema"), "bas-serve/v1");

    let (status, _, body) = get(addr, "/v1/presets");
    assert_eq!(status, 200);
    assert!(body_text(&body).contains("\"name\": \"sweep\""));

    // Unknown routes, bad ids and wrong methods all answer JSON 4xx.
    for (raw, expected) in [
        ("GET /nope HTTP/1.1\r\n\r\n", 404),
        ("GET /v1/jobs/zebra HTTP/1.1\r\n\r\n", 404),
        ("GET /v1/jobs/1/confetti HTTP/1.1\r\n\r\n", 404),
        ("DELETE /v1/jobs HTTP/1.1\r\n\r\n", 405),
        ("POST /v1/healthz HTTP/1.1\r\n\r\n", 405),
        ("how is anyone supposed to parse this\r\n\r\n", 400),
        ("GET /x HTTP/4.0\r\n\r\n", 505),
    ] {
        let (status, _, body) = exchange(addr, raw.as_bytes());
        assert_eq!(status, expected, "{raw:?}");
        assert!(body_text(&body).contains("\"error\":"), "{raw:?}: {:?}", body_text(&body));
    }
}

#[test]
fn submissions_run_cache_and_coalesce_across_formats() {
    let daemon = Daemon::start(ServeConfig::default());
    let addr = daemon.addr;

    let (status, _, body) = post(addr, SMOKE);
    let body = body_text(&body);
    assert_eq!(status, 202, "{body}");
    assert_eq!(json_field(&body, "status"), "queued");
    assert_eq!(json_field(&body, "cached"), "false");
    let id = json_field(&body, "job");
    let digest = json_field(&body, "digest");
    assert_eq!(digest.len(), 16, "{digest}");
    assert_eq!(digest, Scenario::from_toml(SMOKE).unwrap().digest());

    let status_body = wait_done(addr, &id);
    assert!(status_body.contains("\"report\": {"), "{status_body}");

    // The raw report endpoint serves exactly what a local run prints.
    let (status, _, report) = get(addr, &format!("/v1/jobs/{id}/report"));
    assert_eq!(status, 200);
    let expected = {
        use bas_serve::ScenarioService as _;
        SweepService.run(&Scenario::from_toml(SMOKE).unwrap()).unwrap().to_json()
    };
    assert_eq!(body_text(&report), expected, "served report must be byte-identical");

    // Resubmitting the identical TOML is a cache hit on the same job…
    let (status, _, body) = post(addr, SMOKE);
    let body = body_text(&body);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field(&body, "cached"), "true");
    assert_eq!(json_field(&body, "job"), id);

    // …and so is the equivalent JSON submission: one digest, one run.
    let (status, _, body) = post(addr, SMOKE_JSON);
    let body = body_text(&body);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field(&body, "digest"), digest);
    assert_eq!(json_field(&body, "job"), id);

    let (_, _, health) = get(addr, "/v1/healthz");
    let health = body_text(&health);
    assert_eq!(json_field(&health, "executed"), "1", "{health}");
    assert_eq!(json_field(&health, "submitted"), "3", "{health}");
    assert_eq!(json_field(&health, "cache_hits"), "2", "{health}");
}

#[test]
fn malformed_oversized_and_over_budget_submissions() {
    let config = ServeConfig {
        max_body_bytes: 256,
        max_trials: 10,
        max_horizon: 1e6,
        ..ServeConfig::default()
    };
    let daemon = Daemon::start(config);
    let addr = daemon.addr;

    // Parse/validation failures → 400 with the reason.
    for (body, needle) in [
        ("kind = ", "missing value"),
        ("trials = 2\n", "missing `kind`"),
        ("kind = \"sweep\"\ntrails = 2\n", "trails"),
        ("{\"kind\": \"sweep\", \"trials\": }", "JSON body"),
        ("{\"kind\": [\"sweep\"]}", "kind"),
    ] {
        let (status, _, response) = post(addr, body);
        let response = body_text(&response);
        assert_eq!(status, 400, "{body:?}: {response}");
        assert!(response.contains(needle), "{body:?}: {response}");
    }

    // Over the body cap → 413 (the declared length already tells us).
    let huge = format!("kind = \"sweep\"\n# {}\n", "x".repeat(4096));
    let (status, head, _) = post(addr, &huge);
    assert_eq!(status, 413, "{head}");

    // Valid but over the server's per-request budgets → 422.
    let (status, _, response) = post(addr, "kind = \"sweep\"\ntrials = 11\n");
    assert_eq!(status, 422, "{}", body_text(&response));
    assert!(body_text(&response).contains("--max-trials"), "{}", body_text(&response));
    let (status, _, response) = post(addr, "kind = \"sweep\"\ntrials = 2\nhorizon = 2e6\n");
    assert_eq!(status, 422, "{}", body_text(&response));
    assert!(body_text(&response).contains("--max-horizon"), "{}", body_text(&response));

    // Chunked request bodies are refused with 411, not misread.
    let (status, _, _) =
        exchange(addr, b"POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n");
    assert_eq!(status, 411);
}

/// A sweep sized to occupy a worker long enough (hundreds of ms) for the
/// queue tests to observe it running, while still draining quickly.
fn slow_body(tag: u64) -> String {
    format!(
        "kind = \"sweep\"\nname = \"slow-{tag}\"\ntrials = 2\nhorizon = 6000000.0\nworkload = \"unit\"\nprocessor = \"unit\"\nbattery = \"none\"\nspecs = [\"EDF\"]\n"
    )
}

#[test]
fn bounded_queue_answers_429_under_overload() {
    let config = ServeConfig { workers: 1, queue_depth: 1, ..ServeConfig::default() };
    let daemon = Daemon::start(config);
    let addr = daemon.addr;

    // Occupy the single worker…
    let (status, _, body) = post(addr, &slow_body(1));
    assert_eq!(status, 202, "{}", body_text(&body));
    wait_until("worker to pick the job up", Duration::from_secs(30), || {
        let (_, _, health) = get(addr, "/v1/healthz");
        json_field(&body_text(&health), "running") == "1"
    });

    // …fill the queue…
    let (status, _, body) = post(addr, &slow_body(2));
    assert_eq!(status, 202, "{}", body_text(&body));

    // …and the next distinct submission bounces with Retry-After.
    let (status, head, body) = post(addr, &slow_body(3));
    assert_eq!(status, 429, "{}", body_text(&body));
    assert!(head.contains("Retry-After: 1"), "{head}");
    assert!(body_text(&body).contains("queue is full"), "{}", body_text(&body));

    // A duplicate of a known job still coalesces — backpressure only
    // applies to work that would grow the queue.
    let (status, _, body) = post(addr, &slow_body(2));
    assert_eq!(status, 200, "{}", body_text(&body));
}

#[test]
fn concurrent_identical_submissions_single_flight() {
    let daemon = Daemon::start(ServeConfig { workers: 2, ..ServeConfig::default() });
    let addr = daemon.addr;
    let body = slow_body(77);

    let results: Vec<(u16, String)> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let body = body.clone();
                scope.spawn(move || {
                    let (status, _, response) = post(addr, &body);
                    (status, body_text(&response))
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().expect("submitter thread")).collect()
    });

    let ids: Vec<String> = results.iter().map(|(_, body)| json_field(body, "job")).collect();
    assert!(ids.iter().all(|id| *id == ids[0]), "all submissions share one job: {results:?}");
    let created = results.iter().filter(|(status, _)| *status == 202).count();
    assert_eq!(created, 1, "exactly one submission creates the job: {results:?}");

    wait_done(addr, &ids[0]);
    let (_, _, health) = get(addr, "/v1/healthz");
    assert_eq!(json_field(&body_text(&health), "executed"), "1", "one run serves all 8");
}

#[test]
fn events_endpoint_streams_the_exact_replay() {
    let daemon = Daemon::start(ServeConfig::default());
    let addr = daemon.addr;

    let (_, _, body) = post(addr, SMOKE);
    let id = json_field(&body_text(&body), "job");

    // The replay is deterministic and independent of job completion, so
    // it can stream immediately after submission.
    let (status, head, chunked) = get(addr, &format!("/v1/jobs/{id}/events"));
    assert_eq!(status, 200);
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    assert!(head.contains("Content-Type: application/x-ndjson"), "{head}");
    let streamed = http::decode_chunked(&chunked).expect("well-formed chunking");

    let direct =
        Scenario::from_toml(SMOKE).unwrap().stream_events(Vec::new()).expect("local replay");
    assert_eq!(streamed, direct, "served stream must match the local replay byte-for-byte");
    let text = String::from_utf8(streamed).unwrap();
    assert_eq!(text.matches("\"schema\":\"bas-events/v2\"").count(), 2, "one header per spec");
}

#[test]
fn sweep_threads_knob_does_not_split_the_cache() {
    let daemon = Daemon::start(ServeConfig::default());
    let addr = daemon.addr;

    // The server shards sweeps across its own pool and ignores the
    // submitted `threads`, so submissions differing only in that knob must
    // land on one digest (and one run), not re-execute per value.
    let (status, _, body) = post(addr, &format!("{SMOKE}threads = 1\n"));
    let body = body_text(&body);
    assert_eq!(status, 202, "{body}");
    let id = json_field(&body, "job");
    let digest = json_field(&body, "digest");

    let (status, _, body) = post(addr, &format!("{SMOKE}threads = 7\n"));
    let body = body_text(&body);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field(&body, "job"), id);
    assert_eq!(json_field(&body, "digest"), digest);

    wait_done(addr, &id);
    let (_, _, health) = get(addr, "/v1/healthz");
    assert_eq!(json_field(&body_text(&health), "executed"), "1", "one run serves both");
}

#[test]
fn events_replays_beyond_worker_count_get_429() {
    let daemon = Daemon::start(ServeConfig { workers: 1, ..ServeConfig::default() });
    let addr = daemon.addr;

    let (_, _, body) = post(addr, &slow_body(42));
    let id = json_field(&body_text(&body), "job");

    // Hold the single replay permit: read just the response head of a
    // streaming /events request and keep the connection open while the
    // replay runs behind it.
    let mut held = TcpStream::connect(addr).expect("connect");
    held.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    write!(held, "GET /v1/jobs/{id}/events HTTP/1.1\r\nHost: bas\r\n\r\n").expect("send request");
    let mut head = Vec::new();
    while !head.ends_with(b"\r\n\r\n") {
        let mut byte = [0u8; 1];
        held.read_exact(&mut byte).expect("streaming head");
        head.push(byte[0]);
        assert!(head.len() < 4096, "runaway head");
    }
    let head = String::from_utf8(head).expect("UTF-8 head");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");

    // The permit pool (sized to the worker count) is exhausted: a second
    // concurrent replay bounces instead of running an unbounded simulation.
    let (status, head, body) = get(addr, &format!("/v1/jobs/{id}/events"));
    assert_eq!(status, 429, "{}", body_text(&body));
    assert!(head.contains("Retry-After: 1"), "{head}");
    assert!(body_text(&body).contains("saturated"), "{}", body_text(&body));
}

#[test]
fn non_sweep_jobs_fail_loudly_but_stay_inspectable() {
    let daemon = Daemon::start(ServeConfig::default());
    let addr = daemon.addr;

    // The built-in service only runs sweeps; a fig5 job is accepted,
    // executed, and fails with the reason preserved.
    let (status, _, body) = post(addr, "kind = \"fig5\"\nhorizon = 50.0\n");
    assert_eq!(status, 202, "{}", body_text(&body));
    let id = json_field(&body_text(&body), "job");

    let mut last = String::new();
    wait_until("job to fail", Duration::from_secs(30), || {
        let (_, _, body) = get(addr, &format!("/v1/jobs/{id}"));
        last = body_text(&body);
        json_field(&last, "status") == "failed"
    });
    assert!(last.contains("only `sweep`"), "{last}");

    let (status, _, body) = get(addr, &format!("/v1/jobs/{id}/report"));
    assert_eq!(status, 500, "{}", body_text(&body));

    // Events replay is kind-gated regardless of status.
    let (status, _, body) = get(addr, &format!("/v1/jobs/{id}/events"));
    assert_eq!(status, 409, "{}", body_text(&body));

    // An unfinished job's report is a 409, not a hang: submit something
    // slow and ask immediately.
    let (_, _, body) = post(addr, &slow_body(5));
    let slow_id = json_field(&body_text(&body), "job");
    let (status, _, body) = get(addr, &format!("/v1/jobs/{slow_id}/report"));
    assert_eq!(status, 409, "{}", body_text(&body));
    assert!(body_text(&body).contains("not ready"), "{}", body_text(&body));
}

#[test]
fn lru_evicts_oldest_results_and_404s_them() {
    let config = ServeConfig { cache_capacity: 2, workers: 1, ..ServeConfig::default() };
    let daemon = Daemon::start(config);
    let addr = daemon.addr;

    let submit_fast = |seed: u64| {
        let body = format!(
            "kind = \"sweep\"\ntrials = 1\nseed = {seed}\nhorizon = 100.0\nworkload = \"unit\"\nprocessor = \"unit\"\nbattery = \"none\"\nspecs = [\"EDF\"]\n"
        );
        let (status, _, response) = post(addr, &body);
        let response = body_text(&response);
        assert!(status == 202 || status == 200, "{response}");
        json_field(&response, "job")
    };

    let first = submit_fast(1);
    wait_done(addr, &first);
    let second = submit_fast(2);
    wait_done(addr, &second);
    let third = submit_fast(3);
    wait_done(addr, &third);

    // Capacity 2: the oldest finished job fell out of the registry.
    let (status, _, body) = get(addr, &format!("/v1/jobs/{first}"));
    assert_eq!(status, 404, "{}", body_text(&body));
    assert!(body_text(&body).contains("evicted"), "{}", body_text(&body));
    let (status, _, _) = get(addr, &format!("/v1/jobs/{third}"));
    assert_eq!(status, 200);

    // Resubmitting the evicted scenario is a fresh run, not a cache hit.
    let fourth = submit_fast(1);
    assert_ne!(fourth, first);
}

/// A pid+tag-keyed scratch state directory (fresh on every call).
fn tmp_state_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bas-serve-bb-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A sweep whose **job** takes a second or so (many trials) while its
/// first-trial event stream stays small — the shape the `?follow=1` tests
/// need: the stream is generated instantly at dequeue, the job keeps the
/// worker busy long enough to observe the live path.
fn follow_body(tag: u64, trials: usize) -> String {
    format!(
        "kind = \"sweep\"\nname = \"follow-{tag}\"\ntrials = {trials}\nhorizon = 2000.0\nworkload = \"unit\"\nprocessor = \"unit\"\nbattery = \"none\"\nspecs = [\"EDF\"]\n"
    )
}

#[test]
fn state_dir_restart_serves_byte_identical_results_with_zero_recompute() {
    let dir = tmp_state_dir("restart");
    let config = || ServeConfig { state_dir: Some(dir.clone()), ..ServeConfig::default() };

    let (digest, report_bytes, events_bytes) = {
        let daemon = Daemon::start(config());
        let addr = daemon.addr;
        let (status, _, body) = post(addr, SMOKE);
        let body = body_text(&body);
        assert_eq!(status, 202, "{body}");
        let id = json_field(&body, "job");
        let digest = json_field(&body, "digest");
        wait_done(addr, &id);
        let (status, _, report) = get(addr, &format!("/v1/jobs/{id}/report"));
        assert_eq!(status, 200);
        let (status, _, chunked) = get(addr, &format!("/v1/jobs/{id}/events"));
        assert_eq!(status, 200);
        let events = http::decode_chunked(&chunked).expect("well-formed chunking");
        (digest, report, events)
    }; // graceful shutdown: journal + blobs are on disk

    let daemon = Daemon::start(config());
    let addr = daemon.addr;
    // The resubmission is answered from the store: done, cached, no queue.
    let (status, _, body) = post(addr, SMOKE);
    let body = body_text(&body);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field(&body, "cached"), "true");
    assert_eq!(json_field(&body, "status"), "done");
    assert_eq!(json_field(&body, "digest"), digest);
    let id = json_field(&body, "job");

    let (status, _, report) = get(addr, &format!("/v1/jobs/{id}/report"));
    assert_eq!(status, 200);
    assert_eq!(report, report_bytes, "restarted report must be byte-identical");
    let (status, _, chunked) = get(addr, &format!("/v1/jobs/{id}/events"));
    assert_eq!(status, 200);
    let events = http::decode_chunked(&chunked).expect("well-formed chunking");
    assert_eq!(events, events_bytes, "restarted events must be byte-identical");

    // Zero recompute, and the healthz store block says why: live entries,
    // checksum-verified hydrations, nothing quarantined.
    let (_, _, health) = get(addr, "/v1/healthz");
    let health = body_text(&health);
    assert_eq!(json_field(&health, "executed"), "0", "{health}");
    assert_eq!(json_field(&health, "cache_hits"), "1", "{health}");
    assert_eq!(json_field(&health, "entries"), "2", "report + events blobs: {health}");
    assert_ne!(json_field(&health, "bytes"), "0", "{health}");
    assert_ne!(json_field(&health, "hydrations"), "0", "{health}");
    assert_eq!(json_field(&health, "quarantines"), "0", "{health}");
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memory_evicted_results_are_reserved_from_disk() {
    let dir = tmp_state_dir("evict");
    let config = ServeConfig {
        cache_capacity: 2,
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let daemon = Daemon::start(config);
    let addr = daemon.addr;

    let submit = |seed: u64| {
        let body = format!(
            "kind = \"sweep\"\ntrials = 1\nseed = {seed}\nhorizon = 100.0\nworkload = \"unit\"\nprocessor = \"unit\"\nbattery = \"none\"\nspecs = [\"EDF\"]\n"
        );
        let (status, _, response) = post(addr, &body);
        (status, body_text(&response))
    };
    for seed in 1..=3 {
        let (_, body) = submit(seed);
        wait_done(addr, &json_field(&body, "job"));
    }
    // Capacity 2: job 1 fell out of the in-memory registry — but with a
    // store behind it the result is not lost: resubmission is a disk hit,
    // not a recompute (without --state-dir this same sequence re-executes;
    // `lru_evicts_oldest_results_and_404s_them` pins that).
    let (status, body) = submit(1);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_field(&body, "cached"), "true");
    assert_eq!(json_field(&body, "status"), "done");
    let (_, _, health) = get(addr, "/v1/healthz");
    assert_eq!(json_field(&body_text(&health), "executed"), "3", "no fourth run");
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_report_blob_is_quarantined_on_restart_and_recomputed() {
    let dir = tmp_state_dir("torn");
    let config = || ServeConfig { state_dir: Some(dir.clone()), ..ServeConfig::default() };

    let digest = {
        let daemon = Daemon::start(config());
        let (status, _, body) = post(daemon.addr, SMOKE);
        let body = body_text(&body);
        assert_eq!(status, 202, "{body}");
        wait_done(daemon.addr, &json_field(&body, "job"));
        json_field(&body, "digest")
    };

    // Tear the report blob mid-payload — what a crash between the journal
    // fsync and the blob fsync leaves behind.
    let blob = dir.join("blobs").join(format!("{digest}.report"));
    let len = std::fs::metadata(&blob).expect("blob on disk").len();
    bas_serve::store::truncate_file(&blob, len / 2).expect("truncate blob");

    let daemon = Daemon::start(config());
    let addr = daemon.addr;
    // Open-time verification quarantined the torn blob: the resubmission
    // is a fresh run, never a serve of corrupt bytes.
    let (status, _, body) = post(addr, SMOKE);
    let body = body_text(&body);
    assert_eq!(status, 202, "torn blob must not read as a store hit: {body}");
    assert_eq!(json_field(&body, "cached"), "false");
    let id = json_field(&body, "job");
    let (_, _, health) = get(addr, "/v1/healthz");
    let health = body_text(&health);
    assert_ne!(json_field(&health, "quarantines"), "0", "{health}");

    // The daemon keeps serving: the recompute completes and is stored again.
    wait_done(addr, &id);
    let (status, _, _) = get(addr, &format!("/v1/jobs/{id}/report"));
    assert_eq!(status, 200);
    assert!(dir.join("quarantine").read_dir().expect("quarantine dir").next().is_some());
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn follow_stream_converges_byte_identically_with_the_replay() {
    let dir = tmp_state_dir("follow");
    let daemon =
        Daemon::start(ServeConfig { state_dir: Some(dir.clone()), ..ServeConfig::default() });
    let addr = daemon.addr;

    let body = follow_body(1, 2000);
    let (status, _, response) = post(addr, &body);
    assert_eq!(status, 202, "{}", body_text(&response));
    let id = json_field(&body_text(&response), "job");

    // Subscribe immediately: the connection stays open until the worker's
    // first-trial stream completes, delivering it incrementally.
    let (status, head, chunked) = get(addr, &format!("/v1/jobs/{id}/events?follow=1"));
    assert_eq!(status, 200);
    assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
    let followed = http::decode_chunked(&chunked).expect("well-formed chunking");

    let direct =
        Scenario::from_toml(&body).unwrap().stream_events(Vec::new()).expect("local replay");
    assert_eq!(followed, direct, "live subscription must converge with the replay bytes");
    assert!(
        !String::from_utf8_lossy(&followed).contains("follow_drop"),
        "a keeping-up follower sees no drop markers"
    );
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_follower_gets_a_drop_marker_never_backpressure() {
    let dir = tmp_state_dir("drop");
    // A 512-byte live window is far smaller than the ~tens-of-KB stream,
    // so a follower attaching after generation has already raced ahead
    // must be told what it missed.
    let config = ServeConfig {
        follow_buffer_bytes: 512,
        workers: 1,
        state_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let daemon = Daemon::start(config);
    let addr = daemon.addr;

    let body = follow_body(2, 10_000);
    let (status, _, response) = post(addr, &body);
    assert_eq!(status, 202, "{}", body_text(&response));
    let id = json_field(&body_text(&response), "job");

    // The worker generates the stream the moment it dequeues; wait for
    // that moment, then attach late — lines have already left the window.
    wait_until("worker to pick the job up", Duration::from_secs(30), || {
        let (_, _, health) = get(addr, "/v1/healthz");
        json_field(&body_text(&health), "running") == "1"
    });
    std::thread::sleep(Duration::from_millis(100));
    let (status, _, chunked) = get(addr, &format!("/v1/jobs/{id}/events?follow=1"));
    assert_eq!(status, 200);
    let followed = http::decode_chunked(&chunked).expect("well-formed chunking");
    let text = String::from_utf8(followed.clone()).expect("UTF-8 stream");

    // First line is the marker: `bas-events/v2` consumers skip unknown
    // types, so the stream stays schema-valid NDJSON.
    let (marker, tail) = text.split_once('\n').expect("marker line");
    assert!(marker.contains("\"type\": \"follow_drop\""), "{marker}");
    let dropped: u64 = json_field(marker, "dropped_lines").parse().expect("drop count");
    assert!(dropped > 0, "{marker}");

    // Whatever survives is a byte-exact suffix of the replay, and the
    // arithmetic closes: delivered + dropped = every line of the stream.
    let direct =
        Scenario::from_toml(&body).unwrap().stream_events(Vec::new()).expect("local replay");
    assert!(direct.ends_with(tail.as_bytes()), "tail must be a suffix of the replay");
    let total = direct.iter().filter(|&&b| b == b'\n').count() as u64;
    let delivered = tail.bytes().filter(|&b| b == b'\n').count() as u64;
    assert_eq!(delivered + dropped, total);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_drains_the_queue() {
    let mut daemon = Daemon::start(ServeConfig { workers: 1, ..ServeConfig::default() });
    let addr = daemon.addr;

    let (status, _, _) = post(addr, &slow_body(10));
    assert_eq!(status, 202);
    let (status, _, _) = post(addr, &slow_body(11));
    assert_eq!(status, 202);

    // Shut down immediately: both jobs must still execute before run()
    // returns — drain means "finish the queue", not "abandon it".
    daemon.handle.shutdown();
    daemon.thread.take().unwrap().join().expect("server thread").expect("clean shutdown");
    let stats = daemon.handle.stats();
    assert_eq!(stats.executed, 2, "{stats:?}");
    assert_eq!(stats.queued, 0, "{stats:?}");
    assert!(daemon.handle.is_idle());
}
