//! Property tests for the durable result store: the frame codec and the
//! journal/blob replay semantics under randomized payloads, cut points and
//! commit/evict interleavings. The unit tests in `store.rs` cover each
//! failure mode exhaustively for one fixed payload; these generalize the
//! same invariants over arbitrary inputs.

use bas_serve::store::{decode_frame, encode_frame, fnv1a64, BlobKind, Decoded, Store};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bas-store-prop-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255, 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_round_trips_any_payload(payload in arb_payload()) {
        let frame = encode_frame(&payload);
        match decode_frame(&frame, 4096) {
            Decoded::Frame { payload: got, consumed } => {
                prop_assert_eq!(got, &payload[..]);
                prop_assert_eq!(consumed, frame.len());
            }
            other => prop_assert!(false, "expected Frame, got {:?}", other),
        }
    }

    /// A concatenation of frames cut at an arbitrary byte decodes to
    /// exactly the longest prefix of whole frames, then reports the tail
    /// torn — the recovery contract journal replay is built on.
    #[test]
    fn truncated_frame_sequence_yields_the_longest_valid_prefix(
        payloads in prop::collection::vec(arb_payload(), 1..4),
        cut_seed in 0usize..10_000,
    ) {
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for p in &payloads {
            buf.extend_from_slice(&encode_frame(p));
            boundaries.push(buf.len());
        }
        let cut = cut_seed % (buf.len() + 1);
        let truncated = &buf[..cut];
        let whole_frames = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();

        let mut offset = 0usize;
        let mut decoded = Vec::new();
        loop {
            match decode_frame(&truncated[offset..], 4096) {
                Decoded::Frame { payload, consumed } => {
                    decoded.push(payload.to_vec());
                    offset += consumed;
                }
                Decoded::Torn => break,
                Decoded::Corrupt => {
                    prop_assert!(false, "truncation must read as torn, not corrupt");
                }
            }
        }
        prop_assert_eq!(decoded.len(), whole_frames);
        prop_assert_eq!(&decoded[..], &payloads[..whole_frames]);
        // A cut exactly at the end of the sequence loses nothing.
        if cut == buf.len() {
            prop_assert_eq!(whole_frames, payloads.len());
        }
    }

    /// Flipping any single bit anywhere in a frame is detected: the decoder
    /// never hands back the original payload as if nothing happened, and a
    /// corrupted-in-place (same length) frame never decodes cleanly at all.
    #[test]
    fn single_bit_flip_never_passes_silently(
        payload in arb_payload(),
        flip_seed in 0usize..10_000,
    ) {
        let frame = encode_frame(&payload);
        let bit = flip_seed % (frame.len() * 8);
        let mut flipped = frame.clone();
        flipped[bit / 8] ^= 1 << (bit % 8);
        match decode_frame(&flipped, u32::MAX) {
            Decoded::Frame { payload: got, consumed } => {
                // Only a flip in the length field can still decode (as a
                // shorter/longer frame whose checksum happens to cover a
                // different span) — and then the result must differ.
                prop_assert!(
                    got != &payload[..] || consumed != frame.len(),
                    "bit flip at {} went undetected", bit
                );
            }
            Decoded::Torn | Decoded::Corrupt => {}
        }
        // The FNV checksum itself always catches a payload/checksum flip.
        if bit >= 32 {
            let len = u32::from_le_bytes(flipped[0..4].try_into().unwrap());
            let sum = u64::from_le_bytes(flipped[4..12].try_into().unwrap());
            prop_assert!(
                len as usize != payload.len() || fnv1a64(&flipped[12..]) != sum,
                "checksum missed a flip at bit {}", bit
            );
        }
    }

    /// Journal replay is last-wins per digest: after arbitrary interleaved
    /// commits under a tight byte budget (forcing evict/re-commit cycles on
    /// the same digests), a reopened store serves exactly what the live
    /// store served — same survivors, same bytes — and both respect the
    /// budget.
    #[test]
    fn reopen_replays_to_the_live_stores_exact_state(
        ops in prop::collection::vec((0u8..4, 0u8..2, arb_payload()), 1..24),
        case in 0u64..1_000_000,
    ) {
        let dir = tmpdir(&format!("replay-{case}"));
        let budget = 2048u64;
        let digests = ["aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb",
                       "cccccccccccccccc", "dddddddddddddddd"];
        let mut store = Store::open(&dir, budget, true).expect("open");
        for (d, k, payload) in &ops {
            let digest = digests[*d as usize];
            let kind = if *k == 0 { BlobKind::Report } else { BlobKind::Events };
            store.commit(digest, kind, payload).expect("commit");
        }
        let live_stats = store.stats();
        prop_assert!(live_stats.bytes <= budget);
        let mut live: Vec<(String, BlobKind, Option<Vec<u8>>)> = Vec::new();
        for digest in digests {
            for kind in [BlobKind::Report, BlobKind::Events] {
                live.push((digest.to_string(), kind, store.load(digest, kind)));
            }
        }
        drop(store);

        let mut reopened = Store::open(&dir, budget, true).expect("reopen");
        prop_assert_eq!(reopened.stats().quarantines, 0, "clean shutdown");
        prop_assert!(reopened.stats().bytes <= budget);
        prop_assert_eq!(reopened.stats().entries, live_stats.entries);
        prop_assert_eq!(reopened.stats().bytes, live_stats.bytes);
        for (digest, kind, expected) in live {
            prop_assert_eq!(reopened.load(&digest, kind), expected);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
