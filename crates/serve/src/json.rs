//! JSON scenario submissions.
//!
//! `POST /v1/jobs` accepts scenarios either as TOML (the on-disk format) or
//! as JSON. Rather than grow a second deserializer inside `bas-core`, a JSON
//! body is parsed here and *re-rendered as canonical TOML*, then handed to
//! [`Scenario::from_toml`](bas_core::Scenario::from_toml) like any other
//! submission. Both formats therefore share one validation path and one
//! content digest: `{"kind": "sweep", "trials": 2}` and
//! `kind = "sweep"\ntrials = 2` land on the same cache entry.
//!
//! The accepted shape mirrors the TOML subset: one top-level object of
//! scalars/arrays, plus at most one level of nested objects (e.g.
//! `"platform": {"pes": 4}`), which map onto `[table]` sections.

use bas_core::toml::Value;

/// A parsed JSON value (subset sufficient for scenario documents).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// Convert a JSON scenario document into equivalent TOML text, ready for
/// `Scenario::from_toml`. Errors are human-readable and surface in the
/// daemon's 400 responses.
pub fn scenario_toml_from_json(input: &str) -> Result<String, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage after JSON document at byte {}", p.pos));
    }
    let Json::Object(entries) = value else {
        return Err("a scenario submission must be a JSON object".to_string());
    };
    let mut flat = String::new();
    let mut sections = String::new();
    for (key, value) in entries {
        check_key(&key)?;
        match value {
            Json::Object(sub) => {
                sections.push_str(&format!("\n[{key}]\n"));
                for (sub_key, sub_value) in sub {
                    check_key(&sub_key)?;
                    let rendered = toml_value(&sub_value)
                        .map_err(|e| format!("key `{key}.{sub_key}`: {e}"))?;
                    sections.push_str(&format!("{sub_key} = {}\n", rendered.render()));
                }
            }
            value => {
                let rendered = toml_value(&value).map_err(|e| format!("key `{key}`: {e}"))?;
                flat.push_str(&format!("{key} = {}\n", rendered.render()));
            }
        }
    }
    Ok(format!("{flat}{sections}"))
}

/// Keys become TOML bare keys verbatim, so they must be bare-key-safe —
/// otherwise a key could smuggle extra `key = value` lines into the
/// rendered document.
fn check_key(key: &str) -> Result<(), String> {
    let bare =
        !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        Ok(())
    } else {
        Err(format!("invalid key {key:?} (bare keys only: [A-Za-z0-9_-]+)"))
    }
}

/// Map a scalar/array JSON value onto the TOML value model.
fn toml_value(value: &Json) -> Result<Value, String> {
    match value {
        Json::Null => Err("null has no TOML equivalent; omit the key instead".to_string()),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Float(x) => Ok(Value::Float(*x)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        Json::Array(items) => {
            let rendered: Result<Vec<Value>, String> = items
                .iter()
                .map(|item| match item {
                    Json::Array(_) | Json::Object(_) => {
                        Err("arrays must contain only scalars".to_string())
                    }
                    item => toml_value(item),
                })
                .collect();
            Ok(Value::Array(rendered?))
        }
        Json::Object(_) => Err("objects nest at most one level deep".to_string()),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("unrecognized token at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
            None => Err("unexpected end of JSON document".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(format!("unsupported escape {other:?}"));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err("raw control character in string".to_string());
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences included).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the 4 hex digits of a `\u` escape (cursor just past the `u`),
    /// joining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let joined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(joined)
                        .ok_or_else(|| "invalid surrogate pair".to_string());
                }
            }
            return Err("lone high surrogate in \\u escape".to_string());
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err("lone low surrogate in \\u escape".to_string());
        }
        char::from_u32(first).ok_or_else(|| "invalid \\u escape".to_string())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or("truncated \\u escape")?;
        let value =
            u32::from_str_radix(digits, 16).map_err(|_| format!("bad \\u escape {digits:?}"))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !float {
            if let Ok(i) = token.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        token
            .parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number {token:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_core::Scenario;

    #[test]
    fn json_and_toml_submissions_share_a_digest() {
        let toml_sc = Scenario::from_toml(
            "kind = \"sweep\"\ntrials = 2\nhorizon = 200.0\nspecs = [\"EDF\", \"BAS-2\"]\n\n[platform]\npes = 2\n",
        )
        .unwrap();
        // Same knobs, different key order, ints where TOML had floats.
        let json = r#"{
            "specs": ["EDF", "BAS-2"],
            "platform": {"pes": 2},
            "kind": "sweep",
            "horizon": 200.0,
            "trials": 2
        }"#;
        let json_sc = Scenario::from_toml(&scenario_toml_from_json(json).unwrap()).unwrap();
        assert_eq!(json_sc, toml_sc);
        assert_eq!(json_sc.digest(), toml_sc.digest());
    }

    #[test]
    fn scalar_values_map_faithfully() {
        let toml = scenario_toml_from_json(
            r#"{"s": "hi \"there\"\n", "i": -42, "x": 2.5, "b": true, "a": [1, 2]}"#,
        )
        .unwrap();
        let doc = bas_core::toml::parse(&toml).unwrap();
        assert_eq!(doc["s"].as_str().unwrap(), "hi \"there\"\n");
        assert_eq!(doc["i"].as_int().unwrap(), -42);
        assert_eq!(doc["x"].as_float().unwrap(), 2.5);
        assert!(doc["b"].as_bool().unwrap());
        assert_eq!(
            doc["a"],
            bas_core::toml::Value::Array(vec![
                bas_core::toml::Value::Int(1),
                bas_core::toml::Value::Int(2),
            ])
        );
    }

    #[test]
    fn unicode_escapes_decode() {
        let toml = scenario_toml_from_json(r#"{"name": "café 😀"}"#).unwrap();
        let doc = bas_core::toml::parse(&toml).unwrap();
        assert_eq!(doc["name"].as_str().unwrap(), "café 😀");
    }

    #[test]
    fn bad_documents_are_rejected_with_reasons() {
        for (input, needle) in [
            ("", "unexpected end"),
            ("[1, 2]", "must be a JSON object"),
            ("{\"a\": 1} junk", "trailing garbage"),
            ("{\"a\": }", "unexpected"),
            ("{\"a\": 1, \"a\": 2}", "duplicate key"),
            ("{\"a\": null}", "null"),
            ("{\"a\": [[1]]}", "only scalars"),
            ("{\"a\": {\"b\": {\"c\": 1}}}", "one level"),
            ("{\"a\": \"\\ud800 lonely\"}", "surrogate"),
            ("{\"a\": 1e}", "bad number"),
            ("{\"a\" 1}", "expected ':'"),
            ("{\"a b\": 1}", "bare keys only"),
            ("{\"x\\ny = 1\\nz\": 1}", "bare keys only"),
        ] {
            let e = scenario_toml_from_json(input).unwrap_err();
            assert!(e.contains(needle), "{input:?} -> {e}");
        }
    }
}
