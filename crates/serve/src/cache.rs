//! A small least-recently-used eviction queue.
//!
//! The daemon keeps completed job results keyed by scenario digest; this
//! type tracks which finished jobs to keep. It stores only the *order* —
//! the actual results live in the job registry — so it stays a plain
//! `VecDeque` scan, which is the right tool at the daemon's scale
//! (capacities in the tens to hundreds, touched once per request).

use std::collections::VecDeque;

/// LRU ordering over keys: front = most recently used. Inserting past
/// capacity reports the evicted keys so the owner can drop their payloads.
#[derive(Debug)]
pub struct Lru<K: PartialEq> {
    capacity: usize,
    order: VecDeque<K>,
}

impl<K: PartialEq> Lru<K> {
    /// An empty LRU holding at most `capacity` keys (minimum 1 — a cache
    /// the server cannot put anything into would make every completed job
    /// vanish before its submitter reads it).
    pub fn new(capacity: usize) -> Self {
        Lru { capacity: capacity.max(1), order: VecDeque::new() }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Mark `key` as most recently used. Returns whether it was present.
    pub fn touch(&mut self, key: &K) -> bool {
        match self.order.iter().position(|k| k == key) {
            Some(ix) => {
                let k = self.order.remove(ix).expect("position just found");
                self.order.push_front(k);
                true
            }
            None => false,
        }
    }

    /// Remove and return the least recently used key, if any. The on-disk
    /// result store drives this directly: its budget is bytes, not key
    /// count, so it pops oldest entries until the byte total fits rather
    /// than relying on capacity-based eviction.
    pub fn pop_oldest(&mut self) -> Option<K> {
        self.order.pop_back()
    }

    /// Forget `key` without treating it as an eviction (e.g. the store
    /// quarantined its payload). Returns whether it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.order.iter().position(|k| k == key) {
            Some(ix) => {
                self.order.remove(ix);
                true
            }
            None => false,
        }
    }

    /// Insert (or refresh) `key` as most recently used, returning any keys
    /// evicted to stay within capacity (oldest first).
    pub fn insert(&mut self, key: K) -> Vec<K> {
        self.touch(&key);
        if !self.order.front().is_some_and(|k| *k == key) {
            self.order.push_front(key);
        }
        let mut evicted = Vec::new();
        while self.order.len() > self.capacity {
            evicted.push(self.order.pop_back().expect("len > capacity > 0"));
        }
        evicted.reverse(); // oldest first reads naturally at the call site
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_first() {
        let mut lru = Lru::new(2);
        assert!(lru.insert(1).is_empty());
        assert!(lru.insert(2).is_empty());
        // Touch 1 so 2 becomes the eviction candidate.
        assert!(lru.touch(&1));
        assert_eq!(lru.insert(3), vec![2]);
        assert_eq!(lru.len(), 2);
        assert!(lru.touch(&1) && lru.touch(&3) && !lru.touch(&2));
    }

    #[test]
    fn reinserting_refreshes_without_growth() {
        let mut lru = Lru::new(2);
        lru.insert(1);
        lru.insert(2);
        assert!(lru.insert(1).is_empty(), "refresh must not evict");
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.insert(3), vec![2], "1 was refreshed, 2 is oldest");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut lru = Lru::new(0);
        assert!(lru.insert(7).is_empty(), "the newest key always fits");
        assert_eq!(lru.insert(8), vec![7]);
    }

    #[test]
    fn touch_of_missing_key_is_a_noop() {
        let mut lru: Lru<u64> = Lru::new(4);
        assert!(!lru.touch(&9));
        assert!(lru.is_empty());
    }

    #[test]
    fn pop_oldest_walks_from_least_recent() {
        let mut lru = Lru::new(8);
        lru.insert(1);
        lru.insert(2);
        lru.insert(3);
        lru.touch(&1); // order (most → least recent): 1, 3, 2
        assert_eq!(lru.pop_oldest(), Some(2));
        assert_eq!(lru.pop_oldest(), Some(3));
        assert_eq!(lru.pop_oldest(), Some(1));
        assert_eq!(lru.pop_oldest(), None);
    }

    #[test]
    fn remove_forgets_without_eviction() {
        let mut lru = Lru::new(2);
        lru.insert(1);
        lru.insert(2);
        assert!(lru.remove(&1));
        assert!(!lru.remove(&1), "already gone");
        assert!(lru.insert(3).is_empty(), "slot freed by remove");
    }
}
