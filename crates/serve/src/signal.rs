//! SIGINT / SIGTERM → graceful drain.
//!
//! The workspace otherwise forbids `unsafe`; this module is the one
//! deliberate exception, containing the two libc calls a daemon cannot
//! avoid. The handler itself only stores to a static atomic (one of the
//! few async-signal-safe things a handler may do); a watcher thread
//! polls the flag and triggers [`ServerHandle::shutdown`] from safe code.
#![allow(unsafe_code)]

use crate::ServerHandle;

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub(super) static STOP: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        /// `signal(2)`. Returns the previous disposition (ignored here).
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install() {
        // SAFETY: `on_signal` matches the `void (*)(int)` handler ABI and
        // does nothing but an atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Install SIGINT/SIGTERM handlers that drain `handle`'s server: on the
/// first signal the daemon stops accepting connections, finishes every
/// queued job, and `Server::run` returns (so the process exits 0).
///
/// On non-Unix platforms this is a no-op; stop the daemon by other means.
pub fn install(handle: ServerHandle) {
    #[cfg(unix)]
    {
        imp::install();
        std::thread::Builder::new()
            .name("bas-serve-signals".to_string())
            .spawn(move || loop {
                if imp::STOP.load(std::sync::atomic::Ordering::SeqCst) {
                    handle.shutdown();
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            })
            .expect("spawn signal watcher");
    }
    #[cfg(not(unix))]
    let _ = handle;
}
