//! The persistent result store behind `bas serve --state-dir`.
//!
//! Layout of a state directory:
//!
//! ```text
//! <state-dir>/
//!   journal.bas          append-only index of committed / evicted blobs
//!   blobs/<digest>.report   one checksum frame holding `bas-report/v1` bytes
//!   blobs/<digest>.events   one checksum frame holding `bas-events/v2` bytes
//!   quarantine/          corrupt blobs are moved here, never served
//! ```
//!
//! Every on-disk payload — each journal record and each blob — is wrapped
//! in the same **frame**: a 4-byte little-endian payload length, an 8-byte
//! little-endian [FNV-1a 64](https://en.wikipedia.org/wiki/Fowler–Noll–Vo_hash_function)
//! checksum of the payload, then the payload itself. The frame makes torn
//! writes and bit rot detectable without any external metadata.
//!
//! # Commit protocol and crash recovery
//!
//! A commit appends a `done` record (digest, kind, payload length,
//! payload checksum) to the journal and fsyncs it **before** the blob file
//! is written and fsynced. The journal is therefore the record of intent:
//!
//! * Crash before the journal fsync → neither record nor blob survive;
//!   the result is simply recomputed on resubmission.
//! * Crash between journal fsync and blob fsync → the journal references
//!   a missing or torn blob. [`Store::open`] detects the mismatch (file
//!   size + frame header against the journal's recorded length/checksum),
//!   moves whatever exists into `quarantine/`, logs it, and forgets the
//!   entry — it is never served.
//! * A torn journal tail (partial frame, or a frame whose checksum fails)
//!   is truncated at the last intact frame; every record before it stays
//!   valid.
//!
//! Bit rot that survives the open-time header check (a flip inside the
//! payload body) is caught at hydration time: [`Store::load`] re-hashes
//! the whole payload and quarantines on mismatch.
//!
//! Records for the same digest+kind may legitimately repeat (commit,
//! evict, commit again); replay is strictly **last-wins** in journal
//! order. The journal is compacted (rewritten from the live index) on
//! every open, so it cannot grow without bound across restarts.
//!
//! # Fault injection
//!
//! For deterministic crash testing (the CI `serve-persist` job), the
//! `BAS_SERVE_FAULT` environment variable arms a one-shot crash inside
//! the commit path:
//!
//! * `torn-blob` — abort the process after writing half of the next blob
//!   payload (journal already fsynced → a referenced, torn blob).
//! * `lost-blob` — abort after the journal fsync, before the blob file is
//!   created.
//!
//! Both simulate `kill -9` at the worst possible instant, deterministically.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::cache::Lru;

/// Frame header size: `u32` payload length + `u64` FNV-1a 64 checksum.
pub const FRAME_HEADER_BYTES: usize = 12;

/// Upper bound on a journal record payload. Records are short ASCII lines;
/// anything claiming to be larger is corruption, not data.
const MAX_JOURNAL_RECORD: u32 = 4096;

/// FNV-1a 64 — the same hash family [`bas_core::Scenario::digest`] uses for
/// content addressing, here guarding on-disk payload integrity.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Wrap `payload` in a length+checksum frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of decoding one frame from the front of `buf`.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// An intact frame: its payload and the total bytes it consumed.
    Frame {
        /// The checksum-verified payload.
        payload: &'a [u8],
        /// Header + payload length — advance the cursor by this much.
        consumed: usize,
    },
    /// `buf` ends before the frame does — a torn tail.
    Torn,
    /// The frame is structurally invalid (length beyond `max_len`, or the
    /// checksum does not match the payload).
    Corrupt,
}

/// Decode one frame from the front of `buf`. `max_len` bounds how large a
/// payload a reader is willing to believe; a bit flip in the length field
/// must not make recovery read gigabytes.
pub fn decode_frame(buf: &[u8], max_len: u32) -> Decoded<'_> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Decoded::Torn;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    let sum = u64::from_le_bytes(buf[4..12].try_into().expect("8 bytes"));
    if len > max_len {
        return Decoded::Corrupt;
    }
    let end = FRAME_HEADER_BYTES + len as usize;
    if buf.len() < end {
        return Decoded::Torn;
    }
    let payload = &buf[FRAME_HEADER_BYTES..end];
    if fnv1a64(payload) != sum {
        return Decoded::Corrupt;
    }
    Decoded::Frame { payload, consumed: end }
}

/// Which artifact of a completed job a blob holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlobKind {
    /// `bas-report/v1` JSON — what `GET /v1/jobs/<id>/report` serves.
    Report,
    /// `bas-events/v2` NDJSON — the deterministic first-trial stream.
    Events,
}

impl BlobKind {
    fn as_str(self) -> &'static str {
        match self {
            BlobKind::Report => "report",
            BlobKind::Events => "events",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "report" => Some(BlobKind::Report),
            "events" => Some(BlobKind::Events),
            _ => None,
        }
    }
}

/// Counters surfaced through `/v1/healthz`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of live blobs (a digest with both report and events counts 2).
    pub entries: u64,
    /// Total on-disk bytes of live blobs, frame headers included.
    pub bytes: u64,
    /// Blobs read back and checksum-verified from disk.
    pub hydrations: u64,
    /// Blobs found torn/corrupt and moved to `quarantine/` (open + runtime).
    pub quarantines: u64,
    /// Blobs evicted to keep within the byte budget.
    pub evictions: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlobMeta {
    len: u32,
    sum: u64,
}

impl BlobMeta {
    fn frame_bytes(self) -> u64 {
        FRAME_HEADER_BYTES as u64 + u64::from(self.len)
    }
}

#[derive(Debug, Default)]
struct DigestEntry {
    report: Option<BlobMeta>,
    events: Option<BlobMeta>,
}

impl DigestEntry {
    fn get(&self, kind: BlobKind) -> Option<BlobMeta> {
        match kind {
            BlobKind::Report => self.report,
            BlobKind::Events => self.events,
        }
    }

    fn set(&mut self, kind: BlobKind, meta: Option<BlobMeta>) {
        match kind {
            BlobKind::Report => self.report = meta,
            BlobKind::Events => self.events = meta,
        }
    }

    fn is_empty(&self) -> bool {
        self.report.is_none() && self.events.is_none()
    }

    fn bytes(&self) -> u64 {
        self.report.map_or(0, BlobMeta::frame_bytes) + self.events.map_or(0, BlobMeta::frame_bytes)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMode {
    None,
    TornBlob,
    LostBlob,
}

/// The write-through on-disk result store. One instance per daemon,
/// guarded by a mutex in the server's shared state; every method that
/// touches disk takes `&mut self`.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    journal: File,
    index: HashMap<String, DigestEntry>,
    /// Digest-level recency; evicting a digest drops both its blobs.
    lru: Lru<String>,
    max_bytes: u64,
    bytes: u64,
    hydrations: u64,
    quarantines: u64,
    evictions: u64,
    quarantine_seq: u64,
    fault: FaultMode,
    quiet: bool,
}

impl Store {
    /// Open (or create) a state directory: replay the journal, truncate a
    /// torn tail, verify every referenced blob's frame header against the
    /// journal record, quarantine mismatches, delete orphan blobs, and
    /// compact the journal down to the live index.
    pub fn open(dir: &Path, max_bytes: u64, quiet: bool) -> io::Result<Store> {
        fs::create_dir_all(dir.join("blobs"))?;
        fs::create_dir_all(dir.join("quarantine"))?;
        let journal_path = dir.join("journal.bas");

        let mut index: HashMap<String, DigestEntry> = HashMap::new();
        let mut lru = Lru::new(usize::MAX);
        let raw = match fs::read(&journal_path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut offset = 0usize;
        while offset < raw.len() {
            match decode_frame(&raw[offset..], MAX_JOURNAL_RECORD) {
                Decoded::Frame { payload, consumed } => {
                    offset += consumed;
                    let Ok(record) = std::str::from_utf8(payload) else { continue };
                    apply_record(record, &mut index, &mut lru);
                }
                Decoded::Torn | Decoded::Corrupt => {
                    if !quiet {
                        eprintln!(
                            "bas serve store: journal tail torn at byte {offset} \
                             ({} bytes dropped)",
                            raw.len() - offset
                        );
                    }
                    break;
                }
            }
        }

        let mut store = Store {
            dir: dir.to_path_buf(),
            // Placeholder handle; replaced by `compact` below.
            journal: OpenOptions::new().create(true).append(true).open(&journal_path)?,
            index,
            lru,
            max_bytes: max_bytes.max(1),
            bytes: 0,
            hydrations: 0,
            quarantines: 0,
            evictions: 0,
            quarantine_seq: 0,
            fault: fault_from_env(),
            quiet,
        };
        store.verify_blobs()?;
        store.sweep_orphans()?;
        store.bytes = store.index.values().map(DigestEntry::bytes).sum();
        store.compact()?;
        // Enforce the budget immediately in case it shrank across restarts.
        store.enforce_budget()?;
        Ok(store)
    }

    /// Whether a live, so-far-uncorrupted blob exists for `digest`+`kind`.
    /// Marks the digest as recently used.
    pub fn has(&mut self, digest: &str, kind: BlobKind) -> bool {
        let hit = self.index.get(digest).and_then(|e| e.get(kind)).is_some();
        if hit {
            self.lru.touch(&digest.to_string());
        }
        hit
    }

    /// Read a blob back, verifying the full payload checksum. Corruption
    /// quarantines the blob and returns `None` — a quarantined digest
    /// behaves like a cache miss and is recomputed on resubmission.
    pub fn load(&mut self, digest: &str, kind: BlobKind) -> Option<Vec<u8>> {
        let meta = self.index.get(digest)?.get(kind)?;
        let path = self.blob_path(digest, kind);
        let ok = fs::read(&path).ok().and_then(|raw| match decode_frame(&raw, u32::MAX) {
            Decoded::Frame { payload, consumed }
                if consumed == raw.len()
                    && payload.len() == meta.len as usize
                    && fnv1a64(payload) == meta.sum =>
            {
                Some(payload.to_vec())
            }
            _ => None,
        });
        match ok {
            Some(payload) => {
                self.hydrations += 1;
                self.lru.touch(&digest.to_string());
                Some(payload)
            }
            None => {
                self.quarantine(digest, kind);
                let _ = self.append_records(&[evict_record(digest, kind)]);
                None
            }
        }
    }

    /// Write-through commit: journal record first (fsynced), then the blob
    /// (fsynced). Returns `Ok(false)` if the blob was already present or
    /// is larger than the whole byte budget (nothing written).
    pub fn commit(&mut self, digest: &str, kind: BlobKind, payload: &[u8]) -> io::Result<bool> {
        if self.index.get(digest).and_then(|e| e.get(kind)).is_some() {
            self.lru.touch(&digest.to_string());
            return Ok(false);
        }
        let meta = BlobMeta { len: payload.len() as u32, sum: fnv1a64(payload) };
        if meta.frame_bytes() > self.max_bytes {
            if !self.quiet {
                eprintln!(
                    "bas serve store: {digest}.{} ({} bytes) exceeds --state-max-bytes, \
                     not persisted",
                    kind.as_str(),
                    meta.frame_bytes()
                );
            }
            return Ok(false);
        }

        // 1. Intent: journal record, durable before any blob bytes exist.
        self.append_records(&[format!(
            "done {digest} {} {} {:016x}",
            kind.as_str(),
            meta.len,
            meta.sum
        )])?;
        if self.fault == FaultMode::LostBlob {
            std::process::abort();
        }

        // 2. Data: the blob frame.
        let path = self.blob_path(digest, kind);
        let mut file = File::create(&path)?;
        if self.fault == FaultMode::TornBlob {
            let frame = encode_frame(payload);
            file.write_all(&frame[..FRAME_HEADER_BYTES + payload.len() / 2])?;
            let _ = file.sync_all();
            std::process::abort();
        }
        file.write_all(&encode_frame(payload))?;
        file.sync_all()?;
        sync_dir(&self.dir.join("blobs"));

        self.index.entry(digest.to_string()).or_default().set(kind, Some(meta));
        self.bytes += meta.frame_bytes();
        self.lru.insert(digest.to_string());
        self.enforce_budget()?;
        Ok(true)
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self
                .index
                .values()
                .map(|e| u64::from(e.report.is_some()) + u64::from(e.events.is_some()))
                .sum(),
            bytes: self.bytes,
            hydrations: self.hydrations,
            quarantines: self.quarantines,
            evictions: self.evictions,
        }
    }

    fn blob_path(&self, digest: &str, kind: BlobKind) -> PathBuf {
        self.dir.join("blobs").join(format!("{digest}.{}", kind.as_str()))
    }

    /// Drop least-recently-used digests until the byte budget holds.
    fn enforce_budget(&mut self) -> io::Result<()> {
        let mut records = Vec::new();
        while self.bytes > self.max_bytes {
            let Some(digest) = self.lru.pop_oldest() else { break };
            let Some(entry) = self.index.remove(&digest) else { continue };
            for kind in [BlobKind::Report, BlobKind::Events] {
                if entry.get(kind).is_some() {
                    let _ = fs::remove_file(self.blob_path(&digest, kind));
                    records.push(evict_record(&digest, kind));
                    self.evictions += 1;
                }
            }
            self.bytes -= entry.bytes();
            if !self.quiet {
                eprintln!("bas serve store: evicted {digest} (budget)");
            }
        }
        if records.is_empty() {
            Ok(())
        } else {
            self.append_records(&records)
        }
    }

    /// Append framed records to the journal and fsync once.
    fn append_records(&mut self, records: &[String]) -> io::Result<()> {
        let mut buf = Vec::new();
        for r in records {
            buf.extend_from_slice(&encode_frame(r.as_bytes()));
        }
        self.journal.write_all(&buf)?;
        self.journal.sync_all()
    }

    /// Move a blob (whatever of it exists) into `quarantine/` and forget it.
    fn quarantine(&mut self, digest: &str, kind: BlobKind) {
        let src = self.blob_path(digest, kind);
        self.quarantine_seq += 1;
        let dst = self.dir.join("quarantine").join(format!(
            "{digest}.{}.{}",
            kind.as_str(),
            self.quarantine_seq
        ));
        let moved = fs::rename(&src, &dst).is_ok();
        if let Some(entry) = self.index.get_mut(digest) {
            if let Some(meta) = entry.get(kind) {
                self.bytes = self.bytes.saturating_sub(meta.frame_bytes());
            }
            entry.set(kind, None);
            if entry.is_empty() {
                self.index.remove(digest);
                self.lru.remove(&digest.to_string());
            }
        }
        self.quarantines += 1;
        if !self.quiet {
            eprintln!(
                "bas serve store: quarantined {digest}.{} ({})",
                kind.as_str(),
                if moved { "moved" } else { "blob missing" }
            );
        }
    }

    /// Open-time check of every indexed blob: the file must exist, have
    /// exactly the framed size the journal recorded, and carry a matching
    /// frame header. Full payload verification is deferred to [`Store::load`].
    fn verify_blobs(&mut self) -> io::Result<()> {
        let checks: Vec<(String, BlobKind, BlobMeta)> = self
            .index
            .iter()
            .flat_map(|(d, e)| {
                [BlobKind::Report, BlobKind::Events]
                    .into_iter()
                    .filter_map(|k| e.get(k).map(|m| (d.clone(), k, m)))
            })
            .collect();
        for (digest, kind, meta) in checks {
            let path = self.blob_path(&digest, kind);
            let ok = (|| -> io::Result<bool> {
                let mut f = File::open(&path)?;
                if f.metadata()?.len() != meta.frame_bytes() {
                    return Ok(false);
                }
                let mut header = [0u8; FRAME_HEADER_BYTES];
                f.read_exact(&mut header)?;
                let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
                let sum = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
                Ok(len == meta.len && sum == meta.sum)
            })()
            .unwrap_or(false);
            if !ok {
                self.quarantine(&digest, kind);
            }
        }
        Ok(())
    }

    /// Delete blob files the index does not reference (e.g. an eviction
    /// that crashed between its journal record and the file unlink).
    fn sweep_orphans(&mut self) -> io::Result<()> {
        for entry in fs::read_dir(self.dir.join("blobs"))? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let live = name.rsplit_once('.').is_some_and(|(digest, ext)| {
                BlobKind::parse(ext)
                    .and_then(|k| self.index.get(digest).and_then(|e| e.get(k)))
                    .is_some()
            });
            if !live {
                let _ = fs::remove_file(entry.path());
                if !self.quiet {
                    eprintln!("bas serve store: removed orphan blob {name}");
                }
            }
        }
        Ok(())
    }

    /// Rewrite the journal from the live index (atomically, via rename) so
    /// dead records don't accumulate across restarts, then reopen the
    /// append handle.
    fn compact(&mut self) -> io::Result<()> {
        let tmp = self.dir.join("journal.tmp");
        let path = self.dir.join("journal.bas");
        {
            let mut f = File::create(&tmp)?;
            // Records are written oldest-first so replay rebuilds the same
            // recency order. The LRU normally tracks exactly the index keys;
            // stragglers (belt and braces) go first, alphabetically.
            let mut known = Vec::new();
            while let Some(d) = self.lru.pop_oldest() {
                if self.index.contains_key(&d) {
                    known.push(d);
                }
            }
            let mut ordered: Vec<String> =
                self.index.keys().filter(|d| !known.contains(d)).cloned().collect();
            ordered.sort();
            ordered.extend(known);
            let mut buf = Vec::new();
            for digest in &ordered {
                let entry = &self.index[digest];
                for kind in [BlobKind::Report, BlobKind::Events] {
                    if let Some(meta) = entry.get(kind) {
                        buf.extend_from_slice(&encode_frame(
                            format!(
                                "done {digest} {} {} {:016x}",
                                kind.as_str(),
                                meta.len,
                                meta.sum
                            )
                            .as_bytes(),
                        ));
                    }
                }
                self.lru.insert(digest.clone());
                // Rebuild recency: ordered is oldest-first, so the last
                // insert ends up most recent — matching pre-compaction order.
            }
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        sync_dir(&self.dir);
        self.journal = OpenOptions::new().append(true).open(&path)?;
        Ok(())
    }
}

fn evict_record(digest: &str, kind: BlobKind) -> String {
    format!("evict {digest} {}", kind.as_str())
}

/// Apply one journal record to the replay index. Unknown record types are
/// skipped (they are checksummed, so they come from a newer writer, not
/// corruption).
fn apply_record(record: &str, index: &mut HashMap<String, DigestEntry>, lru: &mut Lru<String>) {
    let mut parts = record.split(' ');
    match parts.next() {
        Some("done") => {
            let (Some(digest), Some(kind), Some(len), Some(sum)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return;
            };
            let (Some(kind), Ok(len), Ok(sum)) =
                (BlobKind::parse(kind), len.parse::<u32>(), u64::from_str_radix(sum, 16))
            else {
                return;
            };
            index.entry(digest.to_string()).or_default().set(kind, Some(BlobMeta { len, sum }));
            lru.insert(digest.to_string());
        }
        Some("evict") => {
            let (Some(digest), Some(kind)) = (parts.next(), parts.next()) else { return };
            let Some(kind) = BlobKind::parse(kind) else { return };
            if let Some(entry) = index.get_mut(digest) {
                entry.set(kind, None);
                if entry.is_empty() {
                    index.remove(digest);
                    lru.remove(&digest.to_string());
                }
            }
        }
        _ => {}
    }
}

fn fault_from_env() -> FaultMode {
    match std::env::var("BAS_SERVE_FAULT").as_deref() {
        Ok("torn-blob") => FaultMode::TornBlob,
        Ok("lost-blob") => FaultMode::LostBlob,
        _ => FaultMode::None,
    }
}

/// Best-effort directory fsync (directory entries are metadata too).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Truncate `path` to `len` bytes — used by tests to simulate torn writes.
#[doc(hidden)]
pub fn truncate_file(path: &Path, len: u64) -> io::Result<()> {
    OpenOptions::new().write(true).open(path)?.set_len(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bas-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    #[test]
    fn frame_round_trips() {
        let frame = encode_frame(b"hello");
        assert_eq!(
            decode_frame(&frame, 1024),
            Decoded::Frame { payload: b"hello", consumed: frame.len() }
        );
    }

    #[test]
    fn truncated_frame_is_torn_and_flipped_bit_is_corrupt() {
        let frame = encode_frame(b"payload bytes");
        for cut in 0..frame.len() {
            assert_eq!(decode_frame(&frame[..cut], 1024), Decoded::Torn, "cut at {cut}");
        }
        for bit in 0..frame.len() * 8 {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            match decode_frame(&bad, 1024) {
                Decoded::Frame { .. } => panic!("bit flip at {bit} went undetected"),
                Decoded::Torn | Decoded::Corrupt => {}
            }
        }
    }

    #[test]
    fn commit_load_round_trip_and_counters() {
        let dir = tmpdir("roundtrip");
        let mut store = Store::open(&dir, 1 << 20, true).unwrap();
        assert!(store.commit("d1", BlobKind::Report, b"{\"a\":1}").unwrap());
        assert!(!store.commit("d1", BlobKind::Report, b"{\"a\":1}").unwrap(), "dedup");
        assert!(store.has("d1", BlobKind::Report));
        assert!(!store.has("d1", BlobKind::Events));
        assert_eq!(store.load("d1", BlobKind::Report).unwrap(), b"{\"a\":1}");
        let stats = store.stats();
        assert_eq!((stats.entries, stats.hydrations, stats.quarantines), (1, 1, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_rehydrates_the_index() {
        let dir = tmpdir("reopen");
        {
            let mut store = Store::open(&dir, 1 << 20, true).unwrap();
            store.commit("aaaa", BlobKind::Report, b"report-a").unwrap();
            store.commit("aaaa", BlobKind::Events, b"events-a\n").unwrap();
            store.commit("bbbb", BlobKind::Report, b"report-b").unwrap();
        }
        let mut store = Store::open(&dir, 1 << 20, true).unwrap();
        assert_eq!(store.stats().entries, 3);
        assert_eq!(store.load("aaaa", BlobKind::Report).unwrap(), b"report-a");
        assert_eq!(store.load("aaaa", BlobKind::Events).unwrap(), b"events-a\n");
        assert_eq!(store.load("bbbb", BlobKind::Report).unwrap(), b"report-b");
        assert_eq!(store.stats().quarantines, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_is_truncated_to_the_last_good_record() {
        let dir = tmpdir("torn-journal");
        {
            let mut store = Store::open(&dir, 1 << 20, true).unwrap();
            store.commit("aaaa", BlobKind::Report, b"report-a").unwrap();
            store.commit("bbbb", BlobKind::Report, b"report-b").unwrap();
        }
        // Tear the tail: drop the final 5 bytes of the journal.
        let journal = dir.join("journal.bas");
        let len = fs::metadata(&journal).unwrap().len();
        truncate_file(&journal, len - 5).unwrap();
        let mut store = Store::open(&dir, 1 << 20, true).unwrap();
        // The record for bbbb was torn; its (fully written) blob is now an
        // orphan and removed. aaaa survives intact.
        assert_eq!(store.load("aaaa", BlobKind::Report).unwrap(), b"report-a");
        assert!(!store.has("bbbb", BlobKind::Report));
        assert!(!dir.join("blobs/bbbb.report").exists(), "orphan blob swept");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_blob_is_quarantined_on_open() {
        let dir = tmpdir("torn-blob");
        {
            let mut store = Store::open(&dir, 1 << 20, true).unwrap();
            store.commit("aaaa", BlobKind::Report, b"a long enough report payload").unwrap();
            store.commit("bbbb", BlobKind::Report, b"report-b").unwrap();
        }
        // Simulate a crash mid-blob-write: journal intact, blob truncated.
        let blob = dir.join("blobs/aaaa.report");
        truncate_file(&blob, 7).unwrap();
        let mut store = Store::open(&dir, 1 << 20, true).unwrap();
        assert!(!store.has("aaaa", BlobKind::Report), "torn blob never served");
        assert_eq!(store.stats().quarantines, 1);
        assert!(dir.join("quarantine").read_dir().unwrap().count() == 1);
        assert_eq!(store.load("bbbb", BlobKind::Report).unwrap(), b"report-b");
        // The quarantine decision is durable: reopen quarantines nothing new.
        drop(store);
        let store = Store::open(&dir, 1 << 20, true).unwrap();
        assert_eq!(store.stats().quarantines, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_inside_payload_is_caught_at_load_time() {
        let dir = tmpdir("bitflip");
        {
            let mut store = Store::open(&dir, 1 << 20, true).unwrap();
            store.commit("aaaa", BlobKind::Report, b"pristine payload bytes").unwrap();
        }
        let blob = dir.join("blobs/aaaa.report");
        let mut raw = fs::read(&blob).unwrap();
        let mid = FRAME_HEADER_BYTES + 4;
        raw[mid] ^= 0x40;
        fs::write(&blob, &raw).unwrap();
        // Size and header still match, so open() keeps it…
        let mut store = Store::open(&dir, 1 << 20, true).unwrap();
        assert!(store.has("aaaa", BlobKind::Report));
        // …but hydration re-hashes the payload and quarantines.
        assert_eq!(store.load("aaaa", BlobKind::Report), None);
        assert_eq!(store.stats().quarantines, 1);
        assert!(!store.has("aaaa", BlobKind::Report));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_digests() {
        let dir = tmpdir("budget");
        // Each blob frame is 12 + 100 bytes; budget fits two of them.
        let mut store = Store::open(&dir, 230, true).unwrap();
        let payload = [b'x'; 100];
        store.commit("aaaa", BlobKind::Report, &payload).unwrap();
        store.commit("bbbb", BlobKind::Report, &payload).unwrap();
        assert!(store.has("aaaa", BlobKind::Report), "refresh aaaa");
        store.commit("cccc", BlobKind::Report, &payload).unwrap();
        assert!(!store.has("bbbb", BlobKind::Report), "LRU victim");
        assert!(store.has("aaaa", BlobKind::Report));
        assert!(store.has("cccc", BlobKind::Report));
        assert_eq!(store.stats().evictions, 1);
        assert!(!dir.join("blobs/bbbb.report").exists());
        // Eviction is mirrored to disk: a reopen agrees.
        drop(store);
        let mut store = Store::open(&dir, 230, true).unwrap();
        assert!(!store.has("bbbb", BlobKind::Report));
        assert!(store.has("aaaa", BlobKind::Report) && store.has("cccc", BlobKind::Report));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_payload_is_skipped_not_stored() {
        let dir = tmpdir("oversize");
        let mut store = Store::open(&dir, 64, true).unwrap();
        assert!(!store.commit("aaaa", BlobKind::Report, &[b'x'; 100]).unwrap());
        assert_eq!(store.stats().entries, 0);
        assert!(!dir.join("blobs/aaaa.report").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_done_records_last_wins() {
        let dir = tmpdir("lastwins");
        {
            let mut store = Store::open(&dir, 1 << 20, true).unwrap();
            store.commit("aaaa", BlobKind::Report, b"first").unwrap();
        }
        // Hand-append: evict then a fresh done for the same digest, as a
        // commit→evict→commit cycle would. The blob on disk holds "second".
        {
            let mut f = OpenOptions::new().append(true).open(dir.join("journal.bas")).unwrap();
            f.write_all(&encode_frame(b"evict aaaa report")).unwrap();
            let payload = b"second";
            fs::write(dir.join("blobs/aaaa.report"), encode_frame(payload)).unwrap();
            f.write_all(&encode_frame(
                format!("done aaaa report {} {:016x}", payload.len(), fnv1a64(payload)).as_bytes(),
            ))
            .unwrap();
        }
        let mut store = Store::open(&dir, 1 << 20, true).unwrap();
        assert_eq!(store.load("aaaa", BlobKind::Report).unwrap(), b"second");
        assert_eq!(store.stats().quarantines, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_blob_for_journaled_record_is_quarantined() {
        let dir = tmpdir("lost-blob");
        {
            let mut store = Store::open(&dir, 1 << 20, true).unwrap();
            store.commit("aaaa", BlobKind::Report, b"report-a").unwrap();
        }
        fs::remove_file(dir.join("blobs/aaaa.report")).unwrap();
        let mut store = Store::open(&dir, 1 << 20, true).unwrap();
        assert!(!store.has("aaaa", BlobKind::Report));
        assert_eq!(store.stats().quarantines, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
