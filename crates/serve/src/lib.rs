//! Scheduling-as-a-service: the daemon behind `bas serve`.
//!
//! A long-running HTTP/1.1 server that accepts scenario submissions (TOML
//! or JSON bodies), executes them on a fixed-size worker pool, caches
//! completed reports by [`Scenario::digest`](bas_core::Scenario::digest),
//! and streams deterministic `bas-events/v2` replays. Hand-rolled on
//! `std::net` — the build environment is offline, so no hyper/tokio; plain
//! blocking threads are also simply enough for a simulation service whose
//! unit of work is seconds of compute.
//!
//! # Surface
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /v1/jobs` | Submit a scenario; returns job id + digest. Identical submissions coalesce onto one job (single-flight) and completed digests are served from an LRU result cache. |
//! | `GET /v1/jobs/<id>` | Job status; embeds the `bas-report/v1` report once done. |
//! | `GET /v1/jobs/<id>/report` | The raw report, byte-for-byte what `bas run <scenario> --format json` prints. |
//! | `GET /v1/jobs/<id>/events` | Chunked `bas-events/v2` JSONL first-trial replay, byte-for-byte what `bas run --events` writes. |
//! | `GET /v1/jobs/<id>/events?follow=1` | Live subscription to a queued/running job's stream (see [`hub`]); converges byte-identically with the replay once the job finishes. |
//! | `GET /v1/presets` | The preset catalog. |
//! | `GET /v1/healthz` | Counters + drain state (+ [`store`] counters when persistence is on). |
//!
//! Backpressure is explicit: the submission queue is bounded
//! (`--queue-depth`) and a full queue answers `429` with `Retry-After`;
//! per-request budgets (`--max-trials`, `--max-horizon`, body size cap)
//! answer `422`/`413`. SIGINT/SIGTERM drain gracefully: stop accepting,
//! finish queued jobs, exit 0.
//!
//! With `--state-dir` the result cache is **durable**: completed reports
//! and event streams are written through to a checksummed on-disk [`store`]
//! and survive restarts — a warm daemon serves previously computed digests
//! byte-identical with zero recomputation, and crash recovery quarantines
//! (never serves) anything torn or corrupt.
//!
//! The crate deliberately does not depend on `bas-cli` (which depends on
//! it): executors plug in through [`ScenarioService`], with
//! [`SweepService`] as the built-in sweep-only backend.

#![deny(unsafe_code)] // `signal.rs` carries the single, documented exception
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod hub;
pub mod json;
mod server;
mod service;
pub mod signal;
pub mod store;

pub use server::{ServeConfig, ServeStats, Server, ServerHandle, SCHEMA};
pub use service::{ScenarioService, SweepService};
