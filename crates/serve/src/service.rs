//! The pluggable execution backend behind the daemon.
//!
//! `bas-serve` owns the HTTP surface, queueing and caching, but not the
//! preset runners — those live in `bas-cli`, which depends on this crate.
//! The [`ScenarioService`] trait breaks that cycle: the CLI hands the
//! server a service that can run every preset, while this crate ships a
//! sweep-only [`SweepService`] so the daemon is usable (and testable)
//! standalone.

use bas_core::{Report, Scenario, ScenarioKind};

/// Executes validated scenarios on behalf of the server's worker pool.
///
/// `run` is called from multiple worker threads concurrently and must be
/// deterministic for a given scenario — the result cache assumes a digest
/// maps to exactly one report.
pub trait ScenarioService: Send + Sync {
    /// Run `scenario` to completion and produce its report. The returned
    /// report must match what `bas run <scenario> --format json` would
    /// emit, byte for byte once serialized — the daemon serves it verbatim.
    fn run(&self, scenario: &Scenario) -> Result<Report, String>;

    /// The preset catalog served at `GET /v1/presets` as a JSON document.
    ///
    /// The default implementation renders the kind registry of `bas-core`
    /// (names, descriptions, knobs); the CLI overrides it with the richer
    /// `bas list --format json` document, which also lists scenario files
    /// on disk.
    fn presets_json(&self) -> String {
        use bas_core::report::json_string;
        use std::fmt::Write as _;
        let mut out = String::from("{\n  \"schema\": \"bas-serve/v1\",\n  \"presets\": [");
        for (i, kind) in ScenarioKind::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let knobs: Vec<String> = kind.fields().iter().map(|f| json_string(f)).collect();
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"description\": {}, \"knobs\": [{}]}}",
                json_string(kind.name()),
                json_string(kind.describe()),
                knobs.join(", "),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// The built-in backend: runs `sweep` scenarios through
/// [`Scenario::run_sweep`] and declines every other kind.
///
/// The non-sweep presets (tables, figures) need the renderers in
/// `bas-cli`; a daemon embedded without the CLI still serves the general
/// sweep surface, which is what programmatic submitters build anyway.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepService;

impl ScenarioService for SweepService {
    fn run(&self, scenario: &Scenario) -> Result<Report, String> {
        if scenario.kind != ScenarioKind::Sweep {
            return Err(format!(
                "this server runs only `sweep` scenarios (kind `{}` needs the full CLI backend)",
                scenario.kind
            ));
        }
        let sweep = scenario.run_sweep().map_err(|e| e.to_string())?;
        let mut report = Report::from_sweep(&scenario.name, scenario.kind.name(), &sweep);
        report.pes = scenario.pes;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> Scenario {
        Scenario::from_toml(
            "kind = \"sweep\"\ntrials = 1\nhorizon = 50.0\nworkload = \"unit\"\nprocessor = \"unit\"\nbattery = \"none\"\nspecs = [\"EDF\"]\n",
        )
        .unwrap()
    }

    #[test]
    fn sweep_service_runs_sweeps_and_rejects_the_rest() {
        let report = SweepService.run(&tiny_sweep()).unwrap();
        assert_eq!(report.scenario, "sweep");
        assert_eq!(report.rows.len(), 1);

        let e = SweepService.run(&Scenario::preset(ScenarioKind::Fig5)).unwrap_err();
        assert!(e.contains("only `sweep`"), "{e}");
    }

    #[test]
    fn default_presets_catalog_is_json_with_every_kind() {
        let json = SweepService.presets_json();
        for kind in ScenarioKind::ALL {
            assert!(json.contains(&format!("\"name\": \"{}\"", kind.name())), "{json}");
        }
        assert!(json.contains("\"schema\": \"bas-serve/v1\""));
    }
}
