//! Bounded broadcast of a running job's `bas-events/v2` stream.
//!
//! The worker that executes a sweep job generates the job's deterministic
//! first-trial event stream (the exact bytes `GET …/events` replays) and
//! pushes it through an [`EventHub`]. Followers — connections holding
//! `GET /v1/jobs/<id>/events?follow=1` open — read from the hub at their
//! own pace.
//!
//! The contract is **the worker never blocks on a consumer**: the hub
//! keeps a bounded window of the most recent complete NDJSON lines; a
//! follower that falls behind the window skips ahead and is told how many
//! lines it missed via a `{"type":"follow_drop",…}` marker line (the
//! `bas-events/v2` schema requires consumers to skip unknown `type`s, so
//! the marker is backward compatible). A follower that keeps up receives
//! a byte-exact prefix of the finished replay stream.
//!
//! Lines, not bytes, are the broadcast unit so a drop can never tear a
//! JSON record in half.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Shared fan-out point between one producing worker and any number of
/// follower connections.
#[derive(Debug)]
pub struct EventHub {
    state: Mutex<HubState>,
    cond: Condvar,
}

#[derive(Debug)]
struct HubState {
    /// Window of complete lines (each includes its trailing `\n`).
    lines: VecDeque<Arc<[u8]>>,
    /// Absolute index (in the whole stream) of `lines[0]`.
    start: u64,
    window_bytes: usize,
    window_cap: usize,
    /// Byte-exact copy of the whole stream, destined for the result store.
    /// `None` once abandoned (disabled, over cap, or handed out).
    persist: Option<Vec<u8>>,
    persist_cap: usize,
    /// Bytes of a line still missing its `\n`.
    partial: Vec<u8>,
    /// Number of followers currently attached (or about to wait).
    followers: usize,
    /// Producer finished; no more lines will arrive.
    done: bool,
    /// Producer failed mid-stream — followers must not write a clean
    /// end-of-stream terminator.
    aborted: bool,
    /// The worker decided not to generate (no store, no followers at
    /// dequeue time); late followers fall back to on-demand replay.
    skipped: bool,
}

/// One read from the hub.
#[derive(Debug)]
pub struct Batch {
    /// Lines from the follower's cursor onward (possibly empty).
    pub lines: Vec<Arc<[u8]>>,
    /// Cursor to pass to the next call.
    pub next_cursor: u64,
    /// Lines that fell out of the window before the follower got to them.
    pub dropped: u64,
    /// The stream is complete **and** this batch reaches its end.
    pub drained: bool,
    /// The producer aborted; the stream is truncated.
    pub aborted: bool,
}

impl EventHub {
    /// A hub whose window holds at most `window_cap` bytes of recent lines.
    /// With `persist_cap > 0` the hub additionally accumulates the full
    /// byte stream (up to that cap) for the persistent store.
    pub fn new(window_cap: usize, persist_cap: usize) -> Arc<EventHub> {
        Arc::new(EventHub {
            state: Mutex::new(HubState {
                lines: VecDeque::new(),
                start: 0,
                window_bytes: 0,
                window_cap: window_cap.max(1),
                persist: if persist_cap > 0 { Some(Vec::new()) } else { None },
                persist_cap,
                partial: Vec::new(),
                followers: 0,
                done: false,
                aborted: false,
                skipped: false,
            }),
            cond: Condvar::new(),
        })
    }

    /// Producer side: append raw stream bytes. Complete lines enter the
    /// window immediately; a trailing fragment waits for its newline.
    /// Never blocks beyond the brief state lock.
    pub fn push(&self, buf: &[u8]) {
        let mut st = self.state.lock().expect("hub lock");
        if let Some(p) = st.persist.as_mut() {
            p.extend_from_slice(buf);
        }
        if st.persist.as_ref().is_some_and(|p| p.len() > st.persist_cap) {
            st.persist = None; // too big to store; keep streaming
        }
        st.partial.extend_from_slice(buf);
        let mut new_line = false;
        while let Some(nl) = st.partial.iter().position(|&b| b == b'\n') {
            let rest = st.partial.split_off(nl + 1);
            let line: Arc<[u8]> = std::mem::replace(&mut st.partial, rest).into();
            st.window_bytes += line.len();
            st.lines.push_back(line);
            new_line = true;
            // Evict oldest lines past the cap, always keeping the newest.
            while st.window_bytes > st.window_cap && st.lines.len() > 1 {
                let old = st.lines.pop_front().expect("len > 1");
                st.window_bytes -= old.len();
                st.start += 1;
            }
        }
        drop(st);
        if new_line {
            self.cond.notify_all();
        }
    }

    /// Producer side: the stream ended. With `ok` false the stream is
    /// marked truncated. Returns the accumulated full byte stream (for the
    /// store) when `ok` and it stayed under the persist cap.
    pub fn finish(&self, ok: bool) -> Option<Vec<u8>> {
        let mut st = self.state.lock().expect("hub lock");
        if !st.partial.is_empty() {
            // Defensive: the JSONL writer always ends lines with \n.
            let line: Arc<[u8]> = std::mem::take(&mut st.partial).into();
            st.window_bytes += line.len();
            st.lines.push_back(line);
        }
        st.done = true;
        st.aborted = !ok;
        let persist = if ok { st.persist.take() } else { None };
        drop(st);
        self.cond.notify_all();
        persist
    }

    /// Producer side: mark that no stream will be generated for this job.
    /// Returns `true` if any follower is already attached — in which case
    /// the caller must generate after all.
    pub fn skip_unless_followed(&self) -> bool {
        let mut st = self.state.lock().expect("hub lock");
        if st.followers > 0 {
            return true;
        }
        st.skipped = true;
        st.done = true;
        drop(st);
        self.cond.notify_all();
        false
    }

    /// Follower side: register interest. Returns `false` if the producer
    /// already decided to skip generation (fall back to on-demand replay).
    pub fn attach(&self) -> bool {
        let mut st = self.state.lock().expect("hub lock");
        if st.skipped {
            return false;
        }
        st.followers += 1;
        true
    }

    /// Follower side: done reading (always pair with a successful
    /// [`EventHub::attach`]).
    pub fn detach(&self) {
        let mut st = self.state.lock().expect("hub lock");
        st.followers = st.followers.saturating_sub(1);
    }

    /// Follower side: read everything available from `cursor` (an absolute
    /// line index), waiting up to `wait` for news. An empty, non-`drained`
    /// batch means the wait timed out — check for shutdown and call again.
    pub fn next_batch(&self, cursor: u64, wait: Duration) -> Batch {
        let mut st = self.state.lock().expect("hub lock");
        loop {
            let end = st.start + st.lines.len() as u64;
            if cursor < end || st.done {
                let from = cursor.max(st.start);
                let dropped = from - cursor;
                let skip = (from - st.start) as usize;
                let lines: Vec<Arc<[u8]>> = st.lines.iter().skip(skip).cloned().collect();
                return Batch {
                    next_cursor: end,
                    dropped,
                    drained: st.done,
                    aborted: st.aborted,
                    lines,
                };
            }
            let (guard, timeout) = self.cond.wait_timeout(st, wait).expect("hub lock");
            st = guard;
            let end = st.start + st.lines.len() as u64;
            if timeout.timed_out() && cursor >= end && !st.done {
                // Cursor unchanged: if lines raced in and were evicted,
                // the next call counts them as dropped.
                return Batch {
                    next_cursor: cursor,
                    dropped: 0,
                    drained: false,
                    aborted: st.aborted,
                    lines: Vec::new(),
                };
            }
        }
    }
}

/// `io::Write` adapter handed to `Scenario::stream_events` so the engine's
/// observer output fans out through the hub.
#[derive(Debug)]
pub struct HubSink(pub Arc<EventHub>);

impl Write for HubSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.push(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(hub: &EventHub) -> (Vec<u8>, u64) {
        let mut cursor = 0;
        let mut out = Vec::new();
        let mut dropped = 0;
        loop {
            let b = hub.next_batch(cursor, Duration::from_millis(50));
            dropped += b.dropped;
            for l in &b.lines {
                out.extend_from_slice(l);
            }
            cursor = b.next_cursor;
            if b.drained {
                return (out, dropped);
            }
        }
    }

    #[test]
    fn fast_follower_sees_the_exact_stream() {
        let hub = EventHub::new(1 << 20, 1 << 20);
        // Push in awkward fragments straddling line boundaries.
        hub.push(b"{\"a\":1}\n{\"b\"");
        hub.push(b":2}\n");
        let persist = {
            hub.push(b"{\"c\":3}\n");
            hub.finish(true)
        };
        let (bytes, dropped) = read_all(&hub);
        assert_eq!(bytes, b"{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n");
        assert_eq!(dropped, 0);
        assert_eq!(persist.unwrap(), b"{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n");
    }

    #[test]
    fn slow_follower_skips_ahead_with_a_drop_count() {
        let hub = EventHub::new(16, 0); // window fits roughly two tiny lines
        for i in 0..100 {
            hub.push(format!("{{\"i\":{i}}}\n").as_bytes());
        }
        hub.finish(true);
        let (bytes, dropped) = read_all(&hub);
        assert!(dropped > 0, "window must have evicted lines");
        // Whatever survives is whole lines ending at the true stream end.
        assert!(bytes.ends_with(b"{\"i\":99}\n"));
        assert!(bytes.iter().filter(|&&b| b == b'\n').count() as u64 + dropped == 100);
    }

    #[test]
    fn persist_is_abandoned_past_its_cap() {
        let hub = EventHub::new(1 << 20, 8);
        hub.push(b"0123456789\n");
        assert!(hub.finish(true).is_none(), "over persist cap");
    }

    #[test]
    fn skip_unless_followed_respects_attached_followers() {
        let hub = EventHub::new(64, 0);
        assert!(hub.attach());
        assert!(hub.skip_unless_followed(), "a follower is waiting");
        hub.detach();

        let idle = EventHub::new(64, 0);
        assert!(!idle.skip_unless_followed());
        assert!(!idle.attach(), "late follower told to replay instead");
        let b = idle.next_batch(0, Duration::from_millis(10));
        assert!(b.drained && b.lines.is_empty());
    }

    #[test]
    fn aborted_stream_is_flagged() {
        let hub = EventHub::new(1 << 20, 0);
        hub.push(b"{\"a\":1}\n");
        hub.finish(false);
        let b = hub.next_batch(0, Duration::from_millis(10));
        assert!(b.aborted && b.drained);
    }
}
