//! The daemon: listener, routing, job registry, worker pool and drain.
//!
//! Concurrency model — deliberately boring, std-only:
//!
//! * one accept loop (nonblocking + short sleep so shutdown is noticed),
//! * one short-lived thread per connection (requests are `Connection:
//!   close`, so a connection is one request),
//! * a fixed pool of worker threads popping job ids off a bounded queue
//!   guarded by a `Mutex` + `Condvar`.
//!
//! All shared state lives in one [`Registry`] behind a single mutex. Every
//! critical section is a few map operations — scenario runs happen outside
//! the lock — so contention is irrelevant next to simulation time.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use bas_core::report::json_string;
use bas_core::{Scenario, ScenarioKind};

use crate::cache::Lru;
use crate::http;
use crate::hub::{EventHub, HubSink};
use crate::service::ScenarioService;
use crate::store::{BlobKind, Store};

/// Schema tag of every JSON document the daemon itself emits (reports keep
/// their own `bas-report/v1`, event streams their `bas-events/v2`).
pub const SCHEMA: &str = "bas-serve/v1";

/// Tunables of a [`Server`], all overridable from `bas serve` flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing jobs (0 = available parallelism).
    pub workers: usize,
    /// Jobs that may wait in the queue before submissions get 429.
    pub queue_depth: usize,
    /// Completed jobs kept for cache hits before LRU eviction.
    pub cache_capacity: usize,
    /// Largest accepted `trials` knob (per-request budget; 422 beyond).
    pub max_trials: usize,
    /// Largest accepted `horizon` knob, simulated seconds (422 beyond).
    pub max_horizon: f64,
    /// Largest accepted request body, bytes (413 beyond).
    pub max_body_bytes: usize,
    /// Suppress the per-request access log on stderr.
    pub quiet: bool,
    /// Directory for the persistent result store ([`crate::store`]);
    /// `None` keeps the cache in-memory only.
    pub state_dir: Option<PathBuf>,
    /// Byte budget of the on-disk store; least-recently-used digests are
    /// evicted (and the eviction journaled) beyond it.
    pub state_max_bytes: u64,
    /// Bytes of recent event-stream lines a `?follow=1` subscriber may lag
    /// behind before lines are dropped (with a marker) rather than ever
    /// backpressuring the worker.
    pub follow_buffer_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
            queue_depth: 64,
            cache_capacity: 128,
            max_trials: 10_000,
            max_horizon: 1e9,
            max_body_bytes: 1024 * 1024,
            quiet: false,
            state_dir: None,
            state_max_bytes: 256 * 1024 * 1024,
            follow_buffer_bytes: 1024 * 1024,
        }
    }
}

impl ServeConfig {
    /// The worker-thread count `workers = 0` resolves to.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// Where a job is in its lifecycle. Results are `Arc<str>` so responses
/// serve them without copying the (potentially large) report.
#[derive(Debug, Clone)]
enum JobStatus {
    Queued,
    Running,
    /// Completed; carries the `bas-report/v1` JSON exactly as `bas run
    /// --format json` would print it.
    Done(Arc<str>),
    /// The run failed; carries the error message. Failures are cached like
    /// results (same digest → same failure) until evicted.
    Failed(Arc<str>),
    /// Completed in a previous life of the daemon: the report lives in the
    /// persistent store and hydrates lazily on first access. Externally
    /// indistinguishable from `Done` until read.
    Stored,
}

impl JobStatus {
    fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) | JobStatus::Stored => "done",
            JobStatus::Failed(_) => "failed",
        }
    }

    fn is_finished(&self) -> bool {
        matches!(self, JobStatus::Done(_) | JobStatus::Failed(_) | JobStatus::Stored)
    }
}

#[derive(Debug)]
struct Job {
    digest: String,
    scenario: Scenario,
    status: JobStatus,
}

/// All mutable daemon state, guarded by one mutex.
struct Registry {
    jobs: HashMap<u64, Job>,
    /// Digest → job id: the single-flight and cache index. One digest maps
    /// to at most one job at a time, so concurrent identical submissions
    /// coalesce onto the same run.
    by_digest: HashMap<String, u64>,
    queue: VecDeque<u64>,
    /// Finished job ids in recency order; eviction drops them from `jobs`
    /// and `by_digest` (the persistent store, when configured, keeps its
    /// own copy — a later resubmission of an evicted digest rehydrates).
    done_lru: Lru<u64>,
    /// Live-subscription fan-out points for queued/running sweep jobs.
    hubs: HashMap<u64, Arc<EventHub>>,
    next_id: u64,
    running: usize,
    submitted: u64,
    executed: u64,
    cache_hits: u64,
}

impl Registry {
    fn new(cache_capacity: usize) -> Self {
        Registry {
            jobs: HashMap::new(),
            by_digest: HashMap::new(),
            queue: VecDeque::new(),
            done_lru: Lru::new(cache_capacity),
            hubs: HashMap::new(),
            next_id: 1,
            running: 0,
            submitted: 0,
            executed: 0,
            cache_hits: 0,
        }
    }

    /// Record a finished job in the LRU and evict beyond capacity.
    fn finish(&mut self, id: u64) {
        for evicted in self.done_lru.insert(id) {
            if let Some(job) = self.jobs.remove(&evicted) {
                if self.by_digest.get(&job.digest) == Some(&evicted) {
                    self.by_digest.remove(&job.digest);
                }
            }
            self.hubs.remove(&evicted);
        }
    }
}

/// What a submission resolved to, mapped onto an HTTP response by the
/// connection handler.
enum Submitted {
    /// Fresh digest: a new job was queued (202).
    New { id: u64, digest: String },
    /// Known digest: coalesced onto an existing job, or served from the
    /// result cache if it already finished (200).
    Existing { id: u64, digest: String, status: &'static str, cached: bool },
    /// The bounded queue is full (429).
    QueueFull,
    /// The daemon is draining for shutdown (503).
    Draining,
}

struct Shared {
    config: ServeConfig,
    worker_count: usize,
    service: Arc<dyn ScenarioService>,
    registry: Mutex<Registry>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    /// Currently-running `/events` replays. Replays run on connection
    /// threads (they are on-demand reads, not queued jobs), so without a
    /// bound N concurrent requests would run N simulations past every
    /// admission control; [`ReplayPermit`] caps them at the pool width.
    replays_active: AtomicUsize,
    /// Socket clones of every live connection, keyed by connection id.
    /// Drain joins connection threads, so a client that stops reading its
    /// response must not pin one forever: after [`DRAIN_GRACE`] the drain
    /// path force-`shutdown(2)`s whatever is still here, failing the
    /// thread's blocked write immediately.
    conn_streams: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicUsize,
    /// The persistent result store (`--state-dir`), when configured. Its
    /// lock is never held while the registry lock is held: probe/commit
    /// first, then update the registry.
    store: Option<Mutex<Store>>,
}

/// How long graceful drain waits for in-flight responses/streams to end
/// on their own before force-closing their sockets.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// RAII registration of a connection's socket clone in
/// [`Shared::conn_streams`] for the force-close path; deregisters when the
/// connection thread finishes (however it finishes).
struct ConnGuard<'a> {
    shared: &'a Shared,
    id: u64,
}

impl<'a> ConnGuard<'a> {
    fn register(shared: &'a Shared, stream: &TcpStream) -> Option<Self> {
        let clone = stream.try_clone().ok()?;
        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed) as u64;
        shared.conn_streams.lock().expect("conn streams poisoned").insert(id, clone);
        Some(ConnGuard { shared, id })
    }
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.shared.conn_streams.lock().expect("conn streams poisoned").remove(&self.id);
    }
}

/// RAII permit bounding concurrent `/events` replays to the worker-pool
/// width; requests beyond the bound are answered 429 instead.
struct ReplayPermit<'a> {
    shared: &'a Shared,
}

impl<'a> ReplayPermit<'a> {
    fn acquire(shared: &'a Shared) -> Option<Self> {
        let limit = shared.worker_count;
        shared
            .replays_active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| (n < limit).then_some(n + 1))
            .ok()
            .map(|_| ReplayPermit { shared })
    }
}

impl Drop for ReplayPermit<'_> {
    fn drop(&mut self) {
        self.shared.replays_active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Point-in-time daemon counters (the in-process view of `/v1/healthz`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Accepted submissions, including coalesced/cached ones.
    pub submitted: u64,
    /// Jobs actually executed by the worker pool.
    pub executed: u64,
    /// Submissions answered by coalescing or the result cache.
    pub cache_hits: u64,
    /// Jobs currently waiting in the queue.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
}

/// A cloneable remote control for a running [`Server`]: shutdown, idle
/// detection and counters. In-process embedders (the bench harness, tests)
/// use it instead of HTTP.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin graceful shutdown: stop accepting connections, finish every
    /// queued job, then let [`Server::run`] return.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
    }

    /// Whether the queue is empty and no job is executing.
    pub fn is_idle(&self) -> bool {
        let reg = self.shared.registry.lock().expect("registry poisoned");
        reg.queue.is_empty() && reg.running == 0
    }

    /// Current counters.
    pub fn stats(&self) -> ServeStats {
        let reg = self.shared.registry.lock().expect("registry poisoned");
        ServeStats {
            submitted: reg.submitted,
            executed: reg.executed,
            cache_hits: reg.cache_hits,
            queued: reg.queue.len(),
            running: reg.running,
        }
    }
}

/// The bound-but-not-yet-serving daemon. [`Server::bind`] claims the
/// address (so callers can learn the ephemeral port and print the
/// listening line before any request races in); [`Server::run`] serves
/// until [`ServerHandle::shutdown`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind `config.addr` and prepare the daemon around `service`. With
    /// `state_dir` set this also opens (and crash-recovers) the persistent
    /// store before any request can race in.
    pub fn bind(config: ServeConfig, service: Arc<dyn ScenarioService>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let worker_count = config.resolved_workers();
        let registry = Mutex::new(Registry::new(config.cache_capacity));
        let store = match &config.state_dir {
            Some(dir) => Some(Mutex::new(Store::open(dir, config.state_max_bytes, config.quiet)?)),
            None => None,
        };
        let shared = Arc::new(Shared {
            config,
            worker_count,
            service,
            registry,
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            replays_active: AtomicUsize::new(0),
            conn_streams: Mutex::new(HashMap::new()),
            next_conn_id: AtomicUsize::new(0),
            store,
        });
        Ok(Server { listener, shared })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote control valid for the lifetime of the process.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serve until shutdown: spawn the worker pool, accept connections,
    /// then drain the queue and join everything on the way out.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, shared } = self;
        listener.set_nonblocking(true)?;
        let workers: Vec<_> = (0..shared.worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bas-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !shared.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&shared);
                    connections.push(std::thread::spawn(move || {
                        handle_connection(&shared, stream);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
            connections.retain(|h| !h.is_finished());
        }
        // Drain: no new connections are accepted; workers finish every
        // queued job (their loop only exits on shutdown + empty queue),
        // and in-flight responses/streams complete.
        shared.work_ready.notify_all();
        for handle in workers {
            let _ = handle.join();
        }
        // Connection threads get DRAIN_GRACE to finish on their own; after
        // that their sockets are force-closed so a client that stopped
        // reading (a blocked write) cannot pin the drain, and the joins
        // below return promptly.
        let grace_deadline = std::time::Instant::now() + DRAIN_GRACE;
        while std::time::Instant::now() < grace_deadline {
            connections.retain(|h| !h.is_finished());
            if connections.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        for stream in shared.conn_streams.lock().expect("conn streams poisoned").values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for handle in connections {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Pop and execute jobs until shutdown with an empty queue.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let (id, scenario, digest, hub) = {
            let mut reg = shared.registry.lock().expect("registry poisoned");
            loop {
                if let Some(id) = reg.queue.pop_front() {
                    reg.running += 1;
                    let job = reg.jobs.get_mut(&id).expect("queued job is registered");
                    job.status = JobStatus::Running;
                    let (scenario, digest) = (job.scenario.clone(), job.digest.clone());
                    let hub = reg.hubs.get(&id).cloned();
                    break (id, scenario, digest, hub);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = shared
                    .work_ready
                    .wait_timeout(reg, Duration::from_millis(200))
                    .expect("registry poisoned");
                reg = guard;
            }
        };
        // Sweep jobs shard their trials across the pool width. The sweep
        // layer guarantees bit-identical results for any thread count, so
        // this never changes what the cache serves relative to a local
        // `bas run` (where `threads` likewise defaults to the machine).
        let mut run_scenario = scenario;
        if run_scenario.kind == ScenarioKind::Sweep {
            run_scenario.threads = shared.worker_count;
        }
        // Generate the deterministic first-trial event stream through the
        // hub — the exact bytes `/events` replays — so followers watch it
        // live and the store keeps it for replay-free serving. Skipped when
        // nobody can use it (no store, no follower attached yet).
        if let Some(hub) = &hub {
            let wanted = shared.store.is_some() || hub.skip_unless_followed();
            if wanted {
                let ok = run_scenario.stream_events(HubSink(Arc::clone(hub))).is_ok();
                let persist = hub.finish(ok);
                if let (Some(store), Some(bytes)) = (&shared.store, persist) {
                    let committed = store.lock().expect("store poisoned").commit(
                        &digest,
                        BlobKind::Events,
                        &bytes,
                    );
                    if let Err(e) = committed {
                        store_log(shared, &format!("events commit failed for {digest}: {e}"));
                    }
                }
            }
        }
        let result = shared.service.run(&run_scenario).map(|report| report.to_json());
        if let (Some(store), Ok(json)) = (&shared.store, &result) {
            let committed = store.lock().expect("store poisoned").commit(
                &digest,
                BlobKind::Report,
                json.as_bytes(),
            );
            if let Err(e) = committed {
                store_log(shared, &format!("report commit failed for {digest}: {e}"));
            }
        }
        let mut reg = shared.registry.lock().expect("registry poisoned");
        reg.running -= 1;
        reg.executed += 1;
        let job = reg.jobs.get_mut(&id).expect("running job is registered");
        job.status = match result {
            Ok(json) => JobStatus::Done(Arc::from(json)),
            Err(message) => JobStatus::Failed(Arc::from(message)),
        };
        reg.hubs.remove(&id);
        reg.finish(id);
    }
}

fn store_log(shared: &Shared, message: &str) {
    if !shared.config.quiet {
        eprintln!("bas serve store: {message}");
    }
}

/// Serve one request on `stream` and close it.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // Both directions are bounded: a client that trickles its request or
    // never drains its response (TCP backpressure on a large report or an
    // /events stream) errors out of the blocked syscall instead of pinning
    // this thread — `Server::run` joins every connection thread during
    // drain, so an unbounded write would wedge shutdown. The drain path
    // additionally force-closes sockets still registered after its grace
    // period (see `ConnGuard`/`DRAIN_GRACE`).
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _guard = ConnGuard::register(shared, &stream);
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let request = match http::read_request(&mut reader, shared.config.max_body_bytes) {
        Ok(Some(request)) => request,
        Ok(None) => return, // connect-and-leave probe
        Err(e) => {
            access_log(shared, "-", "-", e.status);
            let mut out = stream;
            let _ = http::write_response(
                &mut out,
                e.status,
                "application/json",
                error_json(&e.message).as_bytes(),
                &[],
            );
            return;
        }
    };
    let (method, path) = (request.method.clone(), request.path.clone());
    let status = route(shared, stream, request);
    access_log(shared, &method, &path, status);
}

fn access_log(shared: &Shared, method: &str, path: &str, status: u16) {
    if !shared.config.quiet {
        eprintln!("bas serve: {method} {path} -> {status}");
    }
}

/// Dispatch one parsed request, returning the response status (for the
/// access log; streaming endpoints report the status of their head).
fn route(shared: &Arc<Shared>, mut stream: TcpStream, request: http::Request) -> u16 {
    let respond = |stream: &mut TcpStream, status: u16, body: &str, extra: &[(&str, &str)]| {
        let _ = http::write_response(stream, status, "application/json", body.as_bytes(), extra);
        status
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => respond(&mut stream, 200, &healthz_json(shared), &[]),
        ("GET", "/v1/presets") => respond(&mut stream, 200, &shared.service.presets_json(), &[]),
        ("POST", "/v1/jobs") => handle_submit(shared, stream, &request.body),
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            handle_job_get(shared, stream, path, request.query_flag("follow"))
        }
        (_, "/v1/healthz" | "/v1/presets" | "/v1/jobs") => respond(
            &mut stream,
            405,
            &error_json(&format!("method {} not allowed here", request.method)),
            &[],
        ),
        (_, path) if path.starts_with("/v1/jobs/") => respond(
            &mut stream,
            405,
            &error_json(&format!("method {} not allowed here", request.method)),
            &[],
        ),
        (_, path) => respond(&mut stream, 404, &error_json(&format!("no route {path}")), &[]),
    }
}

/// `POST /v1/jobs`: parse (TOML or JSON), validate, budget-check, then
/// queue / coalesce / reject.
fn handle_submit(shared: &Arc<Shared>, mut stream: TcpStream, body: &[u8]) -> u16 {
    let respond = |stream: &mut TcpStream, status: u16, body: &str, extra: &[(&str, &str)]| {
        let _ = http::write_response(stream, status, "application/json", body.as_bytes(), extra);
        status
    };
    let scenario = match parse_submission(body) {
        Ok(scenario) => scenario,
        Err(message) => return respond(&mut stream, 400, &error_json(&message), &[]),
    };
    if scenario.trials > shared.config.max_trials {
        let message = format!(
            "trials = {} exceeds this server's --max-trials budget of {}",
            scenario.trials, shared.config.max_trials
        );
        return respond(&mut stream, 422, &error_json(&message), &[]);
    }
    if scenario.horizon > shared.config.max_horizon {
        let message = format!(
            "horizon = {} exceeds this server's --max-horizon budget of {}",
            scenario.horizon, shared.config.max_horizon
        );
        return respond(&mut stream, 422, &error_json(&message), &[]);
    }
    match submit(shared, scenario) {
        Submitted::New { id, digest } => {
            respond(&mut stream, 202, &submit_json(id, &digest, "queued", false), &[])
        }
        Submitted::Existing { id, digest, status, cached } => {
            respond(&mut stream, 200, &submit_json(id, &digest, status, cached), &[])
        }
        Submitted::QueueFull => respond(
            &mut stream,
            429,
            &error_json("job queue is full; retry shortly"),
            &[("Retry-After", "1")],
        ),
        Submitted::Draining => {
            respond(&mut stream, 503, &error_json("server is shutting down"), &[])
        }
    }
}

/// Decode a submission body: JSON if the first non-whitespace byte is `{`,
/// the TOML scenario format otherwise. Both normalize into a validated
/// [`Scenario`].
fn parse_submission(body: &[u8]) -> Result<Scenario, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let toml_text = if text.trim_start().starts_with('{') {
        crate::json::scenario_toml_from_json(text).map_err(|e| format!("JSON body: {e}"))?
    } else {
        text.to_string()
    };
    Scenario::from_toml(&toml_text).map_err(|e| e.to_string())
}

fn submit(shared: &Arc<Shared>, mut scenario: Scenario) -> Submitted {
    // Workers override `threads` to the pool width for sweep jobs (see
    // `worker_loop`), so the knob never affects what this server executes.
    // Normalize it away before digesting so cache identity matches
    // execution identity: two submissions identical except for `threads`
    // coalesce onto one run instead of re-executing.
    if scenario.kind == ScenarioKind::Sweep {
        scenario.threads = 0;
    }
    let digest = scenario.digest();
    // Probe the persistent store before taking the registry lock (the two
    // locks are never nested). A hit turns the submission into a lazily
    // hydrated completed job — no queue slot, no recompute.
    let stored_hit = match &shared.store {
        Some(store) => store.lock().expect("store poisoned").has(&digest, BlobKind::Report),
        None => false,
    };
    let is_sweep = scenario.kind == ScenarioKind::Sweep;
    let mut reg = shared.registry.lock().expect("registry poisoned");
    if shared.shutdown.load(Ordering::SeqCst) {
        return Submitted::Draining;
    }
    if let Some(&id) = reg.by_digest.get(&digest) {
        let status = reg.jobs.get(&id).expect("indexed job is registered").status.clone();
        reg.submitted += 1;
        reg.cache_hits += 1;
        if status.is_finished() {
            reg.done_lru.touch(&id);
        }
        return Submitted::Existing {
            id,
            digest,
            status: status.name(),
            cached: status.is_finished(),
        };
    }
    if stored_hit {
        let id = reg.next_id;
        reg.next_id += 1;
        reg.jobs.insert(id, Job { digest: digest.clone(), scenario, status: JobStatus::Stored });
        reg.by_digest.insert(digest.clone(), id);
        reg.submitted += 1;
        reg.cache_hits += 1;
        reg.finish(id);
        return Submitted::Existing { id, digest, status: "done", cached: true };
    }
    if reg.queue.len() >= shared.config.queue_depth {
        return Submitted::QueueFull;
    }
    let id = reg.next_id;
    reg.next_id += 1;
    reg.jobs.insert(id, Job { digest: digest.clone(), scenario, status: JobStatus::Queued });
    reg.by_digest.insert(digest.clone(), id);
    reg.queue.push_back(id);
    reg.submitted += 1;
    if is_sweep {
        // Sweep jobs get a broadcast hub so `?follow=1` can attach before
        // or during execution; the persist half feeds the events blob.
        let persist_cap = match &shared.store {
            Some(_) => {
                usize::try_from(shared.config.state_max_bytes / 2).unwrap_or(usize::MAX).max(1)
            }
            None => 0,
        };
        reg.hubs.insert(id, EventHub::new(shared.config.follow_buffer_bytes, persist_cap));
    }
    drop(reg);
    shared.work_ready.notify_one();
    Submitted::New { id, digest }
}

/// `GET /v1/jobs/<id>[/report|/events[?follow=1]]`.
fn handle_job_get(shared: &Arc<Shared>, mut stream: TcpStream, path: &str, follow: bool) -> u16 {
    let respond = |stream: &mut TcpStream, status: u16, body: &str| {
        let _ = http::write_response(stream, status, "application/json", body.as_bytes(), &[]);
        status
    };
    let rest = path.strip_prefix("/v1/jobs/").expect("router checked the prefix");
    let (id_text, tail) = match rest.split_once('/') {
        Some((id_text, tail)) => (id_text, tail),
        None => (rest, ""),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return respond(&mut stream, 404, &error_json(&format!("bad job id {id_text:?}")));
    };
    // Snapshot what the response needs and release the lock before any
    // (potentially slow) streaming work.
    let snapshot = {
        let mut reg = shared.registry.lock().expect("registry poisoned");
        match reg.jobs.get(&id) {
            Some(job) => {
                let snap = (job.digest.clone(), job.scenario.clone(), job.status.clone());
                if snap.2.is_finished() {
                    reg.done_lru.touch(&id);
                }
                let hub = reg.hubs.get(&id).cloned();
                Some((snap, hub))
            }
            None => None,
        }
    };
    let Some(((digest, scenario, mut status), hub)) = snapshot else {
        return respond(
            &mut stream,
            404,
            &error_json(&format!("no job {id} (unknown, or evicted from the result cache)")),
        );
    };
    // A `Stored` job hydrates lazily: the report blob is read back and
    // checksum-verified on first access. A corrupt blob was quarantined by
    // the load and behaves like an evicted cache entry.
    if matches!(status, JobStatus::Stored) && tail != "events" {
        match hydrate(shared, id, &digest) {
            Some(hydrated) => status = hydrated,
            None => {
                return respond(
                    &mut stream,
                    404,
                    &error_json(&format!(
                        "job {id}'s stored result was corrupt and has been quarantined; \
                         resubmit to recompute"
                    )),
                );
            }
        }
    }
    match tail {
        "" => respond(&mut stream, 200, &job_json(id, &digest, &scenario, &status)),
        "report" => match &status {
            JobStatus::Done(report) => {
                let _ = http::write_response(
                    &mut stream,
                    200,
                    "application/json",
                    report.as_bytes(),
                    &[],
                );
                200
            }
            JobStatus::Failed(message) => respond(&mut stream, 500, &error_json(message)),
            JobStatus::Queued | JobStatus::Running | JobStatus::Stored => respond(
                &mut stream,
                409,
                &error_json(&format!("job {id} is {}; report not ready", status.name())),
            ),
        },
        "events" => {
            if scenario.kind != ScenarioKind::Sweep {
                return respond(
                    &mut stream,
                    409,
                    &error_json(&format!(
                        "events replay only `sweep` scenarios; job {id} is kind `{}`",
                        scenario.kind
                    )),
                );
            }
            // Live subscription: attach to the running/queued job's hub and
            // stream lines as the worker produces them. No permit needed —
            // the worker is doing the computing, this thread only copies.
            if follow && !status.is_finished() {
                if let Some(hub) = &hub {
                    if hub.attach() {
                        let code = stream_follow(stream, hub);
                        hub.detach();
                        return code;
                    }
                }
                // Generation was skipped (or the job predates hubs): fall
                // through to the on-demand replay, which serves the same
                // bytes — just not incrementally.
            }
            // A finished job's stream may be on disk already — serve the
            // stored bytes without recomputing anything.
            if status.is_finished() {
                if let Some(store) = &shared.store {
                    let bytes =
                        store.lock().expect("store poisoned").load(&digest, BlobKind::Events);
                    if let Some(bytes) = bytes {
                        return stream_stored_events(stream, &bytes);
                    }
                }
            }
            // Replays bypass the worker queue, so they carry their own
            // admission control: at most `worker_count` at once.
            let Some(_permit) = ReplayPermit::acquire(shared) else {
                let _ = http::write_response(
                    &mut stream,
                    429,
                    "application/json",
                    error_json("replay capacity is saturated; retry shortly").as_bytes(),
                    &[("Retry-After", "1")],
                );
                return 429;
            };
            stream_job_events(stream, &scenario)
        }
        other => respond(&mut stream, 404, &error_json(&format!("no job endpoint {other:?}"))),
    }
}

/// Resolve a [`JobStatus::Stored`] job to `Done` by reading its report
/// blob back from the store. `None` means the blob failed verification and
/// was quarantined: the job and its digest mapping are dropped so a
/// resubmission recomputes cleanly.
fn hydrate(shared: &Arc<Shared>, id: u64, digest: &str) -> Option<JobStatus> {
    let store = shared.store.as_ref()?;
    let loaded = store.lock().expect("store poisoned").load(digest, BlobKind::Report);
    match loaded.and_then(|bytes| String::from_utf8(bytes).ok()) {
        Some(json) => {
            let status = JobStatus::Done(Arc::from(json));
            let mut reg = shared.registry.lock().expect("registry poisoned");
            if let Some(job) = reg.jobs.get_mut(&id) {
                if matches!(job.status, JobStatus::Stored) {
                    job.status = status.clone();
                }
            }
            Some(status)
        }
        None => {
            let mut reg = shared.registry.lock().expect("registry poisoned");
            if reg.by_digest.get(digest) == Some(&id) {
                reg.by_digest.remove(digest);
            }
            reg.jobs.remove(&id);
            reg.done_lru.remove(&id);
            None
        }
    }
}

/// Stream the deterministic first-trial event replay as chunked
/// `bas-events/v2` JSONL. Runs on the connection thread — replays are
/// on-demand reads, not queued jobs.
fn stream_job_events(mut stream: TcpStream, scenario: &Scenario) -> u16 {
    if http::write_chunked_head(&mut stream, "application/x-ndjson").is_err() {
        return 200;
    }
    let sink = BufWriter::with_capacity(8192, http::ChunkedWriter::new(stream));
    match scenario.stream_events(sink) {
        Ok(mut sink) => {
            let _ = sink.flush();
            if let Ok(chunker) = sink.into_inner() {
                let _ = chunker.finish();
            }
        }
        Err(_) => {
            // Head already sent; a mid-stream failure (replay error or a
            // vanished subscriber) surfaces to the client as a stream that
            // ends without the terminating chunk.
        }
    }
    200
}

/// Serve a finished job's event stream from its stored bytes — same
/// chunked framing as a replay, zero recomputation.
fn stream_stored_events(mut stream: TcpStream, bytes: &[u8]) -> u16 {
    if http::write_chunked_head(&mut stream, "application/x-ndjson").is_err() {
        return 200;
    }
    let mut sink = BufWriter::with_capacity(8192, http::ChunkedWriter::new(stream));
    if sink.write_all(bytes).and_then(|()| sink.flush()).is_ok() {
        if let Ok(chunker) = sink.into_inner() {
            let _ = chunker.finish();
        }
    }
    200
}

/// Stream a job's event lines live from its [`EventHub`] (`?follow=1`).
///
/// The subscriber runs at its own pace: lines it missed (evicted from the
/// hub's bounded window) are acknowledged with a `follow_drop` marker
/// line, and the worker is never blocked. A stream the producer aborted
/// ends without the terminating chunk so clients can detect truncation —
/// exactly like a failed replay.
fn stream_follow(mut stream: TcpStream, hub: &Arc<EventHub>) -> u16 {
    if http::write_chunked_head(&mut stream, "application/x-ndjson").is_err() {
        return 200;
    }
    let mut out = BufWriter::with_capacity(8192, http::ChunkedWriter::new(stream));
    let mut cursor = 0u64;
    loop {
        let batch = hub.next_batch(cursor, Duration::from_millis(200));
        if batch.dropped > 0 {
            let marker =
                format!("{{\"type\": \"follow_drop\", \"dropped_lines\": {}}}\n", batch.dropped);
            if out.write_all(marker.as_bytes()).is_err() {
                return 200;
            }
        }
        for line in &batch.lines {
            if out.write_all(line).is_err() {
                return 200;
            }
        }
        cursor = batch.next_cursor;
        if (!batch.lines.is_empty() || batch.dropped > 0) && out.flush().is_err() {
            return 200;
        }
        if batch.drained {
            if !batch.aborted {
                if let Ok(chunker) = out.into_inner() {
                    let _ = chunker.finish();
                }
            }
            return 200;
        }
    }
}

fn error_json(message: &str) -> String {
    format!("{{\"error\": {}}}\n", json_string(message))
}

fn submit_json(id: u64, digest: &str, status: &str, cached: bool) -> String {
    format!(
        "{{\"schema\": {}, \"job\": {id}, \"digest\": {}, \"status\": {}, \"cached\": {cached}}}\n",
        json_string(SCHEMA),
        json_string(digest),
        json_string(status),
    )
}

fn job_json(id: u64, digest: &str, scenario: &Scenario, status: &JobStatus) -> String {
    let mut out = format!(
        "{{\"schema\": {}, \"job\": {id}, \"digest\": {}, \"kind\": {}, \"status\": {}",
        json_string(SCHEMA),
        json_string(digest),
        json_string(scenario.kind.name()),
        json_string(status.name()),
    );
    match status {
        JobStatus::Done(report) => {
            out.push_str(", \"report\": ");
            out.push_str(report.trim_end());
        }
        JobStatus::Failed(message) => {
            out.push_str(", \"error\": ");
            out.push_str(&json_string(message));
        }
        // `Stored` reaches here only for the status view of a job the
        // handler chose not to hydrate; it reads as "done" without the
        // embedded report.
        JobStatus::Queued | JobStatus::Running | JobStatus::Stored => {}
    }
    out.push_str("}\n");
    out
}

fn healthz_json(shared: &Arc<Shared>) -> String {
    // Store stats first — the store and registry locks are never nested.
    let store = shared.store.as_ref().map(|s| s.lock().expect("store poisoned").stats());
    let reg = shared.registry.lock().expect("registry poisoned");
    let draining = shared.shutdown.load(Ordering::SeqCst);
    let idle = reg.queue.is_empty() && reg.running == 0;
    let store_field = match store {
        Some(s) => format!(
            ", \"store\": {{\"bytes\": {}, \"entries\": {}, \"hydrations\": {}, \"quarantines\": {}, \"evictions\": {}}}",
            s.bytes, s.entries, s.hydrations, s.quarantines, s.evictions,
        ),
        None => String::new(),
    };
    format!(
        "{{\"schema\": {}, \"status\": {}, \"workers\": {}, \"queued\": {}, \"running\": {}, \"jobs\": {}, \"submitted\": {}, \"executed\": {}, \"cache_hits\": {}{store_field}, \"idle\": {idle}}}\n",
        json_string(SCHEMA),
        json_string(if draining { "draining" } else { "ok" }),
        shared.worker_count,
        reg.queue.len(),
        reg.running,
        reg.jobs.len(),
        reg.submitted,
        reg.executed,
        reg.cache_hits,
    )
}
