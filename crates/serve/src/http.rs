//! A minimal, std-only HTTP/1.1 layer: request parsing, response writing
//! and chunked transfer encoding.
//!
//! The daemon speaks just enough HTTP for its own API — one request per
//! connection (`Connection: close`), `Content-Length` bodies on the way in,
//! fixed-length or chunked bodies on the way out. Anything outside that
//! subset is rejected with a 4xx rather than misread.

use std::io::{self, BufRead, Write};

/// Longest accepted request line / header line, bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted on one request.
const MAX_HEADERS: usize = 64;
/// How much of an oversized body we drain before answering 413, so the
/// response reaches clients that only read after writing everything.
const DRAIN_CAP_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path, query and body (headers are consumed
/// during parsing; only the ones the server acts on are kept).
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target path, without the query string.
    pub path: String,
    /// The raw query string (after `?`), empty if none was sent.
    pub query: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Whether the query string carries `name` as a truthy flag
    /// (`name=1`, `name=true`, or bare `name`).
    pub fn query_flag(&self, name: &str) -> bool {
        self.query.split('&').any(|pair| {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            key == name && matches!(value, "" | "1" | "true")
        })
    }
}

/// A request that could not be parsed, mapped to the HTTP status the
/// server should answer with.
#[derive(Debug)]
pub struct RequestError {
    /// HTTP status code (4xx).
    pub status: u16,
    /// Human-readable reason, returned in the JSON error body.
    pub message: String,
}

impl RequestError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        RequestError { status, message: message.into() }
    }
}

/// Read one line terminated by `\n`, stripping the trailing `\r\n`/`\n`.
/// Returns `None` on a clean EOF before any byte.
fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    use std::io::Read as _;
    let mut buf = Vec::new();
    let mut limited = reader.by_ref().take(MAX_LINE_BYTES as u64 + 1);
    let n = limited.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if n > MAX_LINE_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "line too long"));
    }
    while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 header line"))
}

/// Parse one HTTP/1.x request from `reader`, enforcing `max_body` on the
/// declared `Content-Length`.
///
/// Returns `Ok(None)` if the peer closed the connection without sending
/// anything (a bare connect/disconnect probe, not an error).
pub fn read_request(
    reader: &mut impl BufRead,
    max_body: usize,
) -> Result<Option<Request>, RequestError> {
    let bad = |m: String| RequestError::new(400, m);
    let line = match read_line(reader) {
        Ok(None) => return Ok(None),
        Ok(Some(line)) => line,
        Err(e) => return Err(bad(format!("unreadable request line: {e}"))),
    };
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(bad(format!("malformed request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::new(505, format!("unsupported protocol {version:?}")));
    }
    let mut content_length: Option<usize> = None;
    for _ in 0..=MAX_HEADERS {
        let header = match read_line(reader) {
            Ok(Some(h)) => h,
            Ok(None) => return Err(bad("connection closed inside headers".to_string())),
            Err(e) => return Err(bad(format!("unreadable header: {e}"))),
        };
        if header.is_empty() {
            let body = read_body(reader, content_length, max_body)?;
            let (path, query) = match path.split_once('?') {
                Some((p, q)) => (p, q),
                None => (path, ""),
            };
            return Ok(Some(Request {
                method: method.to_string(),
                path: path.to_string(),
                query: query.to_string(),
                body,
            }));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad(format!("malformed header {header:?}")));
        };
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => {
                let n: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("bad Content-Length {:?}", value.trim())))?;
                content_length = Some(n);
            }
            "transfer-encoding" => {
                // Chunked *request* bodies are out of scope; refusing them
                // loudly beats truncating them silently.
                return Err(RequestError::new(
                    411,
                    "chunked request bodies are not supported; send a Content-Length".to_string(),
                ));
            }
            _ => {}
        }
    }
    Err(bad(format!("more than {MAX_HEADERS} headers")))
}

/// Read the declared body, enforcing the size cap. An over-cap body is
/// drained (bounded) so the 413 response lands before the socket closes.
fn read_body(
    reader: &mut impl BufRead,
    content_length: Option<usize>,
    max_body: usize,
) -> Result<Vec<u8>, RequestError> {
    let Some(len) = content_length else {
        return Ok(Vec::new());
    };
    if len > max_body {
        use std::io::Read as _;
        let mut sink = io::sink();
        let drain = len.min(DRAIN_CAP_BYTES) as u64;
        let _ = io::copy(&mut reader.by_ref().take(drain), &mut sink);
        return Err(RequestError::new(
            413,
            format!("body of {len} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; len];
    std::io::Read::read_exact(reader, &mut body)
        .map_err(|e| RequestError::new(400, format!("short body: {e}")))?;
    Ok(body)
}

/// The standard reason phrase for the status codes this server uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Write a complete fixed-length response (status line, headers, body).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    write!(w, "HTTP/1.1 {status} {}\r\n", reason(status))?;
    write!(w, "Content-Type: {content_type}\r\n")?;
    write!(w, "Content-Length: {}\r\n", body.len())?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"Connection: close\r\n\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Write the head of a chunked response; the body follows through a
/// [`ChunkedWriter`] over the same stream.
pub fn write_chunked_head(w: &mut impl Write, content_type: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    w.flush()
}

/// A [`Write`] adapter that frames every `write` as one HTTP/1.1 chunk.
///
/// Callers wrap it in a [`std::io::BufWriter`] so many small event lines
/// coalesce into reasonably-sized chunks; [`ChunkedWriter::finish`] emits
/// the terminating zero-length chunk.
///
/// The writer is **poisoned** by its first error: once any inner write or
/// flush fails (a stalled client hitting the socket's write timeout, a
/// disconnect), every later operation fails immediately instead of
/// touching the stream again. A replay into a dead connection therefore
/// pays at most one write timeout, not one per chunk — which keeps
/// graceful drain (which joins connection threads) bounded.
#[derive(Debug)]
pub struct ChunkedWriter<W: Write> {
    inner: W,
    dead: bool,
}

fn poisoned() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "chunked stream already failed")
}

impl<W: Write> ChunkedWriter<W> {
    /// Frame writes to `inner` as HTTP chunks.
    pub fn new(inner: W) -> Self {
        ChunkedWriter { inner, dead: false }
    }

    /// Write the terminating chunk and flush, returning the stream.
    pub fn finish(mut self) -> io::Result<W> {
        if self.dead {
            return Err(poisoned());
        }
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()?;
        Ok(self.inner)
    }

    fn check<T>(&mut self, result: io::Result<T>) -> io::Result<T> {
        if result.is_err() {
            self.dead = true;
        }
        result
    }
}

impl<W: Write> Write for ChunkedWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(poisoned());
        }
        if buf.is_empty() {
            return Ok(0);
        }
        let header = write!(self.inner, "{:x}\r\n", buf.len());
        self.check(header)?;
        let body = self.inner.write_all(buf);
        self.check(body)?;
        let tail = self.inner.write_all(b"\r\n");
        self.check(tail)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(poisoned());
        }
        let result = self.inner.flush();
        self.check(result)
    }
}

/// Decode a chunked transfer-encoded body (test helper for the black-box
/// suite and any in-process consumer of a streamed endpoint).
pub fn decode_chunked(mut body: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    loop {
        let nl = body.windows(2).position(|w| w == b"\r\n").ok_or("missing chunk-size line")?;
        let size_line = std::str::from_utf8(&body[..nl]).map_err(|_| "bad chunk size")?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        body = &body[nl + 2..];
        if size == 0 {
            return Ok(out);
        }
        if body.len() < size + 2 {
            return Err("truncated chunk".to_string());
        }
        out.extend_from_slice(&body[..size]);
        if &body[size..size + 2] != b"\r\n" {
            return Err("chunk missing trailing CRLF".to_string());
        }
        body = &body[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Option<Request>, RequestError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), 64)
    }

    #[test]
    fn parses_a_get_and_a_post() {
        let req = parse("GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap().unwrap();
        assert_eq!((req.method.as_str(), req.path.as_str()), ("GET", "/v1/healthz"));
        assert!(req.body.is_empty());

        let req =
            parse("POST /v1/jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap().unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn empty_connection_is_not_an_error() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn query_string_is_split_off_the_path() {
        let req = parse("GET /v1/jobs/1/events?follow=1 HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.path, "/v1/jobs/1/events");
        assert_eq!(req.query, "follow=1");
        assert!(req.query_flag("follow"));
        assert!(!req.query_flag("fol"));

        let req = parse("GET /v1/healthz HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.query, "");
        assert!(!req.query_flag("follow"));

        let req = parse("GET /x?a=0&follow HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(req.query_flag("follow") && !req.query_flag("a"));
    }

    #[test]
    fn malformed_inputs_map_to_4xx() {
        for (raw, status) in [
            ("nonsense\r\n\r\n", 400),
            ("GET\r\n\r\n", 400),
            ("GET /x SPDY/3\r\n\r\n", 505),
            ("GET /x HTTP/1.1\r\nbroken header\r\n\r\n", 400),
            ("POST /x HTTP/1.1\r\nContent-Length: pony\r\n\r\n", 400),
            ("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 411),
            ("POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n", 413),
            ("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort", 400),
        ] {
            let e = parse(raw).unwrap_err();
            assert_eq!(e.status, status, "{raw:?}: {}", e.message);
        }
    }

    #[test]
    fn chunked_writer_round_trips() {
        let mut w = ChunkedWriter::new(Vec::new());
        w.write_all(b"hello ").unwrap();
        w.write_all(b"world").unwrap();
        let encoded = w.finish().unwrap();
        assert_eq!(encoded, b"6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n");
        assert_eq!(decode_chunked(&encoded).unwrap(), b"hello world");
    }

    #[test]
    fn chunked_writer_poisons_after_first_error() {
        #[derive(Debug)]
        struct Stalled {
            attempts: usize,
        }
        impl Write for Stalled {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                self.attempts += 1;
                Err(io::Error::new(io::ErrorKind::TimedOut, "stalled client"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut stream = Stalled { attempts: 0 };
        let mut w = ChunkedWriter::new(&mut stream);
        assert_eq!(w.write_all(b"x").unwrap_err().kind(), io::ErrorKind::TimedOut);
        // Every later operation fails without touching the stream again —
        // a stalled client costs one write timeout, not one per chunk.
        assert_eq!(w.write_all(b"y").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(w.flush().unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(w.finish().unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(stream.attempts, 1);
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "application/json", b"{}", &[("Retry-After", "1")]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}
