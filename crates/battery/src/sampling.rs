//! Small discrete samplers used by the stochastic battery model.
//!
//! Only `rand` core is in the approved dependency set (no `rand_distr`), so
//! the binomial sampler the stochastic KiBaM needs is implemented here:
//! exact Bernoulli summation for small `n`, BTPE-free normal approximation
//! with continuity correction for large `n` (the regime the battery model
//! lives in, where `n` is tens of thousands of charge units).

use rand::Rng;

/// Threshold below which binomial sampling falls back to exact Bernoulli
/// summation.
const EXACT_LIMIT: u64 = 64;

/// Sample `Binomial(n, p)`.
///
/// * `p` is clamped into `[0, 1]`;
/// * `n ≤ 64` uses exact Bernoulli summation;
/// * larger `n` uses the normal approximation with continuity correction,
///   clamped into `[0, n]` — with `n·p·(1−p)` in the thousands (the battery
///   regime) the approximation error is far below the model's own noise.
pub fn binomial(rng: &mut impl Rng, n: u64, p: f64) -> u64 {
    let p = p.clamp(0.0, 1.0);
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    if n <= EXACT_LIMIT {
        let mut k = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                k += 1;
            }
        }
        return k;
    }
    let mean = n as f64 * p;
    let var = mean * (1.0 - p);
    let z = standard_normal(rng);
    let sample = (mean + z * var.sqrt() + 0.5).floor();
    sample.clamp(0.0, n as f64) as u64
}

/// Standard normal via Box–Muller (one deviate per call; the discarded
/// second deviate keeps the sampler stateless).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0): u1 ∈ (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng(0);
        assert_eq!(binomial(&mut r, 0, 0.5), 0);
        assert_eq!(binomial(&mut r, 100, 0.0), 0);
        assert_eq!(binomial(&mut r, 100, 1.0), 100);
        assert_eq!(binomial(&mut r, 100, -0.5), 0, "p clamped up");
        assert_eq!(binomial(&mut r, 100, 1.5), 100, "p clamped down");
    }

    #[test]
    fn binomial_small_n_matches_mean_and_bounds() {
        let mut r = rng(1);
        let n = 20;
        let p = 0.3;
        let trials = 20_000;
        let mut sum = 0u64;
        for _ in 0..trials {
            let k = binomial(&mut r, n, p);
            assert!(k <= n);
            sum += k;
        }
        let mean = sum as f64 / trials as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean {mean} should be ~6");
    }

    #[test]
    fn binomial_large_n_matches_mean_and_variance() {
        let mut r = rng(2);
        let n = 10_000;
        let p = 0.25;
        let trials = 5_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..trials {
            let k = binomial(&mut r, n, p) as f64;
            assert!(k <= n as f64);
            sum += k;
            sumsq += k * k;
        }
        let mean = sum / trials as f64;
        let var = sumsq / trials as f64 - mean * mean;
        assert!((mean - 2500.0).abs() < 10.0, "mean {mean}");
        let expected_var = 2500.0 * 0.75;
        assert!((var / expected_var - 1.0).abs() < 0.1, "var {var} vs {expected_var}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(3);
        let trials = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..trials {
            let z = standard_normal(&mut r);
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / trials as f64;
        let var = sumsq / trials as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let a: Vec<u64> = {
            let mut r = rng(7);
            (0..10).map(|_| binomial(&mut r, 1000, 0.4)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng(7);
            (0..10).map(|_| binomial(&mut r, 1000, 0.4)).collect()
        };
        assert_eq!(a, b);
    }
}
