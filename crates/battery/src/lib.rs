//! # bas-battery — battery models, load profiles and lifetime estimation
//!
//! The paper's central premise: the charge a battery delivers depends on the
//! **shape** of the load-current profile, not only its integral. Two effects
//! matter (§3):
//!
//! * **Recovery effect** — at low/zero load, charge migrates from the bulk of
//!   the cell ("bound charge") back toward the electrode ("available
//!   charge"), partially undoing earlier high-rate discharge.
//! * **Rate-capacity effect** — the higher the discharge current, the less
//!   total charge can be extracted before the terminal voltage collapses.
//!
//! This crate implements the battery substrate the paper's evaluation rests
//! on:
//!
//! * [`profile`] — piecewise-constant load-current profiles (what a schedule
//!   execution trace reduces to, from the battery's point of view);
//! * [`kibam`] — the **Kinetic Battery Model** (Manwell–McGowan), the two-well
//!   model the paper uses to explain its guidelines; closed-form constant-
//!   current stepping plus an RK4 integrator used to cross-validate it;
//! * [`diffusion`] — the **Rakhmatov–Vrudhula diffusion model** (the paper's
//!   \[14\]), implemented with incrementally-updated series state so stepping
//!   is O(terms) instead of O(history);
//! * [`stochastic`] — a **stochastic KiBaM**: charge quantized into units,
//!   recovery drawn binomially with the KiBaM flux as its mean. This stands
//!   in for the authors' stochastic model \[13\] (see DESIGN.md §3); its
//!   expectation *is* KiBaM, and a deterministic-expectation mode is provided
//!   for tests;
//! * [`peukert`] and [`ideal`] — classical reference models bracketing the
//!   physics (Peukert over-penalizes sustained load; the ideal bucket ignores
//!   shape entirely);
//! * [`lifetime`] — drivers that run a (possibly repeating) profile against a
//!   model and report lifetime and delivered charge;
//! * [`curve`] — the load-vs-delivered-capacity curve of §5, whose end-point
//!   extrapolations define *maximum capacity* (infinitesimal load) and the
//!   *available-charge well* (infinite load).
//!
//! ## The paper's cell
//!
//! A 1.2 V Panasonic AAA NiMH cell with **maximum capacity 2000 mAh** and
//! nominal capacity ≈ 1600 mAh. [`kibam::KibamParams::paper_aaa_nimh`] and
//! the matching constructors of the other models are calibrated to those two
//! anchor points (see EXPERIMENTS.md for the calibration runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curve;
pub mod diffusion;
pub mod ideal;
pub mod kibam;
pub mod lifetime;
pub mod model;
pub mod peukert;
pub mod profile;
pub mod registry;
pub mod sampling;
pub mod stochastic;
pub mod units;

pub use diffusion::{DiffusionModel, DiffusionParams};
pub use ideal::IdealModel;
pub use kibam::{Kibam, KibamParams};
pub use lifetime::{run_profile, LifetimeReport, RunOptions};
pub use model::{BatteryModel, StepOutcome};
pub use peukert::{PeukertModel, PeukertParams};
pub use profile::{LoadProfile, ProfileSegment};
pub use stochastic::{StochasticKibam, StochasticMode};
