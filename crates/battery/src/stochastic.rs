//! A stochastic KiBaM — the stand-in for the paper's evaluation battery
//! simulator (its reference \[13\], "Battery model for embedded systems").
//!
//! The authors' model tracks quantized charge with probabilistic recovery;
//! \[13\] itself is calibrated against the same KiBaM/diffusion dynamics the
//! paper proves coherent in §3. We therefore quantize the KiBaM: charge is
//! carried in discrete *units* (default 1 mC); each fixed time slot
//!
//! 1. the load drains `I·Δt` from the available well (fractional carry kept
//!    exactly, so no drift),
//! 2. the bound→available transfer is drawn `Binomial(n_bound, p)` with `p`
//!    chosen so the mean equals the deterministic KiBaM flux
//!    `k'·[c·y2 − (1−c)·y1]·Δt` (negative flux flows the other way).
//!
//! The expectation of this process is exactly KiBaM — asserted by tests
//! running [`StochasticMode::Expectation`] against [`crate::kibam::Kibam`] —
//! while sampled runs reproduce the run-to-run lifetime variance a Monte
//! Carlo battery evaluation (like the paper's) exhibits.

use crate::kibam::KibamParams;
use crate::model::{BatteryModel, StepOutcome};
use crate::sampling::binomial;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Noise behaviour of the stochastic model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StochasticMode {
    /// Draw the recovery transfer at each slot (Monte Carlo).
    Sampled,
    /// Use the expected transfer — the model degenerates to a discretized
    /// KiBaM; used to validate the implementation.
    Expectation,
}

/// Stochastic charge-unit KiBaM.
#[derive(Debug, Clone)]
pub struct StochasticKibam {
    params: KibamParams,
    /// Charge per unit, in coulombs.
    quantum: f64,
    /// Time slot length, in seconds.
    slot: f64,
    mode: StochasticMode,
    rng: StdRng,
    /// Whole units in each well.
    available_units: u64,
    bound_units: u64,
    /// Sub-unit drain carry (0 ≤ carry < quantum), exact load accounting.
    drain_carry: f64,
    /// Sub-slot time carry for steps that are not slot multiples.
    time_carry: f64,
    delivered: f64,
    exhausted: bool,
}

impl StochasticKibam {
    /// Construct with explicit quantum and slot length.
    ///
    /// # Panics
    /// Panics on invalid KiBaM parameters or non-positive quantum/slot.
    pub fn new(
        params: KibamParams,
        quantum: f64,
        slot: f64,
        mode: StochasticMode,
        seed: u64,
    ) -> Self {
        params.validate().expect("invalid KiBaM parameters");
        assert!(quantum.is_finite() && quantum > 0.0, "quantum must be > 0");
        assert!(slot.is_finite() && slot > 0.0, "slot must be > 0");
        let available_units = (params.c * params.capacity / quantum).round() as u64;
        let bound_units = ((1.0 - params.c) * params.capacity / quantum).round() as u64;
        StochasticKibam {
            params,
            quantum,
            slot,
            mode,
            rng: StdRng::seed_from_u64(seed),
            available_units,
            bound_units,
            drain_carry: 0.0,
            time_carry: 0.0,
            delivered: 0.0,
            exhausted: false,
        }
    }

    /// The paper's AAA NiMH cell with 1 mC units and 100 ms slots.
    pub fn paper_cell(seed: u64) -> Self {
        StochasticKibam::new(
            KibamParams::paper_aaa_nimh(),
            1e-3,
            0.1,
            StochasticMode::Sampled,
            seed,
        )
    }

    /// Charge in the available well, coulombs.
    pub fn available(&self) -> f64 {
        self.available_units as f64 * self.quantum - self.drain_carry
    }

    /// Charge in the bound well, coulombs.
    pub fn bound(&self) -> f64 {
        self.bound_units as f64 * self.quantum
    }

    /// KiBaM parameters.
    pub fn params(&self) -> &KibamParams {
        &self.params
    }

    /// Drain `current · dt` from the available well — exact, per caller
    /// step, regardless of slot alignment (billing a whole slot at whichever
    /// current happens to cross its boundary would systematically misprice
    /// alternating busy/idle loads). Returns seconds survived when the well
    /// runs dry inside the step.
    fn drain(&mut self, current: f64, dt: f64) -> Option<f64> {
        let demand = current * dt + self.drain_carry;
        let whole = (demand / self.quantum).floor();
        let need_units = whole as u64;
        if need_units > self.available_units {
            let have = self.available_units as f64 * self.quantum - self.drain_carry;
            let survived = if current > 0.0 { (have / current).clamp(0.0, dt) } else { dt };
            self.delivered += have.max(0.0);
            self.available_units = 0;
            self.drain_carry = 0.0;
            self.exhausted = true;
            return Some(survived);
        }
        self.available_units -= need_units;
        self.drain_carry = demand - whole * self.quantum;
        self.delivered += current * dt;
        if self.available_units == 0 && self.drain_carry > 0.0 {
            self.exhausted = true;
            return Some(dt);
        }
        None
    }

    /// One slot's bound↔available recovery transfer with KiBaM-flux mean.
    fn recover_one_slot(&mut self) {
        let y1 = self.available();
        let y2 = self.bound();
        let c = self.params.c;
        let flux = self.params.k_prime * (c * y2 - (1.0 - c) * y1) * self.slot; // coulombs
        let units_mean = flux / self.quantum;
        let transferred: i64 = match self.mode {
            StochasticMode::Expectation => units_mean.round() as i64,
            StochasticMode::Sampled => {
                if units_mean >= 0.0 {
                    let n = self.bound_units;
                    let p = if n == 0 { 0.0 } else { units_mean / n as f64 };
                    binomial(&mut self.rng, n, p) as i64
                } else {
                    let n = self.available_units;
                    let p = if n == 0 { 0.0 } else { -units_mean / n as f64 };
                    -(binomial(&mut self.rng, n, p) as i64)
                }
            }
        };
        if transferred >= 0 {
            let t = (transferred as u64).min(self.bound_units);
            self.bound_units -= t;
            self.available_units += t;
        } else {
            let t = ((-transferred) as u64).min(self.available_units);
            self.available_units -= t;
            self.bound_units += t;
        }
    }
}

impl BatteryModel for StochasticKibam {
    fn name(&self) -> &'static str {
        "stochastic-kibam"
    }

    fn step(&mut self, current: f64, dt: f64) -> StepOutcome {
        assert!(current >= 0.0 && dt >= 0.0, "negative current or time");
        if self.exhausted {
            return StepOutcome::Exhausted { survived: 0.0 };
        }
        // Drain exactly for this step's current and duration; recovery
        // transfers happen once per elapsed slot (time accumulated across
        // steps via the carry). Long steps are split so recovery interleaves
        // with drain at slot resolution.
        let mut remaining = dt;
        let mut elapsed = 0.0;
        while remaining > 0.0 {
            let until_slot = (self.slot - self.time_carry).max(0.0);
            let chunk = remaining.min(until_slot.max(self.slot * 1e-9));
            if let Some(survived) = self.drain(current, chunk) {
                return StepOutcome::Exhausted { survived: (elapsed + survived).clamp(0.0, dt) };
            }
            elapsed += chunk;
            remaining -= chunk;
            self.time_carry += chunk;
            if self.time_carry >= self.slot - 1e-12 {
                self.recover_one_slot();
                self.time_carry -= self.slot;
            }
        }
        StepOutcome::Alive
    }

    fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    fn charge_delivered(&self) -> f64 {
        self.delivered
    }

    fn state_of_charge(&self) -> f64 {
        ((self.available() + self.bound()) / self.params.capacity).clamp(0.0, 1.0)
    }

    fn reset(&mut self) {
        self.available_units = (self.params.c * self.params.capacity / self.quantum).round() as u64;
        self.bound_units =
            ((1.0 - self.params.c) * self.params.capacity / self.quantum).round() as u64;
        self.drain_carry = 0.0;
        self.time_carry = 0.0;
        self.delivered = 0.0;
        self.exhausted = false;
        // RNG deliberately NOT reset: reset() starts an independent trial.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kibam::Kibam;

    fn params() -> KibamParams {
        KibamParams { capacity: 100.0, c: 0.5, k_prime: 0.01 }
    }

    fn expectation_cell() -> StochasticKibam {
        StochasticKibam::new(params(), 1e-3, 0.05, StochasticMode::Expectation, 0)
    }

    fn sampled_cell(seed: u64) -> StochasticKibam {
        StochasticKibam::new(params(), 1e-3, 0.05, StochasticMode::Sampled, seed)
    }

    #[test]
    fn initial_wells_match_kibam_split() {
        let b = expectation_cell();
        assert!((b.available() - 50.0).abs() < 1e-9);
        assert!((b.bound() - 50.0).abs() < 1e-9);
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    fn expectation_mode_tracks_closed_form_kibam() {
        let mut stoch = expectation_cell();
        let mut exact = Kibam::new(params());
        let current = 0.2; // 40 C over the run: well within the 50 C well
        for _ in 0..200 {
            stoch.step(current, 1.0);
            exact.step(current, 1.0);
        }
        assert!(!stoch.is_exhausted() && !exact.is_exhausted());
        let (sa, ea) = (stoch.available(), exact.state().available);
        let (sb, eb) = (stoch.bound(), exact.state().bound);
        // Quantization + Euler-vs-exact: within 1 % of well contents.
        assert!((sa - ea).abs() < 1.0, "available {sa} vs {ea}");
        assert!((sb - eb).abs() < 1.0, "bound {sb} vs {eb}");
    }

    #[test]
    fn expectation_lifetime_matches_kibam_lifetime() {
        let mut stoch = expectation_cell();
        let mut exact = Kibam::new(params());
        let current = 2.0;
        let mut t_stoch = 0.0;
        while !stoch.is_exhausted() {
            match stoch.step(current, 0.5) {
                StepOutcome::Alive => t_stoch += 0.5,
                StepOutcome::Exhausted { survived } => t_stoch += survived,
            }
        }
        let mut t_exact = 0.0;
        while !exact.is_exhausted() {
            match exact.step(current, 0.5) {
                StepOutcome::Alive => t_exact += 0.5,
                StepOutcome::Exhausted { survived } => t_exact += survived,
            }
        }
        assert!(
            (t_stoch - t_exact).abs() / t_exact < 0.02,
            "stochastic {t_stoch} vs kibam {t_exact}"
        );
    }

    #[test]
    fn sampled_runs_vary_but_cluster_around_expectation() {
        let expected_lifetime = {
            let mut b = expectation_cell();
            let mut t = 0.0;
            loop {
                match b.step(2.0, 0.5) {
                    StepOutcome::Alive => t += 0.5,
                    StepOutcome::Exhausted { survived } => break t + survived,
                }
            }
        };
        let mut lifetimes = Vec::new();
        for seed in 0..10 {
            let mut b = sampled_cell(seed);
            let mut t = 0.0;
            loop {
                match b.step(2.0, 0.5) {
                    StepOutcome::Alive => t += 0.5,
                    StepOutcome::Exhausted { survived } => {
                        t += survived;
                        break;
                    }
                }
            }
            lifetimes.push(t);
        }
        let mean: f64 = lifetimes.iter().sum::<f64>() / lifetimes.len() as f64;
        assert!(
            (mean - expected_lifetime).abs() / expected_lifetime < 0.05,
            "mean {mean} vs expectation {expected_lifetime}"
        );
        let min = lifetimes.iter().cloned().fold(f64::MAX, f64::min);
        let max = lifetimes.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min, "sampled trials must differ");
    }

    #[test]
    fn recovery_happens_at_zero_load() {
        let mut b = expectation_cell();
        b.step(2.0, 20.0);
        let before = b.available();
        b.step(0.0, 100.0);
        assert!(b.available() > before);
    }

    #[test]
    fn rate_capacity_effect_holds() {
        let deliver = |current: f64| {
            let mut b = sampled_cell(42);
            while !b.is_exhausted() {
                b.step(current, 0.5);
            }
            b.charge_delivered()
        };
        let hi = deliver(10.0);
        let lo = deliver(0.5);
        assert!(hi < lo, "hi={hi} lo={lo}");
    }

    #[test]
    fn sub_slot_steps_accumulate_via_time_carry() {
        let mut a = expectation_cell();
        for _ in 0..100 {
            a.step(1.0, 0.01); // 100 × 10 ms = 1 s in sub-slot steps
        }
        let mut b = expectation_cell();
        b.step(1.0, 1.0);
        assert!(
            (a.available() - b.available()).abs() < 0.06,
            "{} vs {}",
            a.available(),
            b.available()
        );
        assert!((a.charge_delivered() - b.charge_delivered()).abs() < 0.06);
    }

    #[test]
    fn reset_restores_wells_but_not_rng() {
        let mut b = sampled_cell(5);
        b.step(5.0, 30.0);
        b.reset();
        assert!(!b.is_exhausted());
        assert!((b.available() - 50.0).abs() < 1e-9);
        assert_eq!(b.charge_delivered(), 0.0);
    }

    #[test]
    fn death_reports_partial_slot_survival() {
        let mut b = expectation_cell();
        let out = b.step(1000.0, 10.0);
        let StepOutcome::Exhausted { survived } = out else {
            panic!("1000 A must exhaust instantly");
        };
        assert!(survived < 0.2, "survived = {survived}");
    }
}
