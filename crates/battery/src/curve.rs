//! The load-vs-delivered-capacity curve of §5.
//!
//! "We can evaluate these values by plotting a load vs delivered capacity
//! curve for the battery and extrapolating the ends": the low-current end
//! extrapolates to the **maximum capacity** (2000 mAh for the paper's cell),
//! the high-current end to the charge of the **available well** alone.

use crate::lifetime::delivered_at_constant_current;
use crate::model::BatteryModel;

/// One point of the capacity curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Constant discharge current, amperes.
    pub current: f64,
    /// Charge delivered until exhaustion, coulombs.
    pub delivered: f64,
}

/// Delivered capacity at each of `currents` (each from a fresh cell).
pub fn capacity_curve(model: &mut dyn BatteryModel, currents: &[f64]) -> Vec<CurvePoint> {
    currents
        .iter()
        .map(|&current| CurvePoint {
            current,
            delivered: delivered_at_constant_current(model, current),
        })
        .collect()
}

/// Logarithmically spaced currents from `lo` to `hi` inclusive.
pub fn log_spaced_currents(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && points >= 2, "invalid sweep spec");
    let llo = lo.ln();
    let lhi = hi.ln();
    (0..points).map(|i| (llo + (lhi - llo) * i as f64 / (points - 1) as f64).exp()).collect()
}

/// End-point extrapolations of a (current-ascending) capacity curve:
/// `(maximum_capacity, available_well_charge)` — the §5 definitions.
///
/// The curve is flat at both ends (delivered capacity saturates), so the
/// extrapolation simply reads the extreme points; callers should sweep at
/// least two decades on each side to be in the flat regions.
pub fn extrapolate_ends(curve: &[CurvePoint]) -> Option<(f64, f64)> {
    if curve.len() < 2 {
        return None;
    }
    debug_assert!(
        curve.windows(2).all(|w| w[0].current < w[1].current),
        "curve must be current-ascending"
    );
    Some((curve[0].delivered, curve[curve.len() - 1].delivered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealModel;
    use crate::kibam::{Kibam, KibamParams};

    #[test]
    fn log_spacing_hits_both_ends() {
        let c = log_spaced_currents(0.01, 10.0, 7);
        assert_eq!(c.len(), 7);
        assert!((c[0] - 0.01).abs() < 1e-12);
        assert!((c[6] - 10.0).abs() < 1e-9);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "invalid sweep spec")]
    fn log_spacing_rejects_bad_range() {
        log_spaced_currents(1.0, 0.5, 5);
    }

    #[test]
    fn ideal_curve_is_flat() {
        let mut b = IdealModel::new(100.0);
        let curve = capacity_curve(&mut b, &log_spaced_currents(0.01, 10.0, 5));
        for p in &curve {
            assert!((p.delivered - 100.0).abs() < 1e-6, "{p:?}");
        }
    }

    #[test]
    fn kibam_curve_decreases_with_current() {
        let mut b = Kibam::new(KibamParams { capacity: 100.0, c: 0.5, k_prime: 0.01 });
        let curve = capacity_curve(&mut b, &log_spaced_currents(0.01, 50.0, 8));
        for w in curve.windows(2) {
            assert!(w[0].delivered >= w[1].delivered - 1e-6, "rate-capacity: {w:?}");
        }
    }

    #[test]
    fn extrapolation_recovers_both_wells() {
        let params = KibamParams { capacity: 100.0, c: 0.5, k_prime: 0.01 };
        let mut b = Kibam::new(params);
        let curve = capacity_curve(&mut b, &log_spaced_currents(0.001, 1000.0, 10));
        let (max_cap, available) = extrapolate_ends(&curve).unwrap();
        assert!((max_cap - 100.0).abs() < 2.0, "max capacity ≈ total: {max_cap}");
        assert!(
            (available - 50.0).abs() < 2.0,
            "infinite-load capacity ≈ available well: {available}"
        );
    }

    #[test]
    fn extrapolation_needs_two_points() {
        assert!(extrapolate_ends(&[]).is_none());
        assert!(extrapolate_ends(&[CurvePoint { current: 1.0, delivered: 1.0 }]).is_none());
    }
}
