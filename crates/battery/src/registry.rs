//! Battery presets addressable by name.
//!
//! Scenario files name their battery model as a string; this module is the
//! single map from those names to the paper-cell constructors, so the CLI,
//! examples and scenario codec agree on the vocabulary.

use crate::{BatteryModel, DiffusionModel, IdealModel, Kibam, PeukertModel, StochasticKibam};

/// The battery preset names scenario files may use; see [`by_name`].
pub const NAMES: &[&str] = &["stochastic", "kibam", "diffusion", "peukert", "ideal"];

/// Construct the paper's AAA NiMH cell under the named model:
///
/// * `"stochastic"` — [`StochasticKibam::paper_cell`] (uses `seed`);
/// * `"kibam"` — [`Kibam::paper_cell`];
/// * `"diffusion"` — [`DiffusionModel::paper_cell`];
/// * `"peukert"` — [`PeukertModel::paper_cell`];
/// * `"ideal"` — [`IdealModel::paper_cell`].
///
/// `seed` only affects the stochastic model; deterministic models ignore it.
/// Returns `None` for unknown names so callers can report the valid set
/// ([`NAMES`]) themselves.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn BatteryModel>> {
    match name {
        "stochastic" => Some(Box::new(StochasticKibam::paper_cell(seed))),
        "kibam" => Some(Box::new(Kibam::paper_cell())),
        "diffusion" => Some(Box::new(DiffusionModel::paper_cell())),
        "peukert" => Some(Box::new(PeukertModel::paper_cell())),
        "ideal" => Some(Box::new(IdealModel::paper_cell())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_model_resolves_to_a_fresh_paper_cell() {
        for name in NAMES {
            let cell = by_name(name, 7).unwrap_or_else(|| panic!("{name}"));
            assert!(!cell.is_exhausted(), "{name}");
            assert_eq!(cell.charge_delivered(), 0.0, "{name}");
        }
        assert!(by_name("unobtainium", 0).is_none());
    }

    #[test]
    fn stochastic_model_folds_the_seed_in() {
        // Different seeds give (almost surely) different recovery draws,
        // hence different lifetimes under a pulsed load.
        use crate::{run_profile, LoadProfile, RunOptions};
        let lifetime = |seed| {
            let mut cell = by_name("stochastic", seed).unwrap();
            let pulsed = LoadProfile::from_pairs([(1.8, 60.0), (0.0, 60.0)]);
            run_profile(cell.as_mut(), &pulsed, RunOptions::default()).lifetime
        };
        assert_ne!(lifetime(1), lifetime(2));
    }
}
