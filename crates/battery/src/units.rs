//! Unit conversions used throughout the battery crate.
//!
//! Internally everything is SI: charge in coulombs, current in amperes, time
//! in seconds. The paper (and battery datasheets) speak in mAh and minutes;
//! these helpers keep the conversions single-sourced.

/// Coulombs per milliamp-hour.
pub const COULOMBS_PER_MAH: f64 = 3.6;

/// Convert milliamp-hours to coulombs.
#[inline]
pub fn mah_to_coulombs(mah: f64) -> f64 {
    mah * COULOMBS_PER_MAH
}

/// Convert coulombs to milliamp-hours.
#[inline]
pub fn coulombs_to_mah(c: f64) -> f64 {
    c / COULOMBS_PER_MAH
}

/// Convert seconds to minutes.
#[inline]
pub fn seconds_to_minutes(s: f64) -> f64 {
    s / 60.0
}

/// Convert minutes to seconds.
#[inline]
pub fn minutes_to_seconds(m: f64) -> f64 {
    m * 60.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mah_round_trip() {
        let c = mah_to_coulombs(2000.0);
        assert!((c - 7200.0).abs() < 1e-12, "2000 mAh = 7200 C");
        assert!((coulombs_to_mah(c) - 2000.0).abs() < 1e-12);
    }

    #[test]
    fn one_amp_hour_is_3600_coulombs() {
        assert!((mah_to_coulombs(1000.0) - 3600.0).abs() < 1e-12);
    }

    #[test]
    fn minutes_round_trip() {
        assert_eq!(seconds_to_minutes(minutes_to_seconds(74.0)), 74.0);
        assert_eq!(seconds_to_minutes(90.0), 1.5);
    }
}
