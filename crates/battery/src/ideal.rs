//! The ideal charge bucket — the battery model early DVS work implicitly
//! assumed ("a fixed amount of energy at a constant output voltage", §1).
//!
//! Load shape is irrelevant: the cell delivers exactly `capacity` coulombs
//! no matter how they are drawn. Comparing any scheduler's lifetime under
//! [`IdealModel`] vs a physical model isolates how much of the improvement
//! comes from *battery awareness* rather than plain energy savings.

use crate::model::{BatteryModel, StepOutcome};
use crate::units::mah_to_coulombs;

/// An ideal energy bucket of fixed charge capacity.
#[derive(Debug, Clone)]
pub struct IdealModel {
    capacity: f64,
    delivered: f64,
    exhausted: bool,
}

impl IdealModel {
    /// A bucket of `capacity` coulombs.
    ///
    /// # Panics
    /// Panics unless `capacity` is positive and finite.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity.is_finite() && capacity > 0.0, "capacity must be > 0");
        IdealModel { capacity, delivered: 0.0, exhausted: false }
    }

    /// A 2000 mAh bucket, matching the paper cell's *maximum* capacity.
    pub fn paper_cell() -> Self {
        IdealModel::new(mah_to_coulombs(2000.0))
    }

    /// Bucket capacity in coulombs.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}

impl BatteryModel for IdealModel {
    fn name(&self) -> &'static str {
        "ideal"
    }

    fn step(&mut self, current: f64, dt: f64) -> StepOutcome {
        assert!(current >= 0.0 && dt >= 0.0, "negative current or time");
        if self.exhausted {
            return StepOutcome::Exhausted { survived: 0.0 };
        }
        let draw = current * dt;
        if self.delivered + draw >= self.capacity && current > 0.0 {
            let survived = (self.capacity - self.delivered) / current;
            self.delivered = self.capacity;
            self.exhausted = true;
            return StepOutcome::Exhausted { survived: survived.clamp(0.0, dt) };
        }
        self.delivered += draw;
        StepOutcome::Alive
    }

    fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    fn charge_delivered(&self) -> f64 {
        self.delivered
    }

    fn state_of_charge(&self) -> f64 {
        (1.0 - self.delivered / self.capacity).clamp(0.0, 1.0)
    }

    fn reset(&mut self) {
        self.delivered = 0.0;
        self.exhausted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_exactly_capacity_regardless_of_rate() {
        for current in [0.1, 1.0, 50.0] {
            let mut b = IdealModel::new(10.0);
            let mut t = 0.0;
            loop {
                match b.step(current, 0.3) {
                    StepOutcome::Alive => t += 0.3,
                    StepOutcome::Exhausted { survived } => {
                        t += survived;
                        break;
                    }
                }
            }
            assert!((b.charge_delivered() - 10.0).abs() < 1e-9);
            assert!((t - 10.0 / current).abs() < 1e-9, "lifetime = Q/I");
        }
    }

    #[test]
    fn soc_decreases_linearly() {
        let mut b = IdealModel::new(10.0);
        b.step(1.0, 5.0);
        assert!((b.state_of_charge() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_load_lasts_forever() {
        let mut b = IdealModel::new(10.0);
        for _ in 0..1000 {
            assert_eq!(b.step(0.0, 1e6), StepOutcome::Alive);
        }
    }

    #[test]
    fn reset_refills_bucket() {
        let mut b = IdealModel::new(10.0);
        b.step(100.0, 1.0);
        assert!(b.is_exhausted());
        b.reset();
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_panics() {
        IdealModel::new(0.0);
    }
}
