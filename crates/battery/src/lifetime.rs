//! Lifetime drivers: run a load profile (optionally repeating) against a
//! battery model and report lifetime and delivered charge.

use crate::model::{BatteryModel, StepOutcome};
use crate::profile::LoadProfile;

/// Options for [`run_profile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Repeat the profile until the battery dies (the paper's periodic
    /// schedules). When false the run also ends when the profile does.
    pub repeat: bool,
    /// Hard wall-clock cap (simulated seconds) as a runaway guard.
    pub max_time: f64,
    /// Upper bound on a single model step; long profile segments are split
    /// so models with slot/step granularity stay accurate.
    pub max_step: f64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            repeat: true,
            max_time: 30.0 * 24.0 * 3600.0, // 30 days
            max_step: 1.0,
        }
    }
}

/// Result of driving a model with a profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeReport {
    /// Seconds until exhaustion (or until the run ended).
    pub lifetime: f64,
    /// Total charge delivered, coulombs.
    pub charge_delivered: f64,
    /// True if the battery was exhausted (false: profile/max_time ran out).
    pub died: bool,
}

impl LifetimeReport {
    /// Lifetime in minutes — the unit of the paper's Table 2.
    pub fn lifetime_minutes(&self) -> f64 {
        self.lifetime / 60.0
    }

    /// Delivered charge in mAh — the unit of the paper's Table 2.
    pub fn delivered_mah(&self) -> f64 {
        self.charge_delivered / 3.6
    }
}

/// Drive `model` with `profile` under `opts`.
///
/// The model is **not** reset first (callers may be mid-scenario); fresh runs
/// should `model.reset()` beforehand.
pub fn run_profile(
    model: &mut dyn BatteryModel,
    profile: &LoadProfile,
    opts: RunOptions,
) -> LifetimeReport {
    let start_charge = model.charge_delivered();
    let mut t = 0.0;
    if profile.is_empty() {
        return LifetimeReport { lifetime: 0.0, charge_delivered: 0.0, died: model.is_exhausted() };
    }
    'outer: loop {
        for seg in profile.segments() {
            let mut remaining = seg.duration;
            while remaining > 0.0 {
                if t >= opts.max_time {
                    break 'outer;
                }
                let dt = remaining.min(opts.max_step).min(opts.max_time - t);
                match model.step(seg.current, dt) {
                    StepOutcome::Alive => {
                        t += dt;
                        remaining -= dt;
                    }
                    StepOutcome::Exhausted { survived } => {
                        t += survived;
                        return LifetimeReport {
                            lifetime: t,
                            charge_delivered: model.charge_delivered() - start_charge,
                            died: true,
                        };
                    }
                }
            }
        }
        if !opts.repeat {
            break;
        }
    }
    LifetimeReport {
        lifetime: t,
        charge_delivered: model.charge_delivered() - start_charge,
        died: false,
    }
}

/// Convenience: delivered capacity (coulombs) of a *fresh* model under a
/// constant current until death.
pub fn delivered_at_constant_current(model: &mut dyn BatteryModel, current: f64) -> f64 {
    model.reset();
    let profile = LoadProfile::from_pairs([(current, 1.0)]);
    let report = run_profile(model, &profile, RunOptions::default());
    report.charge_delivered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal::IdealModel;
    use crate::kibam::{Kibam, KibamParams};

    #[test]
    fn ideal_model_lifetime_is_charge_over_current() {
        let mut b = IdealModel::new(10.0);
        let p = LoadProfile::from_pairs([(2.0, 1.0)]);
        let r = run_profile(&mut b, &p, RunOptions::default());
        assert!(r.died);
        assert!((r.lifetime - 5.0).abs() < 1e-9);
        assert!((r.charge_delivered - 10.0).abs() < 1e-9);
    }

    #[test]
    fn non_repeating_run_ends_with_profile() {
        let mut b = IdealModel::new(10.0);
        let p = LoadProfile::from_pairs([(1.0, 3.0)]);
        let r = run_profile(&mut b, &p, RunOptions { repeat: false, ..RunOptions::default() });
        assert!(!r.died);
        assert!((r.lifetime - 3.0).abs() < 1e-9);
        assert!((r.charge_delivered - 3.0).abs() < 1e-9);
    }

    #[test]
    fn max_time_caps_the_run() {
        let mut b = IdealModel::new(1e9);
        let p = LoadProfile::from_pairs([(1.0, 1.0)]);
        let r = run_profile(&mut b, &p, RunOptions { repeat: true, max_time: 12.5, max_step: 1.0 });
        assert!(!r.died);
        assert!((r.lifetime - 12.5).abs() < 1e-9);
    }

    #[test]
    fn report_unit_conversions() {
        let r = LifetimeReport { lifetime: 120.0, charge_delivered: 36.0, died: true };
        assert!((r.lifetime_minutes() - 2.0).abs() < 1e-12);
        assert!((r.delivered_mah() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn kibam_repeating_pulse_profile_dies_eventually() {
        let mut b = Kibam::new(KibamParams { capacity: 50.0, c: 0.5, k_prime: 0.01 });
        let p = LoadProfile::from_pairs([(2.0, 1.0), (0.1, 1.0)]);
        let r = run_profile(&mut b, &p, RunOptions::default());
        assert!(r.died);
        assert!(r.charge_delivered > 25.0, "recovery must beat available-well-only");
        assert!(r.charge_delivered <= 50.0 + 1e-6);
    }

    #[test]
    fn empty_profile_reports_zero() {
        let mut b = IdealModel::new(10.0);
        let r = run_profile(&mut b, &LoadProfile::new(), RunOptions::default());
        assert_eq!(r.lifetime, 0.0);
        assert!(!r.died);
    }

    #[test]
    fn delivered_at_constant_current_resets_first() {
        let mut b = IdealModel::new(10.0);
        b.step(1.0, 4.0); // partially drain
        let q = delivered_at_constant_current(&mut b, 1.0);
        assert!((q - 10.0).abs() < 1e-9, "reset must refill before measuring");
    }

    #[test]
    fn max_step_splits_long_segments() {
        // A model that would die inside a long segment must still report the
        // right survival time when the driver splits it.
        let mut b = IdealModel::new(10.0);
        let p = LoadProfile::from_pairs([(1.0, 100.0)]);
        let r = run_profile(&mut b, &p, RunOptions { repeat: false, max_time: 1e9, max_step: 0.3 });
        assert!(r.died);
        assert!((r.lifetime - 10.0).abs() < 1e-9);
    }
}
