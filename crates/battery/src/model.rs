//! The common battery-model interface.
//!
//! Every model advances in *steps* of constant current. A step either
//! completes with the battery still alive, or reports the instant within the
//! step at which the battery became exhausted (its "available charge" hit
//! zero / its apparent charge crossed capacity). The co-simulation driver in
//! `bas-sim` relies on that sub-step death time to cut schedules off at the
//! right instant.

/// Result of applying one constant-current step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// The battery survived the whole step.
    Alive,
    /// The battery became exhausted `survived` seconds into the step
    /// (`0 ≤ survived ≤ dt`). State is frozen at the death instant; further
    /// steps keep reporting death with `survived = 0`.
    Exhausted {
        /// Seconds of the step that elapsed before exhaustion.
        survived: f64,
    },
}

impl StepOutcome {
    /// True when the outcome is [`StepOutcome::Exhausted`].
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        matches!(self, StepOutcome::Exhausted { .. })
    }
}

/// A discharge-only battery model.
///
/// Implementations must uphold:
/// * `charge_delivered` grows by exactly `current · elapsed` for the portion
///   of each step the battery survived;
/// * after the first `Exhausted` outcome, the model stays exhausted until
///   [`reset`](BatteryModel::reset);
/// * `reset` restores the exact initial state (for stochastic models, the
///   RNG is *not* reset unless documented — repeated runs are independent
///   trials).
pub trait BatteryModel: Send {
    /// Short human-readable model name for reports (e.g. `"kibam"`).
    fn name(&self) -> &'static str;

    /// Apply `current` amperes for `dt` seconds.
    ///
    /// # Panics
    /// Implementations may panic on negative `current` or `dt`; the
    /// simulator never produces them.
    fn step(&mut self, current: f64, dt: f64) -> StepOutcome;

    /// True once the battery has been exhausted.
    fn is_exhausted(&self) -> bool;

    /// Total charge delivered so far, in coulombs.
    fn charge_delivered(&self) -> f64;

    /// Remaining fraction of the battery's *theoretical* capacity, in
    /// `[0, 1]`. For well models this counts all wells — a battery can be
    /// exhausted (empty available well) with `state_of_charge() > 0`, which
    /// is precisely the unexploited-capacity loss the paper fights.
    fn state_of_charge(&self) -> f64;

    /// Restore the initial (full) state.
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_queries() {
        assert!(!StepOutcome::Alive.is_exhausted());
        assert!(StepOutcome::Exhausted { survived: 0.5 }.is_exhausted());
    }
}
