//! Peukert's-law battery model — the classical empirical rate-capacity law,
//! used by early battery-aware work (the paper's \[7\] schedules DAGs against
//! it). Included as a reference point bracketing the physical models.
//!
//! Peukert: a constant discharge at current `I` lasts
//! `L = Cp / I^b` with exponent `b ≳ 1`. Equivalently the battery sustains a
//! fixed budget of `∫ I(τ)^b dτ` — which is how we extend it to varying
//! loads. Note Peukert has **no recovery effect**: rests do not refund
//! anything, which is exactly why the field moved to KiBaM/diffusion models.

use crate::model::{BatteryModel, StepOutcome};
use crate::units::mah_to_coulombs;

/// Parameters of the Peukert model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PeukertParams {
    /// Peukert capacity `Cp` in `A^b·s`: the budget of `∫ I^b dτ`.
    pub peukert_capacity: f64,
    /// Peukert exponent `b ≥ 1`; `b = 1` is the ideal bucket.
    pub exponent: f64,
}

impl PeukertParams {
    /// Calibrated to the paper's AAA NiMH cell: delivers 2000 mAh at a 0.1 A
    /// reference load with exponent 1.15 (typical for NiMH).
    pub fn paper_aaa_nimh() -> Self {
        let i_ref: f64 = 0.1;
        let capacity_c = mah_to_coulombs(2000.0);
        // Lifetime at i_ref: L = capacity_c / i_ref; budget = i_ref^b · L.
        let exponent = 1.15;
        let lifetime = capacity_c / i_ref;
        PeukertParams { peukert_capacity: i_ref.powf(exponent) * lifetime, exponent }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.peukert_capacity.is_finite() && self.peukert_capacity > 0.0) {
            return Err(format!("capacity {} must be positive", self.peukert_capacity));
        }
        if !(self.exponent.is_finite() && self.exponent >= 1.0) {
            return Err(format!("exponent {} must be >= 1", self.exponent));
        }
        Ok(())
    }
}

/// Peukert's-law model state.
#[derive(Debug, Clone)]
pub struct PeukertModel {
    params: PeukertParams,
    consumed: f64,
    delivered: f64,
    exhausted: bool,
}

impl PeukertModel {
    /// A fresh cell.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(params: PeukertParams) -> Self {
        params.validate().expect("invalid Peukert parameters");
        PeukertModel { params, consumed: 0.0, delivered: 0.0, exhausted: false }
    }

    /// The paper's AAA NiMH cell.
    pub fn paper_cell() -> Self {
        PeukertModel::new(PeukertParams::paper_aaa_nimh())
    }

    /// Remaining `∫ I^b dτ` budget.
    pub fn remaining_budget(&self) -> f64 {
        (self.params.peukert_capacity - self.consumed).max(0.0)
    }

    /// Lifetime under a constant current, from full charge.
    pub fn constant_current_lifetime(params: &PeukertParams, current: f64) -> f64 {
        assert!(current > 0.0);
        params.peukert_capacity / current.powf(params.exponent)
    }
}

impl BatteryModel for PeukertModel {
    fn name(&self) -> &'static str {
        "peukert"
    }

    fn step(&mut self, current: f64, dt: f64) -> StepOutcome {
        assert!(current >= 0.0 && dt >= 0.0, "negative current or time");
        if self.exhausted {
            return StepOutcome::Exhausted { survived: 0.0 };
        }
        if dt == 0.0 || current == 0.0 {
            // No recovery in Peukert: zero load simply costs nothing.
            return StepOutcome::Alive;
        }
        let rate = current.powf(self.params.exponent);
        let cost = rate * dt;
        if self.consumed + cost >= self.params.peukert_capacity {
            let survived = (self.params.peukert_capacity - self.consumed) / rate;
            self.consumed = self.params.peukert_capacity;
            self.delivered += current * survived;
            self.exhausted = true;
            return StepOutcome::Exhausted { survived: survived.clamp(0.0, dt) };
        }
        self.consumed += cost;
        self.delivered += current * dt;
        StepOutcome::Alive
    }

    fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    fn charge_delivered(&self) -> f64 {
        self.delivered
    }

    fn state_of_charge(&self) -> f64 {
        (1.0 - self.consumed / self.params.peukert_capacity).clamp(0.0, 1.0)
    }

    fn reset(&mut self) {
        self.consumed = 0.0;
        self.delivered = 0.0;
        self.exhausted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> PeukertModel {
        PeukertModel::new(PeukertParams { peukert_capacity: 100.0, exponent: 1.2 })
    }

    #[test]
    fn constant_current_lifetime_follows_power_law() {
        let p = PeukertParams { peukert_capacity: 100.0, exponent: 1.2 };
        let l1 = PeukertModel::constant_current_lifetime(&p, 1.0);
        let l2 = PeukertModel::constant_current_lifetime(&p, 2.0);
        assert!((l1 - 100.0).abs() < 1e-12);
        assert!((l1 / l2 - 2.0f64.powf(1.2)).abs() < 1e-9);
    }

    #[test]
    fn stepped_death_matches_closed_form() {
        let mut b = cell();
        let mut t = 0.0;
        loop {
            match b.step(2.0, 0.7) {
                StepOutcome::Alive => t += 0.7,
                StepOutcome::Exhausted { survived } => {
                    t += survived;
                    break;
                }
            }
        }
        let expected = PeukertModel::constant_current_lifetime(
            &PeukertParams { peukert_capacity: 100.0, exponent: 1.2 },
            2.0,
        );
        assert!((t - expected).abs() < 1e-9, "{t} vs {expected}");
    }

    #[test]
    fn higher_current_delivers_less_charge() {
        let deliver = |current: f64| {
            let mut b = cell();
            while !b.is_exhausted() {
                b.step(current, 0.1);
            }
            b.charge_delivered()
        };
        assert!(deliver(4.0) < deliver(1.0));
    }

    #[test]
    fn no_recovery_on_rest() {
        let mut b = cell();
        b.step(2.0, 10.0);
        let before = b.state_of_charge();
        b.step(0.0, 1000.0);
        assert_eq!(b.state_of_charge(), before, "Peukert has no recovery");
    }

    #[test]
    fn exponent_one_is_ideal_bucket() {
        let p = PeukertParams { peukert_capacity: 100.0, exponent: 1.0 };
        let mut b = PeukertModel::new(p);
        while !b.is_exhausted() {
            b.step(5.0, 0.1);
        }
        assert!((b.charge_delivered() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn paper_cell_delivers_2000mah_at_reference_load() {
        let p = PeukertParams::paper_aaa_nimh();
        let lifetime = PeukertModel::constant_current_lifetime(&p, 0.1);
        let delivered_mah = 0.1 * lifetime / 3.6;
        assert!((delivered_mah - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(PeukertParams { peukert_capacity: 0.0, exponent: 1.1 }.validate().is_err());
        assert!(PeukertParams { peukert_capacity: 10.0, exponent: 0.9 }.validate().is_err());
    }

    #[test]
    fn reset_restores_budget() {
        let mut b = cell();
        b.step(10.0, 100.0);
        assert!(b.is_exhausted());
        b.reset();
        assert_eq!(b.state_of_charge(), 1.0);
        assert!(!b.is_exhausted());
    }
}
