//! The Rakhmatov–Vrudhula analytical diffusion model (the paper's \[14\]).
//!
//! Models one-dimensional diffusion of the electroactive species toward the
//! electrode. The *apparent* charge consumed by a load `i(τ)` up to time `T`
//! is
//!
//! ```text
//!   σ(T) = ∫₀ᵀ i(τ) dτ  +  2 Σ_{m=1}^∞ ∫₀ᵀ i(τ) e^{−β²m²(T−τ)} dτ
//!          └── drawn ──┘   └────────── unavailable (diffusion lag) ───────┘
//! ```
//!
//! and the battery is exhausted when `σ(T)` reaches the capacity parameter
//! `α`. The second term *decays* while the load is light — that is the
//! recovery effect; it *grows* with recent high-rate load — that is the
//! rate-capacity effect. As `β → ∞` diffusion is instantaneous and the model
//! degenerates to an ideal charge bucket.
//!
//! ## Incremental evaluation
//!
//! Each series term needs only the running value
//! `S_m(T) = ∫₀ᵀ i(τ) e^{−β²m²(T−τ)} dτ`, which over a constant-current step
//! of length `Δ` updates in O(1):
//!
//! ```text
//!   S_m(T+Δ) = S_m(T)·e^{−β²m²Δ} + I·(1 − e^{−β²m²Δ})/(β²m²)
//! ```
//!
//! so stepping is O(M) with M truncation terms (10 by default, the number
//! used by Rakhmatov & Vrudhula), independent of profile history length.

use crate::model::{BatteryModel, StepOutcome};
use crate::units::mah_to_coulombs;

/// Parameters of the diffusion model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiffusionParams {
    /// Capacity parameter `α`, in coulombs: the charge deliverable under an
    /// infinitesimal load (the paper's "maximum capacity").
    pub alpha: f64,
    /// Diffusion rate `β²`, in 1/s. Smaller values mean slower diffusion:
    /// stronger rate-capacity penalty and slower recovery.
    pub beta_squared: f64,
    /// Number of series terms retained.
    pub terms: usize,
}

impl DiffusionParams {
    /// Calibrated to the paper's AAA NiMH anchor points (2000 mAh maximum,
    /// ≈ 1600 mAh nominal at ampere-scale loads); see EXPERIMENTS.md.
    pub fn paper_aaa_nimh() -> Self {
        DiffusionParams {
            alpha: mah_to_coulombs(2000.0),
            // Sized so the steady diffusion lag at ampere-scale loads
            // (2·I·Σ1/m²/β² ≈ 1.5 kC at 1.3 A) leaves ≈ 1600 mAh deliverable
            // — the cell's nominal rating. See EXPERIMENTS.md calibration.
            beta_squared: 2.7e-3,
            terms: 10,
        }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(format!("alpha {} must be positive", self.alpha));
        }
        if !(self.beta_squared.is_finite() && self.beta_squared > 0.0) {
            return Err(format!("beta² {} must be positive", self.beta_squared));
        }
        if self.terms == 0 {
            return Err("terms must be >= 1".to_string());
        }
        Ok(())
    }
}

/// The Rakhmatov–Vrudhula diffusion model with O(terms) stepping.
#[derive(Debug, Clone)]
pub struct DiffusionModel {
    params: DiffusionParams,
    /// Charge actually drawn so far, `∫ i dτ` (coulombs).
    drawn: f64,
    /// Per-term running convolutions `S_m`.
    series: Vec<f64>,
    exhausted: bool,
}

impl DiffusionModel {
    /// A fresh cell with the given parameters.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(params: DiffusionParams) -> Self {
        params.validate().expect("invalid diffusion parameters");
        DiffusionModel { params, drawn: 0.0, series: vec![0.0; params.terms], exhausted: false }
    }

    /// The paper's AAA NiMH cell.
    pub fn paper_cell() -> Self {
        DiffusionModel::new(DiffusionParams::paper_aaa_nimh())
    }

    /// Model parameters.
    pub fn params(&self) -> &DiffusionParams {
        &self.params
    }

    /// Apparent consumed charge `σ` at the current instant.
    pub fn sigma(&self) -> f64 {
        self.drawn + 2.0 * self.series.iter().sum::<f64>()
    }

    /// The "unavailable" charge — the part of σ that will become available
    /// again if the battery rests (the diffusion lag term).
    pub fn unavailable(&self) -> f64 {
        2.0 * self.series.iter().sum::<f64>()
    }

    /// σ after hypothetically applying `current` for `t` more seconds (state
    /// untouched). Used for death-time bisection.
    fn sigma_after(&self, current: f64, t: f64) -> f64 {
        let b2 = self.params.beta_squared;
        let mut sum = 0.0;
        for (m_ix, &s) in self.series.iter().enumerate() {
            let rate = b2 * ((m_ix + 1) as f64).powi(2);
            let decay = (-rate * t).exp();
            sum += s * decay + current * (1.0 - decay) / rate;
        }
        self.drawn + current * t + 2.0 * sum
    }

    fn advance(&mut self, current: f64, t: f64) {
        let b2 = self.params.beta_squared;
        for (m_ix, s) in self.series.iter_mut().enumerate() {
            let rate = b2 * ((m_ix + 1) as f64).powi(2);
            let decay = (-rate * t).exp();
            *s = *s * decay + current * (1.0 - decay) / rate;
        }
        self.drawn += current * t;
    }
}

impl BatteryModel for DiffusionModel {
    fn name(&self) -> &'static str {
        "diffusion"
    }

    fn step(&mut self, current: f64, dt: f64) -> StepOutcome {
        assert!(current >= 0.0 && dt >= 0.0, "negative current or time");
        if self.exhausted {
            return StepOutcome::Exhausted { survived: 0.0 };
        }
        if dt == 0.0 {
            return StepOutcome::Alive;
        }
        // Under zero load σ only decays, so death needs current > 0. After a
        // load transition σ(t) within the step is a constant-plus-decaying-
        // exponentials curve and need not be monotone, so find the *first*
        // crossing by scanning coarse subintervals, then refine by bisection
        // inside the crossing subinterval (where σ passes α exactly once up
        // to physically negligible overshoots).
        if current > 0.0 {
            const SCAN: usize = 64;
            let alpha = self.params.alpha;
            let mut prev_t = 0.0;
            for i in 1..=SCAN {
                let t = dt * i as f64 / SCAN as f64;
                if self.sigma_after(current, t) >= alpha {
                    let (mut a, mut b) = (prev_t, t);
                    for _ in 0..64 {
                        let m = 0.5 * (a + b);
                        if self.sigma_after(current, m) < alpha {
                            a = m;
                        } else {
                            b = m;
                        }
                    }
                    let t_death = 0.5 * (a + b);
                    self.advance(current, t_death);
                    self.exhausted = true;
                    return StepOutcome::Exhausted { survived: t_death };
                }
                prev_t = t;
            }
        }
        self.advance(current, dt);
        StepOutcome::Alive
    }

    fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    fn charge_delivered(&self) -> f64 {
        self.drawn
    }

    fn state_of_charge(&self) -> f64 {
        // Theoretical charge still inside the cell (drawn charge is gone for
        // good; the diffusion-lag part is *not* lost, merely unavailable).
        ((self.params.alpha - self.drawn) / self.params.alpha).clamp(0.0, 1.0)
    }

    fn reset(&mut self) {
        self.drawn = 0.0;
        self.series.iter_mut().for_each(|s| *s = 0.0);
        self.exhausted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cell() -> DiffusionModel {
        // β² sized so ampere-scale loads on a 100 C cell leave a moderate
        // diffusion lag (unavailable ≈ 2I·Σ1/m² / β² ≈ 6 C at 1 A).
        DiffusionModel::new(DiffusionParams { alpha: 100.0, beta_squared: 0.5, terms: 10 })
    }

    #[test]
    fn fresh_cell_has_zero_sigma() {
        let b = small_cell();
        assert_eq!(b.sigma(), 0.0);
        assert_eq!(b.charge_delivered(), 0.0);
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    fn sigma_exceeds_drawn_under_load() {
        let mut b = small_cell();
        b.step(1.0, 10.0);
        assert!(b.sigma() > b.charge_delivered(), "diffusion lag adds apparent charge");
        assert!(b.unavailable() > 0.0);
    }

    #[test]
    fn rest_recovers_unavailable_charge() {
        let mut b = small_cell();
        b.step(2.0, 10.0);
        let lag_before = b.unavailable();
        b.step(0.0, 100.0);
        let lag_after = b.unavailable();
        assert!(lag_after < 0.1 * lag_before, "{lag_after} vs {lag_before}");
        // Drawn charge is not refunded.
        assert!((b.charge_delivered() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rate_capacity_effect_lower_current_delivers_more() {
        let deliver = |current: f64| {
            let mut b = small_cell();
            while !b.is_exhausted() {
                b.step(current, 0.5);
            }
            b.charge_delivered()
        };
        let hi = deliver(10.0);
        let mid = deliver(1.0);
        let lo = deliver(0.05);
        assert!(hi < mid && mid < lo, "hi={hi} mid={mid} lo={lo}");
        assert!(lo > 95.0, "infinitesimal load approaches alpha");
    }

    #[test]
    fn death_time_is_found_within_step() {
        let mut b = small_cell();
        let out = b.step(10.0, 1000.0);
        let StepOutcome::Exhausted { survived } = out else {
            panic!("10 A must kill a 100 C cell inside the step");
        };
        assert!(survived > 0.0 && survived < 1000.0);
        // At the death instant sigma == alpha (to bisection tolerance).
        assert!((b.sigma() - 100.0).abs() < 1e-6, "sigma={}", b.sigma());
        assert!(b.is_exhausted());
    }

    #[test]
    fn exhausted_cell_stays_exhausted() {
        let mut b = small_cell();
        b.step(10.0, 1000.0);
        assert_eq!(b.step(1.0, 1.0), StepOutcome::Exhausted { survived: 0.0 });
    }

    #[test]
    fn large_beta_approaches_ideal_bucket() {
        // Nearly-instant diffusion: delivered charge ~ alpha at any rate.
        let mut b =
            DiffusionModel::new(DiffusionParams { alpha: 100.0, beta_squared: 1e4, terms: 10 });
        while !b.is_exhausted() {
            b.step(10.0, 0.01);
        }
        assert!((b.charge_delivered() - 100.0).abs() < 1.0);
    }

    #[test]
    fn stepping_is_step_size_invariant() {
        let mut coarse = small_cell();
        coarse.step(1.0, 10.0);
        let mut fine = small_cell();
        for _ in 0..1000 {
            fine.step(1.0, 0.01);
        }
        assert!((coarse.sigma() - fine.sigma()).abs() < 1e-9);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut b = small_cell();
        b.step(10.0, 1000.0);
        b.reset();
        assert!(!b.is_exhausted());
        assert_eq!(b.sigma(), 0.0);
        assert_eq!(b.charge_delivered(), 0.0);
    }

    #[test]
    fn invalid_params_are_rejected() {
        for bad in [
            DiffusionParams { alpha: 0.0, beta_squared: 0.01, terms: 10 },
            DiffusionParams { alpha: 100.0, beta_squared: 0.0, terms: 10 },
            DiffusionParams { alpha: 100.0, beta_squared: 0.01, terms: 0 },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn paper_cell_alpha_is_2000_mah() {
        let b = DiffusionModel::paper_cell();
        assert!((b.params().alpha - 7200.0).abs() < 1e-9);
    }
}
