//! Piecewise-constant load-current profiles.
//!
//! From the battery's point of view, an executed schedule is nothing but a
//! sequence of `(current, duration)` segments — the *load profile* the paper
//! keeps referring to. The scheduling simulator emits one of these; the
//! battery models consume it.

use std::fmt;

/// One constant-current stretch of a load profile.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProfileSegment {
    /// Discharge current in amperes (≥ 0; charging is out of scope).
    pub current: f64,
    /// Duration in seconds (> 0).
    pub duration: f64,
}

/// A piecewise-constant discharge-current profile.
///
/// Invariants (enforced by [`LoadProfile::push`]): non-negative finite
/// currents, strictly positive finite durations. Adjacent segments with equal
/// current are merged so profile length reflects actual current *changes* —
/// the quantity guideline G1 constrains.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LoadProfile {
    segments: Vec<ProfileSegment>,
}

impl LoadProfile {
    /// Empty profile.
    pub fn new() -> Self {
        LoadProfile { segments: Vec::new() }
    }

    /// Build from `(current, duration)` pairs.
    ///
    /// # Panics
    /// Panics on invalid segments (see [`push`](Self::push)).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let mut p = LoadProfile::new();
        for (i, d) in pairs {
            p.push(i, d);
        }
        p
    }

    /// Append `duration` seconds at `current` amperes, merging with the tail
    /// segment when the current is identical.
    ///
    /// # Panics
    /// Panics if `current` is negative/non-finite or `duration` is
    /// non-positive/non-finite; profiles are produced by trusted code (the
    /// simulator), so malformed segments are programming errors.
    pub fn push(&mut self, current: f64, duration: f64) {
        assert!(
            current.is_finite() && current >= 0.0,
            "segment current {current} must be finite and >= 0"
        );
        assert!(
            duration.is_finite() && duration > 0.0,
            "segment duration {duration} must be finite and > 0"
        );
        if let Some(last) = self.segments.last_mut() {
            if last.current == current {
                last.duration += duration;
                return;
            }
        }
        self.segments.push(ProfileSegment { current, duration });
    }

    /// The segments in time order.
    #[inline]
    pub fn segments(&self) -> &[ProfileSegment] {
        &self.segments
    }

    /// Number of (merged) segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the profile has no segments.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total duration in seconds.
    pub fn duration(&self) -> f64 {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// Total charge `∫ i dt` in coulombs.
    pub fn total_charge(&self) -> f64 {
        self.segments.iter().map(|s| s.current * s.duration).sum()
    }

    /// Time-averaged current in amperes (0 for an empty profile).
    pub fn average_current(&self) -> f64 {
        let d = self.duration();
        if d == 0.0 {
            0.0
        } else {
            self.total_charge() / d
        }
    }

    /// Peak current in amperes (0 for an empty profile).
    pub fn peak_current(&self) -> f64 {
        self.segments.iter().map(|s| s.current).fold(0.0, f64::max)
    }

    /// Current at absolute time `t` (seconds from profile start); `None`
    /// beyond the end.
    pub fn current_at(&self, t: f64) -> Option<f64> {
        if t < 0.0 {
            return None;
        }
        let mut acc = 0.0;
        for s in &self.segments {
            acc += s.duration;
            if t < acc {
                return Some(s.current);
            }
        }
        None
    }

    /// True when currents are non-increasing over time — the shape guideline
    /// G1 declares optimal.
    pub fn is_non_increasing(&self) -> bool {
        self.segments.windows(2).all(|w| w[0].current >= w[1].current)
    }

    /// The same total-charge profile with segments in reverse order; turns a
    /// non-increasing profile into the pessimal non-decreasing one (used by
    /// the guideline experiments).
    pub fn reversed(&self) -> LoadProfile {
        let mut p = LoadProfile::new();
        for s in self.segments.iter().rev() {
            p.push(s.current, s.duration);
        }
        p
    }

    /// A constant-current profile with the same total charge and duration —
    /// the shape-free control in the guideline experiments.
    pub fn flattened(&self) -> LoadProfile {
        let d = self.duration();
        if d == 0.0 {
            return LoadProfile::new();
        }
        LoadProfile::from_pairs([(self.total_charge() / d, d)])
    }

    /// Concatenate another profile after this one.
    pub fn extend(&mut self, other: &LoadProfile) {
        for s in other.segments() {
            self.push(s.current, s.duration);
        }
    }

    /// This profile repeated `n` times (the periodic schedules of the paper
    /// produce one hyperperiod, then repeat it until the battery dies).
    pub fn repeated(&self, n: usize) -> LoadProfile {
        let mut p = LoadProfile::new();
        for _ in 0..n {
            p.extend(self);
        }
        p
    }
}

impl fmt::Display for LoadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:.3}A×{:.3}s", s.current, s.duration)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_merges_equal_currents() {
        let mut p = LoadProfile::new();
        p.push(1.0, 2.0);
        p.push(1.0, 3.0);
        p.push(0.5, 1.0);
        assert_eq!(p.len(), 2);
        assert_eq!(p.segments()[0], ProfileSegment { current: 1.0, duration: 5.0 });
    }

    #[test]
    fn totals_integrate_correctly() {
        let p = LoadProfile::from_pairs([(2.0, 1.0), (1.0, 2.0)]);
        assert!((p.duration() - 3.0).abs() < 1e-12);
        assert!((p.total_charge() - 4.0).abs() < 1e-12);
        assert!((p.average_current() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.peak_current(), 2.0);
    }

    #[test]
    fn empty_profile_has_zero_stats() {
        let p = LoadProfile::new();
        assert!(p.is_empty());
        assert_eq!(p.duration(), 0.0);
        assert_eq!(p.total_charge(), 0.0);
        assert_eq!(p.average_current(), 0.0);
        assert_eq!(p.peak_current(), 0.0);
    }

    #[test]
    fn current_at_walks_segments() {
        let p = LoadProfile::from_pairs([(2.0, 1.0), (1.0, 2.0)]);
        assert_eq!(p.current_at(0.0), Some(2.0));
        assert_eq!(p.current_at(0.999), Some(2.0));
        assert_eq!(p.current_at(1.0), Some(1.0));
        assert_eq!(p.current_at(2.9), Some(1.0));
        assert_eq!(p.current_at(3.0), None);
        assert_eq!(p.current_at(-0.1), None);
    }

    #[test]
    fn non_increasing_detection() {
        assert!(LoadProfile::from_pairs([(3.0, 1.0), (2.0, 1.0), (2.0, 1.0), (1.0, 1.0)])
            .is_non_increasing());
        assert!(!LoadProfile::from_pairs([(1.0, 1.0), (2.0, 1.0)]).is_non_increasing());
        assert!(LoadProfile::new().is_non_increasing());
    }

    #[test]
    fn reversed_preserves_charge_and_duration() {
        let p = LoadProfile::from_pairs([(3.0, 1.0), (1.0, 2.0)]);
        let r = p.reversed();
        assert!((r.total_charge() - p.total_charge()).abs() < 1e-12);
        assert!((r.duration() - p.duration()).abs() < 1e-12);
        assert!(p.is_non_increasing());
        assert!(!r.is_non_increasing());
    }

    #[test]
    fn flattened_is_constant_with_same_integral() {
        let p = LoadProfile::from_pairs([(3.0, 1.0), (1.0, 3.0)]);
        let f = p.flattened();
        assert_eq!(f.len(), 1);
        assert!((f.total_charge() - p.total_charge()).abs() < 1e-12);
        assert!((f.duration() - p.duration()).abs() < 1e-12);
        assert!((f.average_current() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn repeated_scales_totals() {
        let p = LoadProfile::from_pairs([(1.0, 1.0), (0.5, 1.0)]);
        let r = p.repeated(3);
        assert!((r.duration() - 6.0).abs() < 1e-12);
        assert!((r.total_charge() - 4.5).abs() < 1e-12);
        // Boundary merging: tail 0.5 A then head 1.0 A — no merge, so 6 segs.
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn repeated_merges_across_boundary_when_equal() {
        let p = LoadProfile::from_pairs([(1.0, 1.0)]);
        let r = p.repeated(4);
        assert_eq!(r.len(), 1);
        assert!((r.duration() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be finite and >= 0")]
    fn negative_current_panics() {
        LoadProfile::new().push(-1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and > 0")]
    fn zero_duration_panics() {
        LoadProfile::new().push(1.0, 0.0);
    }

    #[test]
    fn display_is_compact() {
        let p = LoadProfile::from_pairs([(1.5, 2.0)]);
        assert_eq!(p.to_string(), "[1.500A×2.000s]");
    }
}
