//! The Kinetic Battery Model (KiBaM) of Manwell & McGowan — the two-well
//! model the paper uses to explain both scheduling guidelines (§3).
//!
//! Charge lives in two wells:
//!
//! ```text
//!      bound (y2)   k'·[c·y2 − (1−c)·y1]   available (y1)
//!    ┌───────────┐ ────────────────────▶ ┌─────────────┐ ──▶ load I
//!    │  1−c of C │   (recovery flux)     │   c of C    │
//!    └───────────┘                       └─────────────┘
//! ```
//!
//! Only the available well feeds the load; the bound well replenishes it at a
//! rate proportional to the difference in well *heights* (`h1 = y1/c`,
//! `h2 = y2/(1−c)`). The battery is exhausted when the available well empties
//! — possibly with plenty of charge still bound, which is exactly the
//! capacity loss battery-aware scheduling avoids.
//!
//! The ODEs
//!
//! ```text
//!   dy1/dt = −I + k'·[c·y2 − (1−c)·y1]
//!   dy2/dt =      −k'·[c·y2 − (1−c)·y1]
//! ```
//!
//! have a closed-form solution for constant `I`, which [`Kibam::step`] uses —
//! one evaluation per step regardless of step length. [`rk4_step`] provides
//! an independent numerical integrator; a property test cross-validates the
//! two.

use crate::model::{BatteryModel, StepOutcome};
use crate::units::mah_to_coulombs;

/// Parameters of a KiBaM cell.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KibamParams {
    /// Total (theoretical/maximum) capacity of both wells, in coulombs.
    /// This is the charge delivered under infinitesimal load — the paper's
    /// "maximum capacity" (2000 mAh for its AAA cell).
    pub capacity: f64,
    /// Fraction of capacity in the available well, `c ∈ (0, 1)`.
    pub c: f64,
    /// Rate constant `k'` in 1/s: how fast the wells equalize.
    pub k_prime: f64,
}

impl KibamParams {
    /// The paper's 1.2 V Panasonic AAA NiMH cell: 2000 mAh maximum capacity,
    /// calibrated so the nominal (~A-scale load) delivered capacity is about
    /// 1600 mAh, matching §5. See EXPERIMENTS.md "Battery calibration".
    pub fn paper_aaa_nimh() -> Self {
        KibamParams { capacity: mah_to_coulombs(2000.0), c: 0.625, k_prime: 4.5e-4 }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.capacity.is_finite() && self.capacity > 0.0) {
            return Err(format!("capacity {} must be positive", self.capacity));
        }
        if !(self.c.is_finite() && self.c > 0.0 && self.c < 1.0) {
            return Err(format!("c {} must be in (0,1)", self.c));
        }
        if !(self.k_prime.is_finite() && self.k_prime > 0.0) {
            return Err(format!("k' {} must be positive", self.k_prime));
        }
        Ok(())
    }
}

/// Well state of a KiBaM cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KibamState {
    /// Available charge (feeds the load directly), coulombs.
    pub available: f64,
    /// Bound charge, coulombs.
    pub bound: f64,
}

/// The Kinetic Battery Model with closed-form constant-current stepping.
#[derive(Debug, Clone)]
pub struct Kibam {
    params: KibamParams,
    state: KibamState,
    delivered: f64,
    exhausted: bool,
}

impl Kibam {
    /// A fully-charged cell with the given parameters.
    ///
    /// # Panics
    /// Panics on invalid parameters; construct params via
    /// [`KibamParams::validate`] first if they are untrusted.
    pub fn new(params: KibamParams) -> Self {
        params.validate().expect("invalid KiBaM parameters");
        Kibam {
            params,
            state: KibamState {
                available: params.c * params.capacity,
                bound: (1.0 - params.c) * params.capacity,
            },
            delivered: 0.0,
            exhausted: false,
        }
    }

    /// The paper's AAA NiMH cell, fully charged.
    pub fn paper_cell() -> Self {
        Kibam::new(KibamParams::paper_aaa_nimh())
    }

    /// Model parameters.
    pub fn params(&self) -> &KibamParams {
        &self.params
    }

    /// Current well state.
    pub fn state(&self) -> KibamState {
        self.state
    }

    /// Closed-form well contents after drawing constant `current` for `t`
    /// seconds from state `s0` (no exhaustion handling — may go negative).
    fn wells_at(&self, s0: KibamState, current: f64, t: f64) -> KibamState {
        let KibamParams { c, k_prime: kp, .. } = self.params;
        let q0 = s0.available + s0.bound;
        let r = (-kp * t).exp();
        let ramp = (kp * t - 1.0 + r) / kp;
        let available =
            s0.available * r + (q0 * kp * c - current) * (1.0 - r) / kp - current * c * ramp;
        let bound = s0.bound * r + q0 * (1.0 - c) * (1.0 - r) - current * (1.0 - c) * ramp;
        KibamState { available, bound }
    }

    /// First `t ∈ (0, dt]` at which the available well empties, if any.
    ///
    /// `y1(t)` under constant current has at most one interior stationary
    /// point, so the first zero can be bracketed exactly and bisected.
    fn first_empty(&self, current: f64, dt: f64) -> Option<f64> {
        let s0 = self.state;
        let y1 = |t: f64| self.wells_at(s0, current, t).available;
        debug_assert!(y1(0.0) > 0.0);
        // Derivative sign analysis: y1'(t) = k'·[r·(B−A+D) − D] with
        //   A = y1(0), B = q0·c − I/k' + ...; rather than juggling the
        // antiderivative constants, evaluate the ODE derivative directly.
        let kp = self.params.k_prime;
        let c = self.params.c;
        let flux = |s: KibamState| kp * (c * s.bound - (1.0 - c) * s.available);
        let dy1 = |t: f64| {
            let s = self.wells_at(s0, current, t);
            -current + flux(s)
        };
        // y1' is monotone in t (its sign changes at most once) because the
        // flux relaxes exponentially toward the constant −I equilibrium. Find
        // the monotone-decreasing region's end by bisecting y1' if needed.
        let (lo, hi) = if dy1(0.0) < 0.0 {
            if dy1(dt) <= 0.0 {
                // Decreasing throughout: zero iff y1(dt) <= 0.
                if y1(dt) > 0.0 {
                    return None;
                }
                (0.0, dt)
            } else {
                // Decreasing then increasing: minimum at the sign change.
                let mut a = 0.0;
                let mut b = dt;
                for _ in 0..64 {
                    let m = 0.5 * (a + b);
                    if dy1(m) < 0.0 {
                        a = m;
                    } else {
                        b = m;
                    }
                }
                let t_min = 0.5 * (a + b);
                if y1(t_min) > 0.0 {
                    return None; // dipped but stayed positive; recovers after
                }
                (0.0, t_min)
            }
        } else {
            // Increasing first (recovery exceeds load): y1 grows, then may
            // decrease once the wells equalize. Check the end state.
            if y1(dt) > 0.0 {
                return None;
            }
            (0.0, dt)
        };
        // Bisect the first crossing within [lo, hi]: y1(lo) > 0 ≥ y1(hi).
        let (mut a, mut b) = (lo, hi);
        for _ in 0..64 {
            let m = 0.5 * (a + b);
            if y1(m) > 0.0 {
                a = m;
            } else {
                b = m;
            }
        }
        Some(0.5 * (a + b))
    }
}

impl BatteryModel for Kibam {
    fn name(&self) -> &'static str {
        "kibam"
    }

    fn step(&mut self, current: f64, dt: f64) -> StepOutcome {
        assert!(current >= 0.0 && dt >= 0.0, "negative current or time");
        if self.exhausted {
            return StepOutcome::Exhausted { survived: 0.0 };
        }
        if dt == 0.0 {
            return StepOutcome::Alive;
        }
        if current > 0.0 {
            if let Some(t_death) = self.first_empty(current, dt) {
                let s = self.wells_at(self.state, current, t_death);
                self.state = KibamState { available: 0.0, bound: s.bound.max(0.0) };
                self.delivered += current * t_death;
                self.exhausted = true;
                return StepOutcome::Exhausted { survived: t_death };
            }
        }
        let s = self.wells_at(self.state, current, dt);
        // Clamp tiny negative round-off; real negatives were caught above.
        self.state = KibamState { available: s.available.max(0.0), bound: s.bound.max(0.0) };
        self.delivered += current * dt;
        StepOutcome::Alive
    }

    fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    fn charge_delivered(&self) -> f64 {
        self.delivered
    }

    fn state_of_charge(&self) -> f64 {
        ((self.state.available + self.state.bound) / self.params.capacity).clamp(0.0, 1.0)
    }

    fn reset(&mut self) {
        self.state = KibamState {
            available: self.params.c * self.params.capacity,
            bound: (1.0 - self.params.c) * self.params.capacity,
        };
        self.delivered = 0.0;
        self.exhausted = false;
    }
}

/// One classical RK4 step of the KiBaM ODEs — the independent integrator used
/// to cross-validate the closed form (and by the stochastic model to anchor
/// its expectation tests).
pub fn rk4_step(params: &KibamParams, state: KibamState, current: f64, dt: f64) -> KibamState {
    let f = |s: KibamState| {
        let flux = params.k_prime * (params.c * s.bound - (1.0 - params.c) * s.available);
        (-current + flux, -flux)
    };
    let add = |s: KibamState, d: (f64, f64), h: f64| KibamState {
        available: s.available + d.0 * h,
        bound: s.bound + d.1 * h,
    };
    let k1 = f(state);
    let k2 = f(add(state, k1, dt / 2.0));
    let k3 = f(add(state, k2, dt / 2.0));
    let k4 = f(add(state, k3, dt));
    KibamState {
        available: state.available + dt / 6.0 * (k1.0 + 2.0 * k2.0 + 2.0 * k3.0 + k4.0),
        bound: state.bound + dt / 6.0 * (k1.1 + 2.0 * k2.1 + 2.0 * k3.1 + k4.1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cell() -> Kibam {
        Kibam::new(KibamParams { capacity: 100.0, c: 0.5, k_prime: 0.01 })
    }

    #[test]
    fn full_cell_splits_capacity_by_c() {
        let b = small_cell();
        assert_eq!(b.state().available, 50.0);
        assert_eq!(b.state().bound, 50.0);
        assert_eq!(b.state_of_charge(), 1.0);
        assert!(!b.is_exhausted());
    }

    #[test]
    fn charge_is_conserved_while_alive() {
        let mut b = small_cell();
        b.step(1.0, 10.0);
        let s = b.state();
        let total = s.available + s.bound + b.charge_delivered();
        assert!((total - 100.0).abs() < 1e-9, "conservation: {total}");
    }

    #[test]
    fn zero_current_recovers_available_well() {
        let mut b = small_cell();
        b.step(2.0, 10.0); // drain available well
        let drained = b.state().available;
        b.step(0.0, 200.0); // rest
        let rested = b.state().available;
        assert!(rested > drained, "recovery must refill available well");
        // Equilibrium: heights equalize, y1 -> c * total.
        b.step(0.0, 1e6);
        let s = b.state();
        let expected = 0.5 * (s.available + s.bound + 0.0);
        assert!((s.available - expected).abs() < 1e-6);
    }

    #[test]
    fn death_occurs_when_available_well_empties() {
        let mut b = small_cell();
        // 50 C available; at 10 A with weak recovery it lasts ~5 s.
        let out = b.step(10.0, 100.0);
        match out {
            StepOutcome::Exhausted { survived } => {
                assert!(survived > 4.0 && survived < 7.0, "survived = {survived}");
            }
            StepOutcome::Alive => panic!("cell must die under 10 A"),
        }
        assert!(b.is_exhausted());
        assert!(b.state_of_charge() > 0.0, "bound charge remains at death");
        // Steps after death deliver nothing.
        let again = b.step(1.0, 1.0);
        assert_eq!(again, StepOutcome::Exhausted { survived: 0.0 });
    }

    #[test]
    fn delivered_charge_counts_only_survived_time() {
        let mut b = small_cell();
        let out = b.step(10.0, 100.0);
        let StepOutcome::Exhausted { survived } = out else {
            panic!("must die");
        };
        assert!((b.charge_delivered() - 10.0 * survived).abs() < 1e-9);
    }

    #[test]
    fn rate_capacity_effect_lower_current_delivers_more() {
        let deliver = |current: f64| {
            let mut b = small_cell();
            while !b.is_exhausted() {
                b.step(current, 1.0);
            }
            b.charge_delivered()
        };
        let hi = deliver(10.0);
        let mid = deliver(1.0);
        let lo = deliver(0.01);
        assert!(hi < mid && mid < lo, "hi={hi} mid={mid} lo={lo}");
        // At death the bound well must still sustain I (k'·c·y2 ≥ I), so the
        // unextractable residue shrinks linearly with the load: ~2 C at 10 mA.
        assert!(lo > 95.0, "infinitesimal load approaches full capacity: {lo}");
        assert!(hi < 60.0, "harsh load barely exceeds the available well: {hi}");
    }

    #[test]
    fn recovery_extends_lifetime_for_pulsed_load() {
        // Same average current, one continuous vs pulsed with rests.
        let continuous = {
            let mut b = small_cell();
            let mut t = 0.0;
            while !b.is_exhausted() {
                b.step(5.0, 0.5);
                t += 0.5;
            }
            (t, b.charge_delivered())
        };
        let pulsed = {
            let mut b = small_cell();
            let mut t = 0.0;
            let mut delivered_time = 0.0;
            while !b.is_exhausted() {
                if b.step(10.0, 0.5) == StepOutcome::Alive {
                    delivered_time += 0.5;
                    b.step(0.0, 0.5);
                    t += 1.0;
                } else {
                    break;
                }
            }
            let _ = (t, delivered_time);
            b.charge_delivered()
        };
        assert!(
            pulsed > continuous.1,
            "pulsed {pulsed} must deliver more than continuous {:?}",
            continuous
        );
    }

    #[test]
    fn closed_form_matches_rk4() {
        let params = KibamParams { capacity: 100.0, c: 0.4, k_prime: 0.02 };
        let mut analytic = Kibam::new(params);
        let mut numeric = KibamState { available: 40.0, bound: 60.0 };
        let current = 0.7;
        let dt = 0.01;
        for _ in 0..5_000 {
            analytic.step(current, dt);
            numeric = rk4_step(&params, numeric, current, dt);
        }
        let s = analytic.state();
        assert!((s.available - numeric.available).abs() < 1e-6, "{s:?} vs {numeric:?}");
        assert!((s.bound - numeric.bound).abs() < 1e-6);
    }

    #[test]
    fn closed_form_is_step_size_invariant() {
        let params = KibamParams { capacity: 100.0, c: 0.5, k_prime: 0.01 };
        let mut coarse = Kibam::new(params);
        coarse.step(1.0, 30.0);
        let mut fine = Kibam::new(params);
        for _ in 0..3000 {
            fine.step(1.0, 0.01);
        }
        assert!((coarse.state().available - fine.state().available).abs() < 1e-9);
        assert!((coarse.state().bound - fine.state().bound).abs() < 1e-9);
    }

    #[test]
    fn reset_restores_full_charge() {
        let mut b = small_cell();
        b.step(10.0, 100.0);
        assert!(b.is_exhausted());
        b.reset();
        assert!(!b.is_exhausted());
        assert_eq!(b.charge_delivered(), 0.0);
        assert_eq!(b.state().available, 50.0);
    }

    #[test]
    fn paper_cell_has_2000mah_capacity() {
        let b = Kibam::paper_cell();
        let total = b.state().available + b.state().bound;
        assert!((total - 7200.0).abs() < 1e-9, "2000 mAh = 7200 C, got {total}");
    }

    #[test]
    fn invalid_params_are_rejected() {
        for bad in [
            KibamParams { capacity: 0.0, c: 0.5, k_prime: 0.01 },
            KibamParams { capacity: 100.0, c: 0.0, k_prime: 0.01 },
            KibamParams { capacity: 100.0, c: 1.0, k_prime: 0.01 },
            KibamParams { capacity: 100.0, c: 0.5, k_prime: 0.0 },
            KibamParams { capacity: f64::NAN, c: 0.5, k_prime: 0.01 },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn zero_duration_step_is_a_noop() {
        let mut b = small_cell();
        let before = b.state();
        assert_eq!(b.step(5.0, 0.0), StepOutcome::Alive);
        assert_eq!(b.state(), before);
    }
}
