//! Crate-level property tests for the battery models.

use bas_battery::lifetime::delivered_at_constant_current;
use bas_battery::{
    kibam, BatteryModel, DiffusionModel, DiffusionParams, IdealModel, Kibam, KibamParams,
    LoadProfile, PeukertModel, PeukertParams, RunOptions, StepOutcome, StochasticKibam,
    StochasticMode,
};
use proptest::prelude::*;

fn arb_kibam() -> impl Strategy<Value = KibamParams> {
    (10.0f64..1000.0, 0.2f64..0.8, 1e-4f64..1e-1).prop_map(|(capacity, c, k_prime)| KibamParams {
        capacity,
        c,
        k_prime,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kibam_closed_form_matches_rk4_on_random_paths(
        params in arb_kibam(),
        currents in prop::collection::vec(0.0f64..5.0, 1..10),
        dt in 0.01f64..2.0,
    ) {
        let mut analytic = Kibam::new(params);
        let mut numeric = analytic.state();
        for &i in &currents {
            if analytic.step(i, dt).is_exhausted() {
                return Ok(()); // death paths are compared elsewhere
            }
            // RK4 with substeps for accuracy at large k'·dt.
            let sub = 50;
            for _ in 0..sub {
                numeric = kibam::rk4_step(&params, numeric, i, dt / sub as f64);
            }
        }
        let s = analytic.state();
        let scale = params.capacity.max(1.0);
        prop_assert!((s.available - numeric.available).abs() / scale < 1e-4);
        prop_assert!((s.bound - numeric.bound).abs() / scale < 1e-4);
    }

    #[test]
    fn kibam_death_time_shrinks_with_current(
        params in arb_kibam(),
        i_lo in 0.5f64..2.0,
        factor in 1.5f64..5.0,
    ) {
        let life = |i: f64| {
            let mut cell = Kibam::new(params);
            let mut t = 0.0;
            loop {
                match cell.step(i, 1.0) {
                    StepOutcome::Alive => t += 1.0,
                    StepOutcome::Exhausted { survived } => break t + survived,
                }
            }
        };
        prop_assert!(life(i_lo) > life(i_lo * factor));
    }

    #[test]
    fn all_models_never_deliver_more_than_theoretical_capacity(
        current in 0.05f64..5.0,
        seed in 0u64..500,
    ) {
        let cap = 100.0;
        let mut models: Vec<Box<dyn BatteryModel>> = vec![
            Box::new(Kibam::new(KibamParams { capacity: cap, c: 0.5, k_prime: 1e-2 })),
            Box::new(DiffusionModel::new(DiffusionParams {
                alpha: cap,
                beta_squared: 0.05,
                terms: 10,
            })),
            Box::new(StochasticKibam::new(
                KibamParams { capacity: cap, c: 0.5, k_prime: 1e-2 },
                1e-3,
                0.05,
                StochasticMode::Sampled,
                seed,
            )),
            Box::new(IdealModel::new(cap)),
        ];
        for m in models.iter_mut() {
            let q = delivered_at_constant_current(m.as_mut(), current);
            prop_assert!(q <= cap + 1e-6, "{} delivered {q} of {cap}", m.name());
            prop_assert!(q > 0.0, "{} delivered nothing", m.name());
        }
    }

    #[test]
    fn exhausted_models_stay_exhausted_and_deliver_nothing(
        current in 1.0f64..5.0,
    ) {
        let mut models: Vec<Box<dyn BatteryModel>> = vec![
            Box::new(Kibam::new(KibamParams { capacity: 20.0, c: 0.5, k_prime: 1e-3 })),
            Box::new(DiffusionModel::new(DiffusionParams {
                alpha: 20.0,
                beta_squared: 0.05,
                terms: 10,
            })),
            Box::new(PeukertModel::new(PeukertParams {
                peukert_capacity: 20.0,
                exponent: 1.1,
            })),
            Box::new(IdealModel::new(20.0)),
        ];
        for m in models.iter_mut() {
            while !m.is_exhausted() {
                m.step(current, 0.5);
            }
            let q = m.charge_delivered();
            for _ in 0..5 {
                let out = m.step(current, 1.0);
                prop_assert!(out.is_exhausted(), "{}", m.name());
            }
            prop_assert_eq!(m.charge_delivered(), q, "{} delivered after death", m.name());
        }
    }

    #[test]
    fn survived_time_is_within_step_bounds(
        params in arb_kibam(),
        current in 0.5f64..10.0,
        dt in 0.1f64..1e4,
    ) {
        let mut cell = Kibam::new(params);
        match cell.step(current, dt) {
            StepOutcome::Alive => {}
            StepOutcome::Exhausted { survived } => {
                prop_assert!((0.0..=dt).contains(&survived));
                // Delivered charge equals current × survived exactly.
                prop_assert!((cell.charge_delivered() - current * survived).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn profile_reversal_is_involutive_and_charge_preserving(
        pairs in prop::collection::vec((0.0f64..3.0, 0.1f64..10.0), 1..8),
    ) {
        let p = LoadProfile::from_pairs(pairs);
        let r = p.reversed();
        prop_assert!((p.total_charge() - r.total_charge()).abs() < 1e-9);
        prop_assert!((p.duration() - r.duration()).abs() < 1e-9);
        let rr = r.reversed();
        prop_assert_eq!(p.segments().len(), rr.segments().len());
        for (a, b) in p.segments().iter().zip(rr.segments()) {
            prop_assert!((a.current - b.current).abs() < 1e-12);
            prop_assert!((a.duration - b.duration).abs() < 1e-9);
        }
    }

    #[test]
    fn run_profile_lifetime_equals_charge_over_current_for_ideal(
        capacity in 1.0f64..1000.0,
        current in 0.01f64..10.0,
    ) {
        let mut cell = IdealModel::new(capacity);
        let profile = LoadProfile::from_pairs([(current, 1.0)]);
        let r = bas_battery::run_profile(&mut cell, &profile, RunOptions::default());
        prop_assert!(r.died);
        prop_assert!((r.lifetime - capacity / current).abs() / (capacity / current) < 1e-9);
    }
}
