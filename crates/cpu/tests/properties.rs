//! Crate-level property tests for the processor model.

use bas_cpu::presets::{dense_dvs_processor, paper_processor, unit_processor};
use bas_cpu::{FreqPolicy, OperatingPoint, OppTable, PowerModel, Processor, SupplyConfig};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = OppTable> {
    // 2..6 strictly increasing frequencies with non-decreasing voltages.
    prop::collection::vec((0.1f64..2.0, 0.1f64..2.0), 2..6).prop_map(|steps| {
        let mut f = 0.0;
        let mut v = 0.5;
        let opps = steps
            .into_iter()
            .map(|(df, dv)| {
                f += df;
                v += dv;
                OperatingPoint::new(f, v)
            })
            .collect();
        OppTable::new(opps).expect("monotone by construction")
    })
}

fn arb_processor() -> impl Strategy<Value = Processor> {
    (arb_table(), 0.5f64..1.0, 0.5f64..5.0, 0.0f64..0.2).prop_map(|(t, eta, vbat, idle)| {
        Processor::new(t, SupplyConfig { ceff: 0.1, efficiency: eta, vbat, idle_current: idle })
            .expect("valid supply")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interpolation_realizes_any_in_range_frequency_exactly(
        p in arb_processor(),
        frac in 0.0f64..1.0,
    ) {
        let fref = p.fmin() + frac * (p.fmax() - p.fmin());
        let r = p.realize(fref, FreqPolicy::Interpolate);
        prop_assert!((r.average_frequency - fref).abs() < 1e-9 * p.fmax());
        let weight: f64 = r.segments().map(|s| s.time_fraction).sum();
        prop_assert!((weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn round_up_never_under_delivers_and_uses_one_segment(
        p in arb_processor(),
        frac in 0.0f64..1.2,
    ) {
        let fref = p.fmin() + frac * (p.fmax() - p.fmin());
        let r = p.realize(fref, FreqPolicy::RoundUp);
        prop_assert!(r.hi.is_none());
        prop_assert!(r.average_frequency >= fref.min(p.fmax()) - 1e-12);
    }

    #[test]
    fn interpolated_current_is_between_leg_currents(
        p in arb_processor(),
        frac in 0.01f64..0.99,
    ) {
        let fref = p.fmin() + frac * (p.fmax() - p.fmin());
        let r = p.realize(fref, FreqPolicy::Interpolate);
        let i = p.battery_current_of(&r);
        let i_min = p.battery_current_at(0);
        let i_max = p.battery_current_at(p.opps().len() - 1);
        prop_assert!(i >= i_min - 1e-12 && i <= i_max + 1e-12);
    }

    #[test]
    fn energy_per_cycle_is_monotone_in_frequency(
        p in arb_processor(),
        f1 in 0.0f64..1.0,
        f2 in 0.0f64..1.0,
    ) {
        // V non-decreasing in f means battery energy per cycle (∝ V²·extras)
        // is non-decreasing in the realized frequency.
        let lo = p.fmin() + f1.min(f2) * (p.fmax() - p.fmin());
        let hi = p.fmin() + f1.max(f2) * (p.fmax() - p.fmin());
        let e = |fref: f64| {
            let r = p.realize(fref, FreqPolicy::Interpolate);
            p.energy_for_cycles(&r, 1.0)
        };
        prop_assert!(e(lo) <= e(hi) + 1e-12);
    }

    #[test]
    fn charge_scales_linearly_with_cycles(
        p in arb_processor(),
        frac in 0.0f64..1.0,
        cycles in 1.0f64..1e6,
    ) {
        let fref = p.fmin() + frac * (p.fmax() - p.fmin());
        let r = p.realize(fref, FreqPolicy::Interpolate);
        let q1 = p.charge_for_cycles(&r, cycles);
        let q2 = p.charge_for_cycles(&r, 2.0 * cycles);
        prop_assert!((q2 - 2.0 * q1).abs() < 1e-9 * q2.abs().max(1.0));
    }
}

#[test]
fn presets_are_mutually_consistent() {
    let unit = unit_processor();
    let paper = paper_processor();
    // Same relative current ladder.
    for i in 0..3 {
        let ru = unit.battery_current_at(i) / unit.battery_current_at(2);
        let rp = paper.battery_current_at(i) / paper.battery_current_at(2);
        assert!((ru - rp).abs() < 1e-12, "opp {i}");
    }
    // Dense preset brackets the paper's OPP line.
    let dense = dense_dvs_processor(20, 0.05);
    assert!(dense.fmin() < unit.fmin());
    assert_eq!(dense.fmax(), unit.fmax());
    // On the shared line V(f) = 4f+1, currents agree at f = 1.0.
    let i_dense_top = dense.battery_current_at(19);
    let i_unit_top = unit.battery_current_at(2);
    assert!((i_dense_top - i_unit_top).abs() < 1e-9);
}

#[test]
fn power_model_trait_exposes_core_power() {
    let p = unit_processor();
    let opp = OperatingPoint::new(1.0, 5.0);
    let watts = p.core_power(opp);
    // I_bat = P/(η·Vbat) ⇒ P = 1.8 · 0.9 · 1.2 = 1.944 W at full speed.
    assert!((watts - 1.944).abs() < 1e-9, "{watts}");
}
