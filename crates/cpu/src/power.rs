//! Power, current and energy model of the processor + DC-DC converter.
//!
//! The core draws dynamic CMOS power `P = Ceff · V² · f`. The battery feeds
//! the core through a DC-DC converter of efficiency `η` (paper §2):
//!
//! ```text
//!   η · Vbat · Ibat = Vproc · Iproc = P_proc
//!   =>  Ibat = P_proc / (η · Vbat)
//! ```
//!
//! With `V ∝ f` (true to good approximation in the paper's OPP table),
//! scaling the speed by `s` scales `Ibat` by `s³` — the paper's headline
//! hardware fact. Idle draws a small constant battery current: real systems
//! never reach zero, and a free idle state would let the no-DVS baseline
//! cheat on battery lifetime.

use crate::error::CpuError;
use crate::freq::{FreqPolicy, Realization};
use crate::opp::{OperatingPoint, OppTable};

/// Electrical parameters of the power-delivery path.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SupplyConfig {
    /// Effective switched capacitance of the core, in farads.
    pub ceff: f64,
    /// DC-DC converter efficiency `η ∈ (0, 1]`, assumed constant over the
    /// voltage range (paper §2 assumption).
    pub efficiency: f64,
    /// Battery terminal voltage in volts (1.2 V for the paper's NiMH AAA).
    pub vbat: f64,
    /// Constant battery current drawn while idle, in amperes.
    pub idle_current: f64,
}

impl SupplyConfig {
    fn validate(&self) -> Result<(), CpuError> {
        let checks: [(&'static str, f64, bool); 4] = [
            ("ceff", self.ceff, self.ceff.is_finite() && self.ceff > 0.0),
            (
                "efficiency",
                self.efficiency,
                self.efficiency.is_finite() && self.efficiency > 0.0 && self.efficiency <= 1.0,
            ),
            ("vbat", self.vbat, self.vbat.is_finite() && self.vbat > 0.0),
            (
                "idle_current",
                self.idle_current,
                self.idle_current.is_finite() && self.idle_current >= 0.0,
            ),
        ];
        for (name, value, ok) in checks {
            if !ok {
                return Err(CpuError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }
}

/// Power/current queries for a single operating point.
pub trait PowerModel {
    /// Core power at `opp`, in watts.
    fn core_power(&self, opp: OperatingPoint) -> f64;
    /// Battery current at `opp`, in amperes.
    fn battery_current(&self, opp: OperatingPoint) -> f64;
    /// Battery current while idle, in amperes.
    fn idle_current(&self) -> f64;
}

/// The complete DVS processor: operating points + supply electricals.
///
/// This is the object the simulator and all schedulers share; it is immutable
/// and cheap to clone (the OPP table is tiny).
#[derive(Debug, Clone, PartialEq)]
pub struct Processor {
    opps: OppTable,
    supply: SupplyConfig,
}

impl Processor {
    /// Build a processor, validating the supply parameters.
    pub fn new(opps: OppTable, supply: SupplyConfig) -> Result<Self, CpuError> {
        supply.validate()?;
        Ok(Processor { opps, supply })
    }

    /// The operating-point table.
    #[inline]
    pub fn opps(&self) -> &OppTable {
        &self.opps
    }

    /// The supply parameters.
    #[inline]
    pub fn supply(&self) -> &SupplyConfig {
        &self.supply
    }

    /// Peak frequency (cycles per second).
    #[inline]
    pub fn fmax(&self) -> f64 {
        self.opps.fmax()
    }

    /// Minimum frequency.
    #[inline]
    pub fn fmin(&self) -> f64 {
        self.opps.fmin()
    }

    /// Realize a continuous frequency request under `policy`.
    #[inline]
    pub fn realize(&self, fref: f64, policy: FreqPolicy) -> Realization {
        Realization::of(fref, &self.opps, policy)
    }

    /// Battery current at a discrete operating point (by table index).
    #[inline]
    pub fn battery_current_at(&self, opp_index: usize) -> f64 {
        self.battery_current(self.opps.get(opp_index))
    }

    /// Average battery current over a realization (time-weighted over its
    /// segments).
    pub fn battery_current_of(&self, r: &Realization) -> f64 {
        r.segments().map(|s| s.time_fraction * self.battery_current_at(s.opp)).sum()
    }

    /// Battery **charge** (coulombs) consumed to execute `cycles` cycles at
    /// realization `r`.
    pub fn charge_for_cycles(&self, r: &Realization, cycles: f64) -> f64 {
        let t = r.time_for_cycles(cycles);
        self.battery_current_of(r) * t
    }

    /// Battery-side **energy** (joules) to execute `cycles` cycles at `r`.
    pub fn energy_for_cycles(&self, r: &Realization, cycles: f64) -> f64 {
        self.charge_for_cycles(r, cycles) * self.supply.vbat
    }

    /// Battery-side energy of `duration` seconds of idling.
    pub fn idle_energy(&self, duration: f64) -> f64 {
        self.supply.idle_current * duration * self.supply.vbat
    }
}

impl PowerModel for Processor {
    fn core_power(&self, opp: OperatingPoint) -> f64 {
        self.supply.ceff * opp.voltage * opp.voltage * opp.frequency
    }

    fn battery_current(&self, opp: OperatingPoint) -> f64 {
        self.core_power(opp) / (self.supply.efficiency * self.supply.vbat)
    }

    fn idle_current(&self) -> f64 {
        self.supply.idle_current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A processor whose voltage is exactly proportional to frequency, so
    /// the s³ current law holds exactly.
    fn proportional() -> Processor {
        let opps = OppTable::new(vec![
            OperatingPoint::new(0.25, 1.25),
            OperatingPoint::new(0.5, 2.5),
            OperatingPoint::new(1.0, 5.0),
        ])
        .unwrap();
        Processor::new(
            opps,
            SupplyConfig { ceff: 1.0, efficiency: 1.0, vbat: 1.0, idle_current: 0.0 },
        )
        .unwrap()
    }

    #[test]
    fn core_power_is_cv2f() {
        let p = proportional();
        let opp = OperatingPoint::new(1.0, 5.0);
        assert!((p.core_power(opp) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn battery_current_scales_as_s_cubed_for_proportional_voltage() {
        let p = proportional();
        let i_full = p.battery_current(OperatingPoint::new(1.0, 5.0));
        let i_half = p.battery_current(OperatingPoint::new(0.5, 2.5));
        let i_quarter = p.battery_current(OperatingPoint::new(0.25, 1.25));
        assert!((i_half / i_full - 0.125).abs() < 1e-12, "s=1/2 -> s³=1/8");
        assert!((i_quarter / i_full - 0.015625).abs() < 1e-12, "s=1/4 -> s³=1/64");
    }

    #[test]
    fn converter_efficiency_raises_battery_current() {
        let opps = OppTable::new(vec![OperatingPoint::new(1.0, 2.0)]).unwrap();
        let mk = |eta: f64| {
            Processor::new(
                opps.clone(),
                SupplyConfig { ceff: 1.0, efficiency: eta, vbat: 1.0, idle_current: 0.0 },
            )
            .unwrap()
        };
        let ideal = mk(1.0).battery_current(OperatingPoint::new(1.0, 2.0));
        let lossy = mk(0.8).battery_current(OperatingPoint::new(1.0, 2.0));
        assert!((lossy / ideal - 1.25).abs() < 1e-12);
    }

    #[test]
    fn invalid_supply_parameters_are_rejected() {
        let opps = OppTable::new(vec![OperatingPoint::new(1.0, 1.0)]).unwrap();
        let base = SupplyConfig { ceff: 1.0, efficiency: 0.9, vbat: 1.2, idle_current: 0.0 };
        for bad in [
            SupplyConfig { ceff: 0.0, ..base },
            SupplyConfig { ceff: -1.0, ..base },
            SupplyConfig { efficiency: 0.0, ..base },
            SupplyConfig { efficiency: 1.5, ..base },
            SupplyConfig { vbat: 0.0, ..base },
            SupplyConfig { idle_current: -0.1, ..base },
            SupplyConfig { ceff: f64::NAN, ..base },
        ] {
            assert!(Processor::new(opps.clone(), bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn running_slow_beats_idle_then_fast_in_energy() {
        // Guideline 2 at the CPU level: execute C cycles within deadline T.
        // Option A: run at f = C/T the whole window (realized by the table).
        // Option B: idle, then run at fmax.
        let p = proportional();
        let cycles = 0.5; // needs f = 0.5 over T = 1
        let slow = p.realize(0.5, FreqPolicy::Interpolate);
        let e_slow = p.energy_for_cycles(&slow, cycles);
        let fast = p.realize(1.0, FreqPolicy::Interpolate);
        let e_fast = p.energy_for_cycles(&fast, cycles); // idle part is free here
        assert!(e_slow < e_fast, "energy at half speed {e_slow} must undercut full speed {e_fast}");
        // Even with idle current charged to option B the ordering only widens.
    }

    #[test]
    fn interpolated_current_is_convex_combination() {
        let p = proportional();
        let r = p.realize(0.75, FreqPolicy::Interpolate);
        let i = p.battery_current_of(&r);
        let i_lo = p.battery_current_at(1);
        let i_hi = p.battery_current_at(2);
        assert!(i > i_lo && i < i_hi);
        // Exactly the time-weighted mix: w = (0.75-0.5)/(0.5) = 0.5.
        assert!((i - 0.5 * (i_lo + i_hi)).abs() < 1e-12);
    }

    #[test]
    fn charge_and_energy_account_for_duration() {
        let p = proportional();
        let r = p.realize(0.5, FreqPolicy::Interpolate);
        // 1 cycle at 0.5 Hz takes 2 s at I = 0.125·25/(1·1)... compute directly:
        let i = p.battery_current_of(&r);
        let q = p.charge_for_cycles(&r, 1.0);
        assert!((q - i * 2.0).abs() < 1e-12);
        let e = p.energy_for_cycles(&r, 1.0);
        assert!((e - q * p.supply().vbat).abs() < 1e-12);
    }

    #[test]
    fn idle_energy_uses_idle_current() {
        let opps = OppTable::new(vec![OperatingPoint::new(1.0, 1.0)]).unwrap();
        let p = Processor::new(
            opps,
            SupplyConfig { ceff: 1.0, efficiency: 1.0, vbat: 2.0, idle_current: 0.05 },
        )
        .unwrap();
        assert!((p.idle_energy(10.0) - 0.05 * 10.0 * 2.0).abs() < 1e-12);
        assert_eq!(p.idle_current(), 0.05);
    }
}
