//! Ready-made processor configurations.
//!
//! Two presets cover the paper's two kinds of experiments:
//!
//! * [`paper_processor`] — the evaluation platform of §5: OPPs
//!   `[(0.5 GHz, 3 V), (0.75 GHz, 4 V), (1.0 GHz, 5 V)]`, a 1.2 V battery
//!   behind a 90 %-efficient converter, and an effective capacitance
//!   calibrated so the full-speed battery draw is ≈ 1.8 A — which puts the
//!   no-DVS lifetime of a 2000 mAh cell in the tens-of-minutes regime of
//!   Table 2. The paper does not state its current calibration; EXPERIMENTS.md
//!   records the sensitivity sweep showing the relative results are stable
//!   over a wide `Ceff` band.
//! * [`unit_processor`] — a dimensionless processor (`fmax = 1`) with the
//!   same *relative* OPP grid, used for the worked examples of Figures 4/5
//!   where the paper counts abstract time units.

use crate::opp::{OperatingPoint, OppTable};
use crate::power::{Processor, SupplyConfig};

/// Battery terminal voltage of the paper's cell (1.2 V NiMH AAA).
pub const PAPER_VBAT: f64 = 1.2;

/// DC-DC converter efficiency assumed by the presets.
pub const PAPER_EFFICIENCY: f64 = 0.9;

/// Idle battery draw of the presets, in amperes (60 mA: clock tree + leakage
/// + platform overhead; see DESIGN.md §5 "Idle current").
pub const PAPER_IDLE_CURRENT: f64 = 0.060;

/// Effective switched capacitance calibrated for ≈ 1.8 A battery draw at
/// (1 GHz, 5 V) through a 90 % converter into 1.2 V:
/// `Ibat = Ceff·V²·f / (η·Vbat)` ⇒ `Ceff = 1.8·0.9·1.2 / (25·1e9)`.
pub const PAPER_CEFF: f64 = 1.8 * PAPER_EFFICIENCY * PAPER_VBAT / (25.0 * 1.0e9);

/// The paper's evaluation processor (§5) with real (GHz) frequencies.
pub fn paper_processor() -> Processor {
    let opps = OppTable::new(vec![
        OperatingPoint::new(0.5e9, 3.0),
        OperatingPoint::new(0.75e9, 4.0),
        OperatingPoint::new(1.0e9, 5.0),
    ])
    .expect("static table is valid");
    Processor::new(
        opps,
        SupplyConfig {
            ceff: PAPER_CEFF,
            efficiency: PAPER_EFFICIENCY,
            vbat: PAPER_VBAT,
            idle_current: PAPER_IDLE_CURRENT,
        },
    )
    .expect("static supply is valid")
}

/// A dimensionless processor with `fmax = 1` and the paper's relative OPP
/// grid `{0.5, 0.75, 1.0}`; used by the worked examples (Figures 4 and 5)
/// where WCETs are small abstract numbers.
pub fn unit_processor() -> Processor {
    let opps = OppTable::new(vec![
        OperatingPoint::new(0.5, 3.0),
        OperatingPoint::new(0.75, 4.0),
        OperatingPoint::new(1.0, 5.0),
    ])
    .expect("static table is valid");
    Processor::new(
        opps,
        SupplyConfig {
            ceff: 1.8 * PAPER_EFFICIENCY * PAPER_VBAT / 25.0,
            efficiency: PAPER_EFFICIENCY,
            vbat: PAPER_VBAT,
            idle_current: PAPER_IDLE_CURRENT,
        },
    )
    .expect("static supply is valid")
}

/// A dimensionless *ideal-DVS* processor: `points` operating points spread
/// over `[fmin_fraction, 1.0]`, voltages on the line `V(f) = 4f + 1` — the
/// exact line through the paper's three OPPs ((0.5, 3), (0.75, 4), (1, 5)) —
/// so dense interpolation approximates a continuously scalable core.
///
/// The single-DAG energy experiments (Table 1, Figure 6) need this: Gruian's
/// UBS analysis (and its "within 1 % of optimal" result the paper leans on)
/// assumes continuously scalable voltage, and the between-order energy
/// spread the paper reports is only reachable when slack can keep buying
/// lower voltage below the 3-OPP grid's 0.5 floor. See EXPERIMENTS.md.
///
/// # Panics
/// Panics unless `points ≥ 2` and `0 < fmin_fraction < 1`.
pub fn dense_dvs_processor(points: usize, fmin_fraction: f64) -> Processor {
    assert!(points >= 2, "need at least two operating points");
    assert!(
        fmin_fraction > 0.0 && fmin_fraction < 1.0,
        "fmin fraction {fmin_fraction} out of (0,1)"
    );
    let opps: Vec<OperatingPoint> = (0..points)
        .map(|i| {
            let f = fmin_fraction + (1.0 - fmin_fraction) * i as f64 / (points - 1) as f64;
            OperatingPoint::new(f, 4.0 * f + 1.0)
        })
        .collect();
    Processor::new(
        OppTable::new(opps).expect("monotone by construction"),
        SupplyConfig {
            ceff: 1.8 * PAPER_EFFICIENCY * PAPER_VBAT / 25.0,
            efficiency: PAPER_EFFICIENCY,
            vbat: PAPER_VBAT,
            // Zero idle draw: this preset serves the *energy-ordering*
            // studies (Table 1 / Figure 6), where a realistic platform
            // draw at the tiny low end of the grid would swamp the
            // scheduling effect under study. The battery-lifetime platform
            // (`paper_processor`) keeps its realistic 60 mA idle.
            idle_current: 0.0,
        },
    )
    .expect("static supply is valid")
}

/// The processor preset names scenario files may use; see [`by_name`].
pub const NAMES: &[&str] = &["paper", "unit", "dense"];

/// Look a processor preset up by its scenario-file name:
///
/// * `"paper"` — [`paper_processor`], the 1 GHz 3-OPP evaluation platform;
/// * `"unit"` (alias `"paper3"`) — [`unit_processor`], the dimensionless
///   3-OPP grid of the worked examples;
/// * `"dense"` — [`dense_dvs_processor`]`(20, 0.05)`, the ideal-DVS grid of
///   the energy-ordering studies.
///
/// Returns `None` for unknown names so callers can report the valid set
/// ([`NAMES`]) themselves.
pub fn by_name(name: &str) -> Option<Processor> {
    match name {
        "paper" => Some(paper_processor()),
        "unit" | "paper3" => Some(unit_processor()),
        "dense" => Some(dense_dvs_processor(20, 0.05)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FreqPolicy;
    use crate::power::PowerModel;

    #[test]
    fn every_listed_preset_resolves() {
        for name in NAMES {
            assert!(by_name(name).is_some(), "{name}");
        }
        assert_eq!(by_name("paper").unwrap().fmax(), 1.0e9);
        assert_eq!(by_name("unit").unwrap().fmax(), 1.0);
        assert_eq!(by_name("paper3").unwrap().fmax(), 1.0);
        assert_eq!(by_name("dense").unwrap().opps().len(), 20);
        assert!(by_name("granite").is_none());
    }

    #[test]
    fn paper_processor_has_three_opps_and_1ghz_peak() {
        let p = paper_processor();
        assert_eq!(p.opps().len(), 3);
        assert_eq!(p.fmax(), 1.0e9);
        assert_eq!(p.fmin(), 0.5e9);
    }

    #[test]
    fn calibration_puts_full_speed_draw_at_1_8_amps() {
        let p = paper_processor();
        let i = p.battery_current(OperatingPoint::new(1.0e9, 5.0));
        assert!((i - 1.8).abs() < 1e-9, "draw = {i} A");
    }

    #[test]
    fn slowest_opp_draws_well_under_half() {
        // (0.5 GHz, 3 V): I ∝ V²f = 9·0.5 = 4.5 vs 25 at full speed -> 18 %.
        let p = paper_processor();
        let i_lo = p.battery_current_at(0);
        let i_hi = p.battery_current_at(2);
        assert!((i_lo / i_hi - 4.5 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn unit_processor_mirrors_relative_grid() {
        let u = unit_processor();
        assert_eq!(u.fmax(), 1.0);
        let r = u.realize(0.5, FreqPolicy::Interpolate);
        assert_eq!(r.average_frequency, 0.5);
        // Relative currents identical to the paper processor's.
        let p = paper_processor();
        let ratio_u = u.battery_current_at(0) / u.battery_current_at(2);
        let ratio_p = p.battery_current_at(0) / p.battery_current_at(2);
        assert!((ratio_u - ratio_p).abs() < 1e-12);
    }

    #[test]
    fn dense_processor_passes_through_paper_opps() {
        let p = dense_dvs_processor(20, 0.05);
        assert_eq!(p.opps().len(), 20);
        assert_eq!(p.fmax(), 1.0);
        assert!((p.fmin() - 0.05).abs() < 1e-12);
        // The V(f) line hits the paper's three points.
        for (f, v) in [(0.5, 3.0), (0.75, 4.0), (1.0, 5.0)] {
            let (lo, hi) = p.opps().bracket(f);
            let _ = hi;
            let opp = p.opps().get(lo);
            // Grid points may not land exactly on f; check the line itself.
            assert!((opp.voltage - (4.0 * opp.frequency + 1.0)).abs() < 1e-12);
            let _ = (f, v);
        }
    }

    #[test]
    fn dense_processor_energy_per_cycle_falls_steeply() {
        let p = dense_dvs_processor(20, 0.05);
        let e_cyc = |ix: usize| {
            let opp = p.opps().get(ix);
            p.battery_current_at(ix) * p.supply().vbat / opp.frequency
        };
        let lo = e_cyc(0);
        let hi = e_cyc(19);
        assert!(hi / lo > 10.0, "dynamic range {} too small", hi / lo);
    }

    #[test]
    fn idle_draw_is_small_but_nonzero() {
        let p = paper_processor();
        assert!(p.idle_current() > 0.0);
        assert!(p.idle_current() < p.battery_current_at(0) / 4.0);
    }
}
