//! Ready-made processor configurations.
//!
//! Two presets cover the paper's two kinds of experiments:
//!
//! * [`paper_processor`] — the evaluation platform of §5: OPPs
//!   `[(0.5 GHz, 3 V), (0.75 GHz, 4 V), (1.0 GHz, 5 V)]`, a 1.2 V battery
//!   behind a 90 %-efficient converter, and an effective capacitance
//!   calibrated so the full-speed battery draw is ≈ 1.8 A — which puts the
//!   no-DVS lifetime of a 2000 mAh cell in the tens-of-minutes regime of
//!   Table 2. The paper does not state its current calibration; EXPERIMENTS.md
//!   records the sensitivity sweep showing the relative results are stable
//!   over a wide `Ceff` band.
//! * [`unit_processor`] — a dimensionless processor (`fmax = 1`) with the
//!   same *relative* OPP grid, used for the worked examples of Figures 4/5
//!   where the paper counts abstract time units.

use crate::opp::{OperatingPoint, OppTable};
use crate::power::{Processor, SupplyConfig};

/// Battery terminal voltage of the paper's cell (1.2 V NiMH AAA).
pub const PAPER_VBAT: f64 = 1.2;

/// DC-DC converter efficiency assumed by the presets.
pub const PAPER_EFFICIENCY: f64 = 0.9;

/// Idle battery draw of the presets, in amperes (60 mA: clock tree + leakage
/// + platform overhead; see DESIGN.md §5 "Idle current").
pub const PAPER_IDLE_CURRENT: f64 = 0.060;

/// Effective switched capacitance calibrated for ≈ 1.8 A battery draw at
/// (1 GHz, 5 V) through a 90 % converter into 1.2 V:
/// `Ibat = Ceff·V²·f / (η·Vbat)` ⇒ `Ceff = 1.8·0.9·1.2 / (25·1e9)`.
pub const PAPER_CEFF: f64 = 1.8 * PAPER_EFFICIENCY * PAPER_VBAT / (25.0 * 1.0e9);

/// The paper's evaluation processor (§5) with real (GHz) frequencies.
pub fn paper_processor() -> Processor {
    let opps = OppTable::new(vec![
        OperatingPoint::new(0.5e9, 3.0),
        OperatingPoint::new(0.75e9, 4.0),
        OperatingPoint::new(1.0e9, 5.0),
    ])
    .expect("static table is valid");
    Processor::new(
        opps,
        SupplyConfig {
            ceff: PAPER_CEFF,
            efficiency: PAPER_EFFICIENCY,
            vbat: PAPER_VBAT,
            idle_current: PAPER_IDLE_CURRENT,
        },
    )
    .expect("static supply is valid")
}

/// A dimensionless processor with `fmax = 1` and the paper's relative OPP
/// grid `{0.5, 0.75, 1.0}`; used by the worked examples (Figures 4 and 5)
/// where WCETs are small abstract numbers.
pub fn unit_processor() -> Processor {
    let opps = OppTable::new(vec![
        OperatingPoint::new(0.5, 3.0),
        OperatingPoint::new(0.75, 4.0),
        OperatingPoint::new(1.0, 5.0),
    ])
    .expect("static table is valid");
    Processor::new(
        opps,
        SupplyConfig {
            ceff: 1.8 * PAPER_EFFICIENCY * PAPER_VBAT / 25.0,
            efficiency: PAPER_EFFICIENCY,
            vbat: PAPER_VBAT,
            idle_current: PAPER_IDLE_CURRENT,
        },
    )
    .expect("static supply is valid")
}

/// A dimensionless *ideal-DVS* processor: `points` operating points spread
/// over `[fmin_fraction, 1.0]`, voltages on the line `V(f) = 4f + 1` — the
/// exact line through the paper's three OPPs ((0.5, 3), (0.75, 4), (1, 5)) —
/// so dense interpolation approximates a continuously scalable core.
///
/// The single-DAG energy experiments (Table 1, Figure 6) need this: Gruian's
/// UBS analysis (and its "within 1 % of optimal" result the paper leans on)
/// assumes continuously scalable voltage, and the between-order energy
/// spread the paper reports is only reachable when slack can keep buying
/// lower voltage below the 3-OPP grid's 0.5 floor. See EXPERIMENTS.md.
///
/// # Panics
/// Panics unless `points ≥ 2` and `0 < fmin_fraction < 1`.
pub fn dense_dvs_processor(points: usize, fmin_fraction: f64) -> Processor {
    assert!(points >= 2, "need at least two operating points");
    assert!(
        fmin_fraction > 0.0 && fmin_fraction < 1.0,
        "fmin fraction {fmin_fraction} out of (0,1)"
    );
    let opps: Vec<OperatingPoint> = (0..points)
        .map(|i| {
            let f = fmin_fraction + (1.0 - fmin_fraction) * i as f64 / (points - 1) as f64;
            OperatingPoint::new(f, 4.0 * f + 1.0)
        })
        .collect();
    Processor::new(
        OppTable::new(opps).expect("monotone by construction"),
        SupplyConfig {
            ceff: 1.8 * PAPER_EFFICIENCY * PAPER_VBAT / 25.0,
            efficiency: PAPER_EFFICIENCY,
            vbat: PAPER_VBAT,
            // Zero idle draw: this preset serves the *energy-ordering*
            // studies (Table 1 / Figure 6), where a realistic platform
            // draw at the tiny low end of the grid would swamp the
            // scheduling effect under study. The battery-lifetime platform
            // (`paper_processor`) keeps its realistic 60 mA idle.
            idle_current: 0.0,
        },
    )
    .expect("static supply is valid")
}

/// Full-speed battery draw of the [`big_processor`] core, amperes.
pub const BIG_FULL_SPEED_CURRENT: f64 = 2.4;

/// Full-speed battery draw of the [`little_processor`] core, amperes.
pub const LITTLE_FULL_SPEED_CURRENT: f64 = 0.3;

/// An out-of-order "big" core for the heterogeneous big.LITTLE platform:
/// OPPs `[(0.6 GHz, 3.4 V), (1.2 GHz, 4.6 V), (1.8 GHz, 5.8 V)]` on the
/// line `V(f) = 2f + 2.2` (f in GHz), `Ceff` calibrated for a 2.4 A
/// full-speed battery draw — fast and power-hungry. Shares the paper's
/// 1.2 V battery and 90 % converter so big and LITTLE cores can populate
/// one [`crate::Platform`].
pub fn big_processor() -> Processor {
    let opps = OppTable::new(vec![
        OperatingPoint::new(0.6e9, 3.4),
        OperatingPoint::new(1.2e9, 4.6),
        OperatingPoint::new(1.8e9, 5.8),
    ])
    .expect("static table is valid");
    Processor::new(
        opps,
        SupplyConfig {
            // Ibat = Ceff·V²·f / (η·Vbat) at (1.8 GHz, 5.8 V) ⇒ 2.4 A.
            ceff: BIG_FULL_SPEED_CURRENT * PAPER_EFFICIENCY * PAPER_VBAT / (5.8 * 5.8 * 1.8e9),
            efficiency: PAPER_EFFICIENCY,
            vbat: PAPER_VBAT,
            idle_current: 0.050,
        },
    )
    .expect("static supply is valid")
}

/// An in-order "LITTLE" core for the heterogeneous big.LITTLE platform:
/// OPPs `[(0.2 GHz, 2.0 V), (0.4 GHz, 2.4 V), (0.6 GHz, 2.8 V)]` on the
/// line `V(f) = 2f + 1.6` (f in GHz), `Ceff` calibrated for a 0.3 A
/// full-speed battery draw and a 10 mA idle floor — 3× slower than
/// [`big_processor`] at peak but ~8× cheaper per cycle.
pub fn little_processor() -> Processor {
    let opps = OppTable::new(vec![
        OperatingPoint::new(0.2e9, 2.0),
        OperatingPoint::new(0.4e9, 2.4),
        OperatingPoint::new(0.6e9, 2.8),
    ])
    .expect("static table is valid");
    Processor::new(
        opps,
        SupplyConfig {
            // Ibat = Ceff·V²·f / (η·Vbat) at (0.6 GHz, 2.8 V) ⇒ 0.3 A.
            ceff: LITTLE_FULL_SPEED_CURRENT * PAPER_EFFICIENCY * PAPER_VBAT / (2.8 * 2.8 * 0.6e9),
            efficiency: PAPER_EFFICIENCY,
            vbat: PAPER_VBAT,
            idle_current: 0.010,
        },
    )
    .expect("static supply is valid")
}

/// The processor preset names scenario files may use; see [`by_name`].
pub const NAMES: &[&str] = &["paper", "unit", "dense", "big", "little"];

/// Look a processor preset up by its scenario-file name:
///
/// * `"paper"` — [`paper_processor`], the 1 GHz 3-OPP evaluation platform;
/// * `"unit"` (alias `"paper3"`) — [`unit_processor`], the dimensionless
///   3-OPP grid of the worked examples;
/// * `"dense"` — [`dense_dvs_processor`]`(20, 0.05)`, the ideal-DVS grid of
///   the energy-ordering studies;
/// * `"big"` / `"little"` — [`big_processor`] / [`little_processor`], the
///   asymmetric cores of the heterogeneous big.LITTLE platform.
///
/// Returns `None` for unknown names so callers can report the valid set
/// ([`NAMES`]) themselves.
pub fn by_name(name: &str) -> Option<Processor> {
    match name {
        "paper" => Some(paper_processor()),
        "unit" | "paper3" => Some(unit_processor()),
        "dense" => Some(dense_dvs_processor(20, 0.05)),
        "big" => Some(big_processor()),
        "little" => Some(little_processor()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::FreqPolicy;
    use crate::power::PowerModel;

    #[test]
    fn every_listed_preset_resolves() {
        for name in NAMES {
            assert!(by_name(name).is_some(), "{name}");
        }
        assert_eq!(by_name("paper").unwrap().fmax(), 1.0e9);
        assert_eq!(by_name("unit").unwrap().fmax(), 1.0);
        assert_eq!(by_name("paper3").unwrap().fmax(), 1.0);
        assert_eq!(by_name("dense").unwrap().opps().len(), 20);
        assert!(by_name("granite").is_none());
    }

    #[test]
    fn paper_processor_has_three_opps_and_1ghz_peak() {
        let p = paper_processor();
        assert_eq!(p.opps().len(), 3);
        assert_eq!(p.fmax(), 1.0e9);
        assert_eq!(p.fmin(), 0.5e9);
    }

    #[test]
    fn calibration_puts_full_speed_draw_at_1_8_amps() {
        let p = paper_processor();
        let i = p.battery_current(OperatingPoint::new(1.0e9, 5.0));
        assert!((i - 1.8).abs() < 1e-9, "draw = {i} A");
    }

    #[test]
    fn slowest_opp_draws_well_under_half() {
        // (0.5 GHz, 3 V): I ∝ V²f = 9·0.5 = 4.5 vs 25 at full speed -> 18 %.
        let p = paper_processor();
        let i_lo = p.battery_current_at(0);
        let i_hi = p.battery_current_at(2);
        assert!((i_lo / i_hi - 4.5 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn unit_processor_mirrors_relative_grid() {
        let u = unit_processor();
        assert_eq!(u.fmax(), 1.0);
        let r = u.realize(0.5, FreqPolicy::Interpolate);
        assert_eq!(r.average_frequency, 0.5);
        // Relative currents identical to the paper processor's.
        let p = paper_processor();
        let ratio_u = u.battery_current_at(0) / u.battery_current_at(2);
        let ratio_p = p.battery_current_at(0) / p.battery_current_at(2);
        assert!((ratio_u - ratio_p).abs() < 1e-12);
    }

    #[test]
    fn dense_processor_passes_through_paper_opps() {
        let p = dense_dvs_processor(20, 0.05);
        assert_eq!(p.opps().len(), 20);
        assert_eq!(p.fmax(), 1.0);
        assert!((p.fmin() - 0.05).abs() < 1e-12);
        // The V(f) line hits the paper's three points.
        for (f, v) in [(0.5, 3.0), (0.75, 4.0), (1.0, 5.0)] {
            let (lo, hi) = p.opps().bracket(f);
            let _ = hi;
            let opp = p.opps().get(lo);
            // Grid points may not land exactly on f; check the line itself.
            assert!((opp.voltage - (4.0 * opp.frequency + 1.0)).abs() < 1e-12);
            let _ = (f, v);
        }
    }

    #[test]
    fn dense_processor_energy_per_cycle_falls_steeply() {
        let p = dense_dvs_processor(20, 0.05);
        let e_cyc = |ix: usize| {
            let opp = p.opps().get(ix);
            p.battery_current_at(ix) * p.supply().vbat / opp.frequency
        };
        let lo = e_cyc(0);
        let hi = e_cyc(19);
        assert!(hi / lo > 10.0, "dynamic range {} too small", hi / lo);
    }

    #[test]
    fn big_and_little_share_the_battery_and_differ_in_speed_and_power() {
        let big = big_processor();
        let little = little_processor();
        assert_eq!(big.supply().vbat, little.supply().vbat, "one battery feeds both");
        assert_eq!(big.fmax(), 1.8e9);
        assert_eq!(little.fmax(), 0.6e9);
        // Calibrated full-speed draws.
        let i_big = big.battery_current_at(2);
        let i_little = little.battery_current_at(2);
        assert!((i_big - BIG_FULL_SPEED_CURRENT).abs() < 1e-9, "big draw = {i_big} A");
        assert!((i_little - LITTLE_FULL_SPEED_CURRENT).abs() < 1e-9, "little = {i_little} A");
        // The LITTLE core is cheaper *per cycle* at peak, not just in watts.
        let e_big = i_big / big.fmax();
        let e_little = i_little / little.fmax();
        assert!(e_big / e_little > 2.0, "per-cycle ratio {}", e_big / e_little);
        assert!(little.idle_current() < big.idle_current());
    }

    #[test]
    fn biglittle_presets_resolve_and_compose_into_a_platform() {
        use crate::platform::Platform;
        let p = Platform::new(vec![
            by_name("big").unwrap(),
            by_name("big").unwrap(),
            by_name("little").unwrap(),
            by_name("little").unwrap(),
        ])
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.fmax_any(), 1.8e9);
        assert_eq!(p.fmax_per_pe(), vec![1.8e9, 1.8e9, 0.6e9, 0.6e9]);
    }

    #[test]
    fn idle_draw_is_small_but_nonzero() {
        let p = paper_processor();
        assert!(p.idle_current() > 0.0);
        assert!(p.idle_current() < p.battery_current_at(0) / 4.0);
    }
}
