//! # bas-cpu — the DVS processor and power-delivery model
//!
//! Models the voltage-scalable single processor of the paper's Figure 1:
//!
//! ```text
//!   battery (Vbat) ──> DC-DC converter (efficiency η) ──> CPU core (Vproc, f)
//! ```
//!
//! * [`OperatingPoint`] / [`OppTable`] — the discrete frequency-voltage pairs
//!   the hardware supports. The paper's evaluation processor is
//!   `[(0.5 GHz, 3 V), (0.75 GHz, 4 V), (1.0 GHz, 5 V)]`
//!   ([`presets::paper_processor`]).
//! * [`power`] — dynamic CMOS power `P = Ceff · V² · f` plus a constant idle
//!   draw; with the converter equation `η · Vbat · Ibat = Vproc · Iproc`
//!   (§2), scaling the core voltage by `s` scales the battery current by
//!   roughly `s³`, the effect all battery-aware scheduling exploits.
//! * [`platform`] — the execution platform: `N ≥ 1` processing elements
//!   ([`Platform`]), each a full [`Processor`] with its own OPP table and
//!   power model, sharing one battery whose draw is the **sum** of the
//!   per-PE currents. `Platform::single` is the paper's uniprocessor.
//! * [`freq`] — realization of a *continuous* requested frequency `fref` on
//!   discrete hardware: the optimal scheme is a time-weighted combination of
//!   the two adjacent operating points (Gaujal, Navet & Walsh, TECS 2005 —
//!   reference \[4\] of the paper); a round-up quantizer is provided for the
//!   ablation benches.
//!
//! Frequencies are in cycles per second (Hz) and work in cycles, so
//! durations come out in seconds; the "unit" preset (`fmax = 1`) reproduces
//! the dimensionless examples of the paper's Figures 4 and 5 directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod freq;
pub mod opp;
pub mod platform;
pub mod power;
pub mod presets;

pub use error::CpuError;
pub use freq::{FreqPolicy, ParseFreqPolicyError, Realization, Segment};
pub use opp::{OperatingPoint, OppTable};
pub use platform::{Interconnect, Platform};
pub use power::{PowerModel, Processor, SupplyConfig};
