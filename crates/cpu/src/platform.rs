//! The execution platform: one or more processing elements sharing a battery.
//!
//! The paper evaluates a single DVS processor, but its problem setting —
//! periodic task *graphs* — maps naturally onto the multi-processing-element
//! (MPSoC) platforms of the follow-on literature (Simon et al., "Energy
//! Minimization in DAG Scheduling on MPSoCs at Run-Time"; Khan & Vemuri's
//! battery-aware task mapping): DAG nodes are assigned to PEs, each PE runs
//! its own DVS policy, and one shared battery absorbs the **sum** of the
//! per-PE currents.
//!
//! A [`Platform`] is an ordered list of [`Processor`]s (the PEs), validated
//! to share a battery terminal voltage — the cells of this workspace are
//! single-source, so mixed `vbat` values would make the summed-current
//! accounting meaningless. PEs may otherwise be heterogeneous (different OPP
//! tables, different `Ceff`): the simulation engine realizes each PE's
//! frequency on its own table and draws its own current.
//!
//! [`Platform::single`] is the compatibility instantiation: every API that
//! historically took a [`Processor`] now wraps it in a 1-PE platform, and
//! the engine's behaviour on it is bit-identical to the uniprocessor code it
//! replaced.

use crate::error::CpuError;
use crate::power::Processor;
use std::sync::Arc;

/// The shared interconnect moving DAG edge payloads between processing
/// elements.
///
/// When a DAG edge's endpoints are mapped to *different* PEs, the successor
/// may only start `latency + bytes / bytes_per_sec` seconds after the
/// producer completes — the cost of shipping the edge's payload across the
/// fabric. Transfers within one PE are free (the data is already local),
/// and a platform without an interconnect charges nothing anywhere (the
/// historical behaviour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// Fixed per-transfer startup cost, seconds (arbitration + routing).
    pub latency: f64,
    /// Sustained transfer bandwidth, bytes per second.
    pub bytes_per_sec: f64,
}

impl Interconnect {
    /// A validated interconnect. Fails when `latency` is negative or
    /// non-finite, or `bytes_per_sec` is not positive (`f64::INFINITY` is
    /// allowed: a zero-copy fabric that only charges its latency).
    pub fn new(latency: f64, bytes_per_sec: f64) -> Result<Self, CpuError> {
        if !(latency.is_finite() && latency >= 0.0) {
            return Err(CpuError::InvalidParameter { name: "latency", value: latency });
        }
        if bytes_per_sec.is_nan() || bytes_per_sec <= 0.0 {
            return Err(CpuError::InvalidParameter { name: "bytes_per_sec", value: bytes_per_sec });
        }
        Ok(Interconnect { latency, bytes_per_sec })
    }

    /// Seconds to move `bytes` across the fabric.
    #[inline]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bytes_per_sec
    }
}

/// An execution platform: `N ≥ 1` processing elements over one battery.
///
/// The PE list is immutable after construction and shared behind `Arc`, so
/// cloning a platform — which the experiment layer does once per simulation
/// — is a reference-count bump, not a deep copy of every OPP table.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    pes: Arc<[Processor]>,
    interconnect: Option<Interconnect>,
}

impl Platform {
    /// A platform from explicit (possibly heterogeneous) PEs.
    ///
    /// Fails when `pes` is empty or the PEs disagree on the battery
    /// terminal voltage (one shared battery feeds them all).
    pub fn new(pes: Vec<Processor>) -> Result<Self, CpuError> {
        if pes.is_empty() {
            return Err(CpuError::NoProcessingElements);
        }
        let vbat = pes[0].supply().vbat;
        for (index, pe) in pes.iter().enumerate() {
            if pe.supply().vbat != vbat {
                return Err(CpuError::MismatchedSupplyVoltage { index, vbat: pe.supply().vbat });
            }
        }
        Ok(Platform { pes: pes.into(), interconnect: None })
    }

    /// The canonical uniprocessor platform — the paper's own setting.
    pub fn single(pe: Processor) -> Self {
        Platform { pes: Arc::new([pe]), interconnect: None }
    }

    /// `n` identical copies of `pe` (the symmetric-MPSoC configuration).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn uniform(pe: Processor, n: usize) -> Self {
        assert!(n > 0, "a platform needs at least one processing element");
        Platform { pes: vec![pe; n].into(), interconnect: None }
    }

    /// Number of processing elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.pes.len()
    }

    /// Always false — construction guarantees `len() >= 1`. Provided for
    /// clippy-idiomatic pairing with [`Platform::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// One processing element by index.
    ///
    /// # Panics
    /// Panics when `pe` is out of range.
    #[inline]
    pub fn pe(&self, pe: usize) -> &Processor {
        &self.pes[pe]
    }

    /// Iterate over the PEs in index order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &Processor> + '_ {
        self.pes.iter()
    }

    /// The shared battery terminal voltage, volts.
    #[inline]
    pub fn vbat(&self) -> f64 {
        self.pes[0].supply().vbat
    }

    /// Peak frequency across all PEs, Hz — the headroom bound structural
    /// feasibility checks use.
    pub fn fmax_any(&self) -> f64 {
        self.pes.iter().map(Processor::fmax).fold(0.0, f64::max)
    }

    /// Per-PE peak frequencies, in PE order — the weights the default
    /// list-scheduling mapping balances load against.
    pub fn fmax_per_pe(&self) -> Vec<f64> {
        self.pes.iter().map(Processor::fmax).collect()
    }

    /// Total battery current while every PE idles, amperes.
    pub fn idle_current_total(&self) -> f64 {
        self.pes.iter().map(|p| p.supply().idle_current).sum()
    }

    /// Mount an [`Interconnect`]: cross-PE DAG edges now charge transfer
    /// time before the successor becomes ready. Builder-style, applied
    /// after any constructor.
    pub fn with_interconnect(mut self, interconnect: Interconnect) -> Self {
        self.interconnect = Some(interconnect);
        self
    }

    /// The mounted interconnect, if any. `None` means cross-PE transfers
    /// are free — the historical (and 1-PE) behaviour.
    #[inline]
    pub fn interconnect(&self) -> Option<Interconnect> {
        self.interconnect
    }
}

impl std::ops::Index<usize> for Platform {
    type Output = Processor;
    fn index(&self, pe: usize) -> &Processor {
        &self.pes[pe]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opp::{OperatingPoint, OppTable};
    use crate::power::SupplyConfig;
    use crate::presets::{paper_processor, unit_processor};

    #[test]
    fn single_and_uniform_shapes() {
        let p = Platform::single(unit_processor());
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        let q = Platform::uniform(unit_processor(), 4);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pe(3), q.pe(0));
        assert_eq!(&q[2], q.pe(2));
    }

    #[test]
    fn heterogeneous_pes_are_allowed_with_shared_vbat() {
        let p = Platform::new(vec![unit_processor(), paper_processor()]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.fmax_any(), 1.0e9);
        assert_eq!(p.fmax_per_pe(), vec![1.0, 1.0e9]);
        assert_eq!(p.vbat(), 1.2);
    }

    #[test]
    fn empty_platform_is_rejected() {
        assert_eq!(Platform::new(Vec::new()).unwrap_err(), CpuError::NoProcessingElements);
    }

    #[test]
    fn mismatched_vbat_is_rejected() {
        let opps = OppTable::new(vec![OperatingPoint::new(1.0, 1.0)]).unwrap();
        let other = Processor::new(
            opps,
            SupplyConfig { ceff: 1.0, efficiency: 0.9, vbat: 3.3, idle_current: 0.0 },
        )
        .unwrap();
        let err = Platform::new(vec![unit_processor(), other]).unwrap_err();
        assert!(matches!(err, CpuError::MismatchedSupplyVoltage { index: 1, .. }), "{err:?}");
    }

    #[test]
    fn interconnect_defaults_off_and_mounts_builder_style() {
        let p = Platform::uniform(unit_processor(), 2);
        assert_eq!(p.interconnect(), None);
        let ic = Interconnect::new(1e-4, 1e8).unwrap();
        let p = p.with_interconnect(ic);
        assert_eq!(p.interconnect(), Some(ic));
        // transfer_time = latency + bytes / bandwidth.
        assert!((ic.transfer_time(1_000_000) - (1e-4 + 0.01)).abs() < 1e-12);
        assert!((ic.transfer_time(0) - 1e-4).abs() < 1e-15);
    }

    #[test]
    fn interconnect_rejects_bad_parameters() {
        assert!(Interconnect::new(-1.0, 1e8).is_err());
        assert!(Interconnect::new(f64::NAN, 1e8).is_err());
        assert!(Interconnect::new(f64::INFINITY, 1e8).is_err());
        assert!(Interconnect::new(0.0, 0.0).is_err());
        assert!(Interconnect::new(0.0, -5.0).is_err());
        assert!(Interconnect::new(0.0, f64::NAN).is_err());
        // An infinitely fast fabric that only charges latency is legal.
        let free = Interconnect::new(0.0, f64::INFINITY).unwrap();
        assert_eq!(free.transfer_time(u64::MAX), 0.0);
    }

    #[test]
    fn idle_current_sums_over_pes() {
        let p = Platform::uniform(unit_processor(), 3);
        let one = unit_processor().supply().idle_current;
        assert!((p.idle_current_total() - 3.0 * one).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn uniform_zero_panics() {
        let _ = Platform::uniform(unit_processor(), 0);
    }
}
