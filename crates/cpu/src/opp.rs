//! Operating points: the discrete frequency/voltage pairs of the hardware.

use crate::error::CpuError;

/// One frequency-voltage pair the processor can run at.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OperatingPoint {
    /// Clock frequency in cycles per second.
    pub frequency: f64,
    /// Core supply voltage in volts at this frequency.
    pub voltage: f64,
}

impl OperatingPoint {
    /// Convenience constructor.
    pub fn new(frequency: f64, voltage: f64) -> Self {
        OperatingPoint { frequency, voltage }
    }
}

/// A validated, frequency-sorted table of operating points.
///
/// Invariants enforced at construction:
/// * at least one entry,
/// * frequencies strictly increasing and positive,
/// * voltages positive and non-decreasing (physics: higher f needs ≥ V).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OppTable {
    opps: Vec<OperatingPoint>,
}

impl OppTable {
    /// Validate and build a table. Input must already be sorted by frequency
    /// (keeping the caller's explicit order makes config files reviewable).
    pub fn new(opps: Vec<OperatingPoint>) -> Result<Self, CpuError> {
        if opps.is_empty() {
            return Err(CpuError::NoOperatingPoints);
        }
        for (i, o) in opps.iter().enumerate() {
            if !(o.frequency.is_finite() && o.frequency > 0.0)
                || (i > 0 && o.frequency <= opps[i - 1].frequency)
            {
                return Err(CpuError::NonMonotonicFrequencies { index: i });
            }
            if !(o.voltage.is_finite() && o.voltage > 0.0)
                || (i > 0 && o.voltage < opps[i - 1].voltage)
            {
                return Err(CpuError::NonMonotonicVoltages { index: i });
            }
        }
        Ok(OppTable { opps })
    }

    /// Number of operating points.
    #[inline]
    pub fn len(&self) -> usize {
        self.opps.len()
    }

    /// Always false (construction rejects empty tables); provided for API
    /// completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.opps.is_empty()
    }

    /// All points, ascending by frequency.
    #[inline]
    pub fn as_slice(&self) -> &[OperatingPoint] {
        &self.opps
    }

    /// The point at `index` (ascending frequency order).
    #[inline]
    pub fn get(&self, index: usize) -> OperatingPoint {
        self.opps[index]
    }

    /// Lowest supported frequency.
    #[inline]
    pub fn fmin(&self) -> f64 {
        self.opps[0].frequency
    }

    /// Highest supported frequency — the `fmax` in `fref = U · fmax`.
    #[inline]
    pub fn fmax(&self) -> f64 {
        self.opps[self.opps.len() - 1].frequency
    }

    /// Index of the pair of adjacent points bracketing `f`:
    /// returns `(lo, hi)` with `freq(lo) ≤ f ≤ freq(hi)` where possible,
    /// clamping to the table's ends otherwise.
    pub fn bracket(&self, f: f64) -> (usize, usize) {
        if f <= self.fmin() {
            return (0, 0);
        }
        let last = self.opps.len() - 1;
        if f >= self.fmax() {
            return (last, last);
        }
        // partition_point: first index whose frequency is >= f.
        let hi = self.opps.partition_point(|o| o.frequency < f);
        debug_assert!(hi > 0 && hi <= last);
        if (self.opps[hi].frequency - f).abs() == 0.0 {
            (hi, hi)
        } else {
            (hi - 1, hi)
        }
    }

    /// Smallest operating point whose frequency is ≥ `f` (clamped to fmax) —
    /// the "round-up" quantization policy.
    pub fn round_up(&self, f: f64) -> usize {
        if f >= self.fmax() {
            return self.opps.len() - 1;
        }
        self.opps.partition_point(|o| o.frequency < f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_table() -> OppTable {
        OppTable::new(vec![
            OperatingPoint::new(0.5e9, 3.0),
            OperatingPoint::new(0.75e9, 4.0),
            OperatingPoint::new(1.0e9, 5.0),
        ])
        .unwrap()
    }

    #[test]
    fn paper_table_builds_and_reports_extremes() {
        let t = paper_table();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.fmin(), 0.5e9);
        assert_eq!(t.fmax(), 1.0e9);
    }

    #[test]
    fn empty_table_is_rejected() {
        assert_eq!(OppTable::new(vec![]).unwrap_err(), CpuError::NoOperatingPoints);
    }

    #[test]
    fn unsorted_frequencies_are_rejected() {
        let r =
            OppTable::new(vec![OperatingPoint::new(1.0e9, 5.0), OperatingPoint::new(0.5e9, 3.0)]);
        assert_eq!(r.unwrap_err(), CpuError::NonMonotonicFrequencies { index: 1 });
    }

    #[test]
    fn duplicate_frequencies_are_rejected() {
        let r =
            OppTable::new(vec![OperatingPoint::new(0.5e9, 3.0), OperatingPoint::new(0.5e9, 4.0)]);
        assert_eq!(r.unwrap_err(), CpuError::NonMonotonicFrequencies { index: 1 });
    }

    #[test]
    fn decreasing_voltage_is_rejected() {
        let r =
            OppTable::new(vec![OperatingPoint::new(0.5e9, 4.0), OperatingPoint::new(1.0e9, 3.0)]);
        assert_eq!(r.unwrap_err(), CpuError::NonMonotonicVoltages { index: 1 });
    }

    #[test]
    fn nonpositive_values_are_rejected() {
        assert!(OppTable::new(vec![OperatingPoint::new(0.0, 3.0)]).is_err());
        assert!(OppTable::new(vec![OperatingPoint::new(1.0, 0.0)]).is_err());
        assert!(OppTable::new(vec![OperatingPoint::new(f64::NAN, 3.0)]).is_err());
    }

    #[test]
    fn bracket_inside_returns_adjacent_pair() {
        let t = paper_table();
        assert_eq!(t.bracket(0.6e9), (0, 1));
        assert_eq!(t.bracket(0.9e9), (1, 2));
    }

    #[test]
    fn bracket_clamps_below_and_above() {
        let t = paper_table();
        assert_eq!(t.bracket(0.1e9), (0, 0));
        assert_eq!(t.bracket(2.0e9), (2, 2));
    }

    #[test]
    fn bracket_hits_exact_points() {
        let t = paper_table();
        assert_eq!(t.bracket(0.5e9), (0, 0));
        assert_eq!(t.bracket(0.75e9), (1, 1));
        assert_eq!(t.bracket(1.0e9), (2, 2));
    }

    #[test]
    fn round_up_selects_next_discrete_point() {
        let t = paper_table();
        assert_eq!(t.round_up(0.4e9), 0);
        assert_eq!(t.round_up(0.5e9), 0);
        assert_eq!(t.round_up(0.51e9), 1);
        assert_eq!(t.round_up(0.75e9), 1);
        assert_eq!(t.round_up(0.76e9), 2);
        assert_eq!(t.round_up(5.0e9), 2);
    }
}
