//! Error type for processor-model construction.

use std::fmt;

/// Errors raised while building a processor model.
#[derive(Debug, Clone, PartialEq)]
pub enum CpuError {
    /// The operating-point table is empty.
    NoOperatingPoints,
    /// Frequencies must be strictly increasing and positive.
    NonMonotonicFrequencies {
        /// index of the offending entry
        index: usize,
    },
    /// Voltages must be positive and non-decreasing with frequency
    /// (a higher frequency can never need a *lower* supply voltage).
    NonMonotonicVoltages {
        /// index of the offending entry
        index: usize,
    },
    /// A physical parameter (capacitance, efficiency, battery voltage,
    /// idle current) is out of its valid range.
    InvalidParameter {
        /// parameter name
        name: &'static str,
        /// offending value
        value: f64,
    },
    /// A platform needs at least one processing element.
    NoProcessingElements,
    /// All processing elements of a platform must share the battery
    /// terminal voltage (one battery feeds them all).
    MismatchedSupplyVoltage {
        /// index of the offending processing element
        index: usize,
        /// its battery voltage
        vbat: f64,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::NoOperatingPoints => write!(f, "operating-point table is empty"),
            CpuError::NonMonotonicFrequencies { index } => {
                write!(f, "frequencies must be positive and strictly increasing (entry {index})")
            }
            CpuError::NonMonotonicVoltages { index } => {
                write!(f, "voltages must be positive and non-decreasing (entry {index})")
            }
            CpuError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} = {value} out of range")
            }
            CpuError::NoProcessingElements => {
                write!(f, "a platform needs at least one processing element")
            }
            CpuError::MismatchedSupplyVoltage { index, vbat } => {
                write!(
                    f,
                    "processing element {index} runs from vbat = {vbat} V, \
                     but all PEs must share one battery voltage"
                )
            }
        }
    }
}

impl std::error::Error for CpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(CpuError::NoOperatingPoints.to_string().contains("empty"));
        assert!(CpuError::NonMonotonicFrequencies { index: 2 }.to_string().contains("entry 2"));
        assert!(CpuError::NonMonotonicVoltages { index: 1 }.to_string().contains("entry 1"));
        assert!(CpuError::InvalidParameter { name: "ceff", value: -1.0 }
            .to_string()
            .contains("ceff"));
    }
}
