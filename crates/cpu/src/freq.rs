//! Realizing a continuous requested frequency on discrete hardware.
//!
//! DVS governors compute a continuous `fref` (e.g. `U · fmax`), but "generally
//! voltage scalable processors can run on a selected set of frequencies. …
//! using a linear combination of two adjacent available frequencies
//! (fi < fref < fi+1) is optimal for realizing the running of the processor
//! at fref" (paper §2, citing Gaujal–Navet–Walsh). This module computes that
//! combination, plus the naive round-up quantization used as an ablation
//! baseline.

use crate::opp::OppTable;

/// How a continuous `fref` is mapped onto the discrete operating points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FreqPolicy {
    /// Optimal: time-share the two operating points adjacent to `fref` so the
    /// *average* frequency equals `fref` exactly.
    #[default]
    Interpolate,
    /// Conservative: run entirely at the smallest discrete frequency
    /// ≥ `fref`. Always meets deadlines but wastes energy — the ablation
    /// benches quantify how much of the paper's gain comes from
    /// interpolation.
    RoundUp,
}

impl std::fmt::Display for FreqPolicy {
    /// The canonical scenario-file name: `interp` or `roundup`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FreqPolicy::Interpolate => "interp",
            FreqPolicy::RoundUp => "roundup",
        })
    }
}

/// Error parsing a [`FreqPolicy`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFreqPolicyError(String);

impl std::fmt::Display for ParseFreqPolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid frequency policy {:?}: expected interp|roundup", self.0)
    }
}

impl std::error::Error for ParseFreqPolicyError {}

impl std::str::FromStr for FreqPolicy {
    type Err = ParseFreqPolicyError;

    /// Parse the scenario-file names `interp` / `roundup` (also accepted:
    /// the long forms `interpolate` / `round-up`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" | "interpolate" => Ok(FreqPolicy::Interpolate),
            "roundup" | "round-up" => Ok(FreqPolicy::RoundUp),
            other => Err(ParseFreqPolicyError(other.to_string())),
        }
    }
}

/// One leg of a realization: an operating-point index plus the fraction of
/// wall-clock time spent there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Index into the [`OppTable`].
    pub opp: usize,
    /// Fraction of the wall-clock time spent at this point, in `[0, 1]`.
    pub time_fraction: f64,
}

/// A realization of a continuous frequency: at most two segments whose
/// time fractions sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Realization {
    /// Low-frequency leg (always present).
    pub lo: Segment,
    /// High-frequency leg (absent when a single discrete point suffices).
    pub hi: Option<Segment>,
    /// The average frequency actually delivered. Equals the requested `fref`
    /// under [`FreqPolicy::Interpolate`] (clamped to the table's range);
    /// ≥ `fref` under [`FreqPolicy::RoundUp`].
    pub average_frequency: f64,
}

impl Realization {
    /// Realize `fref` on `table` under `policy`.
    ///
    /// `fref` is clamped into `[fmin, fmax]`: EDF-style governors never ask
    /// for more than `fmax` on feasible sets, and anything below `fmin` can
    /// only be realized by running at `fmin` (G2: prefer running slow over
    /// inserting idle, so we do *not* insert idle to emulate sub-fmin
    /// averages — finishing early and idling is the scheduler's decision).
    pub fn of(fref: f64, table: &OppTable, policy: FreqPolicy) -> Realization {
        let f = fref.clamp(table.fmin(), table.fmax());
        match policy {
            FreqPolicy::RoundUp => {
                let idx = table.round_up(f);
                Realization {
                    lo: Segment { opp: idx, time_fraction: 1.0 },
                    hi: None,
                    average_frequency: table.get(idx).frequency,
                }
            }
            FreqPolicy::Interpolate => {
                let (lo, hi) = table.bracket(f);
                if lo == hi {
                    return Realization {
                        lo: Segment { opp: lo, time_fraction: 1.0 },
                        hi: None,
                        average_frequency: table.get(lo).frequency,
                    };
                }
                let flo = table.get(lo).frequency;
                let fhi = table.get(hi).frequency;
                // Time-weighted average: f = w·fhi + (1-w)·flo  =>  w below.
                let w = (f - flo) / (fhi - flo);
                Realization {
                    lo: Segment { opp: lo, time_fraction: 1.0 - w },
                    hi: Some(Segment { opp: hi, time_fraction: w }),
                    average_frequency: f,
                }
            }
        }
    }

    /// Iterate the (at most two) segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        std::iter::once(self.lo).chain(self.hi)
    }

    /// Cycles executed over `duration` seconds of this realization.
    #[inline]
    pub fn cycles_in(&self, duration: f64) -> f64 {
        self.average_frequency * duration
    }

    /// Wall-clock time to execute `cycles` cycles.
    #[inline]
    pub fn time_for_cycles(&self, cycles: f64) -> f64 {
        cycles / self.average_frequency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opp::OperatingPoint;

    #[test]
    fn freq_policy_round_trips_through_strings() {
        for policy in [FreqPolicy::Interpolate, FreqPolicy::RoundUp] {
            let parsed: FreqPolicy = policy.to_string().parse().unwrap();
            assert_eq!(parsed, policy);
        }
        assert_eq!("interpolate".parse::<FreqPolicy>().unwrap(), FreqPolicy::Interpolate);
        let e = "fast".parse::<FreqPolicy>().unwrap_err();
        assert!(e.to_string().contains("interp|roundup"), "{e}");
    }

    fn table() -> OppTable {
        OppTable::new(vec![
            OperatingPoint::new(0.5, 3.0),
            OperatingPoint::new(0.75, 4.0),
            OperatingPoint::new(1.0, 5.0),
        ])
        .unwrap()
    }

    #[test]
    fn interpolation_hits_requested_average() {
        let t = table();
        for fref in [0.5, 0.6, 0.7, 0.75, 0.8, 0.99, 1.0] {
            let r = Realization::of(fref, &t, FreqPolicy::Interpolate);
            assert!((r.average_frequency - fref).abs() < 1e-12, "fref={fref}");
            let total: f64 = r.segments().map(|s| s.time_fraction).sum();
            assert!((total - 1.0).abs() < 1e-12);
            // Average of the table frequencies weighted by time fractions.
            let avg: f64 = r.segments().map(|s| s.time_fraction * t.get(s.opp).frequency).sum();
            assert!((avg - fref).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_opp_uses_single_segment() {
        let t = table();
        for f in [0.5, 0.75, 1.0] {
            let r = Realization::of(f, &t, FreqPolicy::Interpolate);
            assert!(r.hi.is_none(), "f={f} should be a single point");
            assert_eq!(r.lo.time_fraction, 1.0);
        }
    }

    #[test]
    fn sub_fmin_requests_clamp_to_fmin() {
        let t = table();
        let r = Realization::of(0.2, &t, FreqPolicy::Interpolate);
        assert_eq!(r.average_frequency, 0.5);
        assert!(r.hi.is_none());
        assert_eq!(r.lo.opp, 0);
    }

    #[test]
    fn super_fmax_requests_clamp_to_fmax() {
        let t = table();
        for policy in [FreqPolicy::Interpolate, FreqPolicy::RoundUp] {
            let r = Realization::of(1.7, &t, policy);
            assert_eq!(r.average_frequency, 1.0);
            assert_eq!(r.lo.opp, 2);
            assert!(r.hi.is_none());
        }
    }

    #[test]
    fn round_up_never_under_delivers() {
        let t = table();
        for fref in [0.4, 0.5, 0.51, 0.6, 0.75, 0.8, 1.0] {
            let r = Realization::of(fref, &t, FreqPolicy::RoundUp);
            assert!(r.average_frequency >= fref.clamp(0.5, 1.0) - 1e-12);
            assert!(r.hi.is_none(), "round-up is a single point");
        }
    }

    #[test]
    fn round_up_overshoot_is_bounded_by_gap() {
        let t = table();
        let r = Realization::of(0.51, &t, FreqPolicy::RoundUp);
        assert_eq!(r.average_frequency, 0.75);
    }

    #[test]
    fn cycle_time_round_trips() {
        let t = table();
        let r = Realization::of(0.6, &t, FreqPolicy::Interpolate);
        let dur = r.time_for_cycles(30.0);
        assert!((r.cycles_in(dur) - 30.0).abs() < 1e-9);
        assert!((dur - 50.0).abs() < 1e-9, "30 cycles at 0.6 Hz = 50 s");
    }

    #[test]
    fn interpolation_weights_match_closed_form() {
        let t = table();
        // fref = 0.6 between 0.5 and 0.75: w = (0.6-0.5)/0.25 = 0.4 on hi.
        let r = Realization::of(0.6, &t, FreqPolicy::Interpolate);
        let hi = r.hi.unwrap();
        assert!((hi.time_fraction - 0.4).abs() < 1e-12);
        assert!((r.lo.time_fraction - 0.6).abs() < 1e-12);
        assert_eq!(r.lo.opp, 0);
        assert_eq!(hi.opp, 1);
    }
}
