//! Crate-level property tests for the task-graph substrate.

use bas_taskgraph::{algo, GeneratorConfig, GraphShape, NodeId, TaskSetConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_shape() -> impl Strategy<Value = GraphShape> {
    prop_oneof![
        Just(GraphShape::Independent),
        (2usize..=5, 2usize..=5)
            .prop_map(|(o, i)| GraphShape::FanInFanOut { max_out: o, max_in: i }),
        (1usize..=5, 0.0f64..0.9)
            .prop_map(|(l, p)| GraphShape::Layered { layers: l, edge_prob: p }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transitive_reduction_preserves_reachability(
        seed in 0u64..10_000,
        n in 2usize..12,
    ) {
        let cfg = GeneratorConfig {
            nodes: (n, n),
            wcet: (1, 20),
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.5 },
        };
        let g = cfg.generate("g", &mut StdRng::seed_from_u64(seed));
        let reduced = algo::transitive_reduction(&g);
        // Rebuild a graph from the reduced edge set and compare reachability.
        let mut b = bas_taskgraph::TaskGraphBuilder::new("reduced");
        for (_, node) in g.nodes() {
            b.add_node(node.name.clone(), node.wcet);
        }
        for (from, to) in reduced {
            b.add_edge(from, to).unwrap();
        }
        let r = b.build().unwrap();
        for a in g.node_ids() {
            for z in g.node_ids() {
                if a != z {
                    prop_assert_eq!(
                        algo::reaches(&g, a, z),
                        algo::reaches(&r, a, z),
                        "reachability {} -> {} changed", a, z
                    );
                }
            }
        }
    }

    #[test]
    fn ancestors_and_descendants_are_duals(
        seed in 0u64..10_000,
        n in 2usize..12,
        shape in arb_shape(),
    ) {
        let cfg = GeneratorConfig { nodes: (n, n), wcet: (1, 20), shape };
        let g = cfg.generate("g", &mut StdRng::seed_from_u64(seed));
        for a in g.node_ids() {
            let desc = algo::descendants(&g, a);
            for z in g.node_ids() {
                if desc[z.index()] {
                    prop_assert!(algo::ancestors(&g, z)[a.index()]);
                }
            }
        }
    }

    #[test]
    fn linear_extension_count_matches_brute_force(
        seed in 0u64..10_000,
        n in 1usize..7,
    ) {
        let cfg = GeneratorConfig {
            nodes: (n, n),
            wcet: (1, 9),
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.4 },
        };
        let g = cfg.generate("g", &mut StdRng::seed_from_u64(seed));
        let dp = algo::count_linear_extensions(&g).unwrap();
        // Brute force: DFS over all valid sequences.
        fn dfs(g: &bas_taskgraph::TaskGraph, done: &mut Vec<bool>, placed: usize) -> u128 {
            if placed == g.node_count() {
                return 1;
            }
            let mut total = 0;
            for v in g.node_ids() {
                if !done[v.index()]
                    && g.predecessors(v).iter().all(|p| done[p.index()])
                {
                    done[v.index()] = true;
                    total += dfs(g, done, placed + 1);
                    done[v.index()] = false;
                }
            }
            total
        }
        let brute = dfs(&g, &mut vec![false; n], 0);
        prop_assert_eq!(dp, brute);
    }

    #[test]
    fn earliest_start_is_monotone_along_edges(
        seed in 0u64..10_000,
        n in 2usize..14,
        shape in arb_shape(),
    ) {
        let cfg = GeneratorConfig { nodes: (n, n), wcet: (1, 30), shape };
        let g = cfg.generate("g", &mut StdRng::seed_from_u64(seed));
        let est = algo::earliest_start_cycles(&g);
        for (from, to) in g.edges() {
            prop_assert!(
                est[to.index()] >= est[from.index()] + g.wcet(from),
                "EST not monotone across {} -> {}", from, to
            );
        }
    }

    #[test]
    fn generated_sets_are_edf_schedulable(
        seed in 0u64..10_000,
        graphs in 1usize..6,
        util in 0.05f64..1.0,
    ) {
        let cfg = TaskSetConfig {
            graphs,
            graph: GeneratorConfig {
                nodes: (2, 10),
                wcet: (5, 50),
                shape: GraphShape::Layered { layers: 2, edge_prob: 0.3 },
            },
            utilization: util,
            fmax: 1.0,
            period_quantum: None,
        };
        let set = cfg.generate(&mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert!(set.utilization(1.0) <= util + 1e-9);
        for (_, pg) in set.iter() {
            prop_assert!(pg.is_structurally_feasible(1.0));
        }
    }

    #[test]
    fn dot_export_is_syntactically_closed(
        seed in 0u64..10_000,
        n in 1usize..10,
        shape in arb_shape(),
    ) {
        let cfg = GeneratorConfig { nodes: (n, n), wcet: (1, 9), shape };
        let g = cfg.generate("g", &mut StdRng::seed_from_u64(seed));
        let dot = bas_taskgraph::dot::graph_to_dot(&g);
        prop_assert!(dot.starts_with("digraph"));
        prop_assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        prop_assert_eq!(dot.matches(" -> ").count(), g.edge_count());
    }
}

#[test]
fn node_ids_are_stable_across_clone() {
    let cfg = GeneratorConfig::default();
    let g = cfg.generate("g", &mut StdRng::seed_from_u64(1));
    let g2 = g.clone();
    for v in g.node_ids() {
        assert_eq!(g.wcet(v), g2.wcet(v));
        assert_eq!(g.successors(v), g2.successors(v));
    }
    let _ = NodeId::from_index(0);
}
