//! Graph algorithms over task graphs.
//!
//! Everything here is deterministic: ties are always broken towards the
//! smallest [`NodeId`], so a given graph produces identical results across
//! runs and platforms — a requirement for reproducible experiment tables.

use crate::dag::TaskGraph;
use crate::error::GraphError;
use crate::ids::NodeId;
use crate::Cycles;
use std::collections::VecDeque;

/// Kahn's algorithm over raw adjacency, used by the builder before a
/// [`TaskGraph`] value exists. Returns the canonical (smallest-id-first)
/// topological order, or the offending node if a cycle exists.
pub(crate) fn topological_sort(
    n: usize,
    succs: &[Vec<NodeId>],
    preds: &[Vec<NodeId>],
) -> Result<Vec<NodeId>, GraphError> {
    let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
    // A binary heap would give O(E log V); for the graph sizes of the paper
    // (≤ ~15 nodes, experiments sweep to a few hundred) a sorted scan of a
    // small frontier is faster in practice and trivially deterministic.
    let mut frontier: Vec<NodeId> =
        (0..n).filter(|&i| indeg[i] == 0).map(NodeId::from_index).collect();
    frontier.sort_unstable_by(|a, b| b.cmp(a)); // max-at-front so pop() yields min
    let mut order = Vec::with_capacity(n);
    while let Some(v) = frontier.pop() {
        order.push(v);
        for &s in &succs[v.index()] {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                // Keep `frontier` sorted descending by insertion.
                let pos = frontier.binary_search_by(|probe| s.cmp(probe)).unwrap_or_else(|p| p);
                frontier.insert(pos, s);
            }
        }
    }
    if order.len() != n {
        // Any node with a remaining in-degree is on (or downstream of) a cycle.
        let culprit = indeg
            .iter()
            .position(|&d| d > 0)
            .map(NodeId::from_index)
            .expect("cycle implies a node with nonzero in-degree");
        return Err(GraphError::CycleDetected(culprit));
    }
    Ok(order)
}

/// WCET-weighted longest path through the DAG, in cycles.
///
/// This is the minimum cycle demand any schedule must serialize, so
/// `critical_path(g) / fmax` lower-bounds the response time of one instance.
pub fn critical_path(g: &TaskGraph) -> Cycles {
    let mut longest: Vec<Cycles> = vec![0; g.node_count()];
    for &v in g.topological_order() {
        let base = g.predecessors(v).iter().map(|&p| longest[p.index()]).max().unwrap_or(0);
        longest[v.index()] = base + g.wcet(v);
    }
    longest.into_iter().max().unwrap_or(0)
}

/// Per-node earliest start offsets (in cycles at unit speed): the longest
/// WCET-weighted path from any source to — but excluding — each node.
pub fn earliest_start_cycles(g: &TaskGraph) -> Vec<Cycles> {
    let mut est: Vec<Cycles> = vec![0; g.node_count()];
    for &v in g.topological_order() {
        est[v.index()] =
            g.predecessors(v).iter().map(|&p| est[p.index()] + g.wcet(p)).max().unwrap_or(0);
    }
    est
}

/// Set of all ancestors (transitive predecessors) of `v`, as a bitmask-backed
/// boolean vector indexed by node.
pub fn ancestors(g: &TaskGraph, v: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    queue.push_back(v);
    while let Some(x) = queue.pop_front() {
        for &p in g.predecessors(x) {
            if !seen[p.index()] {
                seen[p.index()] = true;
                queue.push_back(p);
            }
        }
    }
    seen
}

/// Set of all descendants (transitive successors) of `v`.
pub fn descendants(g: &TaskGraph, v: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    queue.push_back(v);
    while let Some(x) = queue.pop_front() {
        for &s in g.successors(x) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                queue.push_back(s);
            }
        }
    }
    seen
}

/// True if `a` can reach `b` through precedence edges (`a` is an ancestor of
/// `b`). A node does not reach itself.
pub fn reaches(g: &TaskGraph, a: NodeId, b: NodeId) -> bool {
    ancestors(g, b)[a.index()]
}

/// Edges that are implied by transitivity (there is an alternative directed
/// path from `from` to `to` avoiding the direct edge).
///
/// Removing them (see [`transitive_reduction`]) does not change the
/// precedence *relation*, only the edge list; the generator uses this to
/// report how redundant its random graphs are.
pub fn redundant_edges(g: &TaskGraph) -> Vec<(NodeId, NodeId)> {
    let mut redundant = Vec::new();
    for (from, to) in g.edges() {
        // Is there a path from -> ... -> to of length >= 2?
        let through_other =
            g.successors(from).iter().filter(|&&s| s != to).any(|&s| s == to || reaches(g, s, to));
        if through_other {
            redundant.push((from, to));
        }
    }
    redundant
}

/// The transitive reduction of the precedence relation: the unique minimal
/// edge set with the same reachability (unique for DAGs).
pub fn transitive_reduction(g: &TaskGraph) -> Vec<(NodeId, NodeId)> {
    let redundant = redundant_edges(g);
    g.edges().filter(|e| !redundant.contains(e)).collect()
}

/// Count the linear extensions (valid sequential schedules) of the DAG.
///
/// Exact dynamic program over subsets — O(2ⁿ·n). Only callable for graphs of
/// at most [`MAX_LINEAR_EXTENSION_NODES`] nodes; the exhaustive-optimal
/// scheduler in `bas-core` uses this to refuse hopeless inputs up front, the
/// same reason the paper stops Table 1 at 15 tasks.
///
/// Returns `None` when the graph is too large, and saturates at `u128::MAX`.
pub fn count_linear_extensions(g: &TaskGraph) -> Option<u128> {
    let n = g.node_count();
    if n > MAX_LINEAR_EXTENSION_NODES {
        return None;
    }
    // pred_mask[v] = bitmask of direct predecessors of v.
    let pred_mask: Vec<u32> = g
        .node_ids()
        .map(|v| g.predecessors(v).iter().fold(0u32, |m, p| m | (1 << p.index())))
        .collect();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    // ways[s] = number of orders of exactly the tasks in s that respect
    // precedence (tasks outside s untouched). ways[0] = 1 (empty order).
    let mut ways: Vec<u128> = vec![0; (full as usize) + 1];
    ways[0] = 1;
    for s in 0..=full {
        let w = ways[s as usize];
        if w == 0 {
            continue;
        }
        for (v, &pm) in pred_mask.iter().enumerate() {
            let bit = 1u32 << v;
            if s & bit == 0 && pm & s == pm {
                let t = (s | bit) as usize;
                ways[t] = ways[t].saturating_add(w);
            }
        }
    }
    Some(ways[full as usize])
}

/// Upper bound on node count accepted by [`count_linear_extensions`]
/// (the subset DP allocates `2^n` entries).
pub const MAX_LINEAR_EXTENSION_NODES: usize = 24;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::TaskGraphBuilder;

    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("diamond");
        let a = b.add_node("a", 10);
        let x = b.add_node("b", 20);
        let y = b.add_node("c", 30);
        let z = b.add_node("d", 40);
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        b.build().unwrap()
    }

    fn chain(lens: &[Cycles]) -> TaskGraph {
        let mut b = TaskGraphBuilder::new("chain");
        let ids: Vec<_> =
            lens.iter().enumerate().map(|(i, &w)| b.add_node(format!("t{i}"), w)).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn critical_path_of_chain_is_total() {
        let g = chain(&[1, 2, 3, 4]);
        assert_eq!(critical_path(&g), 10);
        assert_eq!(g.total_wcet(), 10);
    }

    #[test]
    fn earliest_start_accumulates_along_chain() {
        let g = chain(&[1, 2, 3]);
        assert_eq!(earliest_start_cycles(&g), vec![0, 1, 3]);
    }

    #[test]
    fn earliest_start_takes_max_over_predecessors() {
        let g = diamond();
        // d's EST = max(a+b, a+c) = max(30, 40) = 40.
        assert_eq!(earliest_start_cycles(&g)[3], 40);
    }

    #[test]
    fn ancestors_and_descendants_of_diamond() {
        let g = diamond();
        let a = NodeId::from_index(0);
        let d = NodeId::from_index(3);
        let anc_d = ancestors(&g, d);
        assert_eq!(anc_d, vec![true, true, true, false]);
        let desc_a = descendants(&g, a);
        assert_eq!(desc_a, vec![false, true, true, true]);
    }

    #[test]
    fn reaches_is_transitive_and_irreflexive() {
        let g = chain(&[1, 1, 1]);
        let n0 = NodeId::from_index(0);
        let n2 = NodeId::from_index(2);
        assert!(reaches(&g, n0, n2));
        assert!(!reaches(&g, n2, n0));
        assert!(!reaches(&g, n0, n0), "a node does not reach itself");
    }

    #[test]
    fn redundant_edge_is_detected() {
        // a -> b -> c plus shortcut a -> c: shortcut is redundant.
        let mut b = TaskGraphBuilder::new("r");
        let x = b.add_node("a", 1);
        let y = b.add_node("b", 1);
        let z = b.add_node("c", 1);
        b.add_edge(x, y).unwrap();
        b.add_edge(y, z).unwrap();
        b.add_edge(x, z).unwrap();
        let g = b.build().unwrap();
        assert_eq!(redundant_edges(&g), vec![(x, z)]);
        let reduced = transitive_reduction(&g);
        assert_eq!(reduced.len(), 2);
        assert!(!reduced.contains(&(x, z)));
    }

    #[test]
    fn diamond_has_no_redundant_edges() {
        assert!(redundant_edges(&diamond()).is_empty());
    }

    #[test]
    fn linear_extensions_of_chain_is_one() {
        assert_eq!(count_linear_extensions(&chain(&[1, 1, 1, 1])), Some(1));
    }

    #[test]
    fn linear_extensions_of_independent_tasks_is_factorial() {
        let mut b = TaskGraphBuilder::new("ind");
        for i in 0..5 {
            b.add_node(format!("t{i}"), 1);
        }
        let g = b.build().unwrap();
        assert_eq!(count_linear_extensions(&g), Some(120));
    }

    #[test]
    fn linear_extensions_of_diamond_is_two() {
        // a first, d last, b/c in either order.
        assert_eq!(count_linear_extensions(&diamond()), Some(2));
    }

    #[test]
    fn linear_extensions_refuses_oversized_graphs() {
        let mut b = TaskGraphBuilder::new("big");
        for i in 0..(MAX_LINEAR_EXTENSION_NODES + 1) {
            b.add_node(format!("t{i}"), 1);
        }
        let g = b.build().unwrap();
        assert_eq!(count_linear_extensions(&g), None);
    }

    #[test]
    fn topological_sort_is_canonical_smallest_first() {
        // Two independent components: order must interleave by smallest id.
        let mut b = TaskGraphBuilder::new("two");
        let a0 = b.add_node("a0", 1);
        let a1 = b.add_node("a1", 1);
        let b0 = b.add_node("b0", 1);
        let b1 = b.add_node("b1", 1);
        b.add_edge(a0, a1).unwrap();
        b.add_edge(b0, b1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.topological_order(), &[a0, a1, b0, b1]);
    }
}
