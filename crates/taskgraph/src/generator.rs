//! Seeded random task-graph generation — the TGFF stand-in.
//!
//! The paper generated its workloads with Princeton's *Task Graphs For Free*
//! (TGFF) tool: "Task graphs were generated from TGFF with random dependencies
//! and the worst case computation of each node was chosen randomly following a
//! uniform distribution" (§5). TGFF is a C program we do not depend on; this
//! module reproduces the same statistical family of workloads:
//!
//! * [`GraphShape::FanInFanOut`] — TGFF's construction: grow a single-rooted
//!   DAG by alternating fan-out steps (give a node a new child) and fan-in
//!   steps (create a node joining several existing ones);
//! * [`GraphShape::Layered`] — the Tobita–Kasahara "same-probability" layered
//!   DAG, a second common random-DAG family used to check that results do not
//!   hinge on TGFF's particular shape;
//! * [`GraphShape::Independent`] — no edges; the workload of Gruian's UBS
//!   setting, used by the Table-1 and near-optimal baselines.
//!
//! Periods for task *sets* are assigned by the UUniFast algorithm (Bini &
//! Buttazzo) so that per-graph utilizations are an unbiased uniform split of
//! the configured total — the paper keeps total utilization at 70 %.
//!
//! Everything is driven by a caller-provided [`rand::Rng`], so a fixed seed
//! regenerates identical workloads (the experiment tables depend on this).

use crate::dag::{TaskGraph, TaskGraphBuilder};
use crate::error::GraphError;
use crate::periodic::{PeriodicTaskGraph, TaskSet};
use crate::Cycles;
use rand::seq::SliceRandom;
use rand::Rng;

/// Structural family of the generated DAG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphShape {
    /// TGFF-style growth from a single root.
    FanInFanOut {
        /// Maximum out-degree any node may reach during growth.
        max_out: usize,
        /// Maximum in-degree of a join node created by a fan-in step.
        max_in: usize,
    },
    /// Nodes are spread over `layers` ranks; an edge is drawn from each node
    /// of an earlier rank to each node of a strictly later rank with
    /// probability `edge_prob`.
    Layered {
        /// Number of ranks (clamped to the node count).
        layers: usize,
        /// Independent probability of each forward edge.
        edge_prob: f64,
    },
    /// No precedence edges at all.
    Independent,
}

impl Default for GraphShape {
    /// TGFF's own defaults are small degrees; 3-out/3-in matches the shapes
    /// in the paper's examples.
    fn default() -> Self {
        GraphShape::FanInFanOut { max_out: 3, max_in: 3 }
    }
}

/// Parameters for generating one task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Inclusive range of node counts; the actual count is drawn uniformly.
    pub nodes: (usize, usize),
    /// Inclusive range of node WCETs in cycles, drawn uniformly per node
    /// (the paper: "chosen randomly following a uniform distribution").
    pub wcet: (Cycles, Cycles),
    /// Structural family.
    pub shape: GraphShape,
}

impl Default for GeneratorConfig {
    /// The paper's sweep: 5–15 nodes per graph.
    fn default() -> Self {
        GeneratorConfig { nodes: (5, 15), wcet: (10, 100), shape: GraphShape::default() }
    }
}

impl GeneratorConfig {
    /// Fixed node count helper.
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.nodes = (n, n);
        self
    }

    /// Set the WCET range.
    pub fn with_wcet(mut self, lo: Cycles, hi: Cycles) -> Self {
        self.wcet = (lo, hi);
        self
    }

    /// Set the structural family.
    pub fn with_shape(mut self, shape: GraphShape) -> Self {
        self.shape = shape;
        self
    }

    /// Generate one task graph.
    ///
    /// # Panics
    /// Panics if the configured ranges are inverted or the node range
    /// contains 0 (a task graph must have at least one node).
    pub fn generate(&self, name: impl Into<String>, rng: &mut impl Rng) -> TaskGraph {
        assert!(
            self.nodes.0 >= 1 && self.nodes.0 <= self.nodes.1,
            "node range {:?} invalid",
            self.nodes
        );
        assert!(
            self.wcet.0 >= 1 && self.wcet.0 <= self.wcet.1,
            "wcet range {:?} invalid",
            self.wcet
        );
        let n = rng.gen_range(self.nodes.0..=self.nodes.1);
        let mut b = TaskGraphBuilder::with_capacity(name, n, 2 * n);
        for i in 0..n {
            let w = rng.gen_range(self.wcet.0..=self.wcet.1);
            b.add_node(format!("t{i}"), w);
        }
        match self.shape {
            GraphShape::Independent => {}
            GraphShape::FanInFanOut { max_out, max_in } => {
                fan_in_fan_out_edges(&mut b, n, max_out.max(1), max_in.max(2), rng);
            }
            GraphShape::Layered { layers, edge_prob } => {
                layered_edges(&mut b, n, layers.max(1), edge_prob.clamp(0.0, 1.0), rng);
            }
        }
        b.build().expect("generator produced an invalid graph")
    }
}

/// TGFF-style growth, expressed over pre-created nodes: node 0 is the root;
/// each further node i is attached either by a fan-out step (one parent) or a
/// fan-in step (several parents), with parents drawn among nodes `< i` that
/// still have spare out-degree. Attaching only to earlier nodes guarantees
/// acyclicity by construction.
fn fan_in_fan_out_edges(
    b: &mut TaskGraphBuilder,
    n: usize,
    max_out: usize,
    max_in: usize,
    rng: &mut impl Rng,
) {
    if n <= 1 {
        return;
    }
    let mut out_deg = vec![0usize; n];
    let mut scratch: Vec<usize> = Vec::with_capacity(n);
    for child in 1..n {
        // Candidate parents: earlier nodes with spare out-degree. The root
        // always exists; if everything is saturated, fall back to the least
        // loaded earlier node so the graph stays connected (TGFF widens
        // degrees the same way when it runs out of room).
        scratch.clear();
        scratch.extend((0..child).filter(|&v| out_deg[v] < max_out));
        if scratch.is_empty() {
            let v = (0..child).min_by_key(|&v| out_deg[v]).expect("child >= 1");
            scratch.push(v);
        }
        let fan_in_possible = scratch.len() >= 2;
        let do_fan_in = fan_in_possible && rng.gen_bool(0.5);
        let parents = if do_fan_in {
            let k = rng.gen_range(2..=max_in.min(scratch.len()));
            scratch.partial_shuffle(rng, k).0.to_vec()
        } else {
            vec![scratch[rng.gen_range(0..scratch.len())]]
        };
        for p in parents {
            out_deg[p] += 1;
            b.add_edge(crate::NodeId::from_index(p), crate::NodeId::from_index(child))
                .expect("edges to fresh child cannot duplicate");
        }
    }
}

/// Tobita–Kasahara layered random DAG over pre-created nodes.
fn layered_edges(
    b: &mut TaskGraphBuilder,
    n: usize,
    layers: usize,
    edge_prob: f64,
    rng: &mut impl Rng,
) {
    let layers = layers.min(n);
    // Round-robin assignment keeps layer sizes balanced; the rank of node i
    // is i % layers, then we sort by rank so edges always point forward.
    let mut rank = vec![0usize; n];
    for (i, r) in rank.iter_mut().enumerate() {
        *r = i % layers;
    }
    for from in 0..n {
        for to in 0..n {
            if rank[from] < rank[to] && rng.gen_bool(edge_prob) {
                b.add_edge(crate::NodeId::from_index(from), crate::NodeId::from_index(to))
                    .expect("forward edges cannot self-loop or duplicate");
            }
        }
    }
}

/// Parameters for generating a whole periodic task set.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSetConfig {
    /// Number of task graphs in the set.
    pub graphs: usize,
    /// Per-graph generation parameters.
    pub graph: GeneratorConfig,
    /// Target total worst-case utilization `Σ WCi/(Di·fmax)`; the paper uses
    /// 0.70 throughout.
    pub utilization: f64,
    /// Processor peak speed in cycles per time unit, used to translate the
    /// utilization split into periods.
    pub fmax: f64,
    /// When `Some(q)`, periods are rounded **up** to a multiple of `q`
    /// (rounding up can only lower utilization, preserving schedulability)
    /// so hyperperiods stay finite and traces align on a grid.
    pub period_quantum: Option<f64>,
}

impl Default for TaskSetConfig {
    fn default() -> Self {
        TaskSetConfig {
            graphs: 4,
            graph: GeneratorConfig::default(),
            utilization: 0.70,
            fmax: 1.0,
            period_quantum: None,
        }
    }
}

impl TaskSetConfig {
    /// Generate a periodic task set whose total utilization is (up to period
    /// quantization) the configured target, split across graphs by UUniFast.
    ///
    /// Each graph's period is also widened, if necessary, so that its
    /// critical path fits within one period at `fmax` — otherwise the set
    /// would be structurally unschedulable regardless of scheduler.
    pub fn generate(&self, rng: &mut impl Rng) -> Result<TaskSet, GraphError> {
        if self.graphs == 0 || !(self.utilization > 0.0 && self.utilization <= 1.0) {
            return Err(GraphError::InvalidUtilization(self.utilization));
        }
        if !(self.fmax.is_finite() && self.fmax > 0.0) {
            return Err(GraphError::InvalidPeriod(self.fmax));
        }
        let shares = uunifast(self.graphs, self.utilization, rng);
        let mut set = TaskSet::new();
        for (i, share) in shares.into_iter().enumerate() {
            let g = self.graph.generate(format!("T{i}"), rng);
            let wc = g.total_wcet() as f64;
            let mut period = wc / (share * self.fmax);
            // Structural feasibility: one instance must fit in one period.
            let min_period = g.critical_path() as f64 / self.fmax;
            if period < min_period {
                period = min_period;
            }
            if let Some(q) = self.period_quantum {
                period = (period / q).ceil() * q;
            }
            set.push(PeriodicTaskGraph::new(g, period)?);
        }
        Ok(set)
    }
}

/// UUniFast (Bini & Buttazzo 2005): draw `n` utilizations uniformly from the
/// simplex `{u: Σu = total, u > 0}`.
pub fn uunifast(n: usize, total: f64, rng: &mut impl Rng) -> Vec<f64> {
    assert!(n >= 1, "need at least one task");
    let mut shares = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let r: f64 = rng.gen::<f64>();
        let next = sum * r.powf(1.0 / (n - i) as f64);
        shares.push(sum - next);
        sum = next;
    }
    shares.push(sum);
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn generator_is_deterministic_under_seed() {
        let cfg = GeneratorConfig::default();
        let a = cfg.generate("g", &mut rng(42));
        let b = cfg.generate("g", &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let cfg = GeneratorConfig::default();
        let a = cfg.generate("g", &mut rng(1));
        let b = cfg.generate("g", &mut rng(2));
        assert_ne!(a, b, "astronomically unlikely to collide");
    }

    #[test]
    fn node_count_stays_in_range() {
        let cfg = GeneratorConfig::default().with_wcet(1, 10);
        for seed in 0..50 {
            let g = cfg.generate("g", &mut rng(seed));
            assert!((5..=15).contains(&g.node_count()), "{}", g.node_count());
        }
    }

    #[test]
    fn wcets_stay_in_range() {
        let cfg = GeneratorConfig::default().with_wcet(7, 9);
        let g = cfg.generate("g", &mut rng(3));
        for (_, node) in g.nodes() {
            assert!((7..=9).contains(&node.wcet));
        }
    }

    #[test]
    fn fan_in_fan_out_is_single_rooted_and_connected() {
        let cfg = GeneratorConfig::default().with_nodes(12);
        for seed in 0..30 {
            let g = cfg.generate("g", &mut rng(seed));
            assert_eq!(g.sources().len(), 1, "TGFF growth has a unique root");
            // Every non-root node must be reachable from the root.
            let root = g.sources()[0];
            let desc = crate::algo::descendants(&g, root);
            for v in g.node_ids() {
                assert!(v == root || desc[v.index()], "{v} disconnected");
            }
        }
    }

    #[test]
    fn fan_in_fan_out_respects_max_in_degree() {
        let cfg = GeneratorConfig::default()
            .with_nodes(15)
            .with_shape(GraphShape::FanInFanOut { max_out: 2, max_in: 3 });
        for seed in 0..20 {
            let g = cfg.generate("g", &mut rng(seed));
            for v in g.node_ids() {
                assert!(g.in_degree(v) <= 3, "{v} in-degree {}", g.in_degree(v));
            }
        }
    }

    #[test]
    fn independent_shape_has_no_edges() {
        let cfg = GeneratorConfig::default().with_shape(GraphShape::Independent);
        let g = cfg.generate("g", &mut rng(5));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn layered_edges_point_forward_only() {
        let cfg = GeneratorConfig::default()
            .with_nodes(12)
            .with_shape(GraphShape::Layered { layers: 4, edge_prob: 0.5 });
        let g = cfg.generate("g", &mut rng(9));
        // Build succeeded => acyclic; also check ranks really order edges.
        for (from, to) in g.edges() {
            assert!(from.index() % 4 < to.index() % 4);
        }
    }

    #[test]
    fn single_node_graph_generates() {
        let cfg = GeneratorConfig::default().with_nodes(1);
        let g = cfg.generate("g", &mut rng(0));
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn uunifast_sums_to_total() {
        for n in [1usize, 2, 5, 20] {
            let shares = uunifast(n, 0.7, &mut rng(n as u64));
            let sum: f64 = shares.iter().sum();
            assert!((sum - 0.7).abs() < 1e-12, "n={n} sum={sum}");
            assert!(shares.iter().all(|&u| u > 0.0 && u < 0.7 + 1e-12));
        }
    }

    #[test]
    fn task_set_hits_target_utilization() {
        let cfg = TaskSetConfig::default();
        let set = cfg.generate(&mut rng(11)).unwrap();
        assert_eq!(set.len(), 4);
        let u = set.utilization(1.0);
        // Periods are exact (no quantum), only the critical-path widening can
        // lower utilization below target.
        assert!(u <= 0.70 + 1e-9, "u={u}");
        assert!(u > 0.35, "u={u} suspiciously low");
    }

    #[test]
    fn task_set_with_quantum_has_finite_hyperperiod() {
        let cfg = TaskSetConfig { period_quantum: Some(10.0), ..TaskSetConfig::default() };
        let set = cfg.generate(&mut rng(13)).unwrap();
        let h = set.hyperperiod(10.0);
        assert!(h.is_some(), "quantized periods must have a hyperperiod");
        assert!(set.utilization(1.0) <= 0.70 + 1e-9);
    }

    #[test]
    fn generated_sets_are_structurally_feasible() {
        let cfg = TaskSetConfig {
            utilization: 0.95,
            graph: GeneratorConfig::default().with_nodes(15),
            ..TaskSetConfig::default()
        };
        for seed in 0..20 {
            let set = cfg.generate(&mut rng(seed)).unwrap();
            for (_, g) in set.iter() {
                assert!(g.is_structurally_feasible(1.0));
            }
        }
    }

    #[test]
    fn zero_graphs_is_rejected() {
        let cfg = TaskSetConfig { graphs: 0, ..TaskSetConfig::default() };
        assert!(cfg.generate(&mut rng(0)).is_err());
    }

    #[test]
    fn out_of_range_utilization_is_rejected() {
        for bad in [0.0, -0.1, 1.5] {
            let cfg = TaskSetConfig { utilization: bad, ..TaskSetConfig::default() };
            assert!(cfg.generate(&mut rng(0)).is_err(), "u={bad}");
        }
    }
}
