//! # bas-taskgraph — task-graph data model and generator
//!
//! This crate provides the workload substrate for the battery-aware scheduling
//! methodology of Rao et al. (WPDRTS 2006): **periodic task graphs**.
//!
//! A *task graph* is a directed acyclic graph (DAG) whose nodes are tasks with
//! a worst-case execution time expressed in **processor cycles** and whose
//! edges are precedence constraints. Task graphs arrive periodically; every
//! node of an instance must complete before the instance's deadline, and the
//! deadline equals the period (implicit-deadline model, exactly as in the
//! paper).
//!
//! The crate contains:
//!
//! * [`TaskGraph`] / [`TaskGraphBuilder`] — the immutable DAG model with
//!   validated construction (acyclicity, duplicate-edge and self-loop checks);
//! * graph algorithms in [`algo`] — topological orders, critical path,
//!   ancestor/descendant closures, transitive reduction, linear-extension
//!   counting (used by the exhaustive-optimal scheduler to bound search);
//! * [`PeriodicTaskGraph`] and [`TaskSet`] in [`periodic`] — periodic wrappers
//!   with utilization and hyperperiod arithmetic;
//! * [`Mapping`] in [`mapping`] — node-to-processing-element assignment for
//!   multi-PE platforms, with a deterministic list-scheduling default (all
//!   nodes on PE 0 reproduces the paper's uniprocessor setting);
//! * a seeded, TGFF-like random generator in [`generator`] — the stand-in for
//!   the Princeton *Task Graphs For Free* tool the paper generated its
//!   workloads with;
//! * DOT export in [`dot`] for debugging and documentation.
//!
//! ## Example
//!
//! ```
//! use bas_taskgraph::{TaskGraphBuilder, PeriodicTaskGraph};
//!
//! // Build the three-node task graph T3 of the paper's Figure 5 trace:
//! // two independent tasks feeding a third, every node 5 cycles of WCET.
//! let mut b = TaskGraphBuilder::new("T3");
//! let a = b.add_node("a", 5);
//! let c = b.add_node("b", 5);
//! let d = b.add_node("c", 5);
//! b.add_edge(a, d).unwrap();
//! b.add_edge(c, d).unwrap();
//! let g = b.build().unwrap();
//! assert_eq!(g.total_wcet(), 15);
//!
//! // Make it periodic with deadline = period = 100 time units.
//! let pg = PeriodicTaskGraph::new(g, 100.0).unwrap();
//! assert!((pg.utilization(1.0) - 0.15).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod dag;
pub mod dot;
pub mod error;
pub mod generator;
pub mod ids;
pub mod mapping;
pub mod periodic;

pub use dag::{TaskGraph, TaskGraphBuilder, TaskNode};
pub use error::GraphError;
pub use generator::{GeneratorConfig, GraphShape, TaskSetConfig};
pub use ids::{GraphId, NodeId};
pub use mapping::Mapping;
pub use periodic::{PeriodicTaskGraph, TaskSet};

/// Worst-case execution demand of a task, in processor cycles.
///
/// Wall-clock duration of a task is `cycles / frequency`; the scheduler
/// controls the frequency, so cycles are the frequency-independent unit of
/// work used throughout the workspace.
pub type Cycles = u64;
