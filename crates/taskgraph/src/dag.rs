//! The immutable task-graph (DAG) model and its builder.
//!
//! A [`TaskGraph`] is constructed once through a [`TaskGraphBuilder`] and is
//! immutable afterwards: schedulers and simulators only ever read it, which
//! lets one `TaskGraph` be shared (e.g. behind `Arc`) across the many
//! simulation instances a parameter sweep spawns without synchronization.

use crate::algo;
use crate::error::GraphError;
use crate::ids::NodeId;
use crate::Cycles;

/// One task (node) of a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskNode {
    /// Human-readable name, used in traces and DOT output.
    pub name: String,
    /// Worst-case execution demand in processor cycles.
    pub wcet: Cycles,
}

/// An immutable directed acyclic graph of tasks with precedence edges.
///
/// Nodes are stored densely and addressed by [`NodeId`]; predecessor and
/// successor adjacency lists are precomputed at build time, as is a canonical
/// topological order, so the hot scheduling paths never re-derive them.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskGraph {
    name: String,
    nodes: Vec<TaskNode>,
    /// `succs[v]` = nodes that may only start after `v` completes.
    succs: Vec<Vec<NodeId>>,
    /// `preds[v]` = nodes that must complete before `v` may start.
    preds: Vec<Vec<NodeId>>,
    /// A canonical topological order (Kahn, smallest-id-first tie-break).
    topo: Vec<NodeId>,
    /// Sum of all node WCETs — the `WCi` of the paper (§4.1).
    total_wcet: Cycles,
    /// `edge_bytes[v][k]` = bytes `v` hands to `succs[v][k]` (index-aligned
    /// with `succs`). Plain precedence edges carry 0 bytes; imported
    /// workflows (WfCommons files) and explicit weighted edges carry the
    /// payload the interconnect must move when the endpoints land on
    /// different PEs.
    edge_bytes: Vec<Vec<u64>>,
}

impl TaskGraph {
    /// The graph's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of precedence edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Access one node.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this graph.
    #[inline]
    pub fn node(&self, id: NodeId) -> &TaskNode {
        &self.nodes[id.index()]
    }

    /// Worst-case execution demand of one node, in cycles.
    #[inline]
    pub fn wcet(&self, id: NodeId) -> Cycles {
        self.nodes[id.index()].wcet
    }

    /// Iterate over all node ids in insertion order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// All nodes, with their ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = (NodeId, &TaskNode)> + '_ {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Direct successors of `id` (tasks that wait on it).
    #[inline]
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.index()]
    }

    /// Direct predecessors of `id` (tasks it waits on).
    #[inline]
    pub fn predecessors(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.index()]
    }

    /// In-degree of a node; nodes with in-degree 0 are *source* (entry) tasks.
    #[inline]
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.preds[id.index()].len()
    }

    /// Out-degree of a node; nodes with out-degree 0 are *sink* (exit) tasks.
    #[inline]
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.succs[id.index()].len()
    }

    /// Nodes with no predecessors — ready as soon as the graph is released.
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&n| self.in_degree(n) == 0).collect()
    }

    /// Nodes with no successors.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&n| self.out_degree(n) == 0).collect()
    }

    /// A canonical topological order, precomputed at build time.
    #[inline]
    pub fn topological_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Sum of all node WCETs, in cycles — `WCi = Σ wcij` of the paper.
    #[inline]
    pub fn total_wcet(&self) -> Cycles {
        self.total_wcet
    }

    /// True if there is an edge `from -> to`.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.succs[from.index()].contains(&to)
    }

    /// All edges as `(from, to)` pairs, grouped by source in id order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succs.iter().enumerate().flat_map(|(i, outs)| {
            let from = NodeId::from_index(i);
            outs.iter().map(move |&to| (from, to))
        })
    }

    /// Bytes carried by the edge `from -> to`; `None` if there is no such
    /// edge. Plain precedence edges carry 0.
    pub fn edge_bytes(&self, from: NodeId, to: NodeId) -> Option<u64> {
        let k = self.succs[from.index()].binary_search(&to).ok()?;
        Some(self.edge_bytes[from.index()][k])
    }

    /// Every outgoing edge of `from` with its byte payload, in successor-id
    /// order (index-aligned with [`successors`](Self::successors)).
    #[inline]
    pub fn out_edges(&self, from: NodeId) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.succs[from.index()].iter().copied().zip(self.edge_bytes[from.index()].iter().copied())
    }

    /// Sum of all edge payloads, bytes. 0 for plain precedence graphs.
    pub fn total_edge_bytes(&self) -> u64 {
        self.edge_bytes.iter().flatten().sum()
    }

    /// Length (in cycles) of the longest WCET-weighted path — the graph's
    /// critical path. A lower bound on any instance's completion, useful for
    /// sanity-checking generated periods (`critical_path ≤ period · fmax`
    /// must hold or the graph is trivially unschedulable).
    pub fn critical_path(&self) -> Cycles {
        algo::critical_path(self)
    }
}

/// Incremental, validated construction of a [`TaskGraph`].
///
/// Node insertion hands back [`NodeId`]s; edges may reference only those ids.
/// `build` runs the final acyclicity check and freezes the graph.
#[derive(Debug, Clone, Default)]
pub struct TaskGraphBuilder {
    name: String,
    nodes: Vec<TaskNode>,
    edges: Vec<(NodeId, NodeId, u64)>,
}

impl TaskGraphBuilder {
    /// Start a new graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraphBuilder { name: name.into(), nodes: Vec::new(), edges: Vec::new() }
    }

    /// Pre-allocate for `nodes` nodes and `edges` edges.
    pub fn with_capacity(name: impl Into<String>, nodes: usize, edges: usize) -> Self {
        TaskGraphBuilder {
            name: name.into(),
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Add a task with the given worst-case cycle demand; returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, wcet: Cycles) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(TaskNode { name: name.into(), wcet });
        id
    }

    /// Add a precedence edge `from -> to` (`to` cannot start before `from`
    /// completes).
    ///
    /// Rejects unknown endpoints, self-loops and duplicates immediately;
    /// cycles are only detectable (and rejected) at [`build`](Self::build)
    /// time.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), GraphError> {
        self.add_edge_weighted(from, to, 0)
    }

    /// Add a precedence edge `from -> to` carrying `bytes` of data — the
    /// payload an interconnect must move when the two endpoints are mapped
    /// onto different processing elements. Same validation as
    /// [`add_edge`](Self::add_edge) (which is the `bytes = 0` shorthand).
    pub fn add_edge_weighted(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) -> Result<(), GraphError> {
        let n = self.nodes.len();
        if from.index() >= n {
            return Err(GraphError::UnknownNode(from));
        }
        if to.index() >= n {
            return Err(GraphError::UnknownNode(to));
        }
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        if self.edges.iter().any(|&(f, t, _)| f == from && t == to) {
            return Err(GraphError::DuplicateEdge(from, to));
        }
        self.edges.push((from, to, bytes));
        Ok(())
    }

    /// Validate and freeze the graph.
    ///
    /// Checks: at least one node, no zero-WCET node, acyclic edge relation.
    pub fn build(self) -> Result<TaskGraph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.wcet == 0 {
                return Err(GraphError::ZeroWcet(NodeId::from_index(i)));
            }
        }
        let n = self.nodes.len();
        let mut out: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(from, to, bytes) in &self.edges {
            out[from.index()].push((to, bytes));
            preds[to.index()].push(from);
        }
        // Deterministic adjacency order regardless of edge insertion order;
        // edge payloads stay index-aligned with their successor entries.
        let mut succs: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        let mut edge_bytes: Vec<Vec<u64>> = Vec::with_capacity(n);
        for mut list in out {
            list.sort_unstable_by_key(|&(to, _)| to);
            succs.push(list.iter().map(|&(to, _)| to).collect());
            edge_bytes.push(list.iter().map(|&(_, b)| b).collect());
        }
        for list in preds.iter_mut() {
            list.sort_unstable();
        }
        let topo = algo::topological_sort(n, &succs, &preds)?;
        let total_wcet = self.nodes.iter().map(|t| t.wcet).sum();
        Ok(TaskGraph {
            name: self.name,
            nodes: self.nodes,
            succs,
            preds,
            topo,
            total_wcet,
            edge_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// diamond: a -> {b, c} -> d
    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("diamond");
        let a = b.add_node("a", 10);
        let x = b.add_node("b", 20);
        let y = b.add_node("c", 30);
        let z = b.add_node("d", 40);
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_diamond_with_correct_adjacency() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        let a = NodeId::from_index(0);
        let b = NodeId::from_index(1);
        let c = NodeId::from_index(2);
        let d = NodeId::from_index(3);
        assert_eq!(g.successors(a), &[b, c]);
        assert_eq!(g.predecessors(d), &[b, c]);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.out_degree(d), 0);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
    }

    #[test]
    fn total_wcet_is_sum_of_nodes() {
        assert_eq!(diamond().total_wcet(), 100);
    }

    #[test]
    fn critical_path_of_diamond_takes_heavier_branch() {
        // a(10) -> c(30) -> d(40) = 80
        assert_eq!(diamond().critical_path(), 80);
    }

    #[test]
    fn topological_order_respects_all_edges() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut p = vec![0; g.node_count()];
            for (i, &n) in g.topological_order().iter().enumerate() {
                p[n.index()] = i;
            }
            p
        };
        for (from, to) in g.edges() {
            assert!(pos[from.index()] < pos[to.index()], "{from} before {to}");
        }
    }

    #[test]
    fn empty_graph_is_rejected() {
        assert_eq!(TaskGraphBuilder::new("empty").build().unwrap_err(), GraphError::EmptyGraph);
    }

    #[test]
    fn zero_wcet_is_rejected() {
        let mut b = TaskGraphBuilder::new("z");
        let n = b.add_node("bad", 0);
        assert_eq!(b.build().unwrap_err(), GraphError::ZeroWcet(n));
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = TaskGraphBuilder::new("s");
        let n = b.add_node("x", 1);
        assert_eq!(b.add_edge(n, n).unwrap_err(), GraphError::SelfLoop(n));
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        let mut b = TaskGraphBuilder::new("d");
        let x = b.add_node("x", 1);
        let y = b.add_node("y", 1);
        b.add_edge(x, y).unwrap();
        assert_eq!(b.add_edge(x, y).unwrap_err(), GraphError::DuplicateEdge(x, y));
    }

    #[test]
    fn unknown_endpoint_is_rejected() {
        let mut b = TaskGraphBuilder::new("u");
        let x = b.add_node("x", 1);
        let ghost = NodeId::from_index(9);
        assert_eq!(b.add_edge(x, ghost).unwrap_err(), GraphError::UnknownNode(ghost));
        assert_eq!(b.add_edge(ghost, x).unwrap_err(), GraphError::UnknownNode(ghost));
    }

    #[test]
    fn cycle_is_rejected_at_build() {
        let mut b = TaskGraphBuilder::new("c");
        let x = b.add_node("x", 1);
        let y = b.add_node("y", 1);
        let z = b.add_node("z", 1);
        b.add_edge(x, y).unwrap();
        b.add_edge(y, z).unwrap();
        b.add_edge(z, x).unwrap();
        assert!(matches!(b.build().unwrap_err(), GraphError::CycleDetected(_)));
    }

    #[test]
    fn single_node_graph_is_fine() {
        let mut b = TaskGraphBuilder::new("one");
        b.add_node("only", 5);
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.critical_path(), 5);
        assert_eq!(g.topological_order().len(), 1);
    }

    #[test]
    fn independent_nodes_have_no_edges() {
        let mut b = TaskGraphBuilder::new("ind");
        for i in 0..5 {
            b.add_node(format!("t{i}"), (i + 1) as Cycles);
        }
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.sources().len(), 5);
        assert_eq!(g.sinks().len(), 5);
        // Critical path of independent tasks = heaviest single task.
        assert_eq!(g.critical_path(), 5);
    }

    #[test]
    fn has_edge_and_edges_agree() {
        let g = diamond();
        let listed: Vec<_> = g.edges().collect();
        assert_eq!(listed.len(), 4);
        for (f, t) in listed {
            assert!(g.has_edge(f, t));
            assert!(!g.has_edge(t, f), "edges are directed");
        }
    }

    #[test]
    fn edge_bytes_default_to_zero_and_follow_the_sorted_adjacency() {
        let g = diamond();
        let a = NodeId::from_index(0);
        let b = NodeId::from_index(1);
        let d = NodeId::from_index(3);
        assert_eq!(g.edge_bytes(a, b), Some(0));
        assert_eq!(g.edge_bytes(b, a), None, "no reverse edge");
        assert_eq!(g.edge_bytes(a, d), None, "no such edge");
        assert_eq!(g.total_edge_bytes(), 0);
    }

    #[test]
    fn weighted_edges_keep_their_payload_after_adjacency_sorting() {
        let mut b = TaskGraphBuilder::new("w");
        let a = b.add_node("a", 1);
        let x = b.add_node("x", 1);
        let y = b.add_node("y", 1);
        // Insert in reverse successor order so build() has to re-sort.
        b.add_edge_weighted(a, y, 300).unwrap();
        b.add_edge_weighted(a, x, 200).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.successors(a), &[x, y]);
        assert_eq!(g.edge_bytes(a, x), Some(200));
        assert_eq!(g.edge_bytes(a, y), Some(300));
        assert_eq!(g.out_edges(a).collect::<Vec<_>>(), vec![(x, 200), (y, 300)]);
        assert_eq!(g.total_edge_bytes(), 500);
    }

    #[test]
    fn weighted_duplicate_edge_is_rejected_regardless_of_payload() {
        let mut b = TaskGraphBuilder::new("wd");
        let x = b.add_node("x", 1);
        let y = b.add_node("y", 1);
        b.add_edge_weighted(x, y, 5).unwrap();
        assert_eq!(b.add_edge_weighted(x, y, 9).unwrap_err(), GraphError::DuplicateEdge(x, y));
        assert_eq!(b.add_edge(x, y).unwrap_err(), GraphError::DuplicateEdge(x, y));
    }

    #[test]
    fn adjacency_is_sorted_regardless_of_insertion_order() {
        let mut b = TaskGraphBuilder::new("sorted");
        let a = b.add_node("a", 1);
        let x = b.add_node("x", 1);
        let y = b.add_node("y", 1);
        // Insert in reverse order; adjacency must still come out sorted.
        b.add_edge(a, y).unwrap();
        b.add_edge(a, x).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.successors(a), &[x, y]);
    }
}
