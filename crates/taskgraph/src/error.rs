//! Error types for task-graph construction and validation.

use crate::ids::NodeId;
use std::fmt;

/// Errors raised while building or validating a task graph or task set.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge endpoint does not exist in the graph under construction.
    UnknownNode(NodeId),
    /// An edge `(from, to)` with `from == to` was added.
    SelfLoop(NodeId),
    /// The same precedence edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// The edge set contains a cycle, so the graph is not a DAG.
    ///
    /// Carries one node known to be on a cycle, for diagnostics.
    CycleDetected(NodeId),
    /// The graph has no nodes; an empty task graph cannot be scheduled.
    EmptyGraph,
    /// A node was declared with a zero worst-case execution time.
    ///
    /// Zero-WCET nodes would make utilization and priority arithmetic
    /// degenerate (division by the remaining-work term), so they are
    /// rejected at construction.
    ZeroWcet(NodeId),
    /// A period/deadline that is not strictly positive and finite.
    InvalidPeriod(f64),
    /// Requested utilization split is impossible (e.g. zero graphs,
    /// utilization outside `(0, 1]`).
    InvalidUtilization(f64),
    /// A mapping names a processing element the platform does not have.
    MappingOutOfRange {
        /// PEs the mapping requires.
        pes: usize,
        /// PEs the platform provides.
        platform: usize,
    },
    /// A mapping's shape (graph/node counts) does not match the task set.
    MappingShape {
        /// Entries the task set requires.
        expected: usize,
        /// Entries the mapping provides.
        found: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            GraphError::CycleDetected(n) => {
                write!(f, "cycle detected involving node {n}; task graphs must be DAGs")
            }
            GraphError::EmptyGraph => write!(f, "task graph has no nodes"),
            GraphError::ZeroWcet(n) => write!(f, "node {n} has zero WCET"),
            GraphError::InvalidPeriod(p) => {
                write!(f, "period {p} is not strictly positive and finite")
            }
            GraphError::InvalidUtilization(u) => {
                write!(f, "utilization {u} is not in (0, 1]")
            }
            GraphError::MappingOutOfRange { pes, platform } => {
                write!(f, "mapping targets {pes} PEs but the platform has {platform}")
            }
            GraphError::MappingShape { expected, found } => {
                write!(f, "mapping shape mismatch: expected {expected} entries, found {found}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let n = NodeId::from_index(3);
        let m = NodeId::from_index(5);
        assert!(GraphError::UnknownNode(n).to_string().contains("n3"));
        assert!(GraphError::SelfLoop(n).to_string().contains("self-loop"));
        assert!(GraphError::DuplicateEdge(n, m).to_string().contains("n3 -> n5"));
        assert!(GraphError::CycleDetected(m).to_string().contains("cycle"));
        assert!(GraphError::EmptyGraph.to_string().contains("no nodes"));
        assert!(GraphError::ZeroWcet(n).to_string().contains("zero WCET"));
        assert!(GraphError::InvalidPeriod(-1.0).to_string().contains("-1"));
        assert!(GraphError::InvalidUtilization(2.0).to_string().contains('2'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&GraphError::EmptyGraph);
    }
}
