//! Node-to-processing-element mappings.
//!
//! On a multi-PE platform every DAG node is *assigned* to one processing
//! element before execution (the run-time then only decides ordering and
//! frequency per PE, exactly as in the MPSoC follow-on literature — Simon et
//! al.'s DAG-on-MPSoC setting, Khan & Vemuri's battery-aware mapping). A
//! [`Mapping`] records that assignment for a whole [`TaskSet`]: one PE index
//! per `(graph, node)`.
//!
//! Two constructors cover the common cases:
//!
//! * [`Mapping::single_pe`] — everything on PE 0, the paper's uniprocessor
//!   setting (and the compatibility default of every legacy entry point);
//! * [`Mapping::list_schedule`] — the deterministic default for `n > 1`
//!   PEs: nodes are visited graph by graph in deterministic topological
//!   order and each is placed on the PE with the least accumulated
//!   *utilization* (`Σ wcet/period`, weighted by PE speed when weights are
//!   given), ties broken by the lowest PE index. This is the classic greedy
//!   list-scheduling lower bound — deterministic, mapping-stable across
//!   runs, and load-balanced enough that per-PE EDF keeps its headroom.
//!
//! Explicit per-node placement goes through [`Mapping::assign`].

use crate::error::GraphError;
use crate::ids::{GraphId, NodeId};
use crate::periodic::TaskSet;

/// A total assignment of a task set's nodes onto `pes` processing elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// `assignment[graph][node]` = PE index.
    assignment: Vec<Vec<usize>>,
    pes: usize,
}

impl Mapping {
    /// Everything on PE 0 — the uniprocessor mapping.
    pub fn single_pe(set: &TaskSet) -> Self {
        Mapping {
            assignment: set.iter().map(|(_, g)| vec![0; g.graph().node_count()]).collect(),
            pes: 1,
        }
    }

    /// Deterministic greedy list scheduling onto `pes` equal-speed PEs.
    ///
    /// # Panics
    /// Panics when `pes == 0`.
    pub fn list_schedule(set: &TaskSet, pes: usize) -> Self {
        Self::list_schedule_weighted(set, &vec![1.0; pes])
    }

    /// Deterministic greedy list scheduling with per-PE speed weights
    /// (normally the PEs' `fmax` values): each node goes to the PE whose
    /// accumulated `Σ wcet/period / weight` is smallest, ties to the lowest
    /// index — faster PEs soak up proportionally more work.
    ///
    /// # Panics
    /// Panics when `weights` is empty or contains a non-positive weight.
    pub fn list_schedule_weighted(set: &TaskSet, weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "a mapping needs at least one processing element");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "PE speed weights must be positive"
        );
        let pes = weights.len();
        let mut load = vec![0.0f64; pes];
        let mut assignment: Vec<Vec<usize>> =
            set.iter().map(|(_, g)| vec![0; g.graph().node_count()]).collect();
        for (gid, pg) in set.iter() {
            let graph = pg.graph();
            for &node in graph.topological_order() {
                let mut best = 0;
                for pe in 1..pes {
                    if load[pe] < load[best] {
                        best = pe;
                    }
                }
                assignment[gid.index()][node.index()] = best;
                load[best] += graph.wcet(node) as f64 / (pg.period() * weights[best]);
            }
        }
        Mapping { assignment, pes }
    }

    /// Heterogeneity- and communication-aware greedy list scheduling.
    ///
    /// Like [`Mapping::list_schedule_weighted`], nodes are visited in
    /// deterministic topological order, but each placement is scored by the
    /// **resulting** normalized load *plus* the communication it would
    /// induce: every incoming edge whose producer sits on another PE
    /// charges `(latency + bytes / bytes_per_sec) / period` — the
    /// interconnect time the transfer costs, normalized like a utilization.
    /// The node goes to the PE with the smallest score, ties to the lowest
    /// index, so chains gravitate onto one (fast) element unless the load
    /// imbalance outweighs the transfer cost.
    ///
    /// Unlike [`Mapping::list_schedule_weighted`] (which compares PEs by
    /// their load *before* placement), the score includes the node's own
    /// normalized demand, so an expensive node prefers the element where it
    /// is cheap even when loads are equal. With a free interconnect
    /// (`latency = 0`, `bytes_per_sec = f64::INFINITY`) and equal weights
    /// the result is identical to [`Mapping::list_schedule`].
    ///
    /// # Panics
    /// Panics when `weights` is empty or non-positive, `latency` is
    /// negative/non-finite, or `bytes_per_sec` is not positive.
    pub fn list_schedule_hetero(
        set: &TaskSet,
        weights: &[f64],
        latency: f64,
        bytes_per_sec: f64,
    ) -> Self {
        assert!(!weights.is_empty(), "a mapping needs at least one processing element");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "PE speed weights must be positive"
        );
        assert!(latency >= 0.0 && latency.is_finite(), "interconnect latency must be finite >= 0");
        assert!(bytes_per_sec > 0.0, "interconnect bandwidth must be positive");
        let pes = weights.len();
        let mut load = vec![0.0f64; pes];
        let mut assignment: Vec<Vec<usize>> =
            set.iter().map(|(_, g)| vec![0; g.graph().node_count()]).collect();
        for (gid, pg) in set.iter() {
            let graph = pg.graph();
            for &node in graph.topological_order() {
                let mut best = 0;
                let mut best_score = f64::INFINITY;
                for pe in 0..pes {
                    let compute = load[pe] + graph.wcet(node) as f64 / (pg.period() * weights[pe]);
                    let mut comm = 0.0;
                    for &p in graph.predecessors(node) {
                        if assignment[gid.index()][p.index()] != pe {
                            let bytes = graph.edge_bytes(p, node).unwrap_or(0) as f64;
                            comm += (latency + bytes / bytes_per_sec) / pg.period();
                        }
                    }
                    let score = compute + comm;
                    if score < best_score {
                        best = pe;
                        best_score = score;
                    }
                }
                assignment[gid.index()][node.index()] = best;
                load[best] += graph.wcet(node) as f64 / (pg.period() * weights[best]);
            }
        }
        Mapping { assignment, pes }
    }

    /// Number of processing elements this mapping targets.
    #[inline]
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// The PE a node is assigned to.
    ///
    /// # Panics
    /// Panics when the ids are out of range for the mapped set.
    #[inline]
    pub fn pe_of(&self, graph: GraphId, node: NodeId) -> usize {
        self.assignment[graph.index()][node.index()]
    }

    /// Re-assign one node. `pe` may extend the platform: the mapping's
    /// [`Mapping::pes`] grows to cover it.
    pub fn assign(&mut self, graph: GraphId, node: NodeId, pe: usize) {
        self.assignment[graph.index()][node.index()] = pe;
        self.pes = self.pes.max(pe + 1);
    }

    /// Widen the mapping to target at least `pes` processing elements
    /// without moving any node — how a narrow mapping (e.g.
    /// [`Mapping::single_pe`]) is adopted onto a wider platform whose
    /// highest elements simply stay idle.
    pub fn pad_to(&mut self, pes: usize) {
        self.pes = self.pes.max(pes);
    }

    /// Worst-case cycles of `graph` mapped onto `pe` (exact integer
    /// arithmetic — the scheduler-visible per-PE utilization numbers derive
    /// from this).
    pub fn static_cycles_on(&self, set: &TaskSet, graph: GraphId, pe: usize) -> u64 {
        let g = set[graph].graph();
        g.node_ids()
            .filter(|n| self.assignment[graph.index()][n.index()] == pe)
            .map(|n| g.wcet(n))
            .sum()
    }

    /// Check the mapping covers exactly `set`'s shape and stays within
    /// `pes` processing elements.
    pub fn validate(&self, set: &TaskSet, pes: usize) -> Result<(), GraphError> {
        if self.pes > pes {
            return Err(GraphError::MappingOutOfRange { pes: self.pes, platform: pes });
        }
        if self.assignment.len() != set.len() {
            return Err(GraphError::MappingShape {
                expected: set.len(),
                found: self.assignment.len(),
            });
        }
        for (gid, pg) in set.iter() {
            let nodes = pg.graph().node_count();
            let row = &self.assignment[gid.index()];
            if row.len() != nodes {
                return Err(GraphError::MappingShape { expected: nodes, found: row.len() });
            }
            if let Some(&bad) = row.iter().find(|&&pe| pe >= pes) {
                return Err(GraphError::MappingOutOfRange { pes: bad + 1, platform: pes });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::TaskGraphBuilder;
    use crate::periodic::PeriodicTaskGraph;

    fn set() -> TaskSet {
        // T0: chain a(4) -> b(6), period 20; T1: c(10), period 10.
        let mut b = TaskGraphBuilder::new("T0");
        let a = b.add_node("a", 4);
        let c = b.add_node("b", 6);
        b.add_edge(a, c).unwrap();
        let g0 = PeriodicTaskGraph::new(b.build().unwrap(), 20.0).unwrap();
        let mut b = TaskGraphBuilder::new("T1");
        b.add_node("c", 10);
        let g1 = PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap();
        let mut s = TaskSet::new();
        s.push(g0);
        s.push(g1);
        s
    }

    fn gid(i: usize) -> GraphId {
        GraphId::from_index(i)
    }
    fn nid(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn single_pe_maps_everything_to_zero() {
        let s = set();
        let m = Mapping::single_pe(&s);
        assert_eq!(m.pes(), 1);
        for (g, pg) in s.iter() {
            for n in pg.graph().node_ids() {
                assert_eq!(m.pe_of(g, n), 0);
            }
        }
        m.validate(&s, 1).unwrap();
    }

    #[test]
    fn list_schedule_balances_utilization() {
        let s = set();
        let m = Mapping::list_schedule(&s, 2);
        assert_eq!(m.pes(), 2);
        m.validate(&s, 2).unwrap();
        // Greedy in topo order: T0.a -> PE0 (0.2), T0.b -> PE1 (0.3),
        // T1.c -> PE0 (0.2 < 0.3) -> PE0 now 1.2? No: 0.2 + 10/10 = 1.2.
        assert_eq!(m.pe_of(gid(0), nid(0)), 0);
        assert_eq!(m.pe_of(gid(0), nid(1)), 1);
        assert_eq!(m.pe_of(gid(1), nid(0)), 0);
        // Both PEs received work.
        assert!(m.static_cycles_on(&s, gid(0), 0) > 0);
        assert!(m.static_cycles_on(&s, gid(0), 1) > 0);
    }

    #[test]
    fn list_schedule_is_deterministic() {
        let s = set();
        assert_eq!(Mapping::list_schedule(&s, 4), Mapping::list_schedule(&s, 4));
    }

    #[test]
    fn weighted_list_schedule_prefers_fast_pes() {
        let s = set();
        // PE1 is 10x faster: its normalized load grows slowly, so it should
        // absorb most nodes.
        let m = Mapping::list_schedule_weighted(&s, &[1.0, 10.0]);
        let on_fast: usize = (0..2)
            .map(|g| {
                let pg = &s[gid(g)];
                pg.graph().node_ids().filter(|n| m.pe_of(gid(g), *n) == 1).count()
            })
            .sum();
        assert!(on_fast >= 2, "fast PE got {on_fast} of 3 nodes");
    }

    /// A chain with heavy edge payloads and one light independent task.
    fn comm_heavy_set() -> TaskSet {
        let mut b = TaskGraphBuilder::new("chain");
        let a = b.add_node("a", 4);
        let c = b.add_node("b", 4);
        let d = b.add_node("c", 4);
        b.add_edge_weighted(a, c, 1_000_000).unwrap();
        b.add_edge_weighted(c, d, 1_000_000).unwrap();
        let g0 = PeriodicTaskGraph::new(b.build().unwrap(), 20.0).unwrap();
        let mut b = TaskGraphBuilder::new("solo");
        b.add_node("s", 4);
        let g1 = PeriodicTaskGraph::new(b.build().unwrap(), 20.0).unwrap();
        let mut s = TaskSet::new();
        s.push(g0);
        s.push(g1);
        s
    }

    #[test]
    fn hetero_free_interconnect_equal_weights_matches_list_schedule() {
        let s = set();
        let free = Mapping::list_schedule_hetero(&s, &[1.0, 1.0], 0.0, f64::INFINITY);
        assert_eq!(free, Mapping::list_schedule(&s, 2));
    }

    #[test]
    fn hetero_mapper_keeps_heavy_chains_on_one_pe() {
        let s = comm_heavy_set();
        // A slow interconnect makes splitting the chain cost ~10s per hop
        // (0.5 in normalized units, beating the 0.2 load delta); the chain
        // must stay together, the solo task balances onto PE 1.
        let m = Mapping::list_schedule_hetero(&s, &[1.0, 1.0], 1e-3, 1e5);
        let chain_pes: Vec<usize> = (0..3).map(|n| m.pe_of(gid(0), nid(n))).collect();
        assert!(
            chain_pes.iter().all(|&pe| pe == chain_pes[0]),
            "chain split across PEs: {chain_pes:?}"
        );
        // The communication-blind mapper does split the chain (it only sees
        // load), so the two mappers genuinely differ on this workload.
        let blind = Mapping::list_schedule(&s, 2);
        assert_ne!(m, blind);
    }

    #[test]
    fn hetero_mapper_sends_expensive_nodes_to_the_fast_pe() {
        let s = set();
        // PE 1 is 10x faster and the interconnect is free: every node is
        // cheapest there until its accumulated load catches up.
        let m = Mapping::list_schedule_hetero(&s, &[1.0, 10.0], 0.0, f64::INFINITY);
        assert_eq!(m.pe_of(gid(0), nid(0)), 1, "first node belongs on the fast PE");
    }

    #[test]
    fn hetero_mapper_is_deterministic() {
        let s = comm_heavy_set();
        assert_eq!(
            Mapping::list_schedule_hetero(&s, &[1.0, 2.0, 1.0], 1e-4, 1e8),
            Mapping::list_schedule_hetero(&s, &[1.0, 2.0, 1.0], 1e-4, 1e8)
        );
    }

    #[test]
    fn static_cycles_partition_the_graph_total() {
        let s = set();
        let m = Mapping::list_schedule(&s, 3);
        for (g, pg) in s.iter() {
            let total: u64 = (0..3).map(|pe| m.static_cycles_on(&s, g, pe)).sum();
            assert_eq!(total, pg.graph().total_wcet());
        }
    }

    #[test]
    fn assign_extends_and_validate_rejects_overflow() {
        let s = set();
        let mut m = Mapping::single_pe(&s);
        m.assign(gid(1), nid(0), 3);
        assert_eq!(m.pes(), 4);
        assert_eq!(m.pe_of(gid(1), nid(0)), 3);
        assert!(m.validate(&s, 2).is_err());
        m.validate(&s, 4).unwrap();
    }

    #[test]
    fn validate_rejects_shape_mismatch() {
        let s = set();
        let m = Mapping::single_pe(&s);
        let mut bigger = TaskSet::new();
        let mut b = TaskGraphBuilder::new("X");
        b.add_node("x", 1);
        bigger.push(PeriodicTaskGraph::new(b.build().unwrap(), 5.0).unwrap());
        assert!(m.validate(&bigger, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_pes_panics() {
        let _ = Mapping::list_schedule(&set(), 0);
    }
}
