//! Periodic task graphs and task sets.
//!
//! The paper's workload model (§4): task graphs arrive periodically, the
//! deadline of every instance equals its period, and *all* nodes of an
//! instance must complete by that deadline.

use crate::dag::TaskGraph;
use crate::error::GraphError;
use crate::ids::GraphId;
use std::sync::Arc;

/// A task graph released every `period` time units with deadline = period.
///
/// The underlying [`TaskGraph`] is held behind `Arc`: parameter sweeps clone
/// task sets across worker threads, and the graph structure itself is
/// immutable and shareable.
#[derive(Debug, Clone)]
pub struct PeriodicTaskGraph {
    graph: Arc<TaskGraph>,
    period: f64,
    /// Release time of the first instance (phase); the paper releases all
    /// graphs at t = 0.
    phase: f64,
}

impl PeriodicTaskGraph {
    /// Wrap a graph with its period (= relative deadline), phase 0.
    pub fn new(graph: TaskGraph, period: f64) -> Result<Self, GraphError> {
        Self::with_phase(graph, period, 0.0)
    }

    /// Wrap a graph with its period and an initial release offset.
    pub fn with_phase(graph: TaskGraph, period: f64, phase: f64) -> Result<Self, GraphError> {
        if !(period.is_finite() && period > 0.0) {
            return Err(GraphError::InvalidPeriod(period));
        }
        if !(phase.is_finite() && phase >= 0.0) {
            return Err(GraphError::InvalidPeriod(phase));
        }
        Ok(PeriodicTaskGraph { graph: Arc::new(graph), period, phase })
    }

    /// The task graph released at every period boundary.
    #[inline]
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// Shared handle to the graph.
    #[inline]
    pub fn graph_arc(&self) -> Arc<TaskGraph> {
        Arc::clone(&self.graph)
    }

    /// Period between releases; also every instance's relative deadline.
    #[inline]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// First release time.
    #[inline]
    pub fn phase(&self) -> f64 {
        self.phase
    }

    /// Release time of instance `k` (0-based).
    #[inline]
    pub fn release_time(&self, k: u64) -> f64 {
        self.phase + self.period * k as f64
    }

    /// Absolute deadline of instance `k` (0-based).
    #[inline]
    pub fn deadline(&self, k: u64) -> f64 {
        self.release_time(k) + self.period
    }

    /// Worst-case utilization of this graph on a processor of `fmax` cycles
    /// per time unit: `WCi / (Di · fmax)`.
    #[inline]
    pub fn utilization(&self, fmax: f64) -> f64 {
        self.graph.total_wcet() as f64 / (self.period * fmax)
    }

    /// True if one instance can possibly finish within its deadline at
    /// `fmax`: the critical path fits in the period.
    pub fn is_structurally_feasible(&self, fmax: f64) -> bool {
        self.graph.critical_path() as f64 <= self.period * fmax
    }
}

/// An ordered collection of periodic task graphs scheduled together on one
/// processor — the `(T1 … Tn)` of the paper's problem definition.
#[derive(Debug, Clone, Default)]
pub struct TaskSet {
    graphs: Vec<PeriodicTaskGraph>,
}

impl TaskSet {
    /// Empty set.
    pub fn new() -> Self {
        TaskSet { graphs: Vec::new() }
    }

    /// Build from a vector of periodic graphs.
    pub fn from_graphs(graphs: Vec<PeriodicTaskGraph>) -> Self {
        TaskSet { graphs }
    }

    /// Append a graph; returns its [`GraphId`].
    pub fn push(&mut self, g: PeriodicTaskGraph) -> GraphId {
        let id = GraphId::from_index(self.graphs.len());
        self.graphs.push(g);
        id
    }

    /// Number of graphs.
    #[inline]
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when the set has no graphs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Access one periodic graph.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn graph(&self, id: GraphId) -> &PeriodicTaskGraph {
        &self.graphs[id.index()]
    }

    /// Iterate over `(GraphId, &PeriodicTaskGraph)`.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (GraphId, &PeriodicTaskGraph)> + '_ {
        self.graphs.iter().enumerate().map(|(i, g)| (GraphId::from_index(i), g))
    }

    /// All graph ids.
    pub fn graph_ids(&self) -> impl ExactSizeIterator<Item = GraphId> + '_ {
        (0..self.graphs.len()).map(GraphId::from_index)
    }

    /// Total worst-case utilization `Σ WCi/(Di·fmax)` — the `U` driving
    /// ccEDF's frequency selection. EDF schedulability on a unit-speed
    /// processor requires `U ≤ 1`.
    pub fn utilization(&self, fmax: f64) -> f64 {
        self.graphs.iter().map(|g| g.utilization(fmax)).sum()
    }

    /// Total node count across all graphs.
    pub fn total_nodes(&self) -> usize {
        self.graphs.iter().map(|g| g.graph().node_count()).sum()
    }

    /// Hyperperiod (least common multiple of periods) when all periods are
    /// integral multiples of `resolution`; `None` if any period is not (to a
    /// 1e-9 relative tolerance) or the LCM overflows.
    ///
    /// The experiment binaries simulate whole hyperperiods so that per-cycle
    /// energy numbers are comparable across schedulers.
    pub fn hyperperiod(&self, resolution: f64) -> Option<f64> {
        if self.graphs.is_empty() {
            return None;
        }
        let mut lcm: u128 = 1;
        for g in &self.graphs {
            let ratio = g.period() / resolution;
            let ticks = ratio.round();
            if ticks < 1.0 || ((ratio - ticks).abs() > 1e-9 * ratio.max(1.0)) {
                return None;
            }
            let t = ticks as u128;
            lcm = lcm.checked_div(gcd(lcm, t)).and_then(|l| l.checked_mul(t))?;
            if lcm > (1u128 << 100) {
                return None; // would overflow f64 precision anyway
            }
        }
        Some(lcm as f64 * resolution)
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl std::ops::Index<GraphId> for TaskSet {
    type Output = PeriodicTaskGraph;
    fn index(&self, id: GraphId) -> &Self::Output {
        &self.graphs[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::TaskGraphBuilder;

    fn single(name: &str, wcet: u64, period: f64) -> PeriodicTaskGraph {
        let mut b = TaskGraphBuilder::new(name);
        b.add_node("t", wcet);
        PeriodicTaskGraph::new(b.build().unwrap(), period).unwrap()
    }

    #[test]
    fn release_and_deadline_arithmetic() {
        let g = single("T", 5, 20.0);
        assert_eq!(g.release_time(0), 0.0);
        assert_eq!(g.release_time(3), 60.0);
        assert_eq!(g.deadline(0), 20.0);
        assert_eq!(g.deadline(3), 80.0);
    }

    #[test]
    fn phase_shifts_releases() {
        let mut b = TaskGraphBuilder::new("T");
        b.add_node("t", 5);
        let g = PeriodicTaskGraph::with_phase(b.build().unwrap(), 20.0, 7.0).unwrap();
        assert_eq!(g.release_time(0), 7.0);
        assert_eq!(g.deadline(0), 27.0);
    }

    #[test]
    fn utilization_matches_paper_formula() {
        // wc 5, D 20, fmax 1 -> U = 0.25
        let g = single("T", 5, 20.0);
        assert!((g.utilization(1.0) - 0.25).abs() < 1e-12);
        // fmax 2 halves it.
        assert!((g.utilization(2.0) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn invalid_periods_are_rejected() {
        let mut b = TaskGraphBuilder::new("T");
        b.add_node("t", 5);
        let g = b.build().unwrap();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let r = PeriodicTaskGraph::new(g.clone(), bad);
            assert!(r.is_err(), "period {bad} must be rejected");
        }
    }

    #[test]
    fn negative_phase_is_rejected() {
        let mut b = TaskGraphBuilder::new("T");
        b.add_node("t", 5);
        assert!(PeriodicTaskGraph::with_phase(b.build().unwrap(), 10.0, -2.0).is_err());
    }

    #[test]
    fn structural_feasibility_uses_critical_path() {
        let mut b = TaskGraphBuilder::new("chain");
        let x = b.add_node("x", 6);
        let y = b.add_node("y", 6);
        b.add_edge(x, y).unwrap();
        let g = PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap();
        // critical path 12 > 10 * fmax(1) -> infeasible even though U > 1 too
        assert!(!g.is_structurally_feasible(1.0));
        assert!(g.is_structurally_feasible(2.0));
    }

    #[test]
    fn taskset_paper_fig5_setup() {
        // T1: wc 5 D 20; T2: wc 5 D 50; T3: 3 nodes wc 5 each, D 100.
        let mut set = TaskSet::new();
        set.push(single("T1", 5, 20.0));
        set.push(single("T2", 5, 50.0));
        let mut b = TaskGraphBuilder::new("T3");
        for i in 0..3 {
            b.add_node(format!("t{i}"), 5);
        }
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 100.0).unwrap());
        // U = 5/20 + 5/50 + 15/100 = 0.25 + 0.10 + 0.15 = 0.5 (paper: fref = 0.5 fmax)
        assert!((set.utilization(1.0) - 0.5).abs() < 1e-12);
        assert_eq!(set.total_nodes(), 5);
        assert_eq!(set.hyperperiod(1.0), Some(100.0));
    }

    #[test]
    fn hyperperiod_of_coprime_periods() {
        let mut set = TaskSet::new();
        set.push(single("a", 1, 3.0));
        set.push(single("b", 1, 4.0));
        set.push(single("c", 1, 5.0));
        assert_eq!(set.hyperperiod(1.0), Some(60.0));
    }

    #[test]
    fn hyperperiod_respects_resolution() {
        let mut set = TaskSet::new();
        set.push(single("a", 1, 0.3));
        set.push(single("b", 1, 0.4));
        let h = set.hyperperiod(0.1).unwrap();
        assert!((h - 1.2).abs() < 1e-9);
        // At integral resolution the fractional periods do not fit.
        assert_eq!(set.hyperperiod(1.0), None);
    }

    #[test]
    fn hyperperiod_of_empty_set_is_none() {
        assert_eq!(TaskSet::new().hyperperiod(1.0), None);
    }

    #[test]
    fn index_and_iter_agree() {
        let mut set = TaskSet::new();
        let a = set.push(single("a", 1, 3.0));
        let b = set.push(single("b", 2, 4.0));
        assert_eq!(set[a].graph().name(), "a");
        assert_eq!(set[b].graph().name(), "b");
        let names: Vec<_> = set.iter().map(|(_, g)| g.graph().name().to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }
}
